// Intrusive red-black tree with augmentation hooks, in the style of the Linux kernel's
// lib/rbtree.c (which backs both mm_rb and the kernel range-lock's range tree).
//
// The tree does not own its nodes. NodeT must embed the linkage fields
//   NodeT* rb_parent; NodeT* rb_left; NodeT* rb_right; bool rb_red;
// and Traits must provide
//   static bool Less(const NodeT& a, const NodeT& b);   // strict weak order
//   static void Update(NodeT* n);                       // recompute augmented data from
//                                                       // children (no-op if unused)
// Equal keys are allowed (inserted to the right of existing equals, preserving
// insertion order among equals in the in-order walk).
//
// Implementation follows CLRS chapter 13 with explicit parent pointers and a
// null-tolerant delete fixup; Update() is invoked on every node whose subtree content
// changes (rotations, transplant paths), which is exactly the discipline the kernel's
// augmented rbtree documents.
#ifndef SRL_RBTREE_RB_TREE_H_
#define SRL_RBTREE_RB_TREE_H_

#include <cstddef>

namespace srl {

// Default no-op augmentation.
template <typename NodeT>
struct RbNoAugment {
  static void Update(NodeT*) {}
};

template <typename NodeT, typename Traits>
class RbTree {
 public:
  RbTree() = default;
  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  bool Empty() const { return root_ == nullptr; }
  std::size_t Size() const { return size_; }
  NodeT* Root() const { return root_; }

  // Links `n` into the tree. `n` must not currently be in any tree.
  void Insert(NodeT* n) {
    n->rb_left = nullptr;
    n->rb_right = nullptr;
    NodeT* parent = nullptr;
    NodeT** link = &root_;
    while (*link != nullptr) {
      parent = *link;
      link = Traits::Less(*n, *parent) ? &parent->rb_left : &parent->rb_right;
    }
    n->rb_parent = parent;
    n->rb_red = true;
    *link = n;
    for (NodeT* p = n; p != nullptr; p = p->rb_parent) {
      Traits::Update(p);
    }
    InsertFixup(n);
    ++size_;
  }

  // Unlinks `n` from the tree. `n` must be in this tree.
  void Erase(NodeT* z) {
    NodeT* y = z;
    NodeT* x = nullptr;       // child that replaces the removed/moved node (may be null)
    NodeT* x_parent = nullptr;  // its parent after the splice
    bool y_was_red = y->rb_red;

    if (z->rb_left == nullptr) {
      x = z->rb_right;
      x_parent = z->rb_parent;
      Transplant(z, z->rb_right);
    } else if (z->rb_right == nullptr) {
      x = z->rb_left;
      x_parent = z->rb_parent;
      Transplant(z, z->rb_left);
    } else {
      y = Minimum(z->rb_right);
      y_was_red = y->rb_red;
      x = y->rb_right;
      if (y->rb_parent == z) {
        x_parent = y;
      } else {
        x_parent = y->rb_parent;
        Transplant(y, y->rb_right);
        y->rb_right = z->rb_right;
        y->rb_right->rb_parent = y;
      }
      Transplant(z, y);
      y->rb_left = z->rb_left;
      y->rb_left->rb_parent = y;
      y->rb_red = z->rb_red;
    }
    for (NodeT* p = x_parent; p != nullptr; p = p->rb_parent) {
      Traits::Update(p);
    }
    if (!y_was_red) {
      EraseFixup(x, x_parent);
    }
    --size_;
    z->rb_parent = z->rb_left = z->rb_right = nullptr;
  }

  NodeT* First() const {
    if (root_ == nullptr) {
      return nullptr;
    }
    return Minimum(root_);
  }

  NodeT* Last() const {
    NodeT* n = root_;
    if (n == nullptr) {
      return nullptr;
    }
    while (n->rb_right != nullptr) {
      n = n->rb_right;
    }
    return n;
  }

  // In-order successor / predecessor.
  static NodeT* Next(NodeT* n) {
    if (n->rb_right != nullptr) {
      return Minimum(n->rb_right);
    }
    NodeT* p = n->rb_parent;
    while (p != nullptr && n == p->rb_right) {
      n = p;
      p = p->rb_parent;
    }
    return p;
  }

  static NodeT* Prev(NodeT* n) {
    if (n->rb_left != nullptr) {
      NodeT* m = n->rb_left;
      while (m->rb_right != nullptr) {
        m = m->rb_right;
      }
      return m;
    }
    NodeT* p = n->rb_parent;
    while (p != nullptr && n == p->rb_left) {
      n = p;
      p = p->rb_parent;
    }
    return p;
  }

  // --- Validation (tests) ---

  // Checks the red-black invariants: root black, no red node with a red child, equal
  // black height on every path, correct parent links, BST order.
  bool ValidateStructure() const {
    if (root_ == nullptr) {
      return size_ == 0;
    }
    if (root_->rb_red || root_->rb_parent != nullptr) {
      return false;
    }
    std::size_t count = 0;
    return ValidateSubtree(root_, &count) >= 0 && count == size_;
  }

 private:
  static NodeT* Minimum(NodeT* n) {
    while (n->rb_left != nullptr) {
      n = n->rb_left;
    }
    return n;
  }

  static bool IsRed(const NodeT* n) { return n != nullptr && n->rb_red; }

  void Transplant(NodeT* u, NodeT* v) {
    if (u->rb_parent == nullptr) {
      root_ = v;
    } else if (u == u->rb_parent->rb_left) {
      u->rb_parent->rb_left = v;
    } else {
      u->rb_parent->rb_right = v;
    }
    if (v != nullptr) {
      v->rb_parent = u->rb_parent;
    }
  }

  void RotateLeft(NodeT* x) {
    NodeT* y = x->rb_right;
    x->rb_right = y->rb_left;
    if (y->rb_left != nullptr) {
      y->rb_left->rb_parent = x;
    }
    y->rb_parent = x->rb_parent;
    if (x->rb_parent == nullptr) {
      root_ = y;
    } else if (x == x->rb_parent->rb_left) {
      x->rb_parent->rb_left = y;
    } else {
      x->rb_parent->rb_right = y;
    }
    y->rb_left = x;
    x->rb_parent = y;
    Traits::Update(x);
    Traits::Update(y);
  }

  void RotateRight(NodeT* x) {
    NodeT* y = x->rb_left;
    x->rb_left = y->rb_right;
    if (y->rb_right != nullptr) {
      y->rb_right->rb_parent = x;
    }
    y->rb_parent = x->rb_parent;
    if (x->rb_parent == nullptr) {
      root_ = y;
    } else if (x == x->rb_parent->rb_right) {
      x->rb_parent->rb_right = y;
    } else {
      x->rb_parent->rb_left = y;
    }
    y->rb_right = x;
    x->rb_parent = y;
    Traits::Update(x);
    Traits::Update(y);
  }

  void InsertFixup(NodeT* z) {
    while (IsRed(z->rb_parent)) {
      NodeT* parent = z->rb_parent;
      NodeT* grand = parent->rb_parent;  // exists: a red parent is never the root
      if (parent == grand->rb_left) {
        NodeT* uncle = grand->rb_right;
        if (IsRed(uncle)) {
          parent->rb_red = false;
          uncle->rb_red = false;
          grand->rb_red = true;
          z = grand;
        } else {
          if (z == parent->rb_right) {
            z = parent;
            RotateLeft(z);
            parent = z->rb_parent;
          }
          parent->rb_red = false;
          grand->rb_red = true;
          RotateRight(grand);
        }
      } else {
        NodeT* uncle = grand->rb_left;
        if (IsRed(uncle)) {
          parent->rb_red = false;
          uncle->rb_red = false;
          grand->rb_red = true;
          z = grand;
        } else {
          if (z == parent->rb_left) {
            z = parent;
            RotateRight(z);
            parent = z->rb_parent;
          }
          parent->rb_red = false;
          grand->rb_red = true;
          RotateLeft(grand);
        }
      }
    }
    root_->rb_red = false;
  }

  void EraseFixup(NodeT* x, NodeT* x_parent) {
    while (x != root_ && !IsRed(x)) {
      if (x == x_parent->rb_left) {
        NodeT* w = x_parent->rb_right;  // sibling; exists since x is doubly-black
        if (IsRed(w)) {
          w->rb_red = false;
          x_parent->rb_red = true;
          RotateLeft(x_parent);
          w = x_parent->rb_right;
        }
        if (!IsRed(w->rb_left) && !IsRed(w->rb_right)) {
          w->rb_red = true;
          x = x_parent;
          x_parent = x->rb_parent;
        } else {
          if (!IsRed(w->rb_right)) {
            w->rb_left->rb_red = false;
            w->rb_red = true;
            RotateRight(w);
            w = x_parent->rb_right;
          }
          w->rb_red = x_parent->rb_red;
          x_parent->rb_red = false;
          if (w->rb_right != nullptr) {
            w->rb_right->rb_red = false;
          }
          RotateLeft(x_parent);
          x = root_;
          x_parent = nullptr;
        }
      } else {
        NodeT* w = x_parent->rb_left;
        if (IsRed(w)) {
          w->rb_red = false;
          x_parent->rb_red = true;
          RotateRight(x_parent);
          w = x_parent->rb_left;
        }
        if (!IsRed(w->rb_right) && !IsRed(w->rb_left)) {
          w->rb_red = true;
          x = x_parent;
          x_parent = x->rb_parent;
        } else {
          if (!IsRed(w->rb_left)) {
            w->rb_right->rb_red = false;
            w->rb_red = true;
            RotateLeft(w);
            w = x_parent->rb_left;
          }
          w->rb_red = x_parent->rb_red;
          x_parent->rb_red = false;
          if (w->rb_left != nullptr) {
            w->rb_left->rb_red = false;
          }
          RotateRight(x_parent);
          x = root_;
          x_parent = nullptr;
        }
      }
    }
    if (x != nullptr) {
      x->rb_red = false;
    }
  }

  // Returns black height of the subtree, or -1 on violation. Also verifies parent
  // pointers and BST ordering via Less.
  int ValidateSubtree(const NodeT* n, std::size_t* count) const {
    if (n == nullptr) {
      return 1;
    }
    ++*count;
    const NodeT* l = n->rb_left;
    const NodeT* r = n->rb_right;
    if (l != nullptr && (l->rb_parent != n || Traits::Less(*n, *l))) {
      return -1;
    }
    if (r != nullptr && (r->rb_parent != n || Traits::Less(*r, *n))) {
      return -1;
    }
    if (n->rb_red && (IsRed(l) || IsRed(r))) {
      return -1;
    }
    const int lh = ValidateSubtree(l, count);
    const int rh = ValidateSubtree(r, count);
    if (lh < 0 || rh < 0 || lh != rh) {
      return -1;
    }
    return lh + (n->rb_red ? 0 : 1);
  }

  NodeT* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace srl

#endif  // SRL_RBTREE_RB_TREE_H_
