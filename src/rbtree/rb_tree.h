// Intrusive red-black tree with augmentation hooks, in the style of the Linux kernel's
// lib/rbtree.c (which backs both mm_rb and the kernel range-lock's range tree).
//
// The tree does not own its nodes. NodeT must embed the linkage fields
//   NodeT* rb_parent; NodeT* rb_left; NodeT* rb_right; bool rb_red;
// and Traits must provide
//   static bool Less(const NodeT& a, const NodeT& b);   // strict weak order
//   static void Update(NodeT* n);                       // recompute augmented data from
//                                                       // children (no-op if unused)
// Equal keys are allowed (inserted to the right of existing equals, preserving
// insertion order among equals in the in-order walk).
//
// Implementation follows CLRS chapter 13 with explicit parent pointers and a
// null-tolerant delete fixup; Update() is invoked on every node whose subtree content
// changes (rotations, transplant paths), which is exactly the discipline the kernel's
// augmented rbtree documents.
#ifndef SRL_RBTREE_RB_TREE_H_
#define SRL_RBTREE_RB_TREE_H_

#include <atomic>
#include <cstddef>

namespace srl {

// Default no-op augmentation.
template <typename NodeT>
struct RbNoAugment {
  static void Update(NodeT*) {}
};

// Drop-in atomic link field for nodes of trees that are *walked optimistically* while a
// serialized writer rotates them (mm_rb under range-scoped structural ops). Behaves like
// a plain NodeT* in the tree code (assignment, conversion, ->); every access is a
// tear-free atomic, so a concurrent walk reads garbage-consistent pointers rather than
// racing — a seqlock around mutations (see VmaIndex) tells the walker whether it
// overlapped one and must retry. Nodes with plain pointer links pay nothing; nodes that
// opt in declare their rb_parent/rb_left/rb_right as RbAtomicLink<NodeT>.
template <typename NodeT>
class RbAtomicLink {
 public:
  RbAtomicLink() = default;
  RbAtomicLink(NodeT* p) : p_(p) {}
  RbAtomicLink(const RbAtomicLink&) = delete;

  RbAtomicLink& operator=(NodeT* p) {
    p_.store(p, std::memory_order_release);
    return *this;
  }
  // Link-to-link assignment (tree surgery like `x->rb_left = y->rb_right`): a single
  // load then a single store — writers are serialized, so this never races a writer.
  RbAtomicLink& operator=(const RbAtomicLink& other) {
    p_.store(other.p_.load(std::memory_order_acquire), std::memory_order_release);
    return *this;
  }
  operator NodeT*() const { return p_.load(std::memory_order_acquire); }
  NodeT* operator->() const { return p_.load(std::memory_order_acquire); }

 private:
  std::atomic<NodeT*> p_{nullptr};
};

template <typename NodeT, typename Traits>
class RbTree {
 public:
  RbTree() = default;
  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  bool Empty() const { return GetRoot() == nullptr; }
  std::size_t Size() const { return size_; }
  NodeT* Root() const { return GetRoot(); }

  // Links `n` into the tree. `n` must not currently be in any tree.
  void Insert(NodeT* n) {
    n->rb_left = nullptr;
    n->rb_right = nullptr;
    NodeT* parent = nullptr;
    bool went_left = false;
    for (NodeT* cur = GetRoot(); cur != nullptr;) {
      parent = cur;
      went_left = Traits::Less(*n, *cur);
      cur = went_left ? static_cast<NodeT*>(cur->rb_left)
                      : static_cast<NodeT*>(cur->rb_right);
    }
    n->rb_parent = parent;
    n->rb_red = true;
    if (parent == nullptr) {
      SetRoot(n);
    } else if (went_left) {
      parent->rb_left = n;
    } else {
      parent->rb_right = n;
    }
    for (NodeT* p = n; p != nullptr; p = p->rb_parent) {
      Traits::Update(p);
    }
    InsertFixup(n);
    ++size_;
  }

  // Unlinks `n` from the tree. `n` must be in this tree.
  void Erase(NodeT* z) {
    NodeT* y = z;
    NodeT* x = nullptr;       // child that replaces the removed/moved node (may be null)
    NodeT* x_parent = nullptr;  // its parent after the splice
    bool y_was_red = y->rb_red;

    if (z->rb_left == nullptr) {
      x = z->rb_right;
      x_parent = z->rb_parent;
      Transplant(z, z->rb_right);
    } else if (z->rb_right == nullptr) {
      x = z->rb_left;
      x_parent = z->rb_parent;
      Transplant(z, z->rb_left);
    } else {
      y = Minimum(z->rb_right);
      y_was_red = y->rb_red;
      x = y->rb_right;
      if (y->rb_parent == z) {
        x_parent = y;
      } else {
        x_parent = y->rb_parent;
        Transplant(y, y->rb_right);
        y->rb_right = z->rb_right;
        y->rb_right->rb_parent = y;
      }
      Transplant(z, y);
      y->rb_left = z->rb_left;
      y->rb_left->rb_parent = y;
      y->rb_red = z->rb_red;
    }
    for (NodeT* p = x_parent; p != nullptr; p = p->rb_parent) {
      Traits::Update(p);
    }
    if (!y_was_red) {
      EraseFixup(x, x_parent);
    }
    --size_;
    z->rb_parent = z->rb_left = z->rb_right = nullptr;
  }

  NodeT* First() const {
    NodeT* r = GetRoot();
    if (r == nullptr) {
      return nullptr;
    }
    return Minimum(r);
  }

  NodeT* Last() const {
    NodeT* n = GetRoot();
    if (n == nullptr) {
      return nullptr;
    }
    while (n->rb_right != nullptr) {
      n = n->rb_right;
    }
    return n;
  }

  // In-order successor / predecessor.
  static NodeT* Next(NodeT* n) {
    if (n->rb_right != nullptr) {
      return Minimum(n->rb_right);
    }
    NodeT* p = n->rb_parent;
    while (p != nullptr && n == p->rb_right) {
      n = p;
      p = p->rb_parent;
    }
    return p;
  }

  static NodeT* Prev(NodeT* n) {
    if (n->rb_left != nullptr) {
      NodeT* m = n->rb_left;
      while (m->rb_right != nullptr) {
        m = m->rb_right;
      }
      return m;
    }
    NodeT* p = n->rb_parent;
    while (p != nullptr && n == p->rb_left) {
      n = p;
      p = p->rb_parent;
    }
    return p;
  }

  // --- Validation (tests) ---

  // Checks the red-black invariants: root black, no red node with a red child, equal
  // black height on every path, correct parent links, BST order.
  bool ValidateStructure() const {
    NodeT* r = GetRoot();
    if (r == nullptr) {
      return size_ == 0;
    }
    if (r->rb_red || r->rb_parent != nullptr) {
      return false;
    }
    std::size_t count = 0;
    return ValidateSubtree(r, &count) >= 0 && count == size_;
  }

 private:
  // The root is accessed through acquire/release so optimistic walkers starting at
  // Root() see a coherent pointer while a serialized writer rebalances.
  NodeT* GetRoot() const { return root_.load(std::memory_order_acquire); }
  void SetRoot(NodeT* n) { root_.store(n, std::memory_order_release); }

  static NodeT* Minimum(NodeT* n) {
    while (n->rb_left != nullptr) {
      n = n->rb_left;
    }
    return n;
  }

  static bool IsRed(const NodeT* n) { return n != nullptr && n->rb_red; }

  void Transplant(NodeT* u, NodeT* v) {
    if (u->rb_parent == nullptr) {
      SetRoot(v);
    } else if (u == u->rb_parent->rb_left) {
      u->rb_parent->rb_left = v;
    } else {
      u->rb_parent->rb_right = v;
    }
    if (v != nullptr) {
      v->rb_parent = u->rb_parent;
    }
  }

  void RotateLeft(NodeT* x) {
    NodeT* y = x->rb_right;
    x->rb_right = y->rb_left;
    if (y->rb_left != nullptr) {
      y->rb_left->rb_parent = x;
    }
    y->rb_parent = x->rb_parent;
    if (x->rb_parent == nullptr) {
      SetRoot(y);
    } else if (x == x->rb_parent->rb_left) {
      x->rb_parent->rb_left = y;
    } else {
      x->rb_parent->rb_right = y;
    }
    y->rb_left = x;
    x->rb_parent = y;
    Traits::Update(x);
    Traits::Update(y);
  }

  void RotateRight(NodeT* x) {
    NodeT* y = x->rb_left;
    x->rb_left = y->rb_right;
    if (y->rb_right != nullptr) {
      y->rb_right->rb_parent = x;
    }
    y->rb_parent = x->rb_parent;
    if (x->rb_parent == nullptr) {
      SetRoot(y);
    } else if (x == x->rb_parent->rb_right) {
      x->rb_parent->rb_right = y;
    } else {
      x->rb_parent->rb_left = y;
    }
    y->rb_right = x;
    x->rb_parent = y;
    Traits::Update(x);
    Traits::Update(y);
  }

  void InsertFixup(NodeT* z) {
    while (IsRed(z->rb_parent)) {
      NodeT* parent = z->rb_parent;
      NodeT* grand = parent->rb_parent;  // exists: a red parent is never the root
      if (parent == grand->rb_left) {
        NodeT* uncle = grand->rb_right;
        if (IsRed(uncle)) {
          parent->rb_red = false;
          uncle->rb_red = false;
          grand->rb_red = true;
          z = grand;
        } else {
          if (z == parent->rb_right) {
            z = parent;
            RotateLeft(z);
            parent = z->rb_parent;
          }
          parent->rb_red = false;
          grand->rb_red = true;
          RotateRight(grand);
        }
      } else {
        NodeT* uncle = grand->rb_left;
        if (IsRed(uncle)) {
          parent->rb_red = false;
          uncle->rb_red = false;
          grand->rb_red = true;
          z = grand;
        } else {
          if (z == parent->rb_left) {
            z = parent;
            RotateRight(z);
            parent = z->rb_parent;
          }
          parent->rb_red = false;
          grand->rb_red = true;
          RotateLeft(grand);
        }
      }
    }
    GetRoot()->rb_red = false;
  }

  void EraseFixup(NodeT* x, NodeT* x_parent) {
    while (x != GetRoot() && !IsRed(x)) {
      if (x == x_parent->rb_left) {
        NodeT* w = x_parent->rb_right;  // sibling; exists since x is doubly-black
        if (IsRed(w)) {
          w->rb_red = false;
          x_parent->rb_red = true;
          RotateLeft(x_parent);
          w = x_parent->rb_right;
        }
        if (!IsRed(w->rb_left) && !IsRed(w->rb_right)) {
          w->rb_red = true;
          x = x_parent;
          x_parent = x->rb_parent;
        } else {
          if (!IsRed(w->rb_right)) {
            w->rb_left->rb_red = false;
            w->rb_red = true;
            RotateRight(w);
            w = x_parent->rb_right;
          }
          w->rb_red = x_parent->rb_red;
          x_parent->rb_red = false;
          if (w->rb_right != nullptr) {
            w->rb_right->rb_red = false;
          }
          RotateLeft(x_parent);
          x = GetRoot();
          x_parent = nullptr;
        }
      } else {
        NodeT* w = x_parent->rb_left;
        if (IsRed(w)) {
          w->rb_red = false;
          x_parent->rb_red = true;
          RotateRight(x_parent);
          w = x_parent->rb_left;
        }
        if (!IsRed(w->rb_right) && !IsRed(w->rb_left)) {
          w->rb_red = true;
          x = x_parent;
          x_parent = x->rb_parent;
        } else {
          if (!IsRed(w->rb_left)) {
            w->rb_right->rb_red = false;
            w->rb_red = true;
            RotateLeft(w);
            w = x_parent->rb_left;
          }
          w->rb_red = x_parent->rb_red;
          x_parent->rb_red = false;
          if (w->rb_left != nullptr) {
            w->rb_left->rb_red = false;
          }
          RotateRight(x_parent);
          x = GetRoot();
          x_parent = nullptr;
        }
      }
    }
    if (x != nullptr) {
      x->rb_red = false;
    }
  }

  // Returns black height of the subtree, or -1 on violation. Also verifies parent
  // pointers and BST ordering via Less.
  int ValidateSubtree(const NodeT* n, std::size_t* count) const {
    if (n == nullptr) {
      return 1;
    }
    ++*count;
    const NodeT* l = n->rb_left;
    const NodeT* r = n->rb_right;
    if (l != nullptr && (l->rb_parent != n || Traits::Less(*n, *l))) {
      return -1;
    }
    if (r != nullptr && (r->rb_parent != n || Traits::Less(*r, *n))) {
      return -1;
    }
    if (n->rb_red && (IsRed(l) || IsRed(r))) {
      return -1;
    }
    const int lh = ValidateSubtree(l, count);
    const int rh = ValidateSubtree(r, count);
    if (lh < 0 || rh < 0 || lh != rh) {
      return -1;
    }
    return lh + (n->rb_red ? 0 : 1);
  }

  std::atomic<NodeT*> root_{nullptr};
  std::size_t size_ = 0;
};

}  // namespace srl

#endif  // SRL_RBTREE_RB_TREE_H_
