// Interval tree: a red-black tree of half-open ranges augmented with the maximum end
// point of each subtree, as used by the kernel range lock's "range tree" ([22], [4]).
//
// NodeT must embed the rb linkage fields (see rb_tree.h) plus
//   uint64_t start, end;    // the half-open interval [start, end)
//   uint64_t max_end;       // maintained by the tree
#ifndef SRL_RBTREE_INTERVAL_TREE_H_
#define SRL_RBTREE_INTERVAL_TREE_H_

#include <algorithm>
#include <cstdint>

#include "src/rbtree/rb_tree.h"

namespace srl {

template <typename NodeT>
struct IntervalTraits {
  static bool Less(const NodeT& a, const NodeT& b) { return a.start < b.start; }
  static void Update(NodeT* n) {
    uint64_t m = n->end;
    if (n->rb_left != nullptr) {
      m = std::max(m, n->rb_left->max_end);
    }
    if (n->rb_right != nullptr) {
      m = std::max(m, n->rb_right->max_end);
    }
    n->max_end = m;
  }
};

template <typename NodeT>
class IntervalTree {
 public:
  bool Empty() const { return tree_.Empty(); }
  std::size_t Size() const { return tree_.Size(); }

  void Insert(NodeT* n) { tree_.Insert(n); }
  void Erase(NodeT* n) { tree_.Erase(n); }

  // Invokes fn(NodeT*) for every stored interval overlapping [start, end), in order of
  // interval start. Subtrees whose max_end is <= start cannot contain an overlap and are
  // pruned — the property that makes the kernel lock's blocking-count computation
  // O(log n + hits).
  template <typename Fn>
  void ForEachOverlap(uint64_t start, uint64_t end, Fn&& fn) const {
    Visit(tree_.Root(), start, end, fn);
  }

  // Number of stored intervals overlapping [start, end).
  std::size_t CountOverlaps(uint64_t start, uint64_t end) const {
    std::size_t n = 0;
    ForEachOverlap(start, end, [&n](NodeT*) { ++n; });
    return n;
  }

  NodeT* First() const { return tree_.First(); }
  static NodeT* Next(NodeT* n) { return RbTree<NodeT, IntervalTraits<NodeT>>::Next(n); }

  // --- Validation (tests) ---

  bool ValidateStructure() const {
    return tree_.ValidateStructure() && ValidateMaxEnd(tree_.Root());
  }

 private:
  template <typename Fn>
  static void Visit(NodeT* n, uint64_t start, uint64_t end, Fn&& fn) {
    if (n == nullptr || n->max_end <= start) {
      return;  // nothing in this subtree ends after `start` — no overlap possible
    }
    Visit(n->rb_left, start, end, fn);
    if (n->start < end && start < n->end) {
      fn(n);
    }
    if (n->start < end) {
      // Right subtree starts at >= n->start; only worth visiting if n->start < end.
      Visit(n->rb_right, start, end, fn);
    }
  }

  static bool ValidateMaxEnd(const NodeT* n) {
    if (n == nullptr) {
      return true;
    }
    uint64_t expect = n->end;
    if (n->rb_left != nullptr) {
      expect = std::max(expect, n->rb_left->max_end);
    }
    if (n->rb_right != nullptr) {
      expect = std::max(expect, n->rb_right->max_end);
    }
    return n->max_end == expect && ValidateMaxEnd(n->rb_left) && ValidateMaxEnd(n->rb_right);
  }

  RbTree<NodeT, IntervalTraits<NodeT>> tree_;
};

}  // namespace srl

#endif  // SRL_RBTREE_INTERVAL_TREE_H_
