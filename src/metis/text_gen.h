// Synthetic text generation for the Metis-like workloads.
//
// wrmem "allocates a chunk of memory and fills it with random 'words'" (§7.2); wc and
// wr read an input file. We generate deterministic pseudo-natural text: a fixed-size
// vocabulary of random words sampled with a heavy-tailed (square-law) distribution, so
// word frequencies are skewed the way natural text is and hash tables see realistic
// hit/miss mixes.
#ifndef SRL_METIS_TEXT_GEN_H_
#define SRL_METIS_TEXT_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/harness/prng.h"

namespace srl::metis {

class TextGenerator {
 public:
  explicit TextGenerator(uint64_t seed, std::size_t vocabulary = 20000) : rng_(seed) {
    vocab_.reserve(vocabulary);
    for (std::size_t i = 0; i < vocabulary; ++i) {
      const std::size_t len = 3 + rng_.NextBelow(9);
      std::string w;
      w.reserve(len);
      for (std::size_t c = 0; c < len; ++c) {
        w.push_back(static_cast<char>('a' + rng_.NextBelow(26)));
      }
      vocab_.push_back(std::move(w));
    }
  }

  // Appends space-separated words until `out` holds at least `bytes` characters.
  void Fill(std::string* out, std::size_t bytes) {
    while (out->size() < bytes) {
      out->append(Word());
      out->push_back(' ');
    }
  }

  // One word, square-law skewed towards the low vocabulary indices.
  const std::string& Word() {
    const double r = rng_.NextDouble();
    const auto idx = static_cast<std::size_t>(r * r * static_cast<double>(vocab_.size()));
    return vocab_[idx >= vocab_.size() ? vocab_.size() - 1 : idx];
  }

 private:
  Xoshiro256 rng_;
  std::vector<std::string> vocab_;
};

}  // namespace srl::metis

#endif  // SRL_METIS_TEXT_GEN_H_
