#include "src/metis/arena_allocator.h"

#include <algorithm>

namespace srl::metis {

namespace {

uint64_t RoundUp(uint64_t v, uint64_t to) { return (v + to - 1) / to * to; }

}  // namespace

ArenaAllocator::ArenaAllocator(vm::AddressSpace& as, uint64_t arena_pages,
                               uint64_t grow_chunk_pages)
    : as_(as),
      grow_chunk_(grow_chunk_pages * kPageSize),
      size_(arena_pages * kPageSize),
      backing_(std::make_unique<uint8_t[]>(arena_pages * kPageSize)) {
  base_ = as_.Mmap(size_, vm::kProtNone);
  if (base_ == 0) {
    healthy_ = false;
  }
}

ArenaAllocator::~ArenaAllocator() {
  if (base_ != 0) {
    as_.Munmap(base_, size_);
  }
}

void* ArenaAllocator::Alloc(uint64_t bytes) {
  bytes = RoundUp(bytes == 0 ? 1 : bytes, 16);
  if (top_ + bytes > size_ - kPageSize) {
    return nullptr;  // keep at least one PROT_NONE tail page, as glibc arenas do
  }
  const uint64_t start = top_;
  top_ += bytes;
  if (top_ > committed_) {
    // Expand the committed prefix: a head-of-the-PROT_NONE-VMA mprotect, i.e. the
    // Figure 2 boundary move (structural only on the very first expansion).
    const uint64_t new_committed =
        std::min(size_ - kPageSize, RoundUp(top_, grow_chunk_));
    if (!as_.Mprotect(base_ + committed_, new_committed - committed_,
                      vm::kProtRead | vm::kProtWrite)) {
      healthy_ = false;
    }
    committed_ = new_committed;
  }
  // First touch of each newly used page raises a write fault.
  const uint64_t last_page = (top_ - 1) / kPageSize;
  while (next_untouched_ <= last_page) {
    if (!as_.PageFault(base_ + next_untouched_ * kPageSize, /*is_write=*/true)) {
      healthy_ = false;
    }
    ++next_untouched_;
  }
  return backing_.get() + start;
}

void ArenaAllocator::Reset() {
  top_ = 0;
  if (committed_ > grow_chunk_) {
    // Shrink: the committed VMA's tail rejoins the PROT_NONE VMA (tail-move).
    if (!as_.Mprotect(base_ + grow_chunk_, committed_ - grow_chunk_, vm::kProtNone)) {
      healthy_ = false;
    }
    if (!as_.MadviseDontNeed(base_ + grow_chunk_, committed_ - grow_chunk_)) {
      healthy_ = false;
    }
    committed_ = grow_chunk_;
    // Pages of the kept chunk stay resident; everything above was dropped and will
    // fault again on reuse.
    next_untouched_ = grow_chunk_ / kPageSize;
  }
  // Without a trim, previously touched pages all stay resident: keep the watermark.
}

}  // namespace srl::metis
