#include "src/metis/metis_job.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/metis/arena_allocator.h"
#include "src/metis/text_gen.h"
#include "src/metis/word_table.h"

namespace srl::metis {

namespace {

constexpr uint64_t kPage = vm::AddressSpace::kPageSize;

// Shared reduce table: workers fold their per-round tables in under one mutex, like
// Metis's final merge.
struct ReduceTable {
  std::mutex mu;
  std::unordered_map<uint64_t, uint64_t> counts;  // word hash -> total count
  uint64_t checksum = 0;
};

// Parses whitespace-separated words from [data, data+len), feeding each into the
// worker's table. `base_pos` gives global word positions for the inverted index.
// Returns the number of words parsed, or UINT64_MAX on arena exhaustion.
uint64_t ParseChunk(const char* data, std::size_t len, WordTable* table,
                    uint64_t base_pos) {
  uint64_t words = 0;
  std::size_t i = 0;
  while (i < len) {
    while (i < len && data[i] == ' ') {
      ++i;
    }
    const std::size_t start = i;
    while (i < len && data[i] != ' ') {
      ++i;
    }
    if (i > start) {
      if (!table->Add(data + start, static_cast<uint32_t>(i - start),
                      base_pos + words)) {
        return UINT64_MAX;
      }
      ++words;
    }
  }
  return words;
}

void FoldInto(ReduceTable* reduce, const WordTable& table) {
  std::lock_guard<std::mutex> g(reduce->mu);
  table.ForEach([&](const WordTable::Entry& e) {
    reduce->counts[e.hash] += e.count;
    // Order-independent digest over (hash, count) pairs.
    reduce->checksum += e.hash * 0x9e3779b97f4a7c15ull + e.count;
  });
}

}  // namespace

const char* MetisAppName(MetisApp app) {
  switch (app) {
    case MetisApp::kWc:
      return "wc";
    case MetisApp::kWr:
      return "wr";
    case MetisApp::kWrmem:
      return "wrmem";
  }
  return "?";
}

MetisResult RunMetis(vm::AddressSpace& as, const MetisConfig& cfg) {
  MetisResult result;

  // For wc/wr: one shared input "file", mmapped read-only into the address space with
  // real bytes alongside. Workers read disjoint (worker, round) slices and raise a read
  // fault per freshly touched page, as first-touch of a file mapping does.
  std::string input;
  uint64_t input_vaddr = 0;
  const uint64_t slice = cfg.chunk_bytes;
  if (cfg.app != MetisApp::kWrmem) {
    TextGenerator gen(cfg.seed);
    gen.Fill(&input, slice * static_cast<uint64_t>(cfg.threads) * cfg.rounds);
    input_vaddr = as.Mmap(input.size(), vm::kProtRead);
    if (input_vaddr == 0) {
      return result;
    }
  }

  ReduceTable reduce;
  std::atomic<uint64_t> total_words{0};
  std::atomic<bool> ok{true};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (int w = 0; w < cfg.threads; ++w) {
    workers.emplace_back([&, w] {
      ArenaAllocator arena(as, cfg.arena_pages, cfg.grow_chunk_pages);
      TextGenerator local_gen(cfg.seed * 7919 + w);
      std::string scratch;  // wrmem generation buffer (content source)
      uint64_t faulted_up_to = 0;  // input pages this worker has touched (wc/wr)

      for (int round = 0; round < cfg.rounds && ok.load(std::memory_order_relaxed);
           ++round) {
        WordTable table(arena, cfg.app != MetisApp::kWc);
        const char* data = nullptr;
        std::size_t len = 0;

        if (cfg.app == MetisApp::kWrmem) {
          // Generate this round's text into the arena (write faults as pages are
          // touched for the first time since the last trim).
          scratch.clear();
          local_gen.Fill(&scratch, slice);
          char* buf = static_cast<char*>(arena.Alloc(scratch.size()));
          if (buf == nullptr) {
            ok.store(false);
            return;
          }
          std::memcpy(buf, scratch.data(), scratch.size());
          data = buf;
          len = scratch.size();
        } else {
          // This worker's slice of the shared input for this round.
          const uint64_t offset =
              (static_cast<uint64_t>(round) * cfg.threads + w) * slice;
          len = static_cast<std::size_t>(
              std::min<uint64_t>(slice, input.size() - offset));
          data = input.data() + offset;
          // First-touch read faults over the slice's pages.
          const uint64_t first_page = (input_vaddr + offset) / kPage;
          const uint64_t last_page = (input_vaddr + offset + len - 1) / kPage;
          for (uint64_t p = std::max(first_page, faulted_up_to); p <= last_page; ++p) {
            if (!as.PageFault(p * kPage, /*is_write=*/false)) {
              ok.store(false);
              return;
            }
          }
          faulted_up_to = last_page + 1;
        }

        const uint64_t words =
            ParseChunk(data, len, &table,
                       static_cast<uint64_t>(round) * cfg.threads * slice);
        if (words == UINT64_MAX) {
          ok.store(false);
          return;
        }
        total_words.fetch_add(words, std::memory_order_relaxed);
        FoldInto(&reduce, table);
        // End of round: the worker's allocations die together; glibc trims the arena.
        arena.Reset();
      }
      if (!arena.Healthy()) {
        ok.store(false);
      }
    });
  }
  for (auto& th : workers) {
    th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  if (input_vaddr != 0) {
    as.Munmap(input_vaddr, input.size());
  }

  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.total_words = total_words.load();
  result.distinct_words = reduce.counts.size();
  result.checksum = reduce.checksum;
  result.ok = ok.load();
  return result;
}

}  // namespace srl::metis
