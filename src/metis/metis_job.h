// Metis-like MapReduce workloads (§7.2) over the simulated VM subsystem.
//
// The paper evaluates the kernel variants with three benchmarks from the Metis
// MapReduce suite [27] that use mprotect extensively through the GLIBC allocator:
//   wc     word count over an input file
//   wr     inverted-index (word -> positions) over an input file
//   wrmem  wr over a worker-generated in-memory buffer instead of a file
//
// This module reproduces their structure: worker threads run map rounds that parse
// words into arena-backed hash tables (arena growth -> boundary-move mprotects; first
// touches -> write faults; input scanning -> read faults), trim their arena between
// rounds (shrink mprotect + MADV_DONTNEED), and fold results into a shared reduce table
// at the end. The VM-operation mix per useful work is the experiment's knob; everything
// else is ordinary compute.
#ifndef SRL_METIS_METIS_JOB_H_
#define SRL_METIS_METIS_JOB_H_

#include <cstdint>

#include "src/vm/address_space.h"

namespace srl::metis {

enum class MetisApp { kWc, kWr, kWrmem };

const char* MetisAppName(MetisApp app);

struct MetisConfig {
  MetisApp app = MetisApp::kWc;
  int threads = 4;
  // Input text per worker per round, bytes. Total work = threads * rounds * chunk.
  uint64_t chunk_bytes = 256 * 1024;
  int rounds = 8;
  uint64_t seed = 1;
  // Arena geometry (pages). Growth chunk controls the mprotect rate.
  uint64_t arena_pages = 4096;       // 16 MiB virtual arena per worker
  uint64_t grow_chunk_pages = 4;     // 16 KiB growth granularity
};

struct MetisResult {
  double seconds = 0;          // wall-clock for the whole job (map + reduce)
  uint64_t total_words = 0;    // words processed (sanity/throughput metric)
  uint64_t distinct_words = 0; // reduce-phase distinct count
  uint64_t checksum = 0;       // order-independent digest for cross-variant validation
  bool ok = false;             // no VM-operation failures observed
};

// Runs the job against `as`. The address space must be fresh or at least not contain
// mappings that collide with the workers' arenas (workers mmap their own).
MetisResult RunMetis(vm::AddressSpace& as, const MetisConfig& config);

}  // namespace srl::metis

#endif  // SRL_METIS_METIS_JOB_H_
