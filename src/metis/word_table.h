// Arena-backed open-addressing hash table used by the map phase of the Metis-like
// workloads. All storage — the bucket array, word copies, and posting chunks — comes
// from the worker's arena, so table growth produces exactly the allocation pattern
// (arena expansion mprotects plus first-touch faults) that stresses the VM subsystem.
#ifndef SRL_METIS_WORD_TABLE_H_
#define SRL_METIS_WORD_TABLE_H_

#include <cstdint>
#include <cstring>

#include "src/metis/arena_allocator.h"

namespace srl::metis {

// FNV-1a; cheap and adequate for word keys.
inline uint64_t HashBytes(const char* data, std::size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ static_cast<uint8_t>(data[i])) * 0x100000001b3ull;
  }
  return h;
}

class WordTable {
 public:
  struct PostingChunk {
    static constexpr int kCap = 8;
    uint64_t pos[kCap];
    uint32_t used = 0;
    PostingChunk* next = nullptr;
  };

  struct Entry {
    uint64_t hash = 0;
    const char* word = nullptr;  // arena copy; null slot marker
    uint32_t len = 0;
    uint32_t count = 0;
    PostingChunk* postings = nullptr;  // wr/wrmem only
  };

  // `track_positions` selects inverted-index mode (wr/wrmem): every occurrence is
  // recorded, which multiplies the allocation rate.
  WordTable(ArenaAllocator& arena, bool track_positions, uint32_t initial_capacity = 256)
      : arena_(arena), track_positions_(track_positions) {
    capacity_ = initial_capacity;
    slots_ = AllocSlots(capacity_);
  }

  // Returns false if the arena ran out of memory (caller resets and retries the phase).
  bool Add(const char* word, uint32_t len, uint64_t position) {
    if (slots_ == nullptr) {
      return false;
    }
    if ((size_ + 1) * 4 >= capacity_ * 3) {  // resize at 75% load
      if (!Grow()) {
        return false;
      }
    }
    const uint64_t h = HashBytes(word, len);
    Entry* e = Probe(slots_, capacity_, h, word, len);
    if (e->word == nullptr) {
      char* copy = static_cast<char*>(arena_.Alloc(len));
      if (copy == nullptr) {
        return false;
      }
      std::memcpy(copy, word, len);
      e->hash = h;
      e->word = copy;
      e->len = len;
      ++size_;
    }
    ++e->count;
    if (track_positions_) {
      PostingChunk* pc = e->postings;
      if (pc == nullptr || pc->used == PostingChunk::kCap) {
        auto* fresh = static_cast<PostingChunk*>(arena_.Alloc(sizeof(PostingChunk)));
        if (fresh == nullptr) {
          return false;
        }
        fresh->used = 0;
        fresh->next = pc;
        e->postings = fresh;
        pc = fresh;
      }
      pc->pos[pc->used++] = position;
    }
    return true;
  }

  uint64_t DistinctWords() const { return size_; }

  // Iterates live entries (for the reduce phase).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t i = 0; i < capacity_; ++i) {
      if (slots_[i].word != nullptr) {
        fn(slots_[i]);
      }
    }
  }

 private:
  Entry* AllocSlots(uint32_t n) {
    auto* slots = static_cast<Entry*>(arena_.Alloc(sizeof(Entry) * n));
    if (slots != nullptr) {
      std::memset(static_cast<void*>(slots), 0, sizeof(Entry) * n);
    }
    return slots;
  }

  static Entry* Probe(Entry* slots, uint32_t capacity, uint64_t h, const char* word,
                      uint32_t len) {
    uint32_t i = static_cast<uint32_t>(h) & (capacity - 1);
    for (;;) {
      Entry* e = &slots[i];
      if (e->word == nullptr ||
          (e->hash == h && e->len == len && std::memcmp(e->word, word, len) == 0)) {
        return e;
      }
      i = (i + 1) & (capacity - 1);
    }
  }

  bool Grow() {
    const uint32_t new_cap = capacity_ * 2;
    Entry* fresh = AllocSlots(new_cap);
    if (fresh == nullptr) {
      return false;
    }
    for (uint32_t i = 0; i < capacity_; ++i) {
      if (slots_[i].word != nullptr) {
        Entry* e = Probe(fresh, new_cap, slots_[i].hash, slots_[i].word, slots_[i].len);
        *e = slots_[i];
      }
    }
    // The old array is abandoned in the arena — freed wholesale at the phase reset,
    // like a bump allocator.
    slots_ = fresh;
    capacity_ = new_cap;
    return true;
  }

  ArenaAllocator& arena_;
  bool track_positions_;
  Entry* slots_ = nullptr;
  uint32_t capacity_ = 0;
  uint64_t size_ = 0;
};

}  // namespace srl::metis

#endif  // SRL_METIS_WORD_TABLE_H_
