// Simulation of a GLIBC per-thread malloc arena (§1, §5.2).
//
// glibc initializes an arena by mmapping a large PROT_NONE region and mprotecting the
// pages actually in use; allocation growth *expands* the committed (RW) prefix and trim
// *shrinks* it. Both are boundary moves between the committed VMA and the PROT_NONE
// remainder — exactly the metadata-only mprotect case the paper's speculative mechanism
// targets (Figure 2). First touches of newly committed pages raise write faults.
//
// This class reproduces the pattern against a simulated AddressSpace while providing
// real usable memory from a private backing buffer: callers allocate and use memory
// normally, and every VM-visible side effect (mprotect growth, page faults, trim +
// MADV_DONTNEED) is issued against the AddressSpace.
#ifndef SRL_METIS_ARENA_ALLOCATOR_H_
#define SRL_METIS_ARENA_ALLOCATOR_H_

#include <cstdint>
#include <memory>

#include "src/vm/address_space.h"

namespace srl::metis {

class ArenaAllocator {
 public:
  static constexpr uint64_t kPageSize = vm::AddressSpace::kPageSize;

  // Creates (mmaps) an arena of `arena_pages` pages, committed lazily in chunks of
  // `grow_chunk_pages` pages (the growth granularity controls the mprotect rate).
  ArenaAllocator(vm::AddressSpace& as, uint64_t arena_pages, uint64_t grow_chunk_pages);
  ~ArenaAllocator();

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  // Bump-allocates `bytes` (16-byte aligned) of real, usable memory. Returns nullptr
  // when the arena is exhausted (callers normally Reset() between phases). Issues
  // mprotect expansion and first-touch write faults against the address space.
  void* Alloc(uint64_t bytes);

  // Frees everything at once (the end-of-phase behaviour of the MapReduce workers):
  // shrinks the committed region back to one growth chunk via mprotect (a tail-move
  // boundary change) and drops the pages with MADV_DONTNEED so re-expansion faults
  // again, like glibc's trim.
  void Reset();

  // True if every VM operation the arena issued succeeded (protection faults or failed
  // mprotects indicate a broken lock protocol).
  bool Healthy() const { return healthy_; }

  uint64_t SimulatedBase() const { return base_; }
  uint64_t CommittedBytes() const { return committed_; }
  uint64_t UsedBytes() const { return top_; }
  uint64_t CapacityBytes() const { return size_; }

 private:
  vm::AddressSpace& as_;
  uint64_t grow_chunk_;  // bytes
  uint64_t base_ = 0;    // simulated address of the arena
  uint64_t size_ = 0;    // arena capacity in bytes
  uint64_t top_ = 0;     // bump offset
  uint64_t committed_ = 0;        // RW prefix length (page multiple)
  uint64_t next_untouched_ = 0;   // first page offset never written (for fault dedup)
  std::unique_ptr<uint8_t[]> backing_;  // real memory handed to callers
  bool healthy_ = true;
};

}  // namespace srl::metis

#endif  // SRL_METIS_ARENA_ALLOCATOR_H_
