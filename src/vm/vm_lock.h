// The pluggable lock guarding the simulated VM subsystem — the seam where the kernel
// experiments (§7.2) swap mmap_sem for range locks.
//
// Variants (names follow the paper):
//   stock         RwSemaphore; ranges ignored, whole-address-space semantics
//   tree          kernel tree-based range lock (Bueso's patch, ported)
//   list          the paper's reader-writer list-based range lock
//   list-lf       bucketed lock-free exclusive list lock (reads served as writes, the
//                 lustre-ex pattern; disjoint ranges hit disjoint bucket heads)
//   skiplist      skiplist-indexed exclusive range lock (reads served as writes);
//                 O(log n) acquire in the live-range count, the backend for
//                 address spaces holding thousands of ranges at once
//
// Instrumentation: attach a WaitStats sink to measure acquisition wait time (read vs
// write), reproducing the lock_stat measurements of Figure 7. TreeVmLock additionally
// exposes the internal spin-lock wait sink for Figure 8.
//
// Striped address spaces: range semantics are unchanged — a Range is a byte range, and
// the lock neither knows nor cares about stripe boundaries. What changes is the
// contract AddressSpace builds on top: a full-range write acquisition (LockFullWrite)
// excludes every scoped writer and locked reader in ANY stripe, and the cross-stripe
// fallback path pairs it with the affected stripes' index mutation locks taken in
// ascending order — together a coherent fence over all stripes the operation touches,
// while lock-free faults in untouched stripes proceed against their own seqcounts.
// FullWriteAcquisitions() therefore counts exactly the operations that failed to stay
// stripe-scoped; bench/abl_scoped_structural reports the split per variant.
#ifndef SRL_VM_VM_LOCK_H_
#define SRL_VM_VM_LOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/baselines/tree_range_lock.h"
#include "src/core/list_lockfree_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/core/range.h"
#include "src/core/skiplist_range_lock.h"
#include "src/harness/wait_stats.h"
#include "src/sync/admission.h"
#include "src/sync/rw_semaphore.h"

namespace srl::vm {

enum class VmLockKind {
  kStock,            // reader-writer semaphore (mmap_sem)
  kTree,             // tree-based range lock
  kList,             // list-based range lock
  kListLockFree,     // bucketed lock-free exclusive list lock
  kSkiplistIndexed,  // skiplist-indexed exclusive range lock
};

class VmLock {
 public:
  virtual ~VmLock() = default;

  // Non-virtual interface: measures waits when a sink is attached.
  void* LockRead(const Range& r) {
    if (stats_ == nullptr) {
      return DoLockRead(r);
    }
    const uint64_t t0 = WaitStats::NowNs();
    void* h = DoLockRead(r);
    stats_->RecordRead(WaitStats::NowNs() - t0);
    return h;
  }

  void* LockWrite(const Range& r) {
    CountWrite(r);
    // Full-space writes are the one acquisition class with no range parallelism at
    // all: every contender serializes on the same logical resource regardless of
    // backend, which is exactly the shape that collapses under oversubscription.
    // Gate them at ~#cores of active contenders; the surplus parks. The ticket spans
    // only the acquisition (it releases once DoLockWrite returns), not the user's
    // critical section — restricting *contention*, not *concurrency of holders*.
    AdmissionGate::Ticket ticket(r == Range::Full() ? &full_write_gate_ : nullptr);
    if (stats_ == nullptr) {
      return DoLockWrite(r);
    }
    const uint64_t t0 = WaitStats::NowNs();
    void* h = DoLockWrite(r);
    stats_->RecordWrite(WaitStats::NowNs() - t0);
    return h;
  }

  void* LockFullWrite() { return LockWrite(Range::Full()); }

  // Non-blocking acquisitions (mmap_read_trylock and friends). On success *out holds
  // the handle; on failure nothing is held and *out is untouched. A *successful* try is
  // recorded in the WaitStats sink like any other acquisition (its ~0ns sample keeps
  // Figure 7 a per-acquisition distribution now that the fault path is trylock-first);
  // a failed try records nothing — the blocking fallback that follows it measures the
  // actual wait.
  bool TryLockRead(const Range& r, void** out) {
    if (stats_ == nullptr) {
      return DoTryLockRead(r, out);
    }
    const uint64_t t0 = WaitStats::NowNs();
    if (!DoTryLockRead(r, out)) {
      return false;
    }
    stats_->RecordRead(WaitStats::NowNs() - t0);
    return true;
  }
  bool TryLockWrite(const Range& r, void** out) {
    if (stats_ == nullptr) {
      if (!DoTryLockWrite(r, out)) {
        return false;
      }
      CountWrite(r);
      return true;
    }
    const uint64_t t0 = WaitStats::NowNs();
    if (!DoTryLockWrite(r, out)) {
      return false;
    }
    CountWrite(r);
    stats_->RecordWrite(WaitStats::NowNs() - t0);
    return true;
  }

  void UnlockRead(void* h) { DoUnlockRead(h); }
  void UnlockWrite(void* h) { DoUnlockWrite(h); }

  virtual const char* Name() const = 0;

  // Attach/detach a wait-time sink. Set only while quiescent.
  void SetWaitStats(WaitStats* stats) { stats_ = stats; }

  // For Figure 8: the internal spin-lock sink (tree lock only; no-op otherwise).
  virtual void SetSpinWaitStats(WaitStats*) {}

  // Write-acquisition accounting: how many writes took the whole address space
  // (Range::Full()) versus a proper sub-range. The scoped structural variants live or
  // die by this ratio — bench/abl_scoped_structural reports it per variant.
  uint64_t FullWriteAcquisitions() const {
    return full_writes_.load(std::memory_order_relaxed);
  }
  uint64_t RangedWriteAcquisitions() const {
    return ranged_writes_.load(std::memory_order_relaxed);
  }

 protected:
  virtual void* DoLockRead(const Range& r) = 0;
  virtual void* DoLockWrite(const Range& r) = 0;
  virtual bool DoTryLockRead(const Range& r, void** out) = 0;
  virtual bool DoTryLockWrite(const Range& r, void** out) = 0;
  virtual void DoUnlockRead(void* h) = 0;
  virtual void DoUnlockWrite(void* h) = 0;

 private:
  void CountWrite(const Range& r) {
    if (r == Range::Full()) {
      full_writes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ranged_writes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  WaitStats* stats_ = nullptr;
  std::atomic<uint64_t> full_writes_{0};
  std::atomic<uint64_t> ranged_writes_{0};
  // Admission control for the full-address-space write path (see LockWrite).
  AdmissionGate full_write_gate_;
};

// Factory.
std::unique_ptr<VmLock> MakeVmLock(VmLockKind kind);

const char* VmLockKindName(VmLockKind kind);

}  // namespace srl::vm

#endif  // SRL_VM_VM_LOCK_H_
