// Virtual Memory Area records — the user-space analogue of the kernel's
// vm_area_struct (§5.1).
//
// A Vma describes one contiguous region [start, end) of the simulated address space
// with uniform protection. All Vmas of an AddressSpace live in an rb tree (mm_rb)
// keyed by start address.
//
// start / end / prot are relaxed atomics: the refined lock variants legally let readers
// (page faults, speculative lookups) observe a VMA whose boundary a metadata-only
// mprotect is concurrently moving — outside the locked range, either the old or the new
// boundary value yields a correct answer, but the reads must be tear-free.
//
// The rb linkage fields are RbAtomicLink: under the range-scoped variants the tree is
// rebalanced by writers that hold only a partial-range lock, so page faults walk mm_rb
// *optimistically* (seqcount-validated, see VmaIndex) while rotations are in flight.
// Atomic links keep those walks tear-free; the seqlock makes them consistent.
//
// Two members exist purely for the lock-free fault fast path (the per-VMA-lock analogue
// of the kernel's vm_lock_seq):
//
//   * meta_seq — a per-VMA seqlock bracketing every *metadata-only* mutation (the
//     speculative mprotect's whole-flips and boundary moves, which deliberately do NOT
//     bump VmaIndex's structural seqcount). A speculative fault snapshots it, reads
//     start/end/prot, and re-validates, so it can never act on a torn (bounds, prot)
//     combination or mistake a mid-boundary-move transient gap for a real one.
//   * detached — set when the VMA is unlinked from mm_rb (it stays dereferenceable
//     until its epoch grace period ends). A speculative fault re-checks it after the
//     page install: a fault that raced the unlinking munmap must undo and retry rather
//     than report success against a dead mapping.
#ifndef SRL_VM_VMA_H_
#define SRL_VM_VMA_H_

#include <atomic>
#include <cstdint>

#include "src/rbtree/rb_tree.h"
#include "src/sync/seq_counter.h"

namespace srl::vm {

// Protection bits (subset of the POSIX PROT_* space).
inline constexpr uint32_t kProtNone = 0;
inline constexpr uint32_t kProtRead = 1u << 0;
inline constexpr uint32_t kProtWrite = 1u << 1;
inline constexpr uint32_t kProtExec = 1u << 2;

struct Vma {
  RbAtomicLink<Vma> rb_parent;
  RbAtomicLink<Vma> rb_left;
  RbAtomicLink<Vma> rb_right;
  bool rb_red = false;  // only touched under structural exclusion; walks never read it

  std::atomic<uint64_t> start{0};
  std::atomic<uint64_t> end{0};
  std::atomic<uint32_t> prot{kProtNone};

  // Seqlock over (start, end, prot) for mutations that bypass the index seqcount
  // (metadata-only speculative mprotects). Writers are serialized by VmaIndex's tree
  // lock; see the header comment.
  SeqCounter meta_seq;
  // True once the VMA has been unlinked from mm_rb (set inside the unlinking seqlock
  // write section, before the structural seqcount goes even again).
  std::atomic<bool> detached{false};
  // Upper bound on the pages of [start, end) present in the page table. Every install
  // attributed to this VMA increments it; the only decrement is a losing speculative
  // fault exactly undoing its own install (RemoveExact success), so the bound can only
  // inflate — deferred sweeps and MADV_DONTNEED drop pages without decrementing, and a
  // split copies the parent's value to the new piece. AddressSpace uses hint == 0 to
  // skip enqueueing sweeps for VMAs that never faulted a page (sound because the bound
  // never under-counts), asserts hint >= CountRange(start, end) in CheckInvariants,
  // and resyncs it to the exact count there (post-drain, under the full write lock).
  std::atomic<uint64_t> present_hint{0};

  uint64_t Start() const { return start.load(std::memory_order_relaxed); }
  uint64_t End() const { return end.load(std::memory_order_relaxed); }
  uint32_t Prot() const { return prot.load(std::memory_order_relaxed); }
  bool Detached() const { return detached.load(std::memory_order_acquire); }
};

// mm_rb ordering: by start address. Boundary moves preserve relative order (they only
// shift a boundary between two adjacent VMAs), so in-place key updates are legal.
struct VmaTraits {
  static bool Less(const Vma& a, const Vma& b) { return a.Start() < b.Start(); }
  static void Update(Vma*) {}
};

// Plain-value snapshot for tests and debugging.
struct VmaInfo {
  uint64_t start;
  uint64_t end;
  uint32_t prot;

  friend bool operator==(const VmaInfo&, const VmaInfo&) = default;
};

}  // namespace srl::vm

#endif  // SRL_VM_VMA_H_
