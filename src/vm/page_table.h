// Sharded present-page set — the simulation's stand-in for hardware page tables.
//
// The kernel's page-fault path, once it has validated the faulting address against the
// VMA metadata (under mmap_sem / the range lock), installs a page-table entry under
// finer-grained page-table locks. We reproduce that shape: a sharded hash set with
// per-shard spin locks, accessed only after the VMA-level check passed.
//
// Striped address spaces add a second axis: when the owning AddressSpace is striped
// (ConfigureStripes), the 64 shards are partitioned into per-stripe *groups* — a
// page's stripe bits pick its group, a Fibonacci hash spreads pages within the group.
// The payoff is on munmap: a wide RemoveRange confined to one stripe sweeps only that
// stripe's group of shards instead of all 64, and — more importantly under load —
// never takes a shard lock a fault in another stripe could be holding. Unconfigured
// (stripe count 1), the layout degenerates to exactly the old single-hash scheme.
#ifndef SRL_VM_PAGE_TABLE_H_
#define SRL_VM_PAGE_TABLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/sync/cacheline.h"
#include "src/sync/spin_lock.h"

namespace srl::vm {

class PageTable {
 public:
  static constexpr std::size_t kShards = 64;

  // Binds the shard layout to the address-space striping. `stripe_page_shift` is the
  // stripe shift in page units (VmaIndex::kStripeShift - page shift) and `base_page`
  // the first stripe window's base in page units — the same origin VmaIndex::IndexOf
  // subtracts, without which every 64 GiB window (base is not span-aligned) would
  // straddle two shard groups and adjacent stripes would share shard locks. `stripes`
  // must be a power of two. Call once, before any page is installed. Never calling it
  // leaves one group of 64 shards — the unstriped layout.
  void ConfigureStripes(uint64_t stripe_page_shift, uint64_t base_page,
                        unsigned stripes) {
    stripe_page_shift_ = stripe_page_shift;
    base_page_ = base_page;
    groups_ = stripes < kShards ? stripes : static_cast<unsigned>(kShards);
    per_group_ = static_cast<unsigned>(kShards) / groups_;
    group_hash_shift_ = 64;
    for (unsigned p = per_group_; p > 1; p >>= 1) {
      --group_hash_shift_;
    }
  }

  // Installs the page; returns true if it was not already present (a "major" fault).
  // On install, *ticket receives a shard-unique install ticket (never 0) identifying
  // THIS installation of the page — a later RemoveExact with the same ticket removes
  // the page only if no one re-installed it in between. On a minor fault (page already
  // present) *ticket is set to 0.
  bool Install(uint64_t page_index, uint64_t* ticket = nullptr) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    const auto [it, inserted] = s.pages.try_emplace(page_index, s.next_ticket);
    if (inserted) {
      if (ticket != nullptr) {
        *ticket = s.next_ticket;
      }
      ++s.next_ticket;
      return true;
    }
    if (ticket != nullptr) {
      *ticket = 0;
    }
    return false;
  }

  bool Present(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.count(page_index) != 0;
  }

  // Drops one page; returns true if it was present. Blind removal: whatever install
  // currently backs the page is erased, including another thread's. Only the broken-
  // undo test hook still uses this on the fault path; see RemoveExact.
  bool Remove(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.erase(page_index) > 0;
  }

  // Drops the page only if it is still backed by the install that produced `ticket`.
  // The speculative fault path uses this to undo ITS OWN install after a failed
  // validation: with deferred sweeps, the page it installed may already have been
  // swept and re-installed by a racing (winning) fault — a blind Remove would erase
  // the winner's page and corrupt its VMA's present-page accounting.
  bool RemoveExact(uint64_t page_index, uint64_t ticket) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    const auto it = s.pages.find(page_index);
    if (it == s.pages.end() || it->second != ticket) {
      return false;
    }
    s.pages.erase(it);
    return true;
  }

  // Present pages in [first_page, last_page) — the fault-vs-unmap batteries assert this
  // drains to zero for every unmapped range. Not a consistent snapshot under concurrent
  // mutation (same caveat as AllPages).
  std::size_t CountRange(uint64_t first_page, uint64_t last_page) const {
    std::size_t n = 0;
    if (last_page - first_page <= 4096) {
      for (uint64_t p = first_page; p < last_page; ++p) {
        const Shard& s = ShardFor(p);
        std::lock_guard<SpinLock> g(s.lock);
        n += s.pages.count(p);
      }
      return n;
    }
    for (const std::size_t i : ShardsCovering(first_page, last_page)) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      for (const auto& [p, ticket] : shards_[i].value.pages) {
        if (p >= first_page && p < last_page) {
          ++n;
        }
      }
    }
    return n;
  }

  // Drops pages in [first_page, last_page), returning how many were present. A wide
  // range sweeps only the shard groups of the stripes the range covers — a
  // stripe-confined munmap never touches (or locks) another stripe's shards.
  // `max_present` is the caller's proven upper bound on pages present in the range
  // (a dying VMA's present_hint sum): once that many have been erased, no more can
  // exist and the probe stops — a sparsely-faulted region costs its installs, not
  // its size. Pass the default when no bound is known.
  //
  // `resume` (optional) reports where the probe stopped: after a full walk it is
  // `last_page`; after an early budget stop it is the bound below which every page
  // has provably been probed — anything the caller's bound failed to cover can only
  // survive in [*resume, last_page). The narrow path erases in ascending page order
  // so its stop point is exact; the wide path visits shards out of page order, so an
  // early stop there reports `first_page` (the whole range stays suspect).
  std::size_t RemoveRange(uint64_t first_page, uint64_t last_page,
                          uint64_t max_present = UINT64_MAX,
                          uint64_t* resume = nullptr) {
    std::size_t erased = 0;
    if (resume != nullptr) {
      *resume = first_page;
    }
    if (max_present == 0) {
      return 0;
    }
    if (last_page - first_page <= 4096) {
      // Narrow ranges (the common arena-trim case): erase page by page.
      for (uint64_t p = first_page; p < last_page; ++p) {
        Shard& s = ShardFor(p);
        std::lock_guard<SpinLock> g(s.lock);
        if (s.pages.erase(p) != 0 && ++erased == max_present) {
          if (resume != nullptr) {
            *resume = p + 1;
          }
          return erased;
        }
      }
      if (resume != nullptr) {
        *resume = last_page;
      }
      return erased;
    }
    for (const std::size_t i : ShardsCovering(first_page, last_page)) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      auto& pages = shards_[i].value.pages;
      for (auto it = pages.begin(); it != pages.end();) {
        if (it->first >= first_page && it->first < last_page) {
          it = pages.erase(it);
          if (++erased == max_present) {
            return erased;  // unordered scan: *resume stays first_page
          }
        } else {
          ++it;
        }
      }
    }
    if (resume != nullptr) {
      *resume = last_page;
    }
    return erased;
  }

  std::size_t Count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      n += shards_[i].value.pages.size();
    }
    return n;
  }

  // All present page indices (tests / invariant checks; not a consistent snapshot under
  // concurrent mutation).
  std::vector<uint64_t> AllPages() const {
    std::vector<uint64_t> out;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      for (const auto& [p, ticket] : shards_[i].value.pages) {
        out.push_back(p);
      }
    }
    return out;
  }

 private:
  struct Shard {
    mutable SpinLock lock;
    // page index -> install ticket (see Install/RemoveExact). Tickets start at 1 so 0
    // can mean "minor fault, no install of mine to undo".
    std::unordered_map<uint64_t, uint64_t> pages;
    uint64_t next_ticket = 1;
  };

  // Page index relative to the first stripe window (pages below it belong to group 0,
  // mirroring VmaIndex::IndexOf's clamp).
  uint64_t RelPage(uint64_t page_index) const {
    return page_index >= base_page_ ? page_index - base_page_ : 0;
  }

  unsigned GroupOf(uint64_t page_index) const {
    return static_cast<unsigned>(RelPage(page_index) >> stripe_page_shift_) &
           (groups_ - 1);
  }

  Shard& ShardFor(uint64_t page_index) const {
    // Stripe bits pick the group; a Fibonacci hash spreads consecutive pages across
    // the group's shards.
    const unsigned within =
        per_group_ == 1
            ? 0
            : static_cast<unsigned>((page_index * 0x9e3779b97f4a7c15ull) >>
                                    group_hash_shift_);
    return shards_[GroupOf(page_index) * per_group_ + within].value;
  }

  // Shard indices whose group intersects [first_page, last_page), deduplicated.
  std::vector<std::size_t> ShardsCovering(uint64_t first_page, uint64_t last_page) const {
    std::vector<std::size_t> out;
    const uint64_t s0 = RelPage(first_page) >> stripe_page_shift_;
    const uint64_t s1 = RelPage(last_page - 1) >> stripe_page_shift_;
    if (s1 - s0 + 1 >= groups_) {
      out.reserve(kShards);
      for (std::size_t i = 0; i < kShards; ++i) {
        out.push_back(i);
      }
      return out;
    }
    for (uint64_t s = s0; s <= s1; ++s) {
      const unsigned g = static_cast<unsigned>(s) & (groups_ - 1);
      for (unsigned j = 0; j < per_group_; ++j) {
        out.push_back(static_cast<std::size_t>(g) * per_group_ + j);
      }
    }
    return out;
  }

  mutable CacheAligned<Shard> shards_[kShards];
  // Shard-layout parameters; written once by ConfigureStripes before any use.
  uint64_t stripe_page_shift_ = 24;  // matches VmaIndex::kStripeShift - 12
  uint64_t base_page_ = 0;           // first window base, page units
  unsigned groups_ = 1;
  unsigned per_group_ = kShards;
  unsigned group_hash_shift_ = 58;  // 64 - log2(per_group_)
};

}  // namespace srl::vm

#endif  // SRL_VM_PAGE_TABLE_H_
