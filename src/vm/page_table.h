// Sharded present-page set — the simulation's stand-in for hardware page tables.
//
// The kernel's page-fault path, once it has validated the faulting address against the
// VMA metadata (under mmap_sem / the range lock), installs a page-table entry under
// finer-grained page-table locks. We reproduce that shape: a sharded hash set with
// per-shard spin locks, accessed only after the VMA-level check passed.
#ifndef SRL_VM_PAGE_TABLE_H_
#define SRL_VM_PAGE_TABLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/sync/cacheline.h"
#include "src/sync/spin_lock.h"

namespace srl::vm {

class PageTable {
 public:
  static constexpr std::size_t kShards = 64;

  // Installs the page; returns true if it was not already present (a "major" fault).
  bool Install(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.insert(page_index).second;
  }

  bool Present(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.count(page_index) != 0;
  }

  // Drops one page; returns true if it was present. The speculative fault path uses
  // this to undo an install whose post-install validation failed.
  bool Remove(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.erase(page_index) > 0;
  }

  // Present pages in [first_page, last_page) — the fault-vs-unmap batteries assert this
  // drains to zero for every unmapped range. Not a consistent snapshot under concurrent
  // mutation (same caveat as AllPages).
  std::size_t CountRange(uint64_t first_page, uint64_t last_page) const {
    std::size_t n = 0;
    if (last_page - first_page <= 4096) {
      for (uint64_t p = first_page; p < last_page; ++p) {
        const Shard& s = ShardFor(p);
        std::lock_guard<SpinLock> g(s.lock);
        n += s.pages.count(p);
      }
      return n;
    }
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      for (const uint64_t p : shards_[i].value.pages) {
        if (p >= first_page && p < last_page) {
          ++n;
        }
      }
    }
    return n;
  }

  // Drops all pages in [first_page, last_page).
  void RemoveRange(uint64_t first_page, uint64_t last_page) {
    if (last_page - first_page <= 4096) {
      // Narrow ranges (the common arena-trim case): erase page by page.
      for (uint64_t p = first_page; p < last_page; ++p) {
        Shard& s = ShardFor(p);
        std::lock_guard<SpinLock> g(s.lock);
        s.pages.erase(p);
      }
      return;
    }
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      auto& pages = shards_[i].value.pages;
      for (auto it = pages.begin(); it != pages.end();) {
        if (*it >= first_page && *it < last_page) {
          it = pages.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  std::size_t Count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      n += shards_[i].value.pages.size();
    }
    return n;
  }

  // All present page indices (tests / invariant checks; not a consistent snapshot under
  // concurrent mutation).
  std::vector<uint64_t> AllPages() const {
    std::vector<uint64_t> out;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      out.insert(out.end(), shards_[i].value.pages.begin(), shards_[i].value.pages.end());
    }
    return out;
  }

 private:
  struct Shard {
    mutable SpinLock lock;
    std::unordered_set<uint64_t> pages;
  };

  Shard& ShardFor(uint64_t page_index) const {
    // Fibonacci hash spreads consecutive pages across shards.
    return shards_[(page_index * 0x9e3779b97f4a7c15ull) >> 58].value;
  }

  mutable CacheAligned<Shard> shards_[kShards];
};

}  // namespace srl::vm

#endif  // SRL_VM_PAGE_TABLE_H_
