// Sharded present-page set — the simulation's stand-in for hardware page tables.
//
// The kernel's page-fault path, once it has validated the faulting address against the
// VMA metadata (under mmap_sem / the range lock), installs a page-table entry under
// finer-grained page-table locks. We reproduce that shape: a sharded hash set with
// per-shard spin locks, accessed only after the VMA-level check passed.
//
// Striped address spaces add a second axis: when the owning AddressSpace is striped
// (ConfigureStripes), the 64 shards are partitioned into per-stripe *groups* — a
// page's stripe bits pick its group, a Fibonacci hash spreads pages within the group.
// The payoff is on munmap: a wide RemoveRange confined to one stripe sweeps only that
// stripe's group of shards instead of all 64, and — more importantly under load —
// never takes a shard lock a fault in another stripe could be holding. Unconfigured
// (stripe count 1), the layout degenerates to exactly the old single-hash scheme.
#ifndef SRL_VM_PAGE_TABLE_H_
#define SRL_VM_PAGE_TABLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "src/sync/cacheline.h"
#include "src/sync/spin_lock.h"

namespace srl::vm {

class PageTable {
 public:
  static constexpr std::size_t kShards = 64;

  // Binds the shard layout to the address-space striping. `stripe_page_shift` is the
  // stripe shift in page units (VmaIndex::kStripeShift - page shift) and `base_page`
  // the first stripe window's base in page units — the same origin VmaIndex::IndexOf
  // subtracts, without which every 64 GiB window (base is not span-aligned) would
  // straddle two shard groups and adjacent stripes would share shard locks. `stripes`
  // must be a power of two. Call once, before any page is installed. Never calling it
  // leaves one group of 64 shards — the unstriped layout.
  void ConfigureStripes(uint64_t stripe_page_shift, uint64_t base_page,
                        unsigned stripes) {
    stripe_page_shift_ = stripe_page_shift;
    base_page_ = base_page;
    groups_ = stripes < kShards ? stripes : static_cast<unsigned>(kShards);
    per_group_ = static_cast<unsigned>(kShards) / groups_;
    group_hash_shift_ = 64;
    for (unsigned p = per_group_; p > 1; p >>= 1) {
      --group_hash_shift_;
    }
  }

  // Installs the page; returns true if it was not already present (a "major" fault).
  bool Install(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.insert(page_index).second;
  }

  bool Present(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.count(page_index) != 0;
  }

  // Drops one page; returns true if it was present. The speculative fault path uses
  // this to undo an install whose post-install validation failed.
  bool Remove(uint64_t page_index) {
    Shard& s = ShardFor(page_index);
    std::lock_guard<SpinLock> g(s.lock);
    return s.pages.erase(page_index) > 0;
  }

  // Present pages in [first_page, last_page) — the fault-vs-unmap batteries assert this
  // drains to zero for every unmapped range. Not a consistent snapshot under concurrent
  // mutation (same caveat as AllPages).
  std::size_t CountRange(uint64_t first_page, uint64_t last_page) const {
    std::size_t n = 0;
    if (last_page - first_page <= 4096) {
      for (uint64_t p = first_page; p < last_page; ++p) {
        const Shard& s = ShardFor(p);
        std::lock_guard<SpinLock> g(s.lock);
        n += s.pages.count(p);
      }
      return n;
    }
    for (const std::size_t i : ShardsCovering(first_page, last_page)) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      for (const uint64_t p : shards_[i].value.pages) {
        if (p >= first_page && p < last_page) {
          ++n;
        }
      }
    }
    return n;
  }

  // Drops all pages in [first_page, last_page). A wide range sweeps only the shard
  // groups of the stripes the range covers — a stripe-confined munmap never touches
  // (or locks) another stripe's shards.
  void RemoveRange(uint64_t first_page, uint64_t last_page) {
    if (last_page - first_page <= 4096) {
      // Narrow ranges (the common arena-trim case): erase page by page.
      for (uint64_t p = first_page; p < last_page; ++p) {
        Shard& s = ShardFor(p);
        std::lock_guard<SpinLock> g(s.lock);
        s.pages.erase(p);
      }
      return;
    }
    for (const std::size_t i : ShardsCovering(first_page, last_page)) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      auto& pages = shards_[i].value.pages;
      for (auto it = pages.begin(); it != pages.end();) {
        if (*it >= first_page && *it < last_page) {
          it = pages.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  std::size_t Count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      n += shards_[i].value.pages.size();
    }
    return n;
  }

  // All present page indices (tests / invariant checks; not a consistent snapshot under
  // concurrent mutation).
  std::vector<uint64_t> AllPages() const {
    std::vector<uint64_t> out;
    for (std::size_t i = 0; i < kShards; ++i) {
      std::lock_guard<SpinLock> g(shards_[i].value.lock);
      out.insert(out.end(), shards_[i].value.pages.begin(), shards_[i].value.pages.end());
    }
    return out;
  }

 private:
  struct Shard {
    mutable SpinLock lock;
    std::unordered_set<uint64_t> pages;
  };

  // Page index relative to the first stripe window (pages below it belong to group 0,
  // mirroring VmaIndex::IndexOf's clamp).
  uint64_t RelPage(uint64_t page_index) const {
    return page_index >= base_page_ ? page_index - base_page_ : 0;
  }

  unsigned GroupOf(uint64_t page_index) const {
    return static_cast<unsigned>(RelPage(page_index) >> stripe_page_shift_) &
           (groups_ - 1);
  }

  Shard& ShardFor(uint64_t page_index) const {
    // Stripe bits pick the group; a Fibonacci hash spreads consecutive pages across
    // the group's shards.
    const unsigned within =
        per_group_ == 1
            ? 0
            : static_cast<unsigned>((page_index * 0x9e3779b97f4a7c15ull) >>
                                    group_hash_shift_);
    return shards_[GroupOf(page_index) * per_group_ + within].value;
  }

  // Shard indices whose group intersects [first_page, last_page), deduplicated.
  std::vector<std::size_t> ShardsCovering(uint64_t first_page, uint64_t last_page) const {
    std::vector<std::size_t> out;
    const uint64_t s0 = RelPage(first_page) >> stripe_page_shift_;
    const uint64_t s1 = RelPage(last_page - 1) >> stripe_page_shift_;
    if (s1 - s0 + 1 >= groups_) {
      out.reserve(kShards);
      for (std::size_t i = 0; i < kShards; ++i) {
        out.push_back(i);
      }
      return out;
    }
    for (uint64_t s = s0; s <= s1; ++s) {
      const unsigned g = static_cast<unsigned>(s) & (groups_ - 1);
      for (unsigned j = 0; j < per_group_; ++j) {
        out.push_back(static_cast<std::size_t>(g) * per_group_ + j);
      }
    }
    return out;
  }

  mutable CacheAligned<Shard> shards_[kShards];
  // Shard-layout parameters; written once by ConfigureStripes before any use.
  uint64_t stripe_page_shift_ = 24;  // matches VmaIndex::kStripeShift - 12
  uint64_t base_page_ = 0;           // first window base, page units
  unsigned groups_ = 1;
  unsigned per_group_ = kShards;
  unsigned group_hash_shift_ = 58;  // 64 - log2(per_group_)
};

}  // namespace srl::vm

#endif  // SRL_VM_PAGE_TABLE_H_
