// Operation and speculation counters for the simulated VM subsystem.
//
// spec_success / spec_fallback reproduce the paper's ftrace observation that "the
// majority of the calls to mprotect (over 99%) succeed in the speculative path" for the
// GLIBC-arena workload.
//
// Since the address space was sharded into stripes, the counters that localize to one
// stripe (scoped structural ops, speculative fault outcomes, optimistic-walk retries,
// mmap cursor overflow) are additionally kept per stripe in cache-line-padded slots, so
// the isolation claim — churn in stripe A causes no speculative-fault retries in
// stripe B — is directly observable rather than inferred. The flat totals remain the
// authoritative aggregates (they are bumped on the same events) — EXCEPT the per-fault
// success counters, which are per-stripe only and aggregated on read (see Faults()).
#ifndef SRL_VM_VM_STATS_H_
#define SRL_VM_VM_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/sync/cacheline.h"

namespace srl::vm {

// Per-stripe slice of the counters below; see VmStats::stripe().
struct VmStripeStats {
  std::atomic<uint64_t> faults{0};             // faults whose address lands in this stripe
  std::atomic<uint64_t> major_faults{0};       // of those, pages actually installed
  std::atomic<uint64_t> scoped_structural{0};  // structural ops completed stripe-scoped
  std::atomic<uint64_t> scoped_fallback{0};    // ops starting in this stripe that degraded
  std::atomic<uint64_t> fault_spec_ok{0};      // lock-free faults resolved in this stripe
  std::atomic<uint64_t> fault_spec_retry{0};   // speculative attempts retried (same-stripe churn)
  std::atomic<uint64_t> find_retries{0};       // optimistic walks of this stripe's tree retried
  std::atomic<uint64_t> mmap_overflow{0};      // mmaps that overflowed INTO this stripe
  std::atomic<uint64_t> sweep_flushes{0};      // deferred-sweep flushes of this stripe's queue
};

struct VmStats {
  std::atomic<uint64_t> mmaps{0};
  std::atomic<uint64_t> munmaps{0};
  std::atomic<uint64_t> mprotects{0};
  std::atomic<uint64_t> fault_errors{0};   // unmapped address or protection violation
  std::atomic<uint64_t> fault_try_ok{0};        // fault admitted by the trylock fast path
  std::atomic<uint64_t> fault_try_fallback{0};  // trylock failed; blocked on the read lock
  // Lock-free speculative fault path (scoped variants): attempts that had to retry
  // (validation failure / torn metadata read), and faults that exhausted their attempts
  // (or observed a gap, which only the locked path may adjudicate) and degraded to the
  // trylock-first locked path. The per-fault success counters (faults, major_faults,
  // fault_spec_ok) have NO flat atomic: see the aggregated accessors below.
  std::atomic<uint64_t> fault_spec_retry{0};
  std::atomic<uint64_t> fault_spec_fallback{0};
  std::atomic<uint64_t> spec_success{0};   // mprotect completed on the speculative path
  std::atomic<uint64_t> spec_retries{0};   // seq/boundary validation failed, retried
  std::atomic<uint64_t> spec_fallback{0};  // structural change forced the structural path
  std::atomic<uint64_t> unmap_lookup_fastpath{0};  // munmap resolved under a read lock
  // Range-scoped structural ops (kTreeScoped / kListScoped): structural mutations that
  // completed under a write lock covering only the affected range (padded one page),
  // vs. the classify-then-fallback cases that had to degrade to a full-range write.
  std::atomic<uint64_t> scoped_structural{0};
  std::atomic<uint64_t> scoped_fallback{0};
  // Of the scoped fallbacks, how many degraded because the padded range crossed a
  // stripe edge (as opposed to being unrepresentable at the top of the address space).
  std::atomic<uint64_t> cross_stripe_fallback{0};
  // Optimistic mm_rb walks (VmaStripe::FindOptimistic) that overlapped a structural
  // mutation and retried.
  std::atomic<uint64_t> find_retries{0};
  // Deferred page sweeps (see README "Deferred page sweeps"): dead page ranges queued
  // instead of swept inline, enqueues that coalesced with already-queued ranges, pages
  // actually erased by the flusher, flush passes run, and sweeps skipped outright
  // because the dying VMA's present-page hint proved it never faulted a page.
  std::atomic<uint64_t> sweeps_queued{0};         // ranges enqueued
  std::atomic<uint64_t> sweeps_queued_pages{0};   // pages enqueued (pre-coalescing)
  std::atomic<uint64_t> sweeps_coalesced{0};      // pre-existing ranges absorbed
  std::atomic<uint64_t> sweeps_swept_pages{0};    // pages erased by flushes
  std::atomic<uint64_t> sweeps_flushes{0};        // flush passes (claim + sweep)
  std::atomic<uint64_t> sweeps_skipped_empty{0};  // empty-VMA sweeps skipped

  // --- Per-stripe slices (sized by AddressSpace at construction) ---

  void ConfigureStripes(unsigned n) {
    stripe_count_ = n;
    per_stripe_ = std::make_unique<CacheAligned<VmStripeStats>[]>(n);
  }
  unsigned StripeCount() const { return stripe_count_; }
  VmStripeStats& stripe(unsigned i) { return per_stripe_[i].value; }
  const VmStripeStats& stripe(unsigned i) const { return per_stripe_[i].value; }

  // The counters bumped once per successful fault are kept per-stripe ONLY, unlike
  // the rest of the flat totals: at millions of faults a second a shared fetch_add
  // per fault serializes every faulting thread on one cache line — exactly the
  // cross-stripe coupling the stripes exist to remove. The flat totals for those
  // aggregate on read instead.
  uint64_t Faults() const { return SumStripes(&VmStripeStats::faults); }
  uint64_t MajorFaults() const { return SumStripes(&VmStripeStats::major_faults); }
  uint64_t FaultSpecOk() const { return SumStripes(&VmStripeStats::fault_spec_ok); }

  // Fraction of page faults resolved entirely lock-free (scoped variants; 0 elsewhere).
  double FaultSpecRate() const {
    const uint64_t total = Faults();
    if (total == 0) {
      return 0.0;
    }
    return static_cast<double>(FaultSpecOk()) / static_cast<double>(total);
  }

  // Fraction of page faults admitted without blocking — what bench/abl_trylock sweeps.
  double FaultTrySuccessRate() const {
    const uint64_t ok = fault_try_ok.load(std::memory_order_relaxed);
    const uint64_t fb = fault_try_fallback.load(std::memory_order_relaxed);
    if (ok + fb == 0) {
      return 0.0;
    }
    return static_cast<double>(ok) / static_cast<double>(ok + fb);
  }

  double SpeculationSuccessRate() const {
    const uint64_t total = mprotects.load(std::memory_order_relaxed);
    if (total == 0) {
      return 0.0;
    }
    return static_cast<double>(spec_success.load(std::memory_order_relaxed)) /
           static_cast<double>(total);
  }

  // Fraction of structural operations that stayed range-scoped (scoped variants only;
  // 0 when no structural op ran).
  double ScopedStructuralRate() const {
    const uint64_t scoped = scoped_structural.load(std::memory_order_relaxed);
    const uint64_t full = scoped_fallback.load(std::memory_order_relaxed);
    if (scoped + full == 0) {
      return 0.0;
    }
    return static_cast<double>(scoped) / static_cast<double>(scoped + full);
  }

 private:
  uint64_t SumStripes(std::atomic<uint64_t> VmStripeStats::*m) const {
    uint64_t sum = 0;
    for (unsigned i = 0; i < stripe_count_; ++i) {
      sum += (per_stripe_[i].value.*m).load(std::memory_order_relaxed);
    }
    return sum;
  }

  unsigned stripe_count_ = 0;
  std::unique_ptr<CacheAligned<VmStripeStats>[]> per_stripe_;
};

}  // namespace srl::vm

#endif  // SRL_VM_VM_STATS_H_
