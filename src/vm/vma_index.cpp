#include "src/vm/vma_index.h"

#include <vector>

#include "src/vm/vm_stats.h"

namespace srl::vm {

VmaStripe::~VmaStripe() {
  // Nodes still linked at destruction belong to this stripe alone (retired nodes are
  // in retire_, whose own destructor drains them after a barrier). Collect first:
  // deleting while iterating would read freed links.
  std::vector<Vma*> live;
  live.reserve(tree_.Size());
  for (Vma* v = tree_.First(); v != nullptr; v = Next(v)) {
    live.push_back(v);
  }
  for (Vma* v : live) {
    delete v;
  }
}

void VmaStripe::EraseAndRetire(Vma* vma) {
  tree_.Erase(vma);
  // Published inside the open seqlock write section: a speculative fault that read this
  // VMA's fields re-validates the stripe's seqcount *after* its page install, so it
  // either observes the seq bump or this flag — never a clean validation against a
  // dead mapping.
  vma->detached.store(true, std::memory_order_release);
  retire_.Retire(vma);
}

Vma* VmaStripe::Find(uint64_t addr) const {
  Vma* n = tree_.Root();
  Vma* best = nullptr;
  while (n != nullptr) {
    if (n->End() > addr) {
      best = n;
      n = n->rb_left;
    } else {
      n = n->rb_right;
    }
  }
  return best;
}

bool VmaStripe::TryFindOptimistic(uint64_t addr, Vma** vma, uint64_t* snapshot) const {
  const uint64_t snap = seq_.ReadBegin();
  Vma* best = nullptr;
  Vma* n = tree_.Root();
  int steps = 0;
  while (n != nullptr && steps++ < kMaxWalkSteps) {
    if (n->End() > addr) {
      best = n;
      n = n->rb_left;
    } else {
      n = n->rb_right;
    }
  }
  if (n != nullptr || !seq_.Validate(snap)) {
    return false;  // step bound hit (transient cycle) or a mutation overlapped
  }
  *vma = best;
  *snapshot = snap;
  return true;
}

Vma* VmaStripe::FindOptimistic(uint64_t addr, VmStats* stats) const {
  for (;;) {
    Vma* vma = nullptr;
    uint64_t snapshot = 0;
    if (TryFindOptimistic(addr, &vma, &snapshot)) {
      return vma;
    }
    if (stats != nullptr) {
      stats->find_retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

namespace {

unsigned RoundStripes(unsigned stripes) {
  if (stripes < 1) {
    stripes = 1;
  }
  if (stripes > VmaIndex::kMaxStripes) {
    stripes = VmaIndex::kMaxStripes;
  }
  unsigned p = 1;
  while (p < stripes) {
    p <<= 1;
  }
  return p;
}

}  // namespace

VmaIndex::VmaIndex(unsigned stripes)
    : n_(RoundStripes(stripes)),
      stripes_(std::make_unique<CacheAligned<VmaStripe>[]>(n_)) {}

}  // namespace srl::vm
