#include "src/vm/vma_index.h"

#include <vector>

#include "src/epoch/retire_list.h"
#include "src/vm/vm_stats.h"

namespace srl::vm {

VmaIndex::~VmaIndex() {
  // Nodes still linked at destruction belong to this index alone (retired nodes were
  // already handed to their unlinking thread's RetireList). Collect first: deleting
  // while iterating would read freed links.
  std::vector<Vma*> live;
  live.reserve(tree_.Size());
  for (Vma* v = tree_.First(); v != nullptr; v = Next(v)) {
    live.push_back(v);
  }
  for (Vma* v : live) {
    delete v;
  }
}

void VmaIndex::EraseAndRetire(Vma* vma) {
  tree_.Erase(vma);
  // Published inside the open seqlock write section: a speculative fault that read this
  // VMA's fields re-validates the structural seqcount *after* its page install, so it
  // either observes the seq bump or this flag — never a clean validation against a
  // dead mapping.
  vma->detached.store(true, std::memory_order_release);
  RetireList::Local().Retire(vma);
}

Vma* VmaIndex::Find(uint64_t addr) const {
  Vma* n = tree_.Root();
  Vma* best = nullptr;
  while (n != nullptr) {
    if (n->End() > addr) {
      best = n;
      n = n->rb_left;
    } else {
      n = n->rb_right;
    }
  }
  return best;
}

bool VmaIndex::TryFindOptimistic(uint64_t addr, Vma** vma, uint64_t* snapshot) const {
  const uint64_t snap = seq_.ReadBegin();
  Vma* best = nullptr;
  Vma* n = tree_.Root();
  int steps = 0;
  while (n != nullptr && steps++ < kMaxWalkSteps) {
    if (n->End() > addr) {
      best = n;
      n = n->rb_left;
    } else {
      n = n->rb_right;
    }
  }
  if (n != nullptr || !seq_.Validate(snap)) {
    return false;  // step bound hit (transient cycle) or a mutation overlapped
  }
  *vma = best;
  *snapshot = snap;
  return true;
}

Vma* VmaIndex::FindOptimistic(uint64_t addr, VmStats* stats) const {
  for (;;) {
    Vma* vma = nullptr;
    uint64_t snapshot = 0;
    if (TryFindOptimistic(addr, &vma, &snapshot)) {
      return vma;
    }
    if (stats != nullptr) {
      stats->find_retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace srl::vm
