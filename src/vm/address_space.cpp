#include "src/vm/address_space.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "src/epoch/epoch_domain.h"
#include "src/sync/fence.h"
#include "src/sync/topology.h"

namespace srl::vm {

namespace {

// present_hint value meaning "unknown, assume populated". Whenever page custody
// moves between VMA nodes (split tails, merge absorption, speculative-mprotect
// boundary moves), a racing fault may still attribute its install to the donor node
// — so a copied or summed hint on the receiver would not be a sound upper bound.
// Every custody transfer therefore saturates the receiver's hint; this keeps the
// empty-VMA sweep skip sound, and the next strict CheckInvariants resyncs the hint
// to the exact count.
constexpr uint64_t kHintSaturated = uint64_t{1} << 62;

void SaturateHint(Vma* v) {
  v->present_hint.store(kHintSaturated, std::memory_order_relaxed);
}

struct VariantConfig {
  VmLockKind kind;
  bool refine_fault;
  bool refine_mprotect;
  bool scoped_structural;
};

VariantConfig ConfigFor(VmVariant v) {
  switch (v) {
    case VmVariant::kStock:
      return {VmLockKind::kStock, false, false, false};
    case VmVariant::kTreeFull:
      return {VmLockKind::kTree, false, false, false};
    case VmVariant::kTreeRefined:
      return {VmLockKind::kTree, true, true, false};
    case VmVariant::kListFull:
      return {VmLockKind::kList, false, false, false};
    case VmVariant::kListRefined:
      return {VmLockKind::kList, true, true, false};
    case VmVariant::kListPf:
      return {VmLockKind::kList, true, false, false};
    case VmVariant::kListMprotect:
      return {VmLockKind::kList, false, true, false};
    case VmVariant::kTreeScoped:
      return {VmLockKind::kTree, true, true, true};
    case VmVariant::kListScoped:
      return {VmLockKind::kList, true, true, true};
    case VmVariant::kListLfFull:
      return {VmLockKind::kListLockFree, false, false, false};
    case VmVariant::kListLfScoped:
      return {VmLockKind::kListLockFree, true, true, true};
    case VmVariant::kSkiplistFull:
      return {VmLockKind::kSkiplistIndexed, false, false, false};
    case VmVariant::kSkiplistScoped:
      return {VmLockKind::kSkiplistIndexed, true, true, true};
  }
  return {VmLockKind::kStock, false, false, false};
}

unsigned ResolveStripes(VmVariant v, unsigned stripes) {
  if (stripes != 0) {
    return stripes;  // VmaIndex clamps and rounds up to a power of two
  }
  if (!ConfigFor(v).scoped_structural) {
    // Full-range structural ops serialize everything anyway; one stripe keeps the
    // control variants bit-for-bit identical to the unstriped design.
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

const char* VmVariantName(VmVariant v) {
  switch (v) {
    case VmVariant::kStock:
      return "stock";
    case VmVariant::kTreeFull:
      return "tree-full";
    case VmVariant::kTreeRefined:
      return "tree-refined";
    case VmVariant::kListFull:
      return "list-full";
    case VmVariant::kListRefined:
      return "list-refined";
    case VmVariant::kListPf:
      return "list-pf";
    case VmVariant::kListMprotect:
      return "list-mprotect";
    case VmVariant::kTreeScoped:
      return "tree-scoped";
    case VmVariant::kListScoped:
      return "list-scoped";
    case VmVariant::kListLfFull:
      return "list-lf-full";
    case VmVariant::kListLfScoped:
      return "list-lf-scoped";
    case VmVariant::kSkiplistFull:
      return "skiplist-full";
    case VmVariant::kSkiplistScoped:
      return "skiplist-scoped";
  }
  return "?";
}

AddressSpace::AddressSpace(VmVariant variant, unsigned stripes)
    : variant_(variant), index_(ResolveStripes(variant, stripes)) {
  const VariantConfig cfg = ConfigFor(variant);
  refine_fault_ = cfg.refine_fault;
  refine_mprotect_ = cfg.refine_mprotect;
  scoped_structural_ = cfg.scoped_structural;
  stripes_ = index_.StripeCount();
  lock_ = MakeVmLock(cfg.kind);
  stats_.ConfigureStripes(stripes_);
  // kPageSize is 2^12; the page table's stripe bits sit kStripeShift - 12 up from the
  // window origin (kMmapBase is not span-aligned, so the origin must be subtracted).
  pages_.ConfigureStripes(VmaIndex::kStripeShift - 12, kMmapBase / kPageSize, stripes_);
  cursors_ = std::make_unique<CacheAligned<std::atomic<uint64_t>>[]>(stripes_);
  sweeps_ = std::make_unique<CacheAligned<SweepQueue>[]>(stripes_);
  sweep_gc_ = std::make_unique<CacheAligned<SweepGc>[]>(stripes_);
  for (unsigned i = 0; i < stripes_; ++i) {
    cursors_[i].value.store(VmaIndex::WindowBase(i), std::memory_order_relaxed);
  }
}

AddressSpace::~AddressSpace() = default;

unsigned AddressSpace::HomeStripe() const {
  // Topology-aware home-stripe assignment: a thread's home stripe follows the CPU it
  // first ran this code on, enumerated in node-grouped order (Topology::PackedIndexOf),
  // so (a) threads on the same core share a stripe instead of bouncing its cache lines
  // to wherever registration order scattered them, and (b) with stripes >= cores,
  // co-located CPUs of one NUMA node map to a contiguous stripe block — the stripe's
  // heads, cursor, and sweep queue stay node-local. The CPU is sampled once per thread
  // (stripes must be stable per thread for the VMA-locality contract), so later
  // migration does not re-home the thread — same trade-off the kernel makes for
  // per-CPU-ish structures accessed without preemption protection.
  //
  // Single-core hosts (or platforms without sched_getcpu) keep the old deterministic
  // registration-order policy: every thread would otherwise collapse onto stripe 0,
  // and the round-robin spread is what the stripe tests and single-core benches rely
  // on. vm_stripe_test pins this fallback via Topology::TestOnlyForceSingleCore.
  static std::atomic<uint64_t> next_token{0};
  const Topology& topo = Topology::Get();
  if (!topo.SingleCore()) {
    thread_local int packed = [] {
      const int cpu = Topology::CurrentCpu();
      return cpu >= 0 ? static_cast<int>(Topology::Get().PackedIndexOf(
                            static_cast<unsigned>(cpu)))
                      : -1;
    }();
    if (packed >= 0) {
      return static_cast<unsigned>(packed) & (stripes_ - 1);
    }
  }
  thread_local uint64_t token = next_token.fetch_add(1, std::memory_order_relaxed);
  return static_cast<unsigned>(token & (stripes_ - 1));
}

Vma* AddressSpace::AllocVma(uint64_t start, uint64_t end, uint32_t prot) {
  Vma* vma = new Vma;
  vma->start.store(start, std::memory_order_relaxed);
  vma->end.store(end, std::memory_order_relaxed);
  vma->prot.store(prot, std::memory_order_relaxed);
  return vma;
}

uint64_t AddressSpace::CarveFromStripe(unsigned si, uint64_t size) {
  std::atomic<uint64_t>& cursor = cursors_[si].value;
  const uint64_t window_end = VmaIndex::WindowEnd(si);
  uint64_t cur = cursor.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + size < cur || cur + size > window_end) {
      return 0;  // window exhausted: the VMA itself must fit wholly inside it
    }
    // One guard page between allocations keeps distinct mappings (e.g. per-thread
    // arenas) as distinct VMAs, as separate mmap calls produce in practice. An
    // exact-fit allocation may push the cursor past the window end, which simply
    // exhausts the stripe for later calls.
    if (cursor.compare_exchange_weak(cur, cur + size + kPageSize,
                                     std::memory_order_relaxed)) {
      return cur;
    }
  }
}

uint64_t AddressSpace::Mmap(uint64_t length, uint32_t prot) {
  return MmapInStripe(HomeStripe(), length, prot);
}

uint64_t AddressSpace::MmapInStripe(unsigned stripe, uint64_t length, uint32_t prot) {
  if (length == 0 || stripe >= stripes_) {
    return 0;
  }
  stats_.mmaps.fetch_add(1, std::memory_order_relaxed);
  const uint64_t size = PageUp(length);
  uint64_t addr = 0;
  unsigned si = stripe;
  for (unsigned probe = 0; probe < stripes_; ++probe) {
    si = (stripe + probe) & (stripes_ - 1);
    addr = CarveFromStripe(si, size);
    if (addr != 0) {
      if (probe != 0) {
        stats_.stripe(si).mmap_overflow.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
  if (addr == 0) {
    return 0;  // every window exhausted
  }
  // The cursor never reuses addresses, so the new VMA can neither overlap nor merge
  // with an existing one: write-locking just [addr, addr+size) covers every byte whose
  // mapping changes. No padding is needed — the guard page (or the window edge, for an
  // exact-fit carve) guarantees no neighbour boundary is touched.
  const Range r = scoped_structural_ ? Range{addr, addr + size} : Range::Full();
  void* h = lock_->LockWrite(r);
  VmaStripe& st = index_.Stripe(si);
  st.LockMutate();
  st.Insert(AllocVma(addr, addr + size, prot));
  st.UnlockMutate();
  lock_->UnlockWrite(h);
  if (scoped_structural_) {
    stats_.scoped_structural.fetch_add(1, std::memory_order_relaxed);
    stats_.stripe(si).scoped_structural.fetch_add(1, std::memory_order_relaxed);
  }
  return addr;
}

bool AddressSpace::ApplyMunmapLocked(uint64_t s, uint64_t e, unsigned lo, unsigned hi,
                                     uint64_t* expected_present) {
  // Pairs with the fence in PageFaultOptimistic between its install/hint increment and
  // its seqcount validation. The caller's LockMutate bumped the stripe seqcount; this
  // fence orders that store before the hint loads below, so for any racing speculative
  // fault either (a) its validation sees the bump and it loses (undoing or handing off
  // its install), or (b) our hint load sees its increment. Without the fence both
  // loads can read old values (store-buffer reordering): a winning fault would keep
  // its page while this op reads hint==0 — an unsound skip-empty and an unsound
  // expected bound.
  SeqCstFence();
  bool any = false;
  *expected_present = 0;
  Vma* v = index_.Find(s, lo, hi);
  while (v != nullptr && v->Start() < e) {
    Vma* next = index_.Next(v, hi);
    const uint64_t vs = v->Start();
    const uint64_t ve = v->End();
    // The page sweep exists to erase pages of the clipped/erased region; a VMA whose
    // present_hint is zero provably never had one installed (the hint is an upper
    // bound), so an unmap touching only such VMAs skips the sweep. Non-zero hints sum
    // (saturating) into *expected_present: an upper bound on pages installed anywhere
    // under the touched VMAs, hence on pages present in [s, e) — which bounds the
    // flusher's probe. Sound against in-flight speculative faults via the fence above;
    // locked faults are ordered by the mutation locks this op holds.
    *expected_present = SweepQueue::SatAdd(
        *expected_present, v->present_hint.load(std::memory_order_relaxed));
    if (s <= vs && e >= ve) {
      // Fully covered: remove.
      index_.EraseAndRetire(v);
    } else if (s <= vs) {
      // Head clipped. Key grows but stays below the successor's start (and inside the
      // VMA's window: e < ve and the VMA never straddles a stripe edge). The hint stays
      // — still an upper bound for the smaller range.
      v->start.store(e, std::memory_order_relaxed);
    } else if (e >= ve) {
      // Tail clipped.
      v->end.store(s, std::memory_order_relaxed);
    } else {
      // Hole in the middle: shrink v to the head, insert a new VMA for the tail. The
      // tail takes custody of pages whose installs were counted against the parent —
      // and a locked fault on a tail page outside this op's padded lock range may
      // still be incrementing the parent's hint — so the receiver saturates (see
      // kHintSaturated) rather than copying a possibly-stale value.
      v->end.store(s, std::memory_order_relaxed);
      Vma* tail = AllocVma(e, ve, v->Prot());
      SaturateHint(tail);
      index_.Insert(tail);
    }
    any = true;
    v = next;
  }
  return any;
}

bool AddressSpace::Munmap(uint64_t addr, uint64_t length) {
  return MunmapImpl(addr, length,
                    deferred_sweeps_ ? SweepPolicy::kDeferred : SweepPolicy::kInline);
}

bool AddressSpace::MunmapAsync(uint64_t addr, uint64_t length) {
  return MunmapImpl(addr, length, SweepPolicy::kAsync);
}

bool AddressSpace::MunmapImpl(uint64_t addr, uint64_t length, SweepPolicy policy) {
  if (length == 0) {
    return false;
  }
  stats_.munmaps.fetch_add(1, std::memory_order_relaxed);
  const uint64_t s = PageDown(addr);
  const uint64_t e = PageUp(addr + length);
  if (e <= s) {
    // addr+length wrapped past the top of the address space: the range denotes
    // nothing, and Range{s, e} would violate the locks' start < end contract.
    return false;
  }
  if (speculate_unmap_lookup_) {
    // Probe phase under a read acquisition: if the range maps nothing, the answer is
    // stable (see SetUnmapLookupSpeculation) and no write lock is ever taken.
    bool any_overlap;
    {
      void* rh = lock_->LockRead({s, e});
      EpochGuard guard(EpochDomain::Global());
      any_overlap = AnyMappingInRange(s, e);
      lock_->UnlockRead(rh);
    }
    if (!any_overlap) {
      stats_.unmap_lookup_fastpath.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (scoped_structural_) {
    // Every byte whose mapping changes lies in [s, e); the one-page pad covers the
    // boundary writes at s and e so they conflict with any speculative mprotect moving
    // the same boundary. Classify-then-fallback: a padded range that cannot be
    // represented (top-of-address-space wrap) or whose argument range crosses a stripe
    // edge degrades to the full-range path.
    unsigned si = 0;
    uint64_t ls = 0;
    uint64_t le = 0;
    switch (ClassifyStructuralRange(s, e, &si, &ls, &le)) {
      case RangeClass::kScoped: {
        void* h = lock_->LockWrite({ls, le});
        VmaStripe& st = index_.Stripe(si);
        st.LockMutate();
        uint64_t expected = 0;
        const bool any = ApplyMunmapLocked(s, e, si, si, &expected);
        st.UnlockMutate();
        if (any && expected > 0) {
          if (policy == SweepPolicy::kInline) {
            // The pre-deferral shape: probe the whole region under the acquisition.
            pages_.RemoveRange(s / kPageSize, e / kPageSize);
          } else {
            // Enqueue strictly after the seqcount bump (UnlockMutate above closed the
            // write section), so every flush of this range is ordered after the bump —
            // the deferred half of the install-then-validate ordering argument.
            EnqueueSweepRange(s, e, expected);
          }
        } else if (any) {
          stats_.sweeps_skipped_empty.fetch_add(1, std::memory_order_relaxed);
        }
        lock_->UnlockWrite(h);
        stats_.scoped_structural.fetch_add(1, std::memory_order_relaxed);
        stats_.stripe(si).scoped_structural.fetch_add(1, std::memory_order_relaxed);
        st.MaybeFlushRetired();
        if (policy == SweepPolicy::kDeferred) {
          MaybeFlushSweeps(si);
        }
        return any;
      }
      case RangeClass::kCrossStripe:
        stats_.cross_stripe_fallback.fetch_add(1, std::memory_order_relaxed);
        break;
      case RangeClass::kWrapped:
        break;
    }
    stats_.scoped_fallback.fetch_add(1, std::memory_order_relaxed);
    stats_.stripe(index_.IndexOf(s))
        .scoped_fallback.fetch_add(1, std::memory_order_relaxed);
  }
  const unsigned lo = index_.IndexOf(s);
  const unsigned hi = index_.IndexOf(e - 1);
  void* h = lock_->LockFullWrite();
  index_.LockMutateRange(lo, hi);
  uint64_t expected = 0;
  const bool any = ApplyMunmapLocked(s, e, lo, hi, &expected);
  index_.UnlockMutateRange(lo, hi);
  if (any && expected > 0) {
    if (policy == SweepPolicy::kInline) {
      pages_.RemoveRange(s / kPageSize, e / kPageSize);
    } else {
      EnqueueSweepRange(s, e, expected);
    }
  } else if (any) {
    stats_.sweeps_skipped_empty.fetch_add(1, std::memory_order_relaxed);
  }
  lock_->UnlockWrite(h);
  index_.MaybeFlushRetired(lo, hi);
  if (policy == SweepPolicy::kDeferred) {
    for (unsigned i = lo; i <= hi; ++i) {
      MaybeFlushSweeps(i);
    }
  }
  return any;
}

void AddressSpace::EnqueueSweepRange(uint64_t s, uint64_t e, uint64_t expected) {
  // Split at stripe-window edges so each piece lands on its own stripe's queue (the
  // queue assignment is a locality choice, not a correctness one — any queue's flush
  // erases the right pages). Addresses below/above every window (clamped margins) go
  // to the nearest window's queue. Each piece carries the caller's full `expected`
  // bound — an upper bound on the whole range is one on each piece.
  uint64_t cur = s;
  while (cur < e) {
    const unsigned si = index_.IndexOf(cur);
    uint64_t nxt = VmaIndex::WindowEnd(si);
    if (nxt <= cur || nxt > e) {
      nxt = e;
    }
    const uint64_t first = cur / kPageSize;
    const uint64_t last = nxt / kPageSize;
    const std::size_t absorbed = sweeps_[si].value.Enqueue(first, last, expected);
    stats_.sweeps_queued.fetch_add(1, std::memory_order_relaxed);
    stats_.sweeps_queued_pages.fetch_add(last - first, std::memory_order_relaxed);
    if (absorbed != 0) {
      stats_.sweeps_coalesced.fetch_add(absorbed, std::memory_order_relaxed);
    }
    cur = nxt;
  }
}

void AddressSpace::FlushSweeps(unsigned si) {
  SweepQueue& q = sweeps_[si].value;
  SweepGc& gc = sweep_gc_[si].value;
  const std::vector<SweepQueue::Range> ranges = q.Claim();
  if (!ranges.empty()) {
    const uint64_t batch = gc.batch.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t pages = 0;
    for (const SweepQueue::Range& r : ranges) {
      // The range's expected bound caps the probe: a sparsely-faulted region costs
      // its installs, not its size. sweeps_swept_pages counts pages ACTUALLY erased.
      uint64_t resume = r.first;
      const uint64_t erased = pages_.RemoveRange(r.first, r.last, r.expected, &resume);
      pages += erased;
      // A probe that spent its whole finite budget before reaching the end may have
      // been robbed (a losing fault's transient install soaked up a unit meant for a
      // real dead page past the stop point): keep the range as a tombstone so the
      // robbed loser's RaiseClaimed still finds it. A full walk leaves no survivors
      // and settles immediately.
      const bool may_survive = r.expected != SweepQueue::kUnbounded &&
                               erased == r.expected && resume < r.last;
      q.FinishClaimed(r.first, r.last, resume, may_survive, batch);
    }
    stats_.sweeps_flushes.fetch_add(1, std::memory_order_relaxed);
    stats_.sweeps_swept_pages.fetch_add(pages, std::memory_order_relaxed);
    stats_.stripe(si).sweep_flushes.fetch_add(1, std::memory_order_relaxed);
  }
  // Tombstone GC: a tombstone settles for free once every fault in flight at its
  // finish has exited (all possible thieves have raised by then). One armed grace
  // ticket per stripe; polling is non-blocking, so this adds a few loads per flush.
  if (q.NewestFinishedBatch() != 0 || gc.armed) {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    std::lock_guard<SpinLock> g(gc.lock);
    if (gc.armed && gc.ticket.Elapsed()) {
      q.PurgeFinishedUpTo(gc.hi);
      gc.armed = false;
    }
    if (!gc.armed) {
      const uint64_t newest = q.NewestFinishedBatch();
      if (newest != 0) {
        if (EpochDomain::Global().QuiescentNow(rec)) {
          q.PurgeFinishedUpTo(newest);  // nothing in flight: trivially settled
        } else {
          gc.ticket = EpochDomain::Global().Snapshot(rec);
          gc.hi = newest;
          gc.armed = true;
        }
      }
    }
  }
}

void AddressSpace::MaybeFlushSweeps(unsigned si) {
  if (sweeps_[si].value.NeedsFlush()) {
    FlushSweeps(si);
  }
}

void AddressSpace::DrainSweeps() {
  // First pass erases everything enqueued so far; the epoch barrier then waits out
  // every in-flight fault (a loser that handed its undo to a pending sweep has either
  // completed its undo or its page was claimed above; a robbed loser has posted its
  // RaiseClaimed compensation; a stale speculative install that re-surfaced a
  // just-swept page fails validation against the bumped seqcount and undoes inside
  // the barrier); the second pass erases anything those stragglers re-enqueued or
  // raised. Afterwards no page survives in any range unmapped (or DONTNEED'd) before
  // this call began. The barrier doubles as the tombstones' grace period: every
  // tombstone settled before it can have no late thief left, so purge those outright
  // instead of waiting for the flusher's ticket — this keeps the invariant checker's
  // orphan tolerance (CoversPending) from masking ranges that are in fact settled.
  std::vector<uint64_t> cut(stripes_, 0);
  for (unsigned i = 0; i < stripes_; ++i) {
    FlushSweeps(i);
    cut[i] = sweeps_[i].value.NewestFinishedBatch();
  }
  EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
  EpochDomain::QuiesceQuantum(rec);
  EpochDomain::Global().Barrier(rec);
  for (unsigned i = 0; i < stripes_; ++i) {
    FlushSweeps(i);
    sweeps_[i].value.PurgeFinishedUpTo(cut[i]);
  }
}

uint64_t AddressSpace::PendingSweepPages() const {
  uint64_t n = 0;
  for (unsigned i = 0; i < stripes_; ++i) {
    n += sweeps_[i].value.PendingPages();
  }
  return n;
}

void AddressSpace::SetSweepFlushThreshold(uint64_t pages) {
  for (unsigned i = 0; i < stripes_; ++i) {
    sweeps_[i].value.SetFlushThreshold(pages);
  }
}

void AddressSpace::SetRetireFlushThreshold(std::size_t n) {
  for (unsigned i = 0; i < stripes_; ++i) {
    index_.Stripe(i).SetRetireFlushThreshold(n);
  }
}

AddressSpace::RangeClass AddressSpace::ClassifyStructuralRange(uint64_t s, uint64_t e,
                                                               unsigned* si,
                                                               uint64_t* ls,
                                                               uint64_t* le) const {
  uint64_t lo = s >= kPageSize ? s - kPageSize : 0;
  uint64_t hi = e + kPageSize;
  if (hi <= e) {
    return RangeClass::kWrapped;  // pad overflowed the top of the address space
  }
  const unsigned stripe = index_.IndexOf(s);
  if (stripe != index_.IndexOf(e - 1)) {
    return RangeClass::kCrossStripe;  // the argument range itself spans stripes
  }
  // Clamp the pads at the stripe's window edges. Sound because nothing interacts
  // across an edge: no VMA straddles one, so a boundary at a window base/end has no
  // neighbour on the far side for a merge, clip, or speculative boundary move to
  // touch — the pad would conflict with operations that cannot exist. (The clamp only
  // applies when [s, e) itself is inside the window; ranges in the clamped margins
  // outside all windows keep their full pads.)
  const uint64_t wb = VmaIndex::WindowBase(stripe);
  const uint64_t we = VmaIndex::WindowEnd(stripe);
  if (wb <= s && lo < wb) {
    lo = wb;
  }
  if (we >= e && hi > we) {
    hi = we;
  }
  if (index_.IndexOf(lo) != index_.IndexOf(hi - 1)) {
    return RangeClass::kCrossStripe;  // pad still crosses (range in a clamped margin)
  }
  *si = stripe;
  *ls = lo;
  *le = hi;
  return RangeClass::kScoped;
}

bool AddressSpace::AnyMappingInRange(uint64_t s, uint64_t e) {
  const unsigned lo = index_.IndexOf(s);
  const unsigned hi = index_.IndexOf(e - 1);
  for (unsigned i = lo; i <= hi; ++i) {
    const VmaStripe& st = index_.Stripe(i);
    Vma* v = scoped_structural_ ? st.FindOptimistic(s, &stats_) : st.Find(s);
    if (v != nullptr && v->Start() < e) {
      return true;
    }
  }
  return false;
}

bool AddressSpace::ApplyMprotectLocked(uint64_t s, uint64_t e, uint32_t prot,
                                       unsigned lo, unsigned hi) {
  // Coverage check first — no partial effects on ENOMEM, matching the kernel's
  // behaviour for the common case.
  {
    uint64_t cur = s;
    Vma* v = index_.Find(s, lo, hi);
    while (cur < e) {
      if (v == nullptr || v->Start() > cur) {
        return false;
      }
      cur = v->End();
      v = index_.Next(v, hi);
    }
  }
  // Split so that [s, e) is tiled by whole VMAs, flipping protections as we go. Splits
  // always keep the existing node as the left piece (its tree key is unchanged) and
  // insert the right piece as a new node, so tree order is never transiently violated.
  Vma* v = index_.Find(s, lo, hi);
  while (v != nullptr && v->Start() < e) {
    if (v->Prot() == prot) {
      v = index_.Next(v, hi);
      continue;
    }
    if (v->Start() < s) {
      Vma* tail = AllocVma(s, v->End(), v->Prot());
      // Split pieces take custody of pages counted against the parent (whose hint a
      // racing out-of-range fault may still be incrementing): every custody transfer
      // saturates the receiver, and the next strict CheckInvariants resyncs to exact.
      SaturateHint(tail);
      v->end.store(s, std::memory_order_relaxed);
      index_.Insert(tail);
      v = tail;
      continue;  // reprocess the covered piece
    }
    if (v->End() > e) {
      Vma* tail = AllocVma(e, v->End(), v->Prot());
      SaturateHint(tail);
      v->end.store(e, std::memory_order_relaxed);
      index_.Insert(tail);
    }
    v->prot.store(prot, std::memory_order_relaxed);
    v = index_.Next(v, hi);
  }
  // Merge sweep over the affected neighbourhood (the kernel merges eagerly in
  // vma_merge; we restore the canonical form after the fact). Never across a stripe
  // edge: the merged VMA would straddle two windows, breaking the invariant that an
  // address's stripe locates its covering VMA.
  Vma* m = index_.Find(s == 0 ? 0 : s - 1, lo, hi);
  while (m != nullptr && m->Start() <= e) {
    Vma* next = index_.Next(m, hi);
    if (next != nullptr && m->End() == next->Start() && m->Prot() == next->Prot() &&
        index_.IndexOf(m->Start()) == index_.IndexOf(next->Start())) {
      // The merged VMA takes custody of the absorbed one's pages; a speculative fault
      // that validated just before this mutate section may have incremented the
      // absorbed VMA's hint without that (relaxed) increment being visible here, so
      // the receiver saturates like every other custody transfer.
      SaturateHint(m);
      m->end.store(next->End(), std::memory_order_relaxed);
      index_.EraseAndRetire(next);
      continue;  // try to absorb further
    }
    m = next;
  }
  return true;
}

bool AddressSpace::ScopedStructuralMprotect(uint64_t s, uint64_t e, uint32_t prot,
                                            bool* ok) {
  unsigned si = 0;
  uint64_t ls = 0;
  uint64_t le = 0;
  switch (ClassifyStructuralRange(s, e, &si, &ls, &le)) {
    case RangeClass::kScoped:
      break;
    case RangeClass::kCrossStripe:
      // The argument range spans a stripe edge: the single-stripe lock cannot cover
      // every boundary this op may move. Degrade to the full path, which fences all
      // affected stripes.
      stats_.cross_stripe_fallback.fetch_add(1, std::memory_order_relaxed);
      return false;
    case RangeClass::kWrapped:
      return false;  // padded range wraps: not representable, take the full path
  }
  void* h = lock_->LockWrite({ls, le});
  VmaStripe& st = index_.Stripe(si);
  // Classify-then-fallback (the structural analogue of SpecCase): every boundary and
  // protection write of ApplyMprotectLocked lands in [s, e] — except the merge sweep,
  // which can absorb (erase) a VMA extending past the locked span. Only VMAs already
  // carrying the target protection are absorbable: in-range pieces get split/flipped
  // and stay inside [s, e], but a same-prot VMA overlapping [s, e] (including one
  // starting exactly at e) is never split and survives to the sweep whole. Erasing a
  // VMA whose bytes we did not lock would race readers of those bytes, so any such
  // candidate escapes to the full-range path. The scan itself mutates nothing and runs
  // under the stable stripe lock, stalling optimistic walkers only once the seqlock
  // write section opens for the actual mutation.
  st.LockStable();
  bool escapes = false;
  for (Vma* v = st.Find(s); v != nullptr && v->Start() <= e; v = VmaStripe::Next(v)) {
    if (v->Prot() == prot && v->End() > le) {
      escapes = true;
      break;
    }
  }
  if (escapes) {
    st.UnlockStable();
    lock_->UnlockWrite(h);
    return false;
  }
  st.UpgradeStableToMutate();
  *ok = ApplyMprotectLocked(s, e, prot, si, si);
  st.UnlockMutate();
  lock_->UnlockWrite(h);
  stats_.scoped_structural.fetch_add(1, std::memory_order_relaxed);
  stats_.stripe(si).scoped_structural.fetch_add(1, std::memory_order_relaxed);
  return true;
}

AddressSpace::SpecCase AddressSpace::ClassifySpeculative(Vma* vma, uint64_t s, uint64_t e,
                                                         uint32_t prot) {
  const uint64_t vs = vma->Start();
  const uint64_t ve = vma->End();
  if (s < vs || e > ve) {
    return SpecCase::kStructural;  // spans VMAs (or a gap) — full path sorts it out
  }
  if (vma->Prot() == prot) {
    return SpecCase::kNoop;
  }
  // Stripe-local neighbours: a VMA starting at its window base has no in-tree
  // predecessor, so boundary moves never cross a stripe edge by construction.
  Vma* prev = VmaStripe::Prev(vma);
  Vma* next = VmaStripe::Next(vma);
  const bool prev_mergeable =
      prev != nullptr && prev->End() == vs && prev->Prot() == prot;
  const bool next_mergeable =
      next != nullptr && next->Start() == ve && next->Prot() == prot;
  if (s == vs && e == ve) {
    // Whole-VMA flip: only metadata-unchanged if no neighbour would merge (a merge
    // removes a node from mm_rb — structural).
    return (prev_mergeable || next_mergeable) ? SpecCase::kStructural
                                              : SpecCase::kWholeFlip;
  }
  if (s == vs && prev_mergeable) {
    return SpecCase::kHeadMove;  // Figure 2: the head of vma joins prev
  }
  if (e == ve && next_mergeable) {
    return SpecCase::kTailMove;  // mirror image: the tail of vma joins next
  }
  return SpecCase::kStructural;  // interior change — needs a split
}

bool AddressSpace::Mprotect(uint64_t addr, uint64_t length, uint32_t prot) {
  if (length == 0) {
    return false;
  }
  stats_.mprotects.fetch_add(1, std::memory_order_relaxed);
  const uint64_t s = PageDown(addr);
  const uint64_t e = PageUp(addr + length);
  if (e <= s) {
    return false;  // wrapped range: denotes nothing (and Range{s, e} would be invalid)
  }

  bool speculate = refine_mprotect_;
  for (;;) {
    if (!speculate) {
      if (scoped_structural_) {
        bool ok = false;
        if (ScopedStructuralMprotect(s, e, prot, &ok)) {
          index_.StripeFor(s).MaybeFlushRetired();
          return ok;
        }
        stats_.scoped_fallback.fetch_add(1, std::memory_order_relaxed);
        stats_.stripe(index_.IndexOf(s))
            .scoped_fallback.fetch_add(1, std::memory_order_relaxed);
      }
      const unsigned lo = index_.IndexOf(s);
      const unsigned hi = index_.IndexOf(e - 1);
      void* h = lock_->LockFullWrite();
      index_.LockMutateRange(lo, hi);
      const bool ok = ApplyMprotectLocked(s, e, prot, lo, hi);
      index_.UnlockMutateRange(lo, hi);
      lock_->UnlockWrite(h);
      index_.MaybeFlushRetired(lo, hi);
      return ok;
    }

    // Listing 4: read-lock the argument range for the lookup phase. The epoch guard
    // spans the whole attempt — the unlocked window between the read and write
    // acquisitions legally dereferences a stale vma pointer (line 15), and with
    // epoch-reclaimed VMAs that is only safe inside a critical section.
    {
      EpochGuard guard(EpochDomain::Global());
      void* rh = lock_->LockRead({s, e});
      Vma* vma = FindVmaForRead(s);
      if (vma == nullptr || vma->Start() > s) {
        lock_->UnlockRead(rh);
        return false;  // start address unmapped — ENOMEM
      }
      // The covering VMA's stripe is s's stripe (no VMA straddles a window edge);
      // its seqcount is the §5.2 speculation validator for this attempt.
      VmaStripe& st = index_.StripeFor(s);
      const uint64_t seq = st.ReadSeq();
      const uint64_t aligned_start = vma->Start() - kPageSize;
      const uint64_t aligned_end = vma->End() + kPageSize;
      lock_->UnlockRead(rh);

      // Re-acquire for write with the range widened to the VMA plus one page on each
      // side, so concurrent boundary moves on the neighbours are excluded (§5.2). The
      // stable stripe lock holds off out-of-range structural writers of this stripe
      // during classification without invalidating concurrent optimistic walks.
      void* wh = lock_->LockWrite({aligned_start, aligned_end});
      st.LockStable();
      if (!st.ValidateSeq(seq) || aligned_start != vma->Start() - kPageSize ||
          aligned_end != vma->End() + kPageSize) {
        st.UnlockStable();
        lock_->UnlockWrite(wh);
        stats_.spec_retries.fetch_add(1, std::memory_order_relaxed);
        continue;  // mm_rb may have changed under us — retry from the top
      }

      // Metadata commits open the affected VMAs' per-VMA seqlock write sections (not
      // the stripe's structural seqcount — §5.2: a successful speculation must not
      // invalidate concurrent speculations or optimistic walks). The lock-free fault
      // path is the one reader that cannot rely on a page-range acquisition to exclude
      // these writes; its meta_seq snapshot turns a mid-commit read of (bounds, prot)
      // — and the transient gap a boundary move passes through — into a retry. Both
      // sections of a move open before either boundary store and close after both, so
      // a fault racing the move observes an odd/advanced seqlock on whichever VMA it
      // reads.
      bool fell_back = false;
      switch (ClassifySpeculative(vma, s, e, prot)) {
        case SpecCase::kNoop:
          break;
        case SpecCase::kWholeFlip:
          vma->meta_seq.BeginWrite();
          vma->prot.store(prot, std::memory_order_relaxed);
          vma->meta_seq.EndWrite();
          break;
        case SpecCase::kHeadMove: {
          // Shrink the receiver-side boundary last so the region transits through a
          // (locked, unreachable-to-locked-readers) gap rather than a transient
          // overlap.
          Vma* prev = VmaStripe::Prev(vma);
          // The receiver may gain pages whose installs were (or will be, by a fault
          // that read the old bounds) attributed to the donor, so its own hint stops
          // being a sound upper bound. Saturate it: never under-counts, never lets an
          // unmap of the receiver skip its sweep, and the next strict CheckInvariants
          // resyncs it to the exact count. The donor keeps its hint (a bound on a
          // superset range is a bound on the shrunk one).
          SaturateHint(prev);
          vma->meta_seq.BeginWrite();
          prev->meta_seq.BeginWrite();
          vma->start.store(e, std::memory_order_relaxed);
          prev->end.store(e, std::memory_order_relaxed);
          prev->meta_seq.EndWrite();
          vma->meta_seq.EndWrite();
          break;
        }
        case SpecCase::kTailMove: {
          Vma* next = VmaStripe::Next(vma);
          SaturateHint(next);  // receiver side — see kHeadMove
          vma->meta_seq.BeginWrite();
          next->meta_seq.BeginWrite();
          vma->end.store(s, std::memory_order_relaxed);
          next->start.store(s, std::memory_order_relaxed);
          next->meta_seq.EndWrite();
          vma->meta_seq.EndWrite();
          break;
        }
        case SpecCase::kStructural:
          stats_.spec_fallback.fetch_add(1, std::memory_order_relaxed);
          speculate = false;
          fell_back = true;
          break;
      }
      st.UnlockStable();
      lock_->UnlockWrite(wh);
      if (fell_back) {
        continue;  // redo on the structural path
      }
    }
    stats_.spec_success.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

bool AddressSpace::PageFaultLocked(uint64_t addr, bool is_write, uint64_t page_addr) {
  Vma* vma = FindVmaForRead(addr);
  bool ok = vma != nullptr && vma->Start() <= addr;
  if (ok) {
    const uint32_t required = is_write ? kProtWrite : kProtRead;
    ok = (vma->Prot() & required) == required;
  }
  if (ok) {
    const uint64_t page = page_addr / kPageSize;
    if (pages_.Install(page)) {
      vma->present_hint.fetch_add(1, std::memory_order_relaxed);
      stats_.stripe(index_.IndexOf(page_addr))
          .major_faults.fetch_add(1, std::memory_order_relaxed);
    }
    if (deferred_sweeps_) {
      // The page is (re-)validated present under a mapping: punch it out of any
      // still-pending DONTNEED sweep so the deferred erase cannot undo this fault
      // (the madvise/fault repopulation contract — see SweepQueue::CancelPending).
      sweeps_[index_.IndexOf(page_addr)].value.CancelPending(page);
    }
  } else {
    stats_.fault_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return ok;
}

// The lock-free fault fast path (scoped variants only). No range acquisition at all:
//
//   snapshot  — one epoch-quantum guard (amortized: 2 RMWs per kOpsPerQuantum faults,
//               not per fault) keeps every VMA the walk touches dereferenceable; one
//               bounded optimistic walk of THE FAULTING ADDRESS'S STRIPE returns the
//               candidate VMA plus the even snapshot of that stripe's structural
//               seqcount the walk validated against. Other stripes' churn is invisible
//               to this snapshot — the point of striping.
//   read      — the covering VMA's (start, end, prot) under its per-VMA meta_seq
//               seqlock, which metadata-only speculative mprotects bump (they are
//               invisible to the structural seqcounts by design).
//   install   — conditional page install for a proven-covered access.
//   validate  — re-validate the stripe's seqcount and the VMA's live flag AFTER the
//               install. Install/validate in that order is the load-bearing decision:
//               a munmap of this stripe bumps the stripe seqcount (unlink) strictly
//               before it sweeps the page table, so a fault whose install lands after
//               the sweep observes the bump and undoes, while a fault whose validation
//               passes had its install ordered before the unlink — and therefore
//               before the sweep, which erases it. Either way no page survives in an
//               unmapped range. (A munmap of a DIFFERENT stripe cannot unmap this
//               address: VMAs never straddle stripe windows, so the covering mapping
//               and the faulting address share a stripe — the per-stripe restatement
//               of the PR 4 ordering argument.)
//   undo/retry/fallback — a failed validation removes the page this fault installed
//               (spurious removal of a concurrent fault's identical install is benign:
//               it is indistinguishable from MADV_DONTNEED and the next touch
//               reinstalls) and retries; gaps and exhausted budgets degrade to the
//               trylock-first locked path, whose page-range read lock excludes every
//               writer of the faulting page and can adjudicate negatives exactly.
//
// Trust discipline: a *successful* return requires the post-install validation; a
// *SIGSEGV* return requires both the stripe's seqcount and the per-VMA seqlock to
// validate (a transient gap observed mid-boundary-move is neither — it falls back).
int AddressSpace::PageFaultOptimistic(uint64_t addr, bool is_write, uint64_t page_addr) {
  EpochQuantumGuard guard(EpochDomain::Global());
  const unsigned si = index_.IndexOf(addr);
  const VmaStripe& stripe = index_.Stripe(si);
  VmStripeStats& sstats = stats_.stripe(si);
  for (int attempt = 0; attempt < kFaultSpecAttempts; ++attempt) {
    Vma* vma = nullptr;
    uint64_t iseq = 0;
    if (!stripe.TryFindOptimistic(addr, &vma, &iseq)) {
      stats_.find_retries.fetch_add(1, std::memory_order_relaxed);
      stats_.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      sstats.find_retries.fetch_add(1, std::memory_order_relaxed);
      sstats.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (vma == nullptr) {
      // Above every mapping of this stripe. The maximal End() only moves under a
      // structural mutation (boundary moves need a successor), which the validated
      // walk excludes — but the locked path adjudicates all negatives for uniformity.
      return -1;
    }
    const uint64_t vseq = vma->meta_seq.ReadBegin();
    const uint64_t vs = vma->Start();
    const uint64_t ve = vma->End();
    const uint32_t prot = vma->Prot();
    if (!vma->meta_seq.Validate(vseq)) {
      stats_.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      sstats.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      continue;  // torn metadata read: a boundary move / flip overlapped
    }
    if (vs > addr || ve <= addr) {
      // A gap. Possibly real (SIGSEGV), possibly the transient hole a completed
      // boundary move leaves between the walk and the field reads (the bytes now
      // belong to the *predecessor*). Only the locked path can tell them apart.
      return -1;
    }
    const uint32_t required = is_write ? kProtWrite : kProtRead;
    if ((prot & required) != required) {
      // Deny only against doubly-validated state: the per-VMA seqlock proved the
      // (bounds, prot) pair consistent; an unchanged stripe seqcount proves the VMA
      // was live and un-clipped for the whole read window.
      if (stripe.ValidateSeq(iseq) && !vma->Detached()) {
        sstats.fault_spec_ok.fetch_add(1, std::memory_order_relaxed);
        stats_.fault_errors.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      stats_.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      sstats.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    if (test_validate_before_install_) {
      // TEST-ONLY broken ordering: validate, dawdle, then install. A munmap landing in
      // the window strands the install after the page sweep — the stale page the
      // fault-vs-unmap battery exists to catch.
      if (!stripe.ValidateSeq(iseq) || vma->Detached()) {
        stats_.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
        sstats.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      for (uint32_t i = 0; i < test_spec_window_yields_; ++i) {
        std::this_thread::yield();
      }
      if (pages_.Install(page_addr / kPageSize)) {
        vma->present_hint.fetch_add(1, std::memory_order_relaxed);
        sstats.major_faults.fetch_add(1, std::memory_order_relaxed);
      }
      sstats.fault_spec_ok.fetch_add(1, std::memory_order_relaxed);
      return 1;
    }

    const uint64_t page = page_addr / kPageSize;
    uint64_t ticket = 0;
    const bool installed = pages_.Install(page, &ticket);
    if (installed) {
      // Count against the hint before validating, so a loser's (possible) decrement
      // always follows its own increment and the hint never dips below the true count.
      vma->present_hint.fetch_add(1, std::memory_order_relaxed);
      // Pairs with the fence in ApplyMunmapLocked: orders the hint increment above
      // before the seqcount load in ValidateSeq below. Either a racing munmap's hint
      // read sees the increment (its sweep bound covers this install), or this
      // validation sees its seqcount bump and the fault loses. Locked faults need no
      // fence — the range lock orders them against munmap wholesale.
      SeqCstFence();
    }
    for (uint32_t i = 0; i < test_spec_window_yields_; ++i) {
      std::this_thread::yield();
    }
    if (installed) {
      // Test-only deterministic park gate (TestOnlyParkNextSpecFault): hold this
      // fault inside the install→validate window until the test releases it.
      uint32_t pend = test_spec_park_pending_.load(std::memory_order_acquire);
      if (pend != 0 && test_spec_park_pending_.compare_exchange_strong(
                           pend, 0, std::memory_order_acq_rel)) {
        test_spec_parked_.store(true, std::memory_order_release);
        const auto backstop =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (!test_spec_park_release_.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < backstop) {
          std::this_thread::yield();
        }
      }
    }
    if (!stripe.ValidateSeq(iseq) || vma->Detached()) {
      if (installed) {
        if (test_undo_sweep_check_) {
          // Deferred-sweep-aware undo. A pending sweep covering the page hands the
          // erase to the flusher: the sweep was enqueued (queue lock) before this
          // check read it, so the flusher's claim — and therefore its erase — is
          // ordered after our install; removing here too would be a double undo
          // window. Handing off also raises the range's expected bound by one (our
          // install happened after the munmap summed the hints, so the bound may not
          // count it — the bounded probe must not stop short of our page). No pending
          // sweep means any covering sweep was already claimed and may have erased
          // our install and let a winning fault re-install the page — RemoveExact
          // removes only our own install (ticket match), never the winner's, and the
          // hint is decremented only when we actually removed. When RemoveExact finds
          // the page already gone, a claimed sweep erased our transient install — and
          // if its probe was budget-bounded, the unit it spent on us was meant for a
          // real dead page that may now sit past the probe's stop point. RaiseClaimed
          // re-arms the claimed range's unprobed tail with one budget unit; a miss
          // means the erasing probe ran to completion, which leaves no survivors.
          if (!sweeps_[si].value.DeferUndoToPending(page)) {
            if (pages_.RemoveExact(page, ticket)) {
              vma->present_hint.fetch_sub(1, std::memory_order_relaxed);
            } else {
              sweeps_[si].value.RaiseClaimed(page);
            }
          }
        } else {
          // TEST-ONLY pre-deferral blind undo (TestOnlySetUndoSweepCheck(false)): can
          // erase a winner's re-install after a sweep flushed ours — the stale-absence
          // the extended fault-vs-unmap oracle exists to catch.
          pages_.Remove(page);
          vma->present_hint.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      stats_.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      sstats.fault_spec_retry.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (installed) {
      sstats.major_faults.fetch_add(1, std::memory_order_relaxed);
    }
    if (deferred_sweeps_) {
      // WINNING fault only: the unchanged seqcount proves the mapping stayed live
      // from walk through validate, so any still-pending sweep covering this page is
      // a DONTNEED on the live mapping — punch the page out so the deferred erase
      // cannot undo a fault that completed after the madvise call (the repopulation
      // contract; see SweepQueue::CancelPending). A LOSER must not cancel: its stale
      // walk may have found the VMA a munmap just unlinked, and cancelling there
      // would disarm the munmap's own sweep and strand a pre-munmap install.
      sweeps_[si].value.CancelPending(page);
    }
    sstats.fault_spec_ok.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }
  return -1;
}

bool AddressSpace::PageFault(uint64_t addr, bool is_write) {
  stats_.stripe(index_.IndexOf(addr)).faults.fetch_add(1, std::memory_order_relaxed);
  const uint64_t page_addr = PageDown(addr);
  if (scoped_structural_) {
    const int verdict = PageFaultOptimistic(addr, is_write, page_addr);
    if (verdict >= 0) {
      return verdict != 0;
    }
    stats_.fault_spec_fallback.fetch_add(1, std::memory_order_relaxed);
  }
  const Range r = refine_fault_ ? Range{page_addr, page_addr + kPageSize} : Range::Full();
  // Trylock-first, mirroring the kernel fault path (do_user_addr_fault does
  // mmap_read_trylock before it will ever sleep): the uncontended fault never blocks,
  // and the contended one falls back to the ordinary blocking acquisition.
  void* h = nullptr;
  if (lock_->TryLockRead(r, &h)) {
    stats_.fault_try_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.fault_try_fallback.fetch_add(1, std::memory_order_relaxed);
    h = lock_->LockRead(r);
  }
  bool ok;
  if (scoped_structural_) {
    // The page-range read lock no longer excludes out-of-range structural writers, so
    // the lookup walks optimistically and the epoch guard keeps any VMA the walk
    // touches (including concurrently retired ones) dereferenceable.
    EpochGuard guard(EpochDomain::Global());
    ok = PageFaultLocked(addr, is_write, page_addr);
  } else {
    ok = PageFaultLocked(addr, is_write, page_addr);
  }
  lock_->UnlockRead(h);
  return ok;
}

bool AddressSpace::MadviseDontNeed(uint64_t addr, uint64_t length) {
  if (length == 0) {
    return false;
  }
  const uint64_t s = PageDown(addr);
  const uint64_t e = PageUp(addr + length);
  if (e <= s) {
    return false;  // wrapped range
  }
  // MADV_DONTNEED runs under the read acquisition in the kernel: it only drops pages.
  // Deferred mode enqueues the drop instead (see the header for the exact contract —
  // only pre-call installs are guaranteed gone, and only once the sweep flushes). No
  // present_hint is decremented: the hint is an upper bound and only a fault's own
  // exact undo may lower it.
  void* h = lock_->LockRead(refine_fault_ ? Range{s, e} : Range::Full());
  if (deferred_sweeps_) {
    EnqueueSweepRange(s, e);
  } else {
    pages_.RemoveRange(s / kPageSize, e / kPageSize);
  }
  lock_->UnlockRead(h);
  if (deferred_sweeps_) {
    MaybeFlushSweeps(index_.IndexOf(s));
  }
  return true;
}

std::vector<VmaInfo> AddressSpace::SnapshotVmas() {
  std::vector<VmaInfo> out;
  // The full-range write acquisition conflicts with every scoped writer and reader, so
  // every stripe's tree is quiescent and plain cross-stripe iteration is safe.
  void* h = lock_->LockFullWrite();
  const unsigned last = stripes_ - 1;
  for (Vma* v = index_.First(0, last); v != nullptr; v = index_.Next(v, last)) {
    out.push_back({v->Start(), v->End(), v->Prot()});
  }
  lock_->UnlockWrite(h);
  return out;
}

bool AddressSpace::CheckInvariants(bool strict_present_counts) {
  // Settle the deferred sweeps BEFORE taking the full write lock: DrainSweeps runs an
  // epoch barrier, and a barrier under the lock could stall every other operation for
  // the force-quiesce watchdog period.
  DrainSweeps();
  void* h = lock_->LockFullWrite();
  bool ok = index_.ValidateStructure();
  uint64_t prev_end = 0;
  const unsigned last = stripes_ - 1;
  for (Vma* v = index_.First(0, last); ok && v != nullptr; v = index_.Next(v, last)) {
    const uint64_t vs = v->Start();
    const uint64_t ve = v->End();
    ok = vs < ve && vs % kPageSize == 0 && ve % kPageSize == 0 && vs >= prev_end &&
         // No VMA may straddle a stripe-window edge: stripe-local lookups depend on it.
         index_.IndexOf(vs) == index_.IndexOf(ve - 1);
    if (ok && strict_present_counts) {
      // The hint must bound the exact count from above (a hint below it would let an
      // unmap skip a sweep whose pages exist — the stale-page bug class); once proven,
      // resync it so hint-based decisions stay tight. Only sound for quiescent
      // callers: a concurrent fault's install lands in the count before its hint
      // increment is visible.
      const uint64_t actual = pages_.CountRange(vs / kPageSize, ve / kPageSize);
      if (v->present_hint.load(std::memory_order_relaxed) < actual) {
        ok = false;
      } else {
        v->present_hint.store(actual, std::memory_order_relaxed);
      }
    }
    prev_end = ve;
  }
  if (ok) {
    // No page may be present outside a mapped VMA — unless a sweep enqueued since the
    // drain above (a concurrent unmapper) still covers it, in which case it is dead
    // but not yet swept, which the drain-barrier contract allows.
    std::vector<uint64_t> suspects;
    for (uint64_t page : pages_.AllPages()) {
      const uint64_t a = page * kPageSize;
      Vma* v = index_.Find(a, 0, last);
      if ((v == nullptr || v->Start() > a) &&
          !sweeps_[index_.IndexOf(a)].value.CoversPending(page)) {
        suspects.push_back(page);
      }
    }
    if (!suspects.empty()) {
      // Not a verdict yet: a speculative fault that is about to lose holds a
      // transient install in a just-unmapped range for its whole
      // install→validate→undo window, which preemption can stretch across this
      // entire scan — and our full write lock does not order lock-free faults.
      // Settle instead of flaking: drop the lock, drain (the barrier waits out every
      // such fault and the second flush applies any undo or RaiseClaimed
      // compensation it posted), and re-examine only the recorded suspects. A real
      // leak survives the drain and still fails.
      lock_->UnlockWrite(h);
      DrainSweeps();
      h = lock_->LockFullWrite();
      for (uint64_t page : suspects) {
        if (pages_.CountRange(page, page + 1) == 0) {
          continue;  // the loser undid it (or a sweep caught it): transient, fine
        }
        const uint64_t a = page * kPageSize;
        Vma* v = index_.Find(a, 0, last);
        if ((v == nullptr || v->Start() > a) &&
            !sweeps_[index_.IndexOf(a)].value.CoversPending(page)) {
          ok = false;
          break;
        }
      }
    }
  }
  lock_->UnlockWrite(h);
  return ok;
}

}  // namespace srl::vm
