#include "src/vm/address_space.h"

#include <cassert>

namespace srl::vm {

namespace {

struct VariantConfig {
  VmLockKind kind;
  bool refine_fault;
  bool refine_mprotect;
};

VariantConfig ConfigFor(VmVariant v) {
  switch (v) {
    case VmVariant::kStock:
      return {VmLockKind::kStock, false, false};
    case VmVariant::kTreeFull:
      return {VmLockKind::kTree, false, false};
    case VmVariant::kTreeRefined:
      return {VmLockKind::kTree, true, true};
    case VmVariant::kListFull:
      return {VmLockKind::kList, false, false};
    case VmVariant::kListRefined:
      return {VmLockKind::kList, true, true};
    case VmVariant::kListPf:
      return {VmLockKind::kList, true, false};
    case VmVariant::kListMprotect:
      return {VmLockKind::kList, false, true};
  }
  return {VmLockKind::kStock, false, false};
}

}  // namespace

const char* VmVariantName(VmVariant v) {
  switch (v) {
    case VmVariant::kStock:
      return "stock";
    case VmVariant::kTreeFull:
      return "tree-full";
    case VmVariant::kTreeRefined:
      return "tree-refined";
    case VmVariant::kListFull:
      return "list-full";
    case VmVariant::kListRefined:
      return "list-refined";
    case VmVariant::kListPf:
      return "list-pf";
    case VmVariant::kListMprotect:
      return "list-mprotect";
  }
  return "?";
}

AddressSpace::AddressSpace(VmVariant variant) : variant_(variant) {
  const VariantConfig cfg = ConfigFor(variant);
  refine_fault_ = cfg.refine_fault;
  refine_mprotect_ = cfg.refine_mprotect;
  lock_ = MakeVmLock(cfg.kind);
}

AddressSpace::~AddressSpace() = default;

Vma* AddressSpace::AllocVma(uint64_t start, uint64_t end, uint32_t prot) {
  Vma* vma;
  if (!vma_freelist_.empty()) {
    vma = vma_freelist_.back();
    vma_freelist_.pop_back();
  } else {
    vma_storage_.push_back(std::make_unique<Vma>());
    vma = vma_storage_.back().get();
  }
  vma->start.store(start, std::memory_order_relaxed);
  vma->end.store(end, std::memory_order_relaxed);
  vma->prot.store(prot, std::memory_order_relaxed);
  vma->rb_parent = vma->rb_left = vma->rb_right = nullptr;
  return vma;
}

void AddressSpace::FreeVma(Vma* vma) { vma_freelist_.push_back(vma); }

Vma* AddressSpace::FindVma(uint64_t addr) const {
  Vma* n = mm_rb_.Root();
  Vma* best = nullptr;
  while (n != nullptr) {
    if (n->End() > addr) {
      best = n;
      n = n->rb_left;
    } else {
      n = n->rb_right;
    }
  }
  return best;
}

uint64_t AddressSpace::Mmap(uint64_t length, uint32_t prot) {
  if (length == 0) {
    return 0;
  }
  stats_.mmaps.fetch_add(1, std::memory_order_relaxed);
  const uint64_t size = PageUp(length);
  // One guard page between allocations keeps distinct mappings (e.g. per-thread arenas)
  // as distinct VMAs, as separate mmap calls produce in practice.
  const uint64_t addr =
      mmap_cursor_.fetch_add(size + kPageSize, std::memory_order_relaxed);
  void* h = lock_->LockFullWrite();
  mm_rb_.Insert(AllocVma(addr, addr + size, prot));
  UnlockFullWrite(h);
  return addr;
}

bool AddressSpace::Munmap(uint64_t addr, uint64_t length) {
  if (length == 0) {
    return false;
  }
  stats_.munmaps.fetch_add(1, std::memory_order_relaxed);
  const uint64_t s = PageDown(addr);
  const uint64_t e = PageUp(addr + length);
  if (speculate_unmap_lookup_) {
    // Probe phase under a read acquisition: if the range maps nothing, the answer is
    // stable (see SetUnmapLookupSpeculation) and the full write lock is never taken.
    void* rh = lock_->LockRead({s, e});
    Vma* v = FindVma(s);
    const bool any_overlap = v != nullptr && v->Start() < e;
    lock_->UnlockRead(rh);
    if (!any_overlap) {
      stats_.unmap_lookup_fastpath.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  void* h = lock_->LockFullWrite();
  bool any = false;
  Vma* v = FindVma(s);
  while (v != nullptr && v->Start() < e) {
    Vma* next = RbTree<Vma, VmaTraits>::Next(v);
    const uint64_t vs = v->Start();
    const uint64_t ve = v->End();
    if (s <= vs && e >= ve) {
      // Fully covered: remove.
      mm_rb_.Erase(v);
      FreeVma(v);
    } else if (s <= vs) {
      // Head clipped. Key grows but stays below the successor's start.
      v->start.store(e, std::memory_order_relaxed);
    } else if (e >= ve) {
      // Tail clipped.
      v->end.store(s, std::memory_order_relaxed);
    } else {
      // Hole in the middle: shrink v to the head, insert a new VMA for the tail.
      v->end.store(s, std::memory_order_relaxed);
      Vma* tail = AllocVma(e, ve, v->Prot());
      mm_rb_.Insert(tail);
    }
    any = true;
    v = next;
  }
  if (any) {
    pages_.RemoveRange(s / kPageSize, e / kPageSize);
  }
  UnlockFullWrite(h);
  return any;
}

bool AddressSpace::ApplyMprotectLocked(uint64_t s, uint64_t e, uint32_t prot) {
  // Coverage check first — no partial effects on ENOMEM, matching the kernel's
  // behaviour for the common case.
  {
    uint64_t cur = s;
    Vma* v = FindVma(s);
    while (cur < e) {
      if (v == nullptr || v->Start() > cur) {
        return false;
      }
      cur = v->End();
      v = RbTree<Vma, VmaTraits>::Next(v);
    }
  }
  // Split so that [s, e) is tiled by whole VMAs, flipping protections as we go. Splits
  // always keep the existing node as the left piece (its tree key is unchanged) and
  // insert the right piece as a new node, so tree order is never transiently violated.
  Vma* v = FindVma(s);
  while (v != nullptr && v->Start() < e) {
    if (v->Prot() == prot) {
      v = RbTree<Vma, VmaTraits>::Next(v);
      continue;
    }
    if (v->Start() < s) {
      Vma* tail = AllocVma(s, v->End(), v->Prot());
      v->end.store(s, std::memory_order_relaxed);
      mm_rb_.Insert(tail);
      v = tail;
      continue;  // reprocess the covered piece
    }
    if (v->End() > e) {
      Vma* tail = AllocVma(e, v->End(), v->Prot());
      v->end.store(e, std::memory_order_relaxed);
      mm_rb_.Insert(tail);
    }
    v->prot.store(prot, std::memory_order_relaxed);
    v = RbTree<Vma, VmaTraits>::Next(v);
  }
  // Merge sweep over the affected neighbourhood (the kernel merges eagerly in
  // vma_merge; we restore the canonical form after the fact).
  Vma* m = FindVma(s == 0 ? 0 : s - 1);
  while (m != nullptr && m->Start() <= e) {
    Vma* next = RbTree<Vma, VmaTraits>::Next(m);
    if (next != nullptr && m->End() == next->Start() && m->Prot() == next->Prot()) {
      m->end.store(next->End(), std::memory_order_relaxed);
      mm_rb_.Erase(next);
      FreeVma(next);
      continue;  // try to absorb further
    }
    m = next;
  }
  return true;
}

AddressSpace::SpecCase AddressSpace::ClassifySpeculative(Vma* vma, uint64_t s, uint64_t e,
                                                         uint32_t prot) {
  const uint64_t vs = vma->Start();
  const uint64_t ve = vma->End();
  if (s < vs || e > ve) {
    return SpecCase::kStructural;  // spans VMAs (or a gap) — full path sorts it out
  }
  if (vma->Prot() == prot) {
    return SpecCase::kNoop;
  }
  Vma* prev = RbTree<Vma, VmaTraits>::Prev(vma);
  Vma* next = RbTree<Vma, VmaTraits>::Next(vma);
  const bool prev_mergeable =
      prev != nullptr && prev->End() == vs && prev->Prot() == prot;
  const bool next_mergeable =
      next != nullptr && next->Start() == ve && next->Prot() == prot;
  if (s == vs && e == ve) {
    // Whole-VMA flip: only metadata-unchanged if no neighbour would merge (a merge
    // removes a node from mm_rb — structural).
    return (prev_mergeable || next_mergeable) ? SpecCase::kStructural
                                              : SpecCase::kWholeFlip;
  }
  if (s == vs && prev_mergeable) {
    return SpecCase::kHeadMove;  // Figure 2: the head of vma joins prev
  }
  if (e == ve && next_mergeable) {
    return SpecCase::kTailMove;  // mirror image: the tail of vma joins next
  }
  return SpecCase::kStructural;  // interior change — needs a split
}

bool AddressSpace::Mprotect(uint64_t addr, uint64_t length, uint32_t prot) {
  if (length == 0) {
    return false;
  }
  stats_.mprotects.fetch_add(1, std::memory_order_relaxed);
  const uint64_t s = PageDown(addr);
  const uint64_t e = PageUp(addr + length);

  bool speculate = refine_mprotect_;
  for (;;) {
    if (!speculate) {
      void* h = lock_->LockFullWrite();
      const bool ok = ApplyMprotectLocked(s, e, prot);
      UnlockFullWrite(h);
      return ok;
    }

    // Listing 4: read-lock the argument range for the lookup phase.
    void* rh = lock_->LockRead({s, e});
    Vma* vma = FindVma(s);
    if (vma == nullptr || vma->Start() > s) {
      lock_->UnlockRead(rh);
      return false;  // start address unmapped — ENOMEM
    }
    const uint64_t seq = seq_.Read();
    const uint64_t aligned_start = vma->Start() - kPageSize;
    const uint64_t aligned_end = vma->End() + kPageSize;
    lock_->UnlockRead(rh);

    // Re-acquire for write with the range widened to the VMA plus one page on each
    // side, so concurrent boundary moves on the neighbours are excluded (§5.2).
    void* wh = lock_->LockWrite({aligned_start, aligned_end});
    if (seq != seq_.Read() || aligned_start != vma->Start() - kPageSize ||
        aligned_end != vma->End() + kPageSize) {
      lock_->UnlockWrite(wh);
      stats_.spec_retries.fetch_add(1, std::memory_order_relaxed);
      continue;  // mm_rb may have changed under us — retry from the top
    }

    switch (ClassifySpeculative(vma, s, e, prot)) {
      case SpecCase::kNoop:
        break;
      case SpecCase::kWholeFlip:
        vma->prot.store(prot, std::memory_order_relaxed);
        break;
      case SpecCase::kHeadMove: {
        // Shrink the receiver-side boundary last so the region transits through a
        // (locked, unreachable) gap rather than a transient overlap.
        Vma* prev = RbTree<Vma, VmaTraits>::Prev(vma);
        vma->start.store(e, std::memory_order_relaxed);
        prev->end.store(e, std::memory_order_relaxed);
        break;
      }
      case SpecCase::kTailMove: {
        Vma* next = RbTree<Vma, VmaTraits>::Next(vma);
        vma->end.store(s, std::memory_order_relaxed);
        next->start.store(s, std::memory_order_relaxed);
        break;
      }
      case SpecCase::kStructural:
        lock_->UnlockWrite(wh);
        stats_.spec_fallback.fetch_add(1, std::memory_order_relaxed);
        speculate = false;
        continue;  // redo on the full path
    }
    lock_->UnlockWrite(wh);
    stats_.spec_success.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

bool AddressSpace::PageFault(uint64_t addr, bool is_write) {
  stats_.faults.fetch_add(1, std::memory_order_relaxed);
  const uint64_t page_addr = PageDown(addr);
  const Range r = refine_fault_ ? Range{page_addr, page_addr + kPageSize} : Range::Full();
  // Trylock-first, mirroring the kernel fault path (do_user_addr_fault does
  // mmap_read_trylock before it will ever sleep): the uncontended fault never blocks,
  // and the contended one falls back to the ordinary blocking acquisition.
  void* h = nullptr;
  if (lock_->TryLockRead(r, &h)) {
    stats_.fault_try_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.fault_try_fallback.fetch_add(1, std::memory_order_relaxed);
    h = lock_->LockRead(r);
  }
  Vma* vma = FindVma(addr);
  bool ok = vma != nullptr && vma->Start() <= addr;
  if (ok) {
    const uint32_t required = is_write ? kProtWrite : kProtRead;
    ok = (vma->Prot() & required) == required;
  }
  if (ok) {
    if (pages_.Install(page_addr / kPageSize)) {
      stats_.major_faults.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    stats_.fault_errors.fetch_add(1, std::memory_order_relaxed);
  }
  lock_->UnlockRead(h);
  return ok;
}

bool AddressSpace::MadviseDontNeed(uint64_t addr, uint64_t length) {
  if (length == 0) {
    return false;
  }
  const uint64_t s = PageDown(addr);
  const uint64_t e = PageUp(addr + length);
  // MADV_DONTNEED runs under the read acquisition in the kernel: it only drops pages.
  void* h = lock_->LockRead(refine_fault_ ? Range{s, e} : Range::Full());
  pages_.RemoveRange(s / kPageSize, e / kPageSize);
  lock_->UnlockRead(h);
  return true;
}

std::vector<VmaInfo> AddressSpace::SnapshotVmas() {
  std::vector<VmaInfo> out;
  void* h = lock_->LockFullWrite();
  for (Vma* v = mm_rb_.First(); v != nullptr; v = RbTree<Vma, VmaTraits>::Next(v)) {
    out.push_back({v->Start(), v->End(), v->Prot()});
  }
  UnlockFullWrite(h);
  return out;
}

bool AddressSpace::CheckInvariants() {
  void* h = lock_->LockFullWrite();
  bool ok = mm_rb_.ValidateStructure();
  uint64_t prev_end = 0;
  for (Vma* v = mm_rb_.First(); ok && v != nullptr; v = RbTree<Vma, VmaTraits>::Next(v)) {
    const uint64_t vs = v->Start();
    const uint64_t ve = v->End();
    ok = vs < ve && vs % kPageSize == 0 && ve % kPageSize == 0 && vs >= prev_end;
    prev_end = ve;
  }
  if (ok) {
    // No page may be present outside a mapped VMA.
    for (uint64_t page : pages_.AllPages()) {
      const uint64_t a = page * kPageSize;
      Vma* v = FindVma(a);
      if (v == nullptr || v->Start() > a) {
        ok = false;
        break;
      }
    }
  }
  UnlockFullWrite(h);
  return ok;
}

}  // namespace srl::vm
