// Simulated process address space — the mm_struct analogue the kernel experiments run
// against (§5).
//
// Structure mirrors the kernel: VMAs in an rb tree (mm_rb, wrapped by VmaIndex) keyed by
// start, a find_vma() that returns the first VMA whose end exceeds the queried address,
// eager merging of adjacent same-protection VMAs, splits on partial-range protection
// changes, and a page table consulted by the fault path. The whole subsystem is guarded
// by a pluggable VmLock; range refinement follows §5.2/§5.3, and the scoped variants
// push it one step past the paper:
//
//   * mmap / munmap / structural mprotect:
//       - full-range variants: full-range write lock, always (structural, §5.2).
//       - scoped variants (kTreeScoped / kListScoped): write lock on the affected range
//         only — mmap locks [base, base+len); munmap and structural mprotect lock the
//         argument range padded by one page on each side, which covers every boundary
//         they can move (neighbour merges included). The rb tree itself is protected by
//         the owning stripe's mutation lock + seqcount, so disjoint-range structural
//         ops proceed in parallel — the user-space analogue of the kernel's
//         per-VMA-lock / maple-tree direction. A classify-then-fallback guard
//         (mirroring the SpecCase protocol) degrades any operation whose padded range
//         cannot be represented (top-of-address-space overflow) or crosses a stripe
//         edge to the full-range path, so correctness never depends on the scoped
//         reasoning in the corner cases.
//   * page fault: read lock — full range, or just the faulting page when `refine_fault`
//     is set (§5.3). Scoped variants additionally look the VMA up with a
//     seqcount-validated optimistic walk inside an epoch critical section, because
//     their read acquisition no longer excludes out-of-range structural writers.
//   * mprotect: full-range write lock, or the speculative protocol of Listing 4 when
//     `refine_mprotect` is set: read-lock the argument range, find the VMA, snapshot the
//     sequence number, re-lock [vma.start - page, vma.end + page) for write, validate,
//     and fall back to the structural path whenever mm_rb would change structurally.
//
// Striped address spaces (the sharding layer on top of all of the above): the mmap
// region is carved into `Stripes()` disjoint power-of-two windows, each owning a
// complete VmaStripe (tree, mutation lock, structural seqcount, epoch retire list) and
// a cache-line-padded mmap cursor. A thread's mmaps carve from its *home stripe*
// (thread-registration-order hash, overflowing to the neighbouring stripe when a
// window is exhausted), so scoped structural ops from different threads touch no
// shared cache line at all. Every VMA lies wholly inside one window — the allocator
// never carves across an edge and the merge sweep never absorbs across one — so any
// address's stripe is a shift of its value, and a speculative fault validates against
// only its own stripe's seqcount: churn in stripe A costs faults in stripe B nothing.
// Operations whose (padded) range crosses a stripe edge classify-then-fallback to the
// full-range path, which locks the affected stripes in ascending order — a coherent
// fence. The structural sequence number, the speculation validator of §5.2, and the
// install-then-validate fault ordering all become per-stripe statements; see README
// "Striped address spaces" for the restated ordering argument.
//
// Lifetime of VMA records: epoch-based reclamation. An unlinked VMA is retired into
// its stripe's SharedRetireList and freed only after a grace period, so optimistic
// walkers and the speculative-mprotect window (Listing 4 line 15 reads vma->start with
// no lock held) never dereference freed memory.
#ifndef SRL_VM_ADDRESS_SPACE_H_
#define SRL_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/epoch/epoch_domain.h"
#include "src/epoch/sweep_queue.h"
#include "src/sync/spin_lock.h"
#include "src/vm/page_table.h"
#include "src/vm/vm_lock.h"
#include "src/vm/vm_stats.h"
#include "src/vm/vma.h"
#include "src/vm/vma_index.h"

namespace srl::vm {

// Named lock configurations of the kernel evaluation (Figures 5–8), plus the
// range-scoped structural extensions.
enum class VmVariant {
  kStock,         // mmap_sem semantics
  kTreeFull,      // tree range lock, always full range
  kTreeRefined,   // tree range lock + refined fault & speculative mprotect
  kListFull,      // list range lock, always full range
  kListRefined,   // list range lock + refined fault & speculative mprotect
  kListPf,        // list lock, refined fault only (Figure 6 breakdown)
  kListMprotect,  // list lock, speculative mprotect only (Figure 6 breakdown)
  kTreeScoped,    // tree lock, refined + range-scoped structural ops
  kListScoped,    // list lock, refined + range-scoped structural ops
  kListLfFull,      // lock-free bucketed list lock, always full range
  kListLfScoped,    // lock-free bucketed list lock, refined + range-scoped structural ops
  kSkiplistFull,    // skiplist-indexed lock, always full range
  kSkiplistScoped,  // skiplist-indexed lock, refined + range-scoped structural ops
};

const char* VmVariantName(VmVariant v);

// Canonical list of every variant, in presentation order (benches resolve --variants
// flags against this, so the flag parser and the enum can never drift).
inline constexpr VmVariant kAllVmVariants[] = {
    VmVariant::kStock,        VmVariant::kTreeFull,    VmVariant::kTreeRefined,
    VmVariant::kListFull,     VmVariant::kListRefined, VmVariant::kListPf,
    VmVariant::kListMprotect, VmVariant::kTreeScoped,  VmVariant::kListScoped,
    VmVariant::kListLfFull,   VmVariant::kListLfScoped, VmVariant::kSkiplistFull,
    VmVariant::kSkiplistScoped,
};

// Reverse of VmVariantName over kAllVmVariants. Returns kStock with *ok = false when
// `name` matches no variant.
inline VmVariant VmVariantFromName(const std::string& name, bool* ok) {
  for (const VmVariant v : kAllVmVariants) {
    if (name == VmVariantName(v)) {
      *ok = true;
      return v;
    }
  }
  *ok = false;
  return VmVariant::kStock;
}

class AddressSpace {
 public:
  static constexpr uint64_t kPageSize = 4096;
  // Start of the mmap arena; keeps vma.start - kPageSize from underflowing.
  static constexpr uint64_t kMmapBase = VmaIndex::kStripeBase;
  // Bytes per address-space stripe window.
  static constexpr uint64_t kStripeSpan = uint64_t{1} << VmaIndex::kStripeShift;

  // `stripes` selects the address-space stripe count (clamped to [1, 64], rounded up
  // to a power of two). 0 picks the default: one stripe per hardware thread for the
  // scoped variants (whose structural ops are the ones that profit from sharing no
  // state), one stripe otherwise.
  explicit AddressSpace(VmVariant variant, unsigned stripes = 0);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Maps `length` bytes (rounded up to pages) with the given protection, carving from
  // the calling thread's home stripe. Returns the base address (never 0 on success;
  // 0 when every stripe window is exhausted).
  uint64_t Mmap(uint64_t length, uint32_t prot);

  // As Mmap, but carves from `stripe`'s window (overflowing to neighbours exactly like
  // the home-stripe policy). Benches and tests use this to pin workloads to stripes;
  // `stripe` must be < Stripes().
  uint64_t MmapInStripe(unsigned stripe, uint64_t length, uint32_t prot);

  // Unmaps [addr, addr+length). Splits partially covered VMAs, exactly like the kernel.
  // Returns false if the range touches no mapping.
  //
  // The VMA unlink and the stripe-seqcount bump are always synchronous (they are the
  // fence the speculative-fault ordering argument needs); the page-table sweep is, by
  // default, deferred to the per-stripe SweepQueue and flushed at operation boundaries
  // once the queue crosses its threshold — the kernel's TLB-batching shape. With
  // SetDeferredSweeps(false) the sweep runs inline under the write lock (the pre-
  // deferral behaviour; bench/abl_async_unmap compares the two).
  bool Munmap(uint64_t addr, uint64_t length);

  // As Munmap, but never flushes: the dead range is enqueued and the call returns with
  // the sweep wholly outstanding, to be paid by a later threshold flush or a
  // DrainSweeps. Defers even when SetDeferredSweeps(false) — this entry point IS the
  // async request. Use when unmap latency matters more than page-table tightness.
  bool MunmapAsync(uint64_t addr, uint64_t length);

  // Changes protection of [addr, addr+length). Returns false if the range is not fully
  // covered by existing mappings (ENOMEM in the kernel).
  bool Mprotect(uint64_t addr, uint64_t length, uint32_t prot);

  // Simulated page-fault interrupt for an access at `addr`. Returns true if the access
  // is legal (installing the page on first touch), false for SIGSEGV conditions.
  //
  // Scoped variants resolve the common case entirely lock-free (§5.2's speculative
  // read taken to its endgame, the user-space analogue of the kernel's per-VMA-lock
  // fault path): an epoch-quantum-guarded optimistic walk of the faulting address's
  // stripe, a per-VMA seqcount snapshot of the covering VMA's bounds and protection, a
  // conditional page install, then re-validation of the stripe's structural seqcount
  // and the VMA's live flag — retrying (bounded) on same-stripe overlap and degrading
  // to the trylock-first locked path when speculation cannot decide. See
  // PageFaultOptimistic for the ordering argument.
  bool PageFault(uint64_t addr, bool is_write);

  // MADV_DONTNEED semantics: drops the pages of [addr, addr+length) so the next touch
  // faults again. Used by the arena allocator's trim path (glibc frees trimmed pages).
  // Runs under a read acquisition like the kernel's madvise. Under deferred sweeps the
  // drop is enqueued, not immediate: pages installed before the call are guaranteed
  // gone only after the covering sweep flushes (DrainSweeps gives the hard edge), and
  // a fault racing the call may legitimately re-install a page afterwards — the same
  // contract Linux gives a fault racing madvise(MADV_DONTNEED).
  bool MadviseDontNeed(uint64_t addr, uint64_t length);

  // --- Deferred-sweep control -----------------------------------------------------

  // Default on: Munmap/MadviseDontNeed enqueue their page sweeps (see Munmap). Off
  // restores the inline sweep under the range acquisition.
  void SetDeferredSweeps(bool on) { deferred_sweeps_ = on; }
  bool DeferredSweeps() const { return deferred_sweeps_; }

  // Pages a stripe's queue accumulates before an operation boundary flushes it.
  void SetSweepFlushThreshold(uint64_t pages);
  // Batch size of the per-stripe VMA retire lists (SharedRetireList); forwarded to
  // every stripe. Exposed alongside the sweep threshold because both were originally
  // fixed constants guessed on one core.
  void SetRetireFlushThreshold(std::size_t n);

  // Drain barrier: flushes every stripe's queue, waits out every in-flight fault (an
  // epoch barrier — a losing fault that handed its undo to a pending sweep, or a stale
  // walker resurrecting a just-swept page, completes or undoes inside it), then
  // flushes again. Afterwards no page survives in any unmapped or DONTNEED'd range —
  // the deferred-sweep restatement of the fault-vs-unmap batteries' invariant. Call
  // holding no locks or ranges.
  void DrainSweeps();

  // Pages enqueued and not yet swept, summed over stripes (racy; tests/benches).
  uint64_t PendingSweepPages() const;

  // Extension of the paper's §5.2 closing remark (left as future work there): munmap
  // "starts from calling find_vma, during which the range lock can be held in the read
  // mode". When enabled, Munmap first probes [addr, addr+length) under a read
  // acquisition; if nothing is mapped there the call completes without ever taking a
  // write lock. This is sound because boundary-moving (speculative) mprotects never
  // change the union of mapped addresses, and every operation that does (mmap/munmap/
  // structural mprotect) write-locks the bytes it changes, which our read acquisition
  // excludes. Measured by bench/abl_unmap_spec. Off by default (off in the paper too).
  // Only meaningful for refined/scoped variants; ignored for stock.
  void SetUnmapLookupSpeculation(bool on) { speculate_unmap_lookup_ = on; }

  const VmStats& Stats() const { return stats_; }
  VmLock& Lock() { return *lock_; }
  VmVariant Variant() const { return variant_; }
  bool ScopedStructural() const { return scoped_structural_; }

  // --- Stripe introspection ---
  unsigned Stripes() const { return stripes_; }
  unsigned StripeOf(uint64_t addr) const { return index_.IndexOf(addr); }
  // The calling thread's home stripe (stable per thread for this space's stripe
  // count). Multicore hosts assign it from the CPU the thread first ran on, in
  // node-grouped enumeration order (see Topology); single-core hosts fall back to
  // deterministic registration-order round-robin.
  unsigned HomeStripe() const;

  // --- Introspection (each takes the full write lock; safe any time) ---

  std::vector<VmaInfo> SnapshotVmas();
  // VMAs sorted, non-overlapping, page-aligned, trees structurally valid, no VMA
  // straddling a stripe-window edge, and no page present outside a mapped VMA (modulo
  // pages a still-pending sweep covers). Runs DrainSweeps first so the page-table view
  // is consistent. With `strict_present_counts` (the default — sequential callers),
  // additionally asserts every VMA's present_hint is a sound upper bound on its
  // CountRange and resyncs the hint to the exact count; callers racing live faulters
  // (the concurrent fuzz checker) must pass false, because in-flight installs make the
  // hint transiently unordered against any count snapshot.
  bool CheckInvariants(bool strict_present_counts = true);
  std::size_t PresentPages() const { return pages_.Count(); }
  // Present pages within [addr, addr+length) — lock-free racy count (the fault-vs-unmap
  // batteries assert this drains to zero, post-DrainSweeps, for unmapped, never-reused
  // ranges). An empty range counts zero pages even when addr is mid-page (the
  // PageDown/PageUp mix used to widen length == 0 to a full page).
  std::size_t PresentPagesInRange(uint64_t addr, uint64_t length) const {
    if (length == 0) {
      return 0;
    }
    return pages_.CountRange(PageDown(addr) / kPageSize, PageUp(addr + length) / kPageSize);
  }

  // --- Test-only fault-ordering hooks -------------------------------------------
  // The speculative fault's correctness hinges on installing the page BEFORE
  // re-validating the stripe's structural seqcount (a fault that loses the race to a
  // munmap must observe the seq bump and undo, or the munmap's page sweep must observe
  // the install — never neither). This hook inverts that order and optionally widens
  // the race window with `window_yields` scheduler yields between validate and
  // install, so the fault-vs-unmap oracle battery can demonstrate it catches the
  // broken ordering. Never use outside tests.
  void TestOnlySetSpecFaultOrdering(bool validate_before_install, uint32_t window_yields) {
    test_validate_before_install_ = validate_before_install;
    test_spec_window_yields_ = window_yields;
  }

  // With deferred sweeps, the losing-fault undo must consult the sweep queue and use
  // its install ticket (see PageFaultOptimistic): a pending sweep covering the page
  // makes the undo the flusher's job, and an already-claimed sweep may have erased and
  // let a winning fault re-install the page — which a blind Remove would destroy,
  // driving the winner's VMA present_hint below the true count. `false` reverts to the
  // pre-deferral blind undo (Remove + unconditional hint decrement) so the extended
  // fault-vs-unmap oracle can demonstrate it catches the missing check. Tests only.
  void TestOnlySetUndoSweepCheck(bool on) { test_undo_sweep_check_ = on; }

  // Deterministic interleaving gate for the install→validate window: the NEXT
  // speculative fault to install a page consumes the (one-shot) token, flags itself
  // parked, and spins until TestOnlyReleaseParkedFault() — so a test can run an exact
  // sequence of structural operations inside the window instead of hoping a yield
  // count outlasts them. The park self-releases after ~5s as a hang backstop. Waiting
  // on TestOnlySpecFaultParked() (not on page presence) before proceeding guarantees
  // the token is consumed and cannot strand a later fault. Tests only.
  void TestOnlyParkNextSpecFault() {
    test_spec_park_release_.store(false, std::memory_order_release);
    test_spec_parked_.store(false, std::memory_order_release);
    test_spec_park_pending_.store(1, std::memory_order_release);
  }
  bool TestOnlySpecFaultParked() const {
    return test_spec_parked_.load(std::memory_order_acquire);
  }
  void TestOnlyReleaseParkedFault() {
    test_spec_park_release_.store(true, std::memory_order_release);
  }

 private:
  static uint64_t PageDown(uint64_t addr) { return addr & ~(kPageSize - 1); }
  static uint64_t PageUp(uint64_t addr) {
    return (addr + kPageSize - 1) & ~(kPageSize - 1);
  }

  Vma* AllocVma(uint64_t start, uint64_t end, uint32_t prot);

  // Bumps stripe `si`'s cursor by `size` + one guard page. Returns the carved base, or
  // 0 when the window cannot fit `size` more bytes. The carved region never extends
  // past the window end, so no VMA ever straddles a stripe edge.
  uint64_t CarveFromStripe(unsigned si, uint64_t size);

  // True if [s, e) overlaps any mapping. Caller holds a read acquisition covering
  // [s, e) (and is inside an epoch critical section when scoped).
  bool AnyMappingInRange(uint64_t s, uint64_t e);

  // VMA lookup for read-side paths, confined to `addr`'s stripe (a covering VMA never
  // straddles a stripe edge, so its stripe is the address's stripe). Scoped variants
  // cannot rely on their (partial) read acquisition to exclude structural writers, so
  // they take the optimistic walk; everyone else walks plainly under the exclusion
  // their lock already provides. The caller must be inside an epoch critical section
  // when scoped.
  Vma* FindVmaForRead(uint64_t addr) {
    const VmaStripe& stripe = index_.StripeFor(addr);
    return scoped_structural_ ? stripe.FindOptimistic(addr, &stats_)
                              : stripe.Find(addr);
  }

  // Fault body; caller holds the read acquisition (and an epoch guard when scoped).
  bool PageFaultLocked(uint64_t addr, bool is_write, uint64_t page_addr);

  // Lock-free speculative fault attempt (scoped variants). Returns 1 (legal access,
  // page installed), 0 (SIGSEGV proven against validated state), or -1 (undecidable
  // speculatively — gap observation or attempts exhausted; take the locked path).
  int PageFaultOptimistic(uint64_t addr, bool is_write, uint64_t page_addr);

  // Retry budget before the speculative fault degrades to the locked path. Retries are
  // caused by overlapping structural mutations of the SAME stripe — rare per-fault, so
  // a small budget keeps the worst case bounded without giving up the common case.
  static constexpr int kFaultSpecAttempts = 4;

  // Classification of a structural op's padded lock range [s-pg, e+pg). The pad is
  // clamped to s's stripe window where it pokes past an edge *and* [s, e) itself stays
  // inside: across a window edge there is nothing the pad must conflict with — no VMA
  // straddles an edge, so no cross-edge merge, clip, or speculative boundary move
  // exists. kScoped stores the stripe and the (clamped) lock range; kWrapped means the
  // pad overflowed the top of the address space; kCrossStripe means [s, e) genuinely
  // spans stripes. Both non-scoped outcomes take the full-range path.
  enum class RangeClass { kScoped, kWrapped, kCrossStripe };
  RangeClass ClassifyStructuralRange(uint64_t s, uint64_t e, unsigned* si, uint64_t* ls,
                                     uint64_t* le) const;

  // Munmap mutation loop; caller holds a write acquisition covering [s-pg, e+pg) (or
  // the full range) and the mutation locks of stripes [lo, hi], which cover the range.
  // Sets *expected_present to the saturating sum of the clipped/erased VMAs'
  // present_hints — a proven upper bound on pages still installed in [s, e). Zero
  // means the unmap skips the page sweep entirely; a finite value bounds the deferred
  // flusher's probe (SweepQueue::Range::expected).
  bool ApplyMunmapLocked(uint64_t s, uint64_t e, unsigned lo, unsigned hi,
                         uint64_t* expected_present);

  // Shared Munmap/MunmapAsync body; `flush_policy` selects inline sweep, deferred
  // sweep with threshold flush, or pure enqueue (async).
  enum class SweepPolicy { kInline, kDeferred, kAsync };
  bool MunmapImpl(uint64_t addr, uint64_t length, SweepPolicy policy);

  // Splits the page-aligned byte range [s, e) at stripe-window edges and enqueues each
  // piece on its stripe's sweep queue (counting stats); every piece carries the full
  // `expected` present-page bound (an upper bound for each). Caller may hold range
  // locks — enqueueing never sweeps.
  void EnqueueSweepRange(uint64_t s, uint64_t e,
                         uint64_t expected = SweepQueue::kUnbounded);

  // Claims and sweeps stripe `si`'s queue. Call holding no locks or ranges.
  void FlushSweeps(unsigned si);
  // Threshold-gated FlushSweeps — one relaxed load when below threshold. The
  // "epoch-tick" of the design: called at operation boundaries, where the caller
  // holds no locks and (for fault paths) sits between epoch quantums.
  void MaybeFlushSweeps(unsigned si);

  // Full-path mprotect body; same caller contract as ApplyMunmapLocked. Returns false
  // on uncovered ranges.
  bool ApplyMprotectLocked(uint64_t s, uint64_t e, uint32_t prot, unsigned lo,
                           unsigned hi);

  // Structural mprotect under a range-scoped write lock. Returns false when the padded
  // range cannot be represented or crosses a stripe edge and the caller must fall back
  // to the full-range path.
  bool ScopedStructuralMprotect(uint64_t s, uint64_t e, uint32_t prot, bool* ok);

  // Classification of a speculative mprotect against a single VMA (§5.2 / Figure 2).
  enum class SpecCase {
    kNoop,       // protection already matches
    kWholeFlip,  // whole-VMA flip with no mergeable neighbour
    kHeadMove,   // boundary move: head of vma joins the previous VMA
    kTailMove,   // boundary move: tail of vma joins the next VMA
    kStructural, // split / merge / multi-VMA — must take the structural path
  };
  SpecCase ClassifySpeculative(Vma* vma, uint64_t start, uint64_t end, uint32_t prot);

  VmVariant variant_;
  bool refine_fault_;
  bool refine_mprotect_;
  bool scoped_structural_;
  bool speculate_unmap_lookup_ = false;
  bool deferred_sweeps_ = true;
  bool test_validate_before_install_ = false;  // test-only; see the hook above
  bool test_undo_sweep_check_ = true;          // test-only; see the hook above
  uint32_t test_spec_window_yields_ = 0;
  std::atomic<uint32_t> test_spec_park_pending_{0};  // test-only park gate, see above
  std::atomic<bool> test_spec_parked_{false};
  std::atomic<bool> test_spec_park_release_{false};
  unsigned stripes_;  // power of two in [1, VmaIndex::kMaxStripes]
  std::unique_ptr<VmLock> lock_;
  VmaIndex index_;
  PageTable pages_;
  VmStats stats_;
  // Per-stripe mmap cursors, cache-line padded: mmaps from different home stripes
  // bounce no shared line (the PR 4 cursor was one global atomic).
  std::unique_ptr<CacheAligned<std::atomic<uint64_t>>[]> cursors_;
  // Per-stripe deferred-sweep queues, same ownership shape as the stripes' retire
  // lists: a page range's queue is its stripe's, so stripe-confined churn flushes
  // without touching (or locking) another stripe's queue.
  std::unique_ptr<CacheAligned<SweepQueue>[]> sweeps_;
  // Per-stripe tombstone GC: budget-exhausted sweeps leave tombstones in their queue
  // (see SweepQueue::FinishClaimed) that must outlive every fault in flight when they
  // settled — any of those could be a robbed loser still owing a RaiseClaimed. One
  // grace ticket per stripe covers every settled batch up to `hi`; when it elapses
  // (non-blocking poll on the next flush) those batches purge for free. `batch` hands
  // each flush its monotone stamp.
  struct SweepGc {
    SpinLock lock;
    EpochDomain::GraceTicket ticket;
    uint64_t hi = 0;
    bool armed = false;
    std::atomic<uint64_t> batch{0};
  };
  std::unique_ptr<CacheAligned<SweepGc>[]> sweep_gc_;
};

}  // namespace srl::vm

#endif  // SRL_VM_ADDRESS_SPACE_H_
