// Simulated process address space — the mm_struct analogue the kernel experiments run
// against (§5).
//
// Structure mirrors the kernel: VMAs in an rb tree (mm_rb) keyed by start, a find_vma()
// that returns the first VMA whose end exceeds the queried address, eager merging of
// adjacent same-protection VMAs, splits on partial-range protection changes, and a page
// table consulted by the fault path. The whole subsystem is guarded by a pluggable
// VmLock; range refinement follows §5.2/§5.3:
//
//   * mmap / munmap: full-range write lock, always (structural).
//   * page fault: read lock — full range, or just the faulting page when
//     `refine_fault` is set (§5.3).
//   * mprotect: full-range write lock, or the speculative protocol of Listing 4 when
//     `refine_mprotect` is set: read-lock the argument range, find the VMA, snapshot the
//     sequence number, re-lock [vma.start - page, vma.end + page) for write, validate,
//     and fall back to the full path whenever mm_rb would change structurally.
//
// Every release of a full-range write acquisition bumps the sequence counter (just
// before the release), which is what speculators validate against.
//
// Lifetime of VMA records: structural changes only happen under the full-range write
// lock, which excludes every reader, so unlinked VMAs could be freed immediately — but
// speculating threads legally dereference a stale vma pointer *between* their read and
// refined-write acquisitions (Listing 4 line 15 reads vma->start with no lock held).
// Freed-and-reused VMAs would still be readable garbage there; we therefore never free
// VMAs to the system during the AddressSpace's life but recycle them through an internal
// free list (mutations of their atomic fields are benign, and the sequence-number check
// rejects any acquisition based on stale values).
#ifndef SRL_VM_ADDRESS_SPACE_H_
#define SRL_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/rbtree/rb_tree.h"
#include "src/sync/seq_counter.h"
#include "src/vm/page_table.h"
#include "src/vm/vm_lock.h"
#include "src/vm/vm_stats.h"
#include "src/vm/vma.h"

namespace srl::vm {

// Named lock configurations of the kernel evaluation (Figures 5–8).
enum class VmVariant {
  kStock,         // mmap_sem semantics
  kTreeFull,      // tree range lock, always full range
  kTreeRefined,   // tree range lock + refined fault & speculative mprotect
  kListFull,      // list range lock, always full range
  kListRefined,   // list range lock + refined fault & speculative mprotect
  kListPf,        // list lock, refined fault only (Figure 6 breakdown)
  kListMprotect,  // list lock, speculative mprotect only (Figure 6 breakdown)
};

const char* VmVariantName(VmVariant v);

class AddressSpace {
 public:
  static constexpr uint64_t kPageSize = 4096;
  // Start of the mmap arena; keeps vma.start - kPageSize from underflowing.
  static constexpr uint64_t kMmapBase = uint64_t{1} << 30;

  explicit AddressSpace(VmVariant variant);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Maps `length` bytes (rounded up to pages) with the given protection. Returns the
  // base address (never 0 on success; 0 on failure).
  uint64_t Mmap(uint64_t length, uint32_t prot);

  // Unmaps [addr, addr+length). Splits partially covered VMAs, exactly like the kernel.
  // Returns false if the range touches no mapping.
  bool Munmap(uint64_t addr, uint64_t length);

  // Changes protection of [addr, addr+length). Returns false if the range is not fully
  // covered by existing mappings (ENOMEM in the kernel).
  bool Mprotect(uint64_t addr, uint64_t length, uint32_t prot);

  // Simulated page-fault interrupt for an access at `addr`. Returns true if the access
  // is legal (installing the page on first touch), false for SIGSEGV conditions.
  bool PageFault(uint64_t addr, bool is_write);

  // MADV_DONTNEED semantics: drops the pages of [addr, addr+length) so the next touch
  // faults again. Used by the arena allocator's trim path (glibc frees trimmed pages).
  // Runs under a read acquisition like the kernel's madvise.
  bool MadviseDontNeed(uint64_t addr, uint64_t length);

  // Extension of the paper's §5.2 closing remark (left as future work there): munmap
  // "starts from calling find_vma, during which the range lock can be held in the read
  // mode". When enabled, Munmap first probes [addr, addr+length) under a read
  // acquisition; if nothing is mapped there the call completes without ever taking the
  // full-range write lock. This is sound because boundary-moving (speculative)
  // mprotects never change the union of mapped addresses, and every operation that does
  // (mmap/munmap/structural mprotect) holds the full-range write lock, which our read
  // acquisition excludes. Measured by bench/abl_unmap_spec. Off by default (off in the
  // paper too). Only meaningful for refined variants; ignored for stock.
  void SetUnmapLookupSpeculation(bool on) { speculate_unmap_lookup_ = on; }

  const VmStats& Stats() const { return stats_; }
  VmLock& Lock() { return *lock_; }
  VmVariant Variant() const { return variant_; }

  // --- Introspection (each takes the full write lock; safe any time) ---

  std::vector<VmaInfo> SnapshotVmas();
  // VMAs sorted, non-overlapping, page-aligned, tree structurally valid, and no page
  // present outside a mapped VMA.
  bool CheckInvariants();
  std::size_t PresentPages() const { return pages_.Count(); }

 private:
  static uint64_t PageDown(uint64_t addr) { return addr & ~(kPageSize - 1); }
  static uint64_t PageUp(uint64_t addr) {
    return (addr + kPageSize - 1) & ~(kPageSize - 1);
  }

  Vma* AllocVma(uint64_t start, uint64_t end, uint32_t prot);
  void FreeVma(Vma* vma);  // recycle; caller holds the full write lock

  // First VMA with End() > addr, or null. Caller holds at least a read acquisition
  // covering addr (or the full lock).
  Vma* FindVma(uint64_t addr) const;

  // Full-path mprotect body; caller holds the full write lock. Returns false on
  // uncovered ranges.
  bool ApplyMprotectLocked(uint64_t start, uint64_t end, uint32_t prot);

  // Merges `vma` with adjacent equal-protection neighbours; caller holds the full
  // write lock. Returns the surviving VMA.
  Vma* MergeWithNeighbours(Vma* vma);

  // Classification of a speculative mprotect against a single VMA (§5.2 / Figure 2).
  enum class SpecCase {
    kNoop,       // protection already matches
    kWholeFlip,  // whole-VMA flip with no mergeable neighbour
    kHeadMove,   // boundary move: head of vma joins the previous VMA
    kTailMove,   // boundary move: tail of vma joins the next VMA
    kStructural, // split / merge / multi-VMA — must take the full path
  };
  SpecCase ClassifySpeculative(Vma* vma, uint64_t start, uint64_t end, uint32_t prot);

  // Releases a full-range write acquisition, bumping the sequence number first.
  void UnlockFullWrite(void* h) {
    seq_.Bump();
    lock_->UnlockWrite(h);
  }

  VmVariant variant_;
  bool refine_fault_;
  bool refine_mprotect_;
  bool speculate_unmap_lookup_ = false;
  std::unique_ptr<VmLock> lock_;
  SeqCounter seq_;
  RbTree<Vma, VmaTraits> mm_rb_;
  PageTable pages_;
  VmStats stats_;
  std::atomic<uint64_t> mmap_cursor_{kMmapBase};
  std::vector<Vma*> vma_freelist_;  // guarded by the full write lock
  std::vector<std::unique_ptr<Vma>> vma_storage_;  // owns every VMA ever allocated
};

}  // namespace srl::vm

#endif  // SRL_VM_ADDRESS_SPACE_H_
