// The VMA index — mm_rb sharded into address-space stripes.
//
// Under the full-range variants, every structural change to the address space (mmap,
// munmap, splitting/merging mprotect) holds a full-range write acquisition, so the rb
// tree is trivially quiescent whenever anyone reads it. The range-scoped variants break
// that assumption, and PR 3/4 answered it with one tree mutation lock + one structural
// seqcount for the whole space. That left three global serialization points: the
// mutation spin lock (all structural writers), the seqcount (any mmap/munmap anywhere
// retries every in-flight speculative fault), and the single mmap cursor. This index
// removes all three by *partitioning the address space*:
//
//   * The mmap region is carved into N disjoint power-of-two windows ("stripes"),
//     window i = [kStripeBase + i * 2^kStripeShift, kStripeBase + (i+1) * 2^kStripeShift).
//     Every VMA lies wholly inside one window (the cursor allocator never carves a
//     mapping across a window edge, splits only shrink, and the merge sweep refuses to
//     absorb across an edge), so the stripe of a VMA — and of any faulting address —
//     is a shift of its start address.
//
//   * Each stripe is a complete VmaStripe unit: its own tree root, its own mutation
//     spin lock, its own structural SeqCounter, and its own epoch retire list.
//     Structural writers of different stripes share no state at all; an optimistic
//     fault validates against *its stripe's* seqcount only, so churn in stripe A
//     cannot invalidate a speculative fault in stripe B (with the global seqcount that
//     invalidation was pure retry cost).
//
//   * Cross-stripe operations (a munmap/mprotect whose padded range spans an edge) are
//     classified up front and degrade to the full-range lock path, which then takes
//     the affected stripes' mutation locks in ascending index order — a coherent fence
//     over every stripe the range touches. Correctness never depends on the scoped
//     reasoning at the edges, mirroring the classify-then-fallback guard of PR 3.
//
// Within one stripe the machinery is exactly PR 3/4's: the spin lock serializes the
// stripe's structural mutators, the seqcount (SeqCounter's seqlock interface) brackets
// every mutation for optimistic walkers and §5.2 speculation validators, walks are
// step-bounded so an in-flight rotation's transient cycle becomes a retry instead of a
// hang, and erased VMAs retire into the stripe's SharedRetireList and are freed only
// after an epoch grace period.
#ifndef SRL_VM_VMA_INDEX_H_
#define SRL_VM_VMA_INDEX_H_

#include <cstdint>
#include <memory>

#include "src/epoch/shared_retire_list.h"
#include "src/rbtree/rb_tree.h"
#include "src/sync/cacheline.h"
#include "src/sync/seq_counter.h"
#include "src/sync/spin_lock.h"
#include "src/vm/vma.h"

namespace srl::vm {

struct VmStats;

// One address-space stripe: the PR 3 VmaIndex, demoted to a table entry. All comments
// about lock ordering and optimistic walks from that design still hold, scoped to this
// stripe's address window.
class VmaStripe {
 public:
  VmaStripe() = default;
  ~VmaStripe();  // frees every VMA still linked in the tree, then drains the retire list

  VmaStripe(const VmaStripe&) = delete;
  VmaStripe& operator=(const VmaStripe&) = delete;

  // --- Mutation side -------------------------------------------------------------
  // Every structural change (Insert / EraseAndRetire / in-place key update via
  // vma->start) must happen inside LockMutate()/UnlockMutate(): the spin lock
  // serializes this stripe's mutators, the seqlock write section makes the mutation
  // visible to the stripe's optimistic walkers and speculation validators. Lock
  // ordering: a range-lock acquisition (if any) always precedes the stripe lock, and
  // multi-stripe acquisitions (the cross-stripe fallback) take stripe locks in
  // ascending index order; a stripe lock never blocks on a range lock.
  void LockMutate() {
    mutex_.lock();
    seq_.BeginWrite();
  }
  void UnlockMutate() {
    seq_.EndWrite();
    mutex_.unlock();
  }

  // Holds off this stripe's structural mutators *without* opening a seqlock write
  // section. Used by the speculative-mprotect commit step (metadata-only boundary
  // moves must not invalidate concurrent optimistic walks — §5.2) and by scoped
  // structural ops for their read-only classification scan.
  void LockStable() { mutex_.lock(); }
  void UnlockStable() { mutex_.unlock(); }

  // Opens the seqlock write section while the stripe lock is already held via
  // LockStable(): classify under LockStable, upgrade in place, release with
  // UnlockMutate.
  void UpgradeStableToMutate() { seq_.BeginWrite(); }

  // Under LockMutate():
  void Insert(Vma* vma) { tree_.Insert(vma); }
  // Unlinks `vma` and schedules it for reclamation on this stripe's retire list after
  // a grace period. The caller reaps at a quiescent point (MaybeFlushRetired(),
  // holding no locks or ranges).
  void EraseAndRetire(Vma* vma);

  // --- Lookups (stripe-local) ------------------------------------------------------

  // First VMA in this stripe with End() > addr, or null. Plain walk: the caller must
  // exclude this stripe's structural mutators (full-range acquisition, LockMutate/
  // LockStable held, or a non-scoped variant whose structural ops take full ranges).
  Vma* Find(uint64_t addr) const;

  // As Find, but correct *without* excluding structural mutators: seqcount-validated
  // optimistic walk. The caller must be inside an epoch critical section so a
  // concurrently retired VMA stays dereferenceable. Retries are counted into `stats`
  // when provided.
  Vma* FindOptimistic(uint64_t addr, VmStats* stats) const;

  // One bounded optimistic walk attempt. On success returns true, stores the result in
  // *vma (null for "no VMA in this stripe with End() > addr") and the even snapshot of
  // THIS STRIPE's seqcount the walk validated against in *snapshot — the speculative
  // fault path re-validates that same snapshot after its page install, so only
  // same-stripe structural churn can force a retry. Same epoch requirement as
  // FindOptimistic.
  bool TryFindOptimistic(uint64_t addr, Vma** vma, uint64_t* snapshot) const;

  // --- Speculation validator (§5.2), stripe-scoped ---
  uint64_t ReadSeq() const { return seq_.ReadBegin(); }
  bool ValidateSeq(uint64_t snapshot) const { return seq_.Validate(snapshot); }

  // --- Deferred reclamation ---
  void MaybeFlushRetired() { retire_.MaybeFlush(); }
  // Tunes this stripe's retire-list batch size (see SharedRetireList::DefaultFlushThreshold()).
  void SetRetireFlushThreshold(std::size_t n) { retire_.SetFlushThreshold(n); }

  // --- Iteration / introspection (caller excludes this stripe's mutators) ---
  Vma* First() const { return tree_.First(); }
  static Vma* Next(Vma* v) { return RbTree<Vma, VmaTraits>::Next(v); }
  static Vma* Prev(Vma* v) { return RbTree<Vma, VmaTraits>::Prev(v); }
  std::size_t Size() const { return tree_.Size(); }
  bool ValidateStructure() const { return tree_.ValidateStructure(); }

 private:
  // Upper bound on walk steps before declaring the walk torn. A quiescent rb tree of
  // n nodes has height <= 2*log2(n+1); 128 covers any address space this simulation
  // can build, so hitting the bound implies a concurrent rotation (transient cycle).
  static constexpr int kMaxWalkSteps = 128;

  RbTree<Vma, VmaTraits> tree_;
  SpinLock mutex_;           // serializes this stripe's structural mutators
  SeqCounter seq_;           // odd while a mutation of this stripe is in flight
  SharedRetireList retire_;  // the stripe's reclamation domain for unlinked VMAs
};

// The stripe table plus the address routing that makes it one logical index.
class VmaIndex {
 public:
  // Geometry. Stripe windows are 2^kStripeShift bytes (64 GiB) starting at
  // kStripeBase; kMaxStripes windows fit far below the top of a 64-bit space, so
  // padded ranges near real mappings never wrap.
  static constexpr uint64_t kStripeBase = uint64_t{1} << 30;
  static constexpr uint64_t kStripeShift = 36;
  static constexpr unsigned kMaxStripes = 64;

  // `stripes` is clamped to [1, kMaxStripes] and rounded up to a power of two.
  explicit VmaIndex(unsigned stripes);

  VmaIndex(const VmaIndex&) = delete;
  VmaIndex& operator=(const VmaIndex&) = delete;

  unsigned StripeCount() const { return n_; }

  // Stripe of an address, clamped: everything below the first window routes to stripe
  // 0, everything above the last to stripe n-1. VMAs only exist inside windows, so
  // clamped lookups stay correct (the boundary stripes simply own the out-of-window
  // margins, which are permanently unmapped).
  unsigned IndexOf(uint64_t addr) const {
    if (addr < kStripeBase) {
      return 0;
    }
    const uint64_t i = (addr - kStripeBase) >> kStripeShift;
    return i >= n_ ? n_ - 1 : static_cast<unsigned>(i);
  }

  static uint64_t WindowBase(unsigned stripe) {
    return kStripeBase + (static_cast<uint64_t>(stripe) << kStripeShift);
  }
  static uint64_t WindowEnd(unsigned stripe) { return WindowBase(stripe + 1); }

  VmaStripe& Stripe(unsigned i) { return stripes_[i].value; }
  const VmaStripe& Stripe(unsigned i) const { return stripes_[i].value; }
  VmaStripe& StripeFor(uint64_t addr) { return Stripe(IndexOf(addr)); }
  const VmaStripe& StripeFor(uint64_t addr) const { return Stripe(IndexOf(addr)); }

  // --- Multi-stripe mutation (the cross-stripe / full-range fallback path) --------
  // Takes every stripe lock in [lo, hi] in ascending order and opens every seqlock
  // write section, fencing the walked stripes coherently: optimistic faults anywhere
  // in [lo, hi] retry, faults elsewhere proceed untouched.
  void LockMutateRange(unsigned lo, unsigned hi) {
    for (unsigned i = lo; i <= hi; ++i) {
      Stripe(i).LockMutate();
    }
  }
  void UnlockMutateRange(unsigned lo, unsigned hi) {
    for (unsigned i = hi + 1; i-- > lo;) {
      Stripe(i).UnlockMutate();
    }
  }

  // Routed mutators (caller holds the mutate lock of the stripe owning vma->Start()).
  void Insert(Vma* vma) { StripeFor(vma->Start()).Insert(vma); }
  void EraseAndRetire(Vma* vma) { StripeFor(vma->Start()).EraseAndRetire(vma); }

  // --- Cross-stripe traversal (caller excludes mutators of every stripe in [lo, hi])
  // Stripe windows ascend with stripe index and VMAs never straddle a window edge, so
  // concatenating the stripes' trees in index order IS the global address order.

  // First VMA with End() > addr among stripes [lo, hi].
  Vma* Find(uint64_t addr, unsigned lo, unsigned hi) const {
    for (unsigned i = lo < IndexOf(addr) ? IndexOf(addr) : lo; i <= hi; ++i) {
      if (Vma* v = Stripe(i).Find(addr)) {
        return v;
      }
    }
    return nullptr;
  }

  // Successor of v in address order, not looking past stripe hi.
  Vma* Next(Vma* v, unsigned hi) const {
    if (Vma* n = VmaStripe::Next(v)) {
      return n;
    }
    for (unsigned i = IndexOf(v->Start()) + 1; i <= hi; ++i) {
      if (Vma* f = Stripe(i).First()) {
        return f;
      }
    }
    return nullptr;
  }

  Vma* First(unsigned lo, unsigned hi) const {
    for (unsigned i = lo; i <= hi; ++i) {
      if (Vma* f = Stripe(i).First()) {
        return f;
      }
    }
    return nullptr;
  }

  std::size_t Size() const {
    std::size_t n = 0;
    for (unsigned i = 0; i < n_; ++i) {
      n += Stripe(i).Size();
    }
    return n;
  }

  bool ValidateStructure() const {
    for (unsigned i = 0; i < n_; ++i) {
      if (!Stripe(i).ValidateStructure()) {
        return false;
      }
    }
    return true;
  }

  // Reaps the retire lists of stripes [lo, hi]; call holding no locks or ranges.
  void MaybeFlushRetired(unsigned lo, unsigned hi) {
    for (unsigned i = lo; i <= hi; ++i) {
      Stripe(i).MaybeFlushRetired();
    }
  }

 private:
  unsigned n_;
  std::unique_ptr<CacheAligned<VmaStripe>[]> stripes_;
};

}  // namespace srl::vm

#endif  // SRL_VM_VMA_INDEX_H_
