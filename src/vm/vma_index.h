// The VMA index — mm_rb plus the synchronization that makes range-scoped structural
// operations possible.
//
// Under the full-range variants, every structural change to the address space (mmap,
// munmap, splitting/merging mprotect) holds a full-range write acquisition, so the rb
// tree is trivially quiescent whenever anyone reads it. The range-scoped variants break
// that assumption: a writer that only locked [base, base+len) may rebalance the tree
// while a page fault in a *different* range is walking it. This class concentrates the
// machinery that keeps that correct:
//
//   * A tree spin lock serializes all structural mutators with each other (range locks
//     alone no longer do — two scoped writers with disjoint ranges must still not
//     rebalance concurrently). It is the user-space analogue of the kernel's maple-tree
//     internal lock: critical sections are bounded by the operation's affected-VMA
//     count and never block (sharding the index to shrink them further is a ROADMAP
//     item).
//
//   * A seqcount (SeqCounter's seqlock interface) brackets every mutation. Readers that
//     cannot exclude structural writers walk optimistically: snapshot an even sequence,
//     walk the (atomic-linked) tree, re-validate, retry on overlap. The walk is bounded
//     — a rotation racing the walk can transiently create a cycle among child pointers,
//     which the step bound converts into a retry instead of a hang.
//
//   * VMA lifetime is epoch-based: an erased VMA is retired to the calling thread's
//     RetireList and only freed after a grace period, so optimistic walkers (and the
//     speculative-mprotect window that legally dereferences a stale vma pointer between
//     its read and write acquisitions) never touch freed memory. This replaces the
//     seed's never-free vma_freelist_ hack.
//
// The same seqcount doubles as the speculation validator of §5.2 (Listing 4): a
// speculative mprotect snapshots it during the read-locked lookup and rejects its write
// acquisition if any structural mutation committed in between. Because only real
// mutations bump it (the seed bumped on every full-write release, including read-only
// snapshots), speculation can only get *more* accurate.
#ifndef SRL_VM_VMA_INDEX_H_
#define SRL_VM_VMA_INDEX_H_

#include <cstdint>

#include "src/rbtree/rb_tree.h"
#include "src/sync/seq_counter.h"
#include "src/sync/spin_lock.h"
#include "src/vm/vma.h"

namespace srl::vm {

struct VmStats;

class VmaIndex {
 public:
  VmaIndex() = default;
  ~VmaIndex();  // frees every VMA still linked in the tree

  VmaIndex(const VmaIndex&) = delete;
  VmaIndex& operator=(const VmaIndex&) = delete;

  // --- Mutation side -------------------------------------------------------------
  // Every structural change (Insert / EraseAndRetire / in-place key update via
  // vma->start) must happen inside LockMutate()/UnlockMutate(): the spin lock
  // serializes mutators, the seqlock write section makes the mutation visible to
  // optimistic walkers and speculation validators. Lock ordering: a range-lock
  // acquisition (if any) always precedes the tree lock; the tree lock never blocks on
  // a range lock.
  void LockMutate() {
    mutex_.lock();
    seq_.BeginWrite();
  }
  void UnlockMutate() {
    seq_.EndWrite();
    mutex_.unlock();
  }

  // Holds off structural mutators *without* opening a seqlock write section. Used by
  // the speculative-mprotect commit step: it must read Prev/Next links and move
  // boundaries with the tree stable, but boundary moves are metadata-only and must not
  // invalidate concurrent optimistic walks or other speculations (§5.2: a successful
  // speculation does not bump the sequence number). Also used by scoped structural ops
  // for their read-only classification scan, so optimistic walkers are only stalled
  // once real mutation begins.
  void LockStable() { mutex_.lock(); }
  void UnlockStable() { mutex_.unlock(); }

  // Opens the seqlock write section while the tree lock is already held via
  // LockStable(): classify under LockStable, upgrade in place to mutate, release with
  // UnlockMutate. No mutator can interleave between the scan and the upgrade — the
  // spin lock is held throughout.
  void UpgradeStableToMutate() { seq_.BeginWrite(); }

  // Under LockMutate():
  void Insert(Vma* vma) { tree_.Insert(vma); }
  // Unlinks `vma` and schedules it for reclamation on the calling thread's RetireList
  // after a grace period. The caller flushes the list at a quiescent point
  // (RetireList::Local().MaybeFlush(), holding no locks or ranges).
  void EraseAndRetire(Vma* vma);

  // --- Lookups -------------------------------------------------------------------

  // First VMA with End() > addr, or null. Plain walk: the caller must exclude all
  // structural mutators (full-range acquisition, LockMutate/LockStable held, or a
  // non-scoped variant whose structural ops all take the full range).
  Vma* Find(uint64_t addr) const;

  // As Find, but correct *without* excluding structural mutators: seqcount-validated
  // optimistic walk (snapshot, walk, re-validate, retry). The caller must be inside an
  // epoch critical section (EpochGuard) so a concurrently retired VMA stays
  // dereferenceable. Retries are counted into `stats` when provided.
  Vma* FindOptimistic(uint64_t addr, VmStats* stats) const;

  // One bounded optimistic walk attempt. On success returns true, stores the result in
  // *vma (null for "no VMA with End() > addr") and the even snapshot the walk validated
  // against in *snapshot — the speculative fault path re-validates that same snapshot
  // after its page install, so one ReadBegin covers the walk *and* the install window.
  // Returns false when a structural mutation overlapped the walk (the caller retries
  // or falls back). Same epoch-critical-section requirement as FindOptimistic.
  bool TryFindOptimistic(uint64_t addr, Vma** vma, uint64_t* snapshot) const;

  // --- Speculation validator (§5.2) ---
  uint64_t ReadSeq() const { return seq_.ReadBegin(); }
  bool ValidateSeq(uint64_t snapshot) const { return seq_.Validate(snapshot); }

  // --- Iteration / introspection (caller excludes structural mutators) ---
  Vma* First() const { return tree_.First(); }
  static Vma* Next(Vma* v) { return RbTree<Vma, VmaTraits>::Next(v); }
  static Vma* Prev(Vma* v) { return RbTree<Vma, VmaTraits>::Prev(v); }
  std::size_t Size() const { return tree_.Size(); }
  bool ValidateStructure() const { return tree_.ValidateStructure(); }

 private:
  // Upper bound on walk steps before declaring the walk torn. A quiescent rb tree of
  // n nodes has height <= 2*log2(n+1); 128 covers any address space this simulation
  // can build, so hitting the bound implies a concurrent rotation (transient cycle).
  static constexpr int kMaxWalkSteps = 128;

  RbTree<Vma, VmaTraits> tree_;
  SpinLock mutex_;   // serializes structural mutators
  SeqCounter seq_;   // odd while a mutation is in flight
};

}  // namespace srl::vm

#endif  // SRL_VM_VMA_INDEX_H_
