#include "src/vm/vm_lock.h"

namespace srl::vm {

namespace {

class StockVmLock final : public VmLock {
 public:
  const char* Name() const override { return "stock"; }

 protected:
  void* DoLockRead(const Range&) override {
    sem_.lock_shared();
    return this;
  }
  void* DoLockWrite(const Range&) override {
    sem_.lock();
    return this;
  }
  bool DoTryLockRead(const Range&, void** out) override {
    if (!sem_.try_lock_shared()) {
      return false;
    }
    *out = this;
    return true;
  }
  bool DoTryLockWrite(const Range&, void** out) override {
    if (!sem_.try_lock()) {
      return false;
    }
    *out = this;
    return true;
  }
  void DoUnlockRead(void*) override { sem_.unlock_shared(); }
  void DoUnlockWrite(void*) override { sem_.unlock(); }

 private:
  RwSemaphore sem_;
};

class TreeVmLock final : public VmLock {
 public:
  const char* Name() const override { return "tree"; }

  void SetSpinWaitStats(WaitStats* stats) override { lock_.SetSpinWaitStats(stats); }

 protected:
  void* DoLockRead(const Range& r) override { return lock_.AcquireRead(r); }
  void* DoLockWrite(const Range& r) override { return lock_.AcquireWrite(r); }
  bool DoTryLockRead(const Range& r, void** out) override {
    TreeRangeLock::Handle h = nullptr;
    if (!lock_.TryAcquireRead(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  bool DoTryLockWrite(const Range& r, void** out) override {
    TreeRangeLock::Handle h = nullptr;
    if (!lock_.TryAcquireWrite(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  void DoUnlockRead(void* h) override { lock_.Release(static_cast<TreeRangeLock::Handle>(h)); }
  void DoUnlockWrite(void* h) override { lock_.Release(static_cast<TreeRangeLock::Handle>(h)); }

 private:
  TreeRangeLock lock_;
};

class ListVmLock final : public VmLock {
 public:
  const char* Name() const override { return "list"; }

 protected:
  void* DoLockRead(const Range& r) override { return lock_.LockRead(r); }
  void* DoLockWrite(const Range& r) override { return lock_.LockWrite(r); }
  bool DoTryLockRead(const Range& r, void** out) override {
    ListRwRangeLock::Handle h = nullptr;
    if (!lock_.TryLockRead(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  bool DoTryLockWrite(const Range& r, void** out) override {
    ListRwRangeLock::Handle h = nullptr;
    if (!lock_.TryLockWrite(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  void DoUnlockRead(void* h) override { lock_.Unlock(static_cast<ListRwRangeLock::Handle>(h)); }
  void DoUnlockWrite(void* h) override { lock_.Unlock(static_cast<ListRwRangeLock::Handle>(h)); }

 private:
  ListRwRangeLock lock_;
};

// Exclusive backend: reads are served as writes (the lustre-ex pattern the paper
// benchmarks in read workloads). Safe for AddressSpace because no VM path nests a
// second acquisition inside one that overlaps it — the speculative Mprotect path
// drops its read acquisition before taking the write one. Geometry: 64 KiB windows
// (window_shift=16) keep a page-fault acquisition inside one window, and 64 buckets
// give striped workloads distinct heads (the Fibonacci bucket hash diffuses the
// stripes' high base bits).
class ListLockFreeVmLock final : public VmLock {
 public:
  ListLockFreeVmLock()
      : lock_(ListLockFreeRangeLock::Options{.buckets = 64, .window_shift = 16}) {}

  const char* Name() const override { return "list-lf"; }

 protected:
  void* DoLockRead(const Range& r) override { return lock_.Lock(r); }
  void* DoLockWrite(const Range& r) override { return lock_.Lock(r); }
  bool DoTryLockRead(const Range& r, void** out) override {
    ListLockFreeRangeLock::Handle h = nullptr;
    if (!lock_.TryLock(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  bool DoTryLockWrite(const Range& r, void** out) override {
    ListLockFreeRangeLock::Handle h = nullptr;
    if (!lock_.TryLock(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  void DoUnlockRead(void* h) override {
    lock_.Unlock(static_cast<ListLockFreeRangeLock::Handle>(h));
  }
  void DoUnlockWrite(void* h) override {
    lock_.Unlock(static_cast<ListLockFreeRangeLock::Handle>(h));
  }

 private:
  ListLockFreeRangeLock lock_;
};

// Exclusive skiplist-indexed backend; reads served as writes like ListLockFreeVmLock
// (and safe for AddressSpace by the same no-nested-overlap argument). No geometry to
// pick: the skiplist stores exact byte ranges, so there is no window/bucket trade-off
// — precision and O(log n) acquire come from the index itself.
class SkiplistVmLock final : public VmLock {
 public:
  const char* Name() const override { return "skiplist"; }

 protected:
  void* DoLockRead(const Range& r) override { return lock_.Lock(r); }
  void* DoLockWrite(const Range& r) override { return lock_.Lock(r); }
  bool DoTryLockRead(const Range& r, void** out) override {
    SkiplistRangeLock::Handle h = nullptr;
    if (!lock_.TryLock(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  bool DoTryLockWrite(const Range& r, void** out) override {
    SkiplistRangeLock::Handle h = nullptr;
    if (!lock_.TryLock(r, &h)) {
      return false;
    }
    *out = h;
    return true;
  }
  void DoUnlockRead(void* h) override {
    lock_.Unlock(static_cast<SkiplistRangeLock::Handle>(h));
  }
  void DoUnlockWrite(void* h) override {
    lock_.Unlock(static_cast<SkiplistRangeLock::Handle>(h));
  }

 private:
  SkiplistRangeLock lock_;
};

}  // namespace

std::unique_ptr<VmLock> MakeVmLock(VmLockKind kind) {
  switch (kind) {
    case VmLockKind::kStock:
      return std::make_unique<StockVmLock>();
    case VmLockKind::kTree:
      return std::make_unique<TreeVmLock>();
    case VmLockKind::kList:
      return std::make_unique<ListVmLock>();
    case VmLockKind::kListLockFree:
      return std::make_unique<ListLockFreeVmLock>();
    case VmLockKind::kSkiplistIndexed:
      return std::make_unique<SkiplistVmLock>();
  }
  return nullptr;
}

const char* VmLockKindName(VmLockKind kind) {
  switch (kind) {
    case VmLockKind::kStock:
      return "stock";
    case VmLockKind::kTree:
      return "tree";
    case VmLockKind::kList:
      return "list";
    case VmLockKind::kListLockFree:
      return "list-lf";
    case VmLockKind::kSkiplistIndexed:
      return "skiplist";
  }
  return "?";
}

}  // namespace srl::vm
