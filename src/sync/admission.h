// Concurrency-restricting admission control for saturated locks.
//
// Every lock in this tree scales until it saturates and then collapses under
// oversubscription: with 1024 threads contending a resource that admits ~#cores of
// useful parallelism, the surplus threads burn scheduler quanta spinning and yielding,
// starving the very holders they wait for. The fix — from "Avoiding Scalability
// Collapse by Restricting Concurrency" (Dice & Kogan) — is to cap the number of
// *active* contenders at roughly the core count and divert the surplus onto a passive
// parking list: parked threads sleep on a futex and cost nothing, and each release
// culls one back to the active set, so the contention level at the lock itself never
// exceeds what the hardware can service.
//
// AdmissionGate is that cap. Design points:
//
//   * The cap is SOFT. Enter's fast path CASes `active_` below the cap; a release
//     that hands its slot to a culled waiter does fetch_sub + claim + fetch_add, and a
//     fast-path entry can slip into that window, transiently overshooting the cap by
//     the number of concurrent culls. Correctness never depends on the cap (the gated
//     lock provides exclusion); the cap only shapes contention, so a bounded
//     transient overshoot is the right trade against a hard cap's extra CAS loop.
//   * Parking lists are per-NUMA-node two-list queues: a lock-free Treiber push stack,
//     drained by a popper (serialized by a tiny per-shard spin lock, which makes pop
//     ABA-free without generation counters) that detaches the whole stack and reverses
//     it into an oldest-first batch. A culler prefers its own node's shard — the
//     Compact NUMA-Aware Locks handoff policy: ownership circulates within a socket
//     while remote waiters stay parked — but WITHIN a shard culls are strictly FIFO.
//     The concurrency-restriction paper prefers LIFO (cache-warmest waiter next); that
//     is safe for a mutex, where a parked thread holds nothing, but here gated waiters
//     queue range-lock nodes that block later arrivals (FIFO admission), and a LIFO
//     cull starves the oldest parker — the one the whole conflict chain depends on —
//     forever (see PopWaiter).
//   * No lost wakeups, by a Dekker-style seq_cst pair. Parker: push waiter, increment
//     `parked_count_` (seq_cst), re-read `active_` (seq_cst) and self-cull if a slot
//     freed meanwhile. Exiter: decrement `active_` (seq_cst), read `parked_count_`
//     (seq_cst) and cull if nonzero. In the seq_cst total order one of the two
//     observes the other, so a waiter can never sleep on a slot nobody will hand over
//     (tests/admission_test.cpp hammers exactly this race).
//   * Trylock bypass: an Immediate deadline never parks — Enter admits over the cap
//     and returns, so a trylock is never turned into a wait (the kernel-trylock rule).
//     Timed waiters park politely but poll their own state word and abandon it at the
//     deadline; an abandoned waiter node stays on its stack and is reaped by the next
//     popper (or the gate destructor).
//   * Waiter nodes are heap-allocated and reference-counted (waiter + stack/claimer),
//     because a claimer must be free to notify a waiter that may already have woken
//     spuriously and be about to return — the last reference frees the node, so the
//     notify never touches freed memory.
//
// AdmissionSpinner composes the gate with the Deadline/SpinWait wait-loop machinery:
// lock wait loops call Pause() where they used to call std::this_thread::yield()
// (outside any epoch critical section — a parked thread must never pin reclamation).
// Pause periodically rotates the admission slot: every kRotatePeriod-th pause with
// waiters parked, the holder exits the gate (culling the oldest waiter) and re-enters
// — possibly parking — before its next watch round. Eventual rotation plus FIFO culls
// is the liveness argument for chained acquisitions: if a parked thread holds
// resource A that every active spinner waits on, the spinners' own Pause calls cycle
// it back into the active set within a bounded number of rounds, so the parking list
// can never stall a dependency chain.
#ifndef SRL_SYNC_ADMISSION_H_
#define SRL_SYNC_ADMISSION_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "src/sync/backoff.h"
#include "src/sync/cacheline.h"
#include "src/sync/deadline.h"
#include "src/sync/spin_lock.h"
#include "src/sync/spin_wait.h"
#include "src/sync/topology.h"

namespace srl {

class AdmissionGate {
 public:
  // cap == 0 derives the cap from the machine: one active contender per CPU (>= 1).
  explicit AdmissionGate(uint32_t cap = 0)
      : AdmissionGate(cap, Topology::Get().NodeCount()) {}

  // Explicit parking-shard count, for tests and benches that exercise the multi-shard
  // cull rotation on hosts whose real topology has a single node.
  AdmissionGate(uint32_t cap, unsigned shard_count)
      : cap_(cap != 0 ? cap : Topology::Get().CpuCount()),
        shard_count_(shard_count != 0 ? shard_count : 1),
        shards_(std::make_unique<Shard[]>(shard_count_)) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  // Reaps abandoned (timed-out) waiter nodes still sitting on the stacks. No waiter
  // may still be parked — destroying a gate out from under sleeping threads is a
  // caller bug, same contract as destroying a locked mutex.
  ~AdmissionGate() {
    for (unsigned s = 0; s < shard_count_; ++s) {
      while (Waiter* w = PopWaiter(s)) {
        assert(w->state.load(std::memory_order_relaxed) == kAbandoned &&
               "waiter still parked at gate destruction");
        DropRef(w);
      }
    }
  }

  // Global kill switch, for measuring gated-vs-ungated in one binary
  // (bench/abl_oversub --gate=off). Checked at Enter time by the RAII wrappers, which
  // remember the answer so a toggle mid-flight can never unbalance Enter/Exit pairs.
  static void SetGloballyEnabled(bool on) {
    globally_enabled_.store(on, std::memory_order_relaxed);
  }
  static bool GloballyEnabled() {
    return globally_enabled_.load(std::memory_order_relaxed);
  }

  // Admission. Returns true once admitted (the caller owns one active slot and must
  // Exit() it); false only for a timed deadline that expired before admission. An
  // immediate deadline admits over the cap — the trylock bypass rule.
  //
  // Saturation does NOT park immediately: gated resources span hold times from a few
  // hundred nanoseconds (the tree lock's internal spin) to whole user critical
  // sections, and turning every sub-microsecond handoff into a futex sleep+wake would
  // cost more than the contention it prevents. Enter therefore spins politely first
  // (spin-then-park): the SpinWait relax phase plus a few yields — enough for a
  // preempted holder to run and free a slot — and only a waiter that outlives that
  // patience is a genuine surplus worth parking.
  bool Enter(const Deadline& deadline) {
    uint32_t a = active_.load(std::memory_order_relaxed);
    // Audit (wait-loop unification): contended-CAS retry runs on Backoff, the shared
    // primitive, not a hand-rolled pause loop.
    Backoff backoff;
    while (a < cap_) {
      if (active_.compare_exchange_weak(a, a + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        return true;
      }
      backoff.Spin();
    }
    if (deadline.IsImmediate()) {
      active_.fetch_add(1, std::memory_order_acquire);
      return true;
    }
    // Patience phase. A timed deadline that expires here returns false without ever
    // parking (no park/timeout accounting — the node was never on a stack).
    SpinWait spin;
    unsigned yields = 0;
    for (;;) {
      a = active_.load(std::memory_order_relaxed);
      while (a < cap_) {
        if (active_.compare_exchange_weak(a, a + 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
          return true;
        }
      }
      if (!deadline.IsInfinite() && deadline.Expired()) {
        return false;
      }
      if (spin.Yielding() && ++yields > kPatienceYields) {
        break;
      }
      spin.Spin();
    }
    return Park(deadline);
  }

  // Releases an active slot; if waiters are parked, hands the slot to one of them
  // (own-node stack first — the CNA preference).
  void Exit() {
    active_.fetch_sub(1, std::memory_order_seq_cst);
    if (parked_count_.load(std::memory_order_seq_cst) > 0) {
      CullOne(ShardOfCurrentThread());
    }
  }

  bool HasParked() const {
    return parked_count_.load(std::memory_order_relaxed) > 0;
  }

  uint32_t Cap() const { return cap_; }
  uint32_t Active() const { return active_.load(std::memory_order_relaxed); }

  // Counters for benches and tests.
  uint64_t Parks() const { return parks_.load(std::memory_order_relaxed); }
  uint64_t Culls() const { return culls_.load(std::memory_order_relaxed); }
  uint64_t Timeouts() const { return timeouts_.load(std::memory_order_relaxed); }

  // Process-wide totals across every gate instance, for benches that cannot reach the
  // private per-lock gates (bench/abl_oversub reports per-cell deltas of these).
  static uint64_t TotalParks() { return total_parks_.load(std::memory_order_relaxed); }
  static uint64_t TotalCulls() { return total_culls_.load(std::memory_order_relaxed); }

  // RAII slot for straight-line gated sections (the full-space VmLock write path and
  // the tree lock's internal spin): enters on construction — honoring the global
  // enable switch — and exits on destruction. A null gate is a no-op ticket.
  class Ticket {
   public:
    explicit Ticket(AdmissionGate* gate)
        : gate_(gate != nullptr && GloballyEnabled() ? gate : nullptr) {
      if (gate_ != nullptr) {
        gate_->Enter(Deadline::Infinite());
      }
    }
    ~Ticket() {
      if (gate_ != nullptr) {
        gate_->Exit();
      }
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    AdmissionGate* gate_;
  };

 private:
  // Yields tolerated after the SpinWait relax phase before a saturated Enter parks.
  // Small on purpose: under genuine oversubscription yields cycle the whole run queue
  // and parking quickly is the entire point; under light contention the relax phase
  // plus one or two yields is enough for a holder to exit.
  static constexpr unsigned kPatienceYields = 8;

  static constexpr uint32_t kParked = 0;     // waiting for a slot (futex word value)
  static constexpr uint32_t kClaimed = 1;    // slot handed over; waiter may proceed
  static constexpr uint32_t kAbandoned = 2;  // timed out; node awaits reaping

  struct Waiter {
    std::atomic<uint32_t> state{kParked};
    // Two logical owners: the waiting thread, and whoever holds the stack link (the
    // stack itself, then the popper that removes it). Last reference frees.
    std::atomic<int> refs{2};
    Waiter* next = nullptr;
  };

  struct alignas(kCacheLineSize) Shard {
    std::atomic<Waiter*> top{nullptr};  // lock-free push side (newest first)
    // Oldest-first batch, refilled by reversing a detached push stack. Guarded by
    // pop_lock (atomic only so the destructor's reap loop can read it plainly).
    std::atomic<Waiter*> fifo{nullptr};
    SpinLock pop_lock;  // single popper per shard: makes pop ABA-free
  };

  static void DropRef(Waiter* w) {
    if (w->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete w;
    }
  }

  unsigned ShardOfCurrentThread() const {
    return shard_count_ == 1 ? 0 : Topology::Get().CurrentNode() % shard_count_;
  }

  void PushWaiter(unsigned s, Waiter* w) {
    std::atomic<Waiter*>& top = shards_[s].top;
    Waiter* t = top.load(std::memory_order_relaxed);
    Backoff backoff;
    for (;;) {
      w->next = t;
      // Release publishes w->next (and the waiter's initialized fields) to the
      // popper, whose pop CAS reads top with acquire.
      if (top.compare_exchange_weak(t, w, std::memory_order_release,
                                    std::memory_order_relaxed)) {
        return;
      }
      backoff.Spin();
    }
  }

  // Pops the OLDEST parked waiter in the shard. Culls must be FIFO: under FIFO range
  // admission a parked waiter's inserted node blocks every later arrival, so a LIFO
  // cull order can starve the oldest waiter forever — the two most recent parkers
  // ping-pong through the rotation slot (each cull pops the waiter the previous
  // rotation just pushed) while the waiter the whole conflict chain depends on never
  // surfaces. Push stays a lock-free Treiber stack; the popper — already serialized
  // per shard by pop_lock — detaches the whole stack and reverses it into an
  // oldest-first batch, draining that batch before detaching again. No lock-free
  // empty fast path on purpose: a stale null read here would skip a cull with a
  // waiter parked (a lost wakeup); the uncontended pop_lock is cheap and CullOne
  // only runs on the Exit slow path.
  Waiter* PopWaiter(unsigned s) {
    Shard& sh = shards_[s];
    std::lock_guard<SpinLock> g(sh.pop_lock);
    Waiter* f = sh.fifo.load(std::memory_order_relaxed);
    if (f == nullptr) {
      Waiter* t = sh.top.exchange(nullptr, std::memory_order_acquire);
      while (t != nullptr) {
        // t->next is stable: the node is detached, and a push never rewrites an
        // already-linked node's next pointer.
        Waiter* next = t->next;
        t->next = f;
        f = t;
        t = next;
      }
      if (f == nullptr) {
        return nullptr;
      }
    }
    sh.fifo.store(f->next, std::memory_order_relaxed);
    return f;
  }

  // Pops parked waiters — preferred shard first, then the others — until one is
  // successfully claimed (its slot is transferred and it is woken) or the stacks are
  // dry. Abandoned nodes encountered on the way are reaped. Returns whether a waiter
  // was culled.
  bool CullOne(unsigned preferred) {
    for (unsigned i = 0; i < shard_count_; ++i) {
      const unsigned s = (preferred + i) % shard_count_;
      while (Waiter* w = PopWaiter(s)) {
        uint32_t expected = kParked;
        if (w->state.compare_exchange_strong(expected, kClaimed,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          parked_count_.fetch_sub(1, std::memory_order_seq_cst);
          // Transfer the slot on the waiter's behalf (see the soft-cap note above).
          active_.fetch_add(1, std::memory_order_relaxed);
          culls_.fetch_add(1, std::memory_order_relaxed);
          total_culls_.fetch_add(1, std::memory_order_relaxed);
          w->state.notify_one();
          DropRef(w);
          return true;
        }
        // Timed out while parked; reap and keep looking.
        DropRef(w);
      }
    }
    return false;
  }

  bool Park(const Deadline& deadline) {
    const unsigned shard = ShardOfCurrentThread();
    Waiter* w = new Waiter;
    PushWaiter(shard, w);
    parked_count_.fetch_add(1, std::memory_order_seq_cst);
    parks_.fetch_add(1, std::memory_order_relaxed);
    total_parks_.fetch_add(1, std::memory_order_relaxed);
    // Dekker re-check against a concurrent Exit: if a slot freed after our saturation
    // check but before our push became visible, the exiter may have seen
    // parked_count == 0 and culled nobody — so cull on its behalf (possibly waking
    // ourselves). The seq_cst ordering guarantees at least one side acts.
    if (active_.load(std::memory_order_seq_cst) < cap_) {
      CullOne(shard);
    }
    if (deadline.IsInfinite()) {
      uint32_t s;
      while ((s = w->state.load(std::memory_order_acquire)) == kParked) {
        w->state.wait(kParked, std::memory_order_acquire);
      }
      assert(s == kClaimed);
      DropRef(w);
      return true;
    }
    // Timed park: std::atomic::wait has no timeout, so poll the state word (the same
    // spin-then-yield cadence as every timed wait in the tree) and abandon at expiry.
    DeadlineSpinner spinner(deadline);
    for (;;) {
      if (w->state.load(std::memory_order_acquire) == kClaimed) {
        DropRef(w);
        return true;
      }
      if (!spinner.SpinOrExpire()) {
        uint32_t expected = kParked;
        if (w->state.compare_exchange_strong(expected, kAbandoned,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          parked_count_.fetch_sub(1, std::memory_order_seq_cst);
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          DropRef(w);  // the stack's popper (or the destructor) frees the node
          return false;
        }
        // Claimed in the expiry window: the slot is ours after all.
        DropRef(w);
        return true;
      }
    }
  }

  static std::atomic<bool> globally_enabled_;
  static std::atomic<uint64_t> total_parks_;
  static std::atomic<uint64_t> total_culls_;

  const uint32_t cap_;
  const unsigned shard_count_;
  std::atomic<uint32_t> active_{0};
  std::atomic<uint32_t> parked_count_{0};
  std::atomic<uint64_t> parks_{0};
  std::atomic<uint64_t> culls_{0};
  std::atomic<uint64_t> timeouts_{0};
  const std::unique_ptr<Shard[]> shards_;
};

inline std::atomic<bool> AdmissionGate::globally_enabled_{true};
inline std::atomic<uint64_t> AdmissionGate::total_parks_{0};
inline std::atomic<uint64_t> AdmissionGate::total_culls_{0};

// Composes an AdmissionGate with a lock's watch/yield wait loop. One spinner lives on
// the stack of one acquisition; wait loops call Pause() exactly where they previously
// yielded between watch rounds — by contract OUTSIDE any epoch critical section, so a
// parked thread never pins reclamation. The admission slot, once entered, is held
// across the caller's subsequent re-traversal and released either by rotation (next
// Pause with waiters parked) or by the destructor when the acquisition completes.
//
// Timed and immediate deadlines bypass the gate entirely (Pause degenerates to the
// pre-gate yield): a trylock must not park, and a timed waiter's deadline bounds its
// wait more tightly than the gate's queueing ever could.
class AdmissionSpinner {
 public:
  AdmissionSpinner(AdmissionGate* gate, const Deadline& deadline)
      : gate_(gate != nullptr && deadline.IsInfinite() &&
                      AdmissionGate::GloballyEnabled()
                  ? gate
                  : nullptr) {}

  ~AdmissionSpinner() { Release(); }

  AdmissionSpinner(const AdmissionSpinner&) = delete;
  AdmissionSpinner& operator=(const AdmissionSpinner&) = delete;

  // One inter-round pause: periodically rotate the admission slot (exit — culling a
  // parked waiter — then re-enter, possibly parking), then cede the CPU exactly as
  // the pre-gate wait loops did. With the gate idle this is one relaxed load plus the
  // original yield.
  //
  // Rotation is deliberately RARE (every kRotatePeriod-th pause with waiters parked):
  // concurrency restriction only pays if the parked surplus actually stays parked —
  // rotating every round would turn each watch iteration into a futex sleep+wake pair
  // and hand the oversubscription cost right back. The period only bounds how long a
  // parked thread that others depend on can stay parked; correctness needs rotation
  // to be eventual, not frequent.
  void Pause() {
    if (gate_ != nullptr) {
      if (holding_ && gate_->HasParked() && ++pauses_with_parked_ >= kRotatePeriod) {
        pauses_with_parked_ = 0;
        gate_->Exit();
        holding_ = false;
      }
      if (!holding_) {
        gate_->Enter(Deadline::Infinite());
        holding_ = true;
      }
    }
    std::this_thread::yield();
  }

  // Drops the admission slot early (acquisition succeeded or was abandoned). Safe to
  // call repeatedly; also run by the destructor.
  void Release() {
    if (holding_) {
      gate_->Exit();
      holding_ = false;
    }
  }

 private:
  // Pauses observed with waiters parked before the held slot is rotated to one of
  // them. Long enough that a parked thread sleeps through whole watch phases, short
  // enough that chained acquisitions (one waiter's progress gated on another parked
  // thread's next step) unwedge within tens of microseconds.
  static constexpr uint32_t kRotatePeriod = 64;

  AdmissionGate* gate_;
  bool holding_ = false;
  uint32_t pauses_with_parked_ = 0;
};

}  // namespace srl

#endif  // SRL_SYNC_ADMISSION_H_
