// Monotonic sequence counter / seqlock used by the speculative VM protocols (§5.2).
//
// Two usage patterns share this type:
//
//   * Plain counter (Read/Bump): the VM subsystem historically bumped it on every
//     full-range write release; speculating operations snapshot it to detect that mm_rb
//     may have changed between their read-locked lookup and their refined write
//     acquisition (Listing 4).
//
//   * Seqlock (BeginWrite/EndWrite + ReadBegin/Validate): structural mutators wrap their
//     mutation in a write section (counter odd while a mutation is in flight); optimistic
//     readers snapshot an even value before walking shared structure and re-validate
//     afterwards, retrying when a mutation overlapped the walk. This is what lets
//     VmaIndex::FindOptimistic run correctly without excluding concurrent out-of-range
//     structural writers. The same interface serves per-object at finer grain:
//     Vma::meta_seq brackets metadata-only boundary/protection moves (invisible to the
//     index-level counter by design), giving the lock-free fault path a torn-read
//     detector for a single VMA's (start, end, prot) triple.
//
// Memory-model notes (Boehm, "Can seqlocks get along with programming language memory
// models?"): the write section opens with an acq_rel RMW and closes with a release RMW;
// readers begin with an acquire load (so the walk's loads cannot hoist above the
// snapshot) and validate behind an acquire fence (so they cannot sink below it). All
// data read inside a read section must itself be accessed through atomics — the
// protocol makes torn *walks* detectable, it does not make torn *loads* defined.
#ifndef SRL_SYNC_SEQ_COUNTER_H_
#define SRL_SYNC_SEQ_COUNTER_H_

#include <atomic>
#include <cstdint>

#include "src/sync/fence.h"
#include "src/sync/spin_wait.h"

namespace srl {

class SeqCounter {
 public:
  SeqCounter() = default;
  SeqCounter(const SeqCounter&) = delete;
  SeqCounter& operator=(const SeqCounter&) = delete;

  // --- Plain counter interface ---

  // Reads the current sequence value. Acquire so that a reader that later revalidates
  // observes at least the state published before the last bump it saw.
  uint64_t Read() const { return value_.load(std::memory_order_acquire); }

  // Bumps the counter once (any parity). Callers using the seqlock interface below must
  // not mix in bare Bump()s.
  void Bump() { value_.fetch_add(1, std::memory_order_acq_rel); }

  // --- Seqlock interface ---

  // Opens a write section: the value becomes odd. Write sections must not nest and must
  // be serialized externally (VmaIndex serializes them with its tree spin lock).
  void BeginWrite() { value_.fetch_add(1, std::memory_order_acq_rel); }

  // Closes the write section opened by BeginWrite(): the value becomes even again.
  void EndWrite() { value_.fetch_add(1, std::memory_order_release); }

  // Snapshots a stable (even) value, spinning past any in-flight write section.
  uint64_t ReadBegin() const {
    SpinWait spin;
    for (;;) {
      const uint64_t v = value_.load(std::memory_order_acquire);
      if ((v & 1) == 0) {
        return v;
      }
      spin.Spin();
    }
  }

  // True if no write section started since `snapshot` was taken by ReadBegin(). The
  // fence orders the caller's preceding data loads before the re-read (SeqCstFence
  // rather than a bare acquire fence: TSan cannot model fences, and the seq_cst RMW
  // substitute it swaps in gives TSan a trackable ordering point — see sync/fence.h).
  bool Validate(uint64_t snapshot) const {
    SeqCstFence();
    return value_.load(std::memory_order_relaxed) == snapshot;
  }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace srl

#endif  // SRL_SYNC_SEQ_COUNTER_H_
