// Monotonic sequence counter used by the speculative mprotect mechanism (§5.2).
//
// The VM subsystem bumps this counter every time a full-range write acquisition of the
// range lock is released; speculating operations snapshot it to detect that mm_rb may have
// changed between their read-locked lookup and their refined write acquisition (Listing 4).
#ifndef SRL_SYNC_SEQ_COUNTER_H_
#define SRL_SYNC_SEQ_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace srl {

class SeqCounter {
 public:
  SeqCounter() = default;
  SeqCounter(const SeqCounter&) = delete;
  SeqCounter& operator=(const SeqCounter&) = delete;

  // Reads the current sequence value. Acquire so that a reader that later revalidates
  // observes at least the tree state published before the last bump it saw.
  uint64_t Read() const { return value_.load(std::memory_order_acquire); }

  // Bumps the counter. Called with the full-range write lock held (or immediately before
  // its release), so increments never race with each other in the intended usage; the
  // atomic add keeps the type safe for any usage.
  void Bump() { value_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace srl

#endif  // SRL_SYNC_SEQ_COUNTER_H_
