// Sequentially-consistent fence that stays usable under ThreadSanitizer.
//
// TSan does not model std::atomic_thread_fence (GCC even rejects it outright with
// -Werror under -fsanitize=thread). The standard substitute is a seq_cst RMW on a
// process-wide dummy atomic: it creates the same total-order point and, unlike the
// fence, gives TSan a happens-before edge it can track — so the algorithms that pair
// fences (list_rw_range_lock's insert/validate protocol) stay analyzable instead of
// producing false positives.
#ifndef SRL_SYNC_FENCE_H_
#define SRL_SYNC_FENCE_H_

#include <atomic>

#if defined(__SANITIZE_THREAD__)
#define SRL_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SRL_TSAN 1
#endif
#endif

namespace srl {

inline void SeqCstFence() {
#ifdef SRL_TSAN
  static std::atomic<unsigned> dummy{0};
  dummy.fetch_add(1, std::memory_order_seq_cst);
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace srl

#endif  // SRL_SYNC_FENCE_H_
