// Writer-preferring reader-writer spin lock.
//
// Used as the per-segment lock of the pNOVA-style segment range lock (Kim et al., APSys'19)
// and wherever a small, embeddable RW lock is needed.
#ifndef SRL_SYNC_RW_SPIN_LOCK_H_
#define SRL_SYNC_RW_SPIN_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/sync/deadline.h"
#include "src/sync/spin_wait.h"

namespace srl {

// State layout: bit 31 = writer active; bits [30:0] = active reader count.
// A separate waiting-writer counter gives writers preference: new readers hold off while
// any writer is queued, so writers cannot be starved by a reader stream.
class RwSpinLock {
 public:
  RwSpinLock() = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  void lock_shared() {
    SpinWait spin;
    for (;;) {
      if (writers_waiting_.load(std::memory_order_relaxed) == 0) {
        uint32_t s = state_.load(std::memory_order_relaxed);
        if ((s & kWriterBit) == 0 &&
            state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
      }
      spin.Spin();
    }
  }

  bool try_lock_shared() {
    uint32_t s = state_.load(std::memory_order_relaxed);
    return (s & kWriterBit) == 0 &&
           state_.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Deadline-bounded lock_shared with the *same* admission policy as the blocking
  // loop — in particular it defers to queued writers, so a stream of timed readers
  // cannot starve a registered writer the way raw try_lock_shared polling would.
  bool lock_shared_until(const Deadline& deadline) {
    DeadlineSpinner spinner(deadline);
    do {
      if (writers_waiting_.load(std::memory_order_relaxed) == 0) {
        // Retry the CAS while admission still holds: a weak CAS may fail spuriously
        // (LL/SC), and an immediate deadline gets exactly one pass through this loop —
        // it must not report failure on an uncontended segment.
        uint32_t s = state_.load(std::memory_order_relaxed);
        while ((s & kWriterBit) == 0) {
          if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
            return true;
          }
        }
      }
    } while (spinner.SpinOrExpire());
    return false;
  }

  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

  void lock() {
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);
    SpinWait spin;
    for (;;) {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      spin.Spin();
    }
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
  }

  bool try_lock() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterBit, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Deadline-bounded lock(): registers in writers_waiting_ for the duration of the
  // wait, exactly like the blocking loop, so new readers hold off while this writer
  // polls instead of admitting past it until its timeout burns out.
  bool lock_until(const Deadline& deadline) {
    if (deadline.IsImmediate()) {
      return try_lock();  // no queueing for a single attempt
    }
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);
    DeadlineSpinner spinner(deadline);
    bool acquired = false;
    do {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        acquired = true;
        break;
      }
    } while (spinner.SpinOrExpire());
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
    return acquired;
  }

  void unlock() { state_.store(0, std::memory_order_release); }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;

  std::atomic<uint32_t> state_{0};
  std::atomic<uint32_t> writers_waiting_{0};
};

}  // namespace srl

#endif  // SRL_SYNC_RW_SPIN_LOCK_H_
