// FIFO ticket spin lock.
#ifndef SRL_SYNC_TICKET_LOCK_H_
#define SRL_SYNC_TICKET_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/sync/spin_wait.h"

namespace srl {

// Strictly fair mutual-exclusion lock: threads are granted the lock in arrival order.
// Used where FIFO admission matters more than raw throughput.
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() {
    const uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait spin;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      spin.Spin();
    }
  }

  bool try_lock() {
    uint32_t serving = serving_.load(std::memory_order_acquire);
    uint32_t expected = serving;
    // Only succeeds when no one is queued: next_ == serving_ and we take the next ticket.
    return next_.compare_exchange_strong(expected, serving + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() { serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                                 std::memory_order_release); }

 private:
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> serving_{0};
};

}  // namespace srl

#endif  // SRL_SYNC_TICKET_LOCK_H_
