// Deadline — the one argument every non-blocking acquisition path threads through.
//
// A range-lock acquisition can run in three patience regimes:
//   * blocking   (Deadline::Infinite)   — wait as long as it takes; never expires;
//   * immediate  (Deadline::Immediate)  — the trylock contract: fail the moment an
//                                         acquisition would have to wait for a holder;
//   * timed      (Deadline::After(d))   — wait, but give up once `d` has elapsed.
//
// Representing all three as one value keeps the lock implementations free of
// per-variant code paths: wait loops ask Expired() and otherwise proceed as if
// blocking. Expired() is free for the infinite and immediate cases; for timed
// deadlines it reads the steady clock, so wait loops should poll it every few
// hundred spins (see kSpinsPerClockCheck), not every iteration.
#ifndef SRL_SYNC_DEADLINE_H_
#define SRL_SYNC_DEADLINE_H_

#include <chrono>
#include <cstdint>

#include "src/sync/spin_wait.h"

namespace srl {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Blocking: never expires.
  static Deadline Infinite() { return Deadline(Kind::kInfinite, {}); }

  // Trylock: already expired — any wait fails instantly.
  static Deadline Immediate() { return Deadline(Kind::kImmediate, {}); }

  // Timed: expires `timeout` from now (clamped to non-negative).
  static Deadline After(std::chrono::nanoseconds timeout) {
    if (timeout <= std::chrono::nanoseconds::zero()) {
      return Immediate();
    }
    return Deadline(Kind::kTimed, Clock::now() + timeout);
  }

  bool IsInfinite() const { return kind_ == Kind::kInfinite; }
  bool IsImmediate() const { return kind_ == Kind::kImmediate; }

  bool Expired() const {
    switch (kind_) {
      case Kind::kInfinite:
        return false;
      case Kind::kImmediate:
        return true;
      case Kind::kTimed:
        return Clock::now() >= when_;
    }
    return false;
  }

  // Reading the clock on every spin of a wait loop would dominate the wait itself;
  // checking once per this many iterations bounds timed-wait overshoot to a few
  // microseconds while keeping the hot path clock-free.
  static constexpr int kSpinsPerClockCheck = 256;

 private:
  enum class Kind : uint8_t { kInfinite, kImmediate, kTimed };

  Deadline(Kind kind, Clock::time_point when) : kind_(kind), when_(when) {}

  Kind kind_;
  Clock::time_point when_;
};

// The one deadline-bounded wait loop, shared by every polling waiter:
//
//   DeadlineSpinner spinner(deadline);
//   do {
//     if (<try the acquisition>) return true;
//   } while (spinner.SpinOrExpire());
//   return false;   // deadline expired
//
// SpinOrExpire() burns one SpinWait iteration and polls the clock at a rate matched to
// the iteration cost: every kSpinsPerClockCheck iterations while CpuRelax-spinning
// (where a clock read would dominate), but every iteration once SpinWait has switched
// to yielding — there each iteration is already a syscall, and batching checks across
// yields would let a short timed wait overshoot by whole scheduler quanta. An immediate
// deadline expires before the first spin, so the loop above degenerates to one try.
class DeadlineSpinner {
 public:
  // The deadline is captured by reference and must outlive the spinner (callers keep
  // it on their stack for the whole wait).
  explicit DeadlineSpinner(const Deadline& deadline) : deadline_(deadline) {}

  bool SpinOrExpire() {
    if (deadline_.IsImmediate()) {
      return false;
    }
    const bool check_clock =
        spin_.Yielding() || ++spins_ % Deadline::kSpinsPerClockCheck == 0;
    if (check_clock && deadline_.Expired()) {
      return false;
    }
    spin_.Spin();
    return true;
  }

 private:
  const Deadline& deadline_;
  SpinWait spin_;
  uint64_t spins_ = 0;
};

}  // namespace srl

#endif  // SRL_SYNC_DEADLINE_H_
