// Bounded exponential backoff for contended CAS loops.
#ifndef SRL_SYNC_BACKOFF_H_
#define SRL_SYNC_BACKOFF_H_

#include <cstdint>

#include "src/sync/pause.h"

namespace srl {

// Doubles the number of CpuRelax() iterations on every call to Spin(), up to `max_spins`.
// Reset() returns to the initial value. Cheap enough to live on the stack of a lock
// acquisition path.
class Backoff {
 public:
  explicit Backoff(uint32_t min_spins = 4, uint32_t max_spins = 1024)
      : cur_(min_spins), min_(min_spins), max_(max_spins) {}

  void Spin() {
    for (uint32_t i = 0; i < cur_; ++i) {
      CpuRelax();
    }
    if (cur_ < max_) {
      cur_ *= 2;
    }
  }

  void Reset() { cur_ = min_; }

 private:
  uint32_t cur_;
  uint32_t min_;
  uint32_t max_;
};

}  // namespace srl

#endif  // SRL_SYNC_BACKOFF_H_
