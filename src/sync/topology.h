// Machine-topology probe for core- and NUMA-aware placement decisions.
//
// Two consumers drive the shape of this interface:
//   * AddressSpace::HomeStripe() wants a stable, cache-friendly stripe for the calling
//     thread. Registration order (the pre-topology policy) spreads threads evenly but
//     ignores where they actually run: two hyperthreads of one core land on different
//     stripes while two threads of different sockets may share one. PackedIndexOf()
//     enumerates CPUs grouped by NUMA node, so "consecutive packed indices" means
//     "physically close" and a stripe assignment derived from it keeps a stripe's
//     working set on one socket.
//   * AdmissionGate prefers to cull parked waiters that run on the releaser's own node
//     (the CNA handoff policy); it needs CurrentCpu()/NodeOfCpu() and NodeCount().
//
// The probe is graceful about degenerate environments: with no sysfs node directories
// (non-Linux, containers with masked /sys) every CPU maps to node 0, and on a
// single-core host — or when TestOnlyForceSingleCore() is set — SingleCore() reports
// true so callers can keep their deterministic fallback policies (AddressSpace falls
// back to registration-order round-robin, exercised by vm_stripe_test).
#ifndef SRL_SYNC_TOPOLOGY_H_
#define SRL_SYNC_TOPOLOGY_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace srl {

class Topology {
 public:
  // The probed topology of this machine (probe runs once, thread-safe).
  static const Topology& Get();

  // CPU the calling thread is currently running on, or -1 when the platform cannot
  // say (no sched_getcpu). Cheap (vDSO on Linux); callers may still want to cache it
  // per thread when they need stability rather than currency.
  static int CurrentCpu();

  // Test hook: makes SingleCore() report true regardless of the real core count, so
  // single-core fallback paths can be exercised deterministically on any machine.
  static void TestOnlyForceSingleCore(bool on);

  // Synthetic topology for unit tests: `node_of_cpu[c]` is the NUMA node of CPU c.
  Topology(unsigned cpu_count, std::vector<unsigned> node_of_cpu);

  unsigned CpuCount() const { return cpu_count_; }
  unsigned NodeCount() const { return node_count_; }

  // True on a one-CPU machine (or under TestOnlyForceSingleCore): locality-based
  // placement has nothing to work with, use order-based fallbacks.
  bool SingleCore() const {
    return cpu_count_ <= 1 || forced_single_core_.load(std::memory_order_relaxed);
  }

  // NUMA node of a CPU (0 for out-of-range ids — a conservative answer, never UB).
  unsigned NodeOfCpu(unsigned cpu) const {
    return cpu < node_of_cpu_.size() ? node_of_cpu_[cpu] : 0;
  }

  // Position of `cpu` in the node-grouped enumeration: CPUs of node 0 first (ascending
  // id), then node 1, and so on. Consecutive packed indices are physically close, so
  // `PackedIndexOf(cpu) & (stripes - 1)` gives adjacent cores adjacent stripes and
  // keeps one node's cores on one contiguous run of stripes.
  unsigned PackedIndexOf(unsigned cpu) const {
    return cpu < packed_index_.size() ? packed_index_[cpu] : 0;
  }

  // Node of the calling thread's current CPU (0 when the CPU is unknown).
  unsigned CurrentNode() const {
    const int cpu = CurrentCpu();
    return cpu < 0 ? 0 : NodeOfCpu(static_cast<unsigned>(cpu));
  }

 private:
  Topology();  // real probe: hardware_concurrency + sysfs node map

  void BuildPackedIndex();

  static std::atomic<bool> forced_single_core_;

  unsigned cpu_count_ = 1;
  unsigned node_count_ = 1;
  std::vector<unsigned> node_of_cpu_;   // cpu id -> node id
  std::vector<unsigned> packed_index_;  // cpu id -> node-grouped position
};

}  // namespace srl

#endif  // SRL_SYNC_TOPOLOGY_H_
