// CPU-relax ("pause") primitive for polite busy-waiting, the Pause() of the paper's
// pseudo-code (Listing 1).
#ifndef SRL_SYNC_PAUSE_H_
#define SRL_SYNC_PAUSE_H_

namespace srl {

// Hint to the CPU that we are spinning. Reduces the cost of exiting the spin loop
// and yields pipeline resources to the sibling hyperthread.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

}  // namespace srl

#endif  // SRL_SYNC_PAUSE_H_
