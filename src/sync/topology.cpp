#include "src/sync/topology.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace srl {

std::atomic<bool> Topology::forced_single_core_{false};

namespace {

// Parses a sysfs cpulist ("0-3,8,10-11") and marks the listed CPUs with `node` in
// `node_of_cpu`, growing the vector as needed. Returns true if at least one CPU was
// assigned. Malformed input assigns nothing — the caller's all-node-0 fallback holds.
bool AssignCpulist(const std::string& cpulist, unsigned node,
                   std::vector<unsigned>* node_of_cpu) {
  bool any = false;
  const char* p = cpulist.c_str();
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const unsigned long first = std::strtoul(p, &end, 10);
    if (end == p) {
      break;
    }
    unsigned long last = first;
    p = end;
    if (*p == '-') {
      last = std::strtoul(p + 1, &end, 10);
      if (end == p + 1) {
        break;
      }
      p = end;
    }
    if (last < first || last > 4096) {
      break;  // implausible range: treat the whole list as malformed
    }
    if (node_of_cpu->size() <= last) {
      node_of_cpu->resize(last + 1, 0);
    }
    for (unsigned long c = first; c <= last; ++c) {
      (*node_of_cpu)[c] = node;
      any = true;
    }
    if (*p == ',') {
      ++p;
    }
  }
  return any;
}

// Reads /sys/devices/system/node/node<N>/cpulist for consecutive N. Returns the number
// of nodes found (0 when sysfs is absent or masked).
unsigned ProbeSysfsNodes(std::vector<unsigned>* node_of_cpu) {
  unsigned nodes = 0;
  for (unsigned n = 0; n < 256; ++n) {
    char path[96];
    std::snprintf(path, sizeof path, "/sys/devices/system/node/node%u/cpulist", n);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) {
      break;  // node directories are consecutive; the first gap ends the probe
    }
    char buf[512];
    const bool read_ok = std::fgets(buf, sizeof buf, f) != nullptr;
    std::fclose(f);
    if (read_ok && AssignCpulist(buf, n, node_of_cpu)) {
      nodes = n + 1;
    }
  }
  return nodes;
}

}  // namespace

Topology::Topology() {
  const unsigned hw = std::thread::hardware_concurrency();
  cpu_count_ = hw == 0 ? 1 : hw;
  node_of_cpu_.assign(cpu_count_, 0);
  const unsigned probed = ProbeSysfsNodes(&node_of_cpu_);
  if (probed == 0) {
    // No usable node map (non-Linux, masked sysfs): one node holding every CPU.
    node_of_cpu_.assign(cpu_count_, 0);
    node_count_ = 1;
  } else {
    // sysfs may describe more CPUs than hardware_concurrency admits (offline CPUs,
    // affinity masks); keep the larger map so NodeOfCpu answers for any id
    // sched_getcpu can return.
    node_count_ = probed;
    if (node_of_cpu_.size() < cpu_count_) {
      node_of_cpu_.resize(cpu_count_, 0);
    }
  }
  BuildPackedIndex();
}

Topology::Topology(unsigned cpu_count, std::vector<unsigned> node_of_cpu)
    : cpu_count_(cpu_count == 0 ? 1 : cpu_count), node_of_cpu_(std::move(node_of_cpu)) {
  if (node_of_cpu_.size() < cpu_count_) {
    node_of_cpu_.resize(cpu_count_, 0);
  }
  node_count_ = 1 + *std::max_element(node_of_cpu_.begin(), node_of_cpu_.end());
  BuildPackedIndex();
}

void Topology::BuildPackedIndex() {
  // Stable-sort CPU ids by node: the packed index of a CPU is its rank in (node, id)
  // order. O(cpus * nodes) is fine for a once-per-process probe.
  packed_index_.assign(node_of_cpu_.size(), 0);
  unsigned next = 0;
  for (unsigned node = 0; node < node_count_; ++node) {
    for (unsigned cpu = 0; cpu < node_of_cpu_.size(); ++cpu) {
      if (node_of_cpu_[cpu] == node) {
        packed_index_[cpu] = next++;
      }
    }
  }
}

const Topology& Topology::Get() {
  static const Topology topo;
  return topo;
}

int Topology::CurrentCpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

void Topology::TestOnlyForceSingleCore(bool on) {
  forced_single_core_.store(on, std::memory_order_relaxed);
}

}  // namespace srl
