// Adaptive busy-wait helper for the sync layer's wait loops.
//
// Pure CpuRelax() spinning assumes the holder is making progress on another core. On an
// oversubscribed host (CI containers, laptops, threads > cores) the holder may be
// preempted, and a pure spinner then burns its entire scheduler quantum before the
// holder can run — contended tests that finish in milliseconds on a big machine take
// minutes on a single core. SpinWait spins politely for a bounded number of iterations
// (the common uncontended-handoff case stays in user space, no syscall) and then yields
// the CPU so a preempted holder can be rescheduled.
#ifndef SRL_SYNC_SPIN_WAIT_H_
#define SRL_SYNC_SPIN_WAIT_H_

#include <cstdint>
#include <thread>

#include "src/sync/pause.h"

namespace srl {

class SpinWait {
 public:
  // One wait-loop iteration: CpuRelax for the first `spins_before_yield` calls, then
  // std::this_thread::yield() on every call after that.
  void Spin() {
    if (count_ < kSpinsBeforeYield) {
      ++count_;
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { count_ = 0; }

  // True once Spin() has switched from CpuRelax to yielding. Wait loops that batch
  // expensive checks (e.g. deadline clock reads) across spins should stop batching
  // here: each further iteration already costs a syscall.
  bool Yielding() const { return count_ >= kSpinsBeforeYield; }

 private:
  // Long enough that a cache-to-cache handoff never yields; short enough that a
  // preempted holder costs one scheduler quantum, not many.
  static constexpr uint32_t kSpinsBeforeYield = 256;

  uint32_t count_ = 0;
};

}  // namespace srl

#endif  // SRL_SYNC_SPIN_WAIT_H_
