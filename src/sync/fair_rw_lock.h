// Phase-fair ticket reader-writer lock (Brandenburg & Anderson, "Reader-writer
// synchronization for shared-memory multiprocessor real-time systems", PF-T variant).
//
// This is the "auxiliary (fair) reader-writer lock" required by the fairness mechanism of
// §4.3: when a thread repeatedly fails to acquire a range it bumps an impatient counter and
// grabs this lock for write, which admits it ahead of all later arrivals.
//
// Properties: writers are FIFO among themselves; readers that arrive while a writer is
// present wait for at most one writer phase; reader phases and writer phases alternate
// under contention, so neither side starves.
#ifndef SRL_SYNC_FAIR_RW_LOCK_H_
#define SRL_SYNC_FAIR_RW_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/sync/spin_wait.h"

namespace srl {

class FairRwLock {
 public:
  FairRwLock() = default;
  FairRwLock(const FairRwLock&) = delete;
  FairRwLock& operator=(const FairRwLock&) = delete;

  void lock_shared() {
    // Announce ourselves; the two low bits snapshot the writer-presence word at entry.
    const uint32_t w = rin_.fetch_add(kReaderInc, std::memory_order_acquire) & kWriterMask;
    if (w != 0) {
      // A writer is present: wait until its presence word changes (it released, or the
      // next writer — with a flipped phase bit — took over, which also ends our wait and
      // gives phase-fairness: we only ever wait for one writer).
      SpinWait spin;
      while ((rin_.load(std::memory_order_acquire) & kWriterMask) == w) {
        spin.Spin();
      }
    }
  }

  void unlock_shared() { rout_.fetch_add(kReaderInc, std::memory_order_release); }

  void lock() {
    // Writers serialize through a ticket pair.
    const uint32_t ticket = win_.fetch_add(1, std::memory_order_relaxed);
    SpinWait spin;
    while (wout_.load(std::memory_order_acquire) != ticket) {
      spin.Spin();
    }
    // Publish presence (blocks new readers) and snapshot how many readers are ahead of us.
    const uint32_t w = kWriterPresent | (ticket & kPhaseBit);
    const uint32_t readers_in = rin_.fetch_add(w, std::memory_order_acq_rel) & ~kWriterMask;
    // Wait for every reader that entered before us to leave.
    spin.Reset();
    while (rout_.load(std::memory_order_acquire) != readers_in) {
      spin.Spin();
    }
  }

  void unlock() {
    rin_.fetch_and(~kWriterMask, std::memory_order_release);
    wout_.fetch_add(1, std::memory_order_release);
  }

 private:
  static constexpr uint32_t kReaderInc = 0x4;       // readers count in the upper bits
  static constexpr uint32_t kWriterPresent = 0x2;   // a writer holds or awaits the lock
  static constexpr uint32_t kPhaseBit = 0x1;        // distinguishes consecutive writers
  static constexpr uint32_t kWriterMask = kWriterPresent | kPhaseBit;

  std::atomic<uint32_t> rin_{0};   // reader entries (upper bits) + writer presence (low bits)
  std::atomic<uint32_t> rout_{0};  // reader exits
  std::atomic<uint32_t> win_{0};   // writer ticket dispenser
  std::atomic<uint32_t> wout_{0};  // writer tickets served
};

}  // namespace srl

#endif  // SRL_SYNC_FAIR_RW_LOCK_H_
