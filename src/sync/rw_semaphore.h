// Blocking reader-writer semaphore, modelled after the Linux kernel's rw_semaphore
// (mmap_sem). This is the "stock" baseline of the kernel experiments (§7.2).
//
// Semantics reproduced from the kernel:
//   * writers get preference once queued (new readers hold off), approximating the kernel's
//     queued admission, so writers cannot be starved by a fault-heavy reader stream;
//   * waiters spin optimistically for a bounded number of iterations ("optimistic
//     spinning"), then block — the paper attributes part of stock's behaviour under
//     contention to exactly this blocking policy (§7.2, discussion of Figure 5).
//
// Blocking uses C++20 std::atomic::wait/notify, which on Linux compiles down to futex —
// the same mechanism the kernel semaphore's waiters use from user space.
#ifndef SRL_SYNC_RW_SEMAPHORE_H_
#define SRL_SYNC_RW_SEMAPHORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/sync/deadline.h"
#include "src/sync/spin_wait.h"

namespace srl {

class RwSemaphore {
 public:
  RwSemaphore() = default;
  RwSemaphore(const RwSemaphore&) = delete;
  RwSemaphore& operator=(const RwSemaphore&) = delete;

  void lock_shared() {
    // Audit (wait-loop unification): the optimistic spin runs on SpinWait instead of a
    // hand-rolled kOptimisticSpins counter; once SpinWait would start yielding, block
    // on the futex instead — a syscall either way, and the futex one sleeps.
    SpinWait spin;
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      const uint32_t ww = writers_waiting_.load(std::memory_order_relaxed);
      if ((s & kWriterBit) == 0 && ww == 0) {
        if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if (!spin.Yielding()) {
        spin.Spin();
      } else if ((s & kWriterBit) != 0) {
        // Blocked by an active writer; its unlock() changes state_ and notifies.
        state_.wait(s, std::memory_order_relaxed);
      } else {
        // Blocked only by a *queued* writer (s may well be 0). Waiting on state_ here
        // loses the wakeup if that writer completes its whole critical section before
        // we sleep — state_ is back to the value we'd wait on and nobody notifies
        // again. Wait on the counter that actually blocks us instead; the writer
        // notifies it when it dequeues.
        writers_waiting_.wait(ww, std::memory_order_relaxed);
      }
    }
  }

  // down_read_trylock: one shot at joining the reader count. Fails under an active
  // writer; also defers to queued writers (unlike the kernel's trylock, which steals) so
  // the writer-preference invariant of lock_shared holds for every reader admission
  // path. Spurious failure under reader-reader contention is not possible: the CAS
  // retries while no writer is active or queued.
  bool try_lock_shared() {
    uint32_t s = state_.load(std::memory_order_relaxed);
    for (;;) {
      if ((s & kWriterBit) != 0 ||
          writers_waiting_.load(std::memory_order_relaxed) != 0) {
        return false;
      }
      if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  // down_write_trylock: succeeds only when the semaphore is completely free.
  bool try_lock() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  // Timed variants. std::atomic::wait has no timeout, so timed waiters poll with
  // SpinWait (spin-then-yield) instead of sleeping on the futex; they are intended for
  // bounded waits in the milliseconds range, not as a general condition variable.
  bool try_lock_shared_for(std::chrono::nanoseconds timeout) {
    const Deadline deadline = Deadline::After(timeout);
    DeadlineSpinner spinner(deadline);
    do {
      if (try_lock_shared()) {
        return true;
      }
    } while (spinner.SpinOrExpire());
    return false;
  }

  bool try_lock_for(std::chrono::nanoseconds timeout) {
    const Deadline deadline = Deadline::After(timeout);
    if (deadline.IsImmediate()) {
      return try_lock();  // zero timeout: no queueing, no spinning
    }
    // Register as a queued writer for the duration of the poll, exactly like lock():
    // without this, a continuous reader stream keeps state_ nonzero forever and the
    // timed writer burns its whole timeout that a blocking lock() would have cut off
    // by holding new readers at the door.
    writers_waiting_.fetch_add(1, std::memory_order_seq_cst);
    DeadlineSpinner spinner(deadline);
    bool acquired = false;
    do {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        acquired = true;
        break;
      }
    } while (spinner.SpinOrExpire());
    // Dequeue and wake readers held off by our presence in the queue (see lock()).
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
    writers_waiting_.notify_all();
    return acquired;
  }

  void unlock_shared() {
    // seq_cst pairs with the waiting writer's seq_cst increment of writers_waiting_: either
    // the writer's increment is visible to our check below, or our decrement of state_ is
    // visible to the writer's futex value check — so the wakeup cannot be lost.
    if (state_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
        writers_waiting_.load(std::memory_order_seq_cst) != 0) {
      state_.notify_all();
    }
  }

  void lock() {
    writers_waiting_.fetch_add(1, std::memory_order_seq_cst);
    // Audit (wait-loop unification): optimistic spin on SpinWait, as in lock_shared().
    SpinWait spin;
    for (;;) {
      uint32_t expected = 0;
      if (state_.compare_exchange_weak(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        break;
      }
      if (!spin.Yielding()) {
        spin.Spin();
      } else if (expected != 0) {
        // Never wait on state_ == 0: the lock is free (a spuriously failed CAS can
        // leave expected == 0), and no one is obliged to notify.
        state_.wait(expected, std::memory_order_seq_cst);
      }
    }
    // Dequeue and wake readers held off by our presence in the queue (they wait on
    // writers_waiting_, see lock_shared). They will re-check and find kWriterBit set.
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
    writers_waiting_.notify_all();
  }

  void unlock() {
    state_.store(0, std::memory_order_release);
    state_.notify_all();
  }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;

  std::atomic<uint32_t> state_{0};            // bit 31: writer; low bits: reader count
  std::atomic<uint32_t> writers_waiting_{0};  // queued writers (gives writer preference)
};

}  // namespace srl

#endif  // SRL_SYNC_RW_SEMAPHORE_H_
