// Test-and-test-and-set spin lock.
//
// This is the spin lock the paper uses in the user-space ports of the kernel range locks
// (§7.1: "we used a simple test-test-and-set lock to implement a spin lock protecting the
// range tree in lustre-ex and kernel-rw").
#ifndef SRL_SYNC_SPIN_LOCK_H_
#define SRL_SYNC_SPIN_LOCK_H_

#include <atomic>

#include "src/sync/spin_wait.h"

namespace srl {

// Satisfies the C++ Lockable requirements (usable with std::lock_guard / std::unique_lock).
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    SpinWait spin;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
        spin.Spin();
      }
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace srl

#endif  // SRL_SYNC_SPIN_LOCK_H_
