// Cache-line utilities shared by all concurrency modules.
#ifndef SRL_SYNC_CACHELINE_H_
#define SRL_SYNC_CACHELINE_H_

#include <cstddef>
#include <new>

namespace srl {

// Size used for padding to avoid false sharing. std::hardware_destructive_interference_size
// is not universally available with a sane value, so we pin the common 64-byte line.
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps a value so that it occupies (at least) one exclusive cache line.
// Used for per-thread slots, per-segment locks, and benchmark array slots.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

}  // namespace srl

#endif  // SRL_SYNC_CACHELINE_H_
