// Skip list synchronized by a single range lock (paper §6) — `range-list` /
// `range-lustre` in Figure 4, depending on the lock plugged in.
//
// Structure and search are identical to the optimistic skip list, but nodes carry no
// locks. An update derives one key range from its search:
//   insert(k):  [pred_at_top_level.key, k)      — covers every predecessor whose next
//                                                 pointers the insert rewrites;
//   remove(k):  [pred_at_top_level.key, k + 1)  — one past the victim, so that inserts
//                                                 about to rewrite the victim's pointers
//                                                 (their range starts at k) conflict.
// Acquiring that single range on the shared range lock serializes exactly the updates
// whose rewrites could touch the same nodes; disjoint updates proceed in parallel.
// Contains() remains wait-free and lock-free.
//
// LockPolicy selects the underlying exclusive range lock:
//   ListLockPolicy (the paper's list-based lock) or TreeLockPolicy (kernel tree lock).
#ifndef SRL_SKIPLIST_RANGE_LOCK_SKIPLIST_H_
#define SRL_SKIPLIST_RANGE_LOCK_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <thread>

#include "src/baselines/tree_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/range.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/retire_list.h"
#include "src/harness/prng.h"
#include "src/sync/spin_wait.h"

namespace srl {

// Policy adapters giving both lock families the same Lock/Unlock shape.
struct ListLockPolicy {
  using Handle = ListRangeLock::Handle;
  static const char* Name() { return "range-list"; }
  Handle Lock(const Range& r) { return lock.Lock(r); }
  void Unlock(Handle h) { lock.Unlock(h); }
  ListRangeLock lock;
};

struct TreeLockPolicy {
  using Handle = TreeRangeLock::Handle;
  static const char* Name() { return "range-lustre"; }
  Handle Lock(const Range& r) { return lock.AcquireWrite(r); }
  void Unlock(Handle h) { lock.Release(h); }
  TreeRangeLock lock;
};

template <typename LockPolicy>
class RangeLockSkipList {
 public:
  static constexpr int kMaxLevel = 20;
  // Rounds a same-key inserter waits for a winner's fully_linked bit before exiting
  // its epoch section and retrying from the top (see Insert).
  static constexpr int kLinkSpinRounds = kMaxLevel;

  RangeLockSkipList() : head_(Node::Create(0, kMaxLevel - 1)) {
    for (int l = 0; l < kMaxLevel; ++l) {
      head_->NextAt(l).store(nullptr, std::memory_order_relaxed);
    }
    head_->fully_linked.store(true, std::memory_order_relaxed);
  }

  ~RangeLockSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->NextAt(0).load(std::memory_order_relaxed);
      Node::Destroy(n);
      n = next;
    }
  }

  RangeLockSkipList(const RangeLockSkipList&) = delete;
  RangeLockSkipList& operator=(const RangeLockSkipList&) = delete;

  // Inserts `key`; returns false if already present.
  bool Insert(uint64_t key) {
    assert(key >= 1);
    const int top_level = RandomLevel();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    for (;;) {
      EpochDomain::Enter(rec);
      const int found = Find(key, preds, succs);
      if (found != -1) {
        Node* existing = succs[found];
        if (!existing->marked.load(std::memory_order_acquire)) {
          // The winning inserter may be preempted between linking and publishing
          // fully_linked. Waiting for it inside our critical section would pin this
          // thread's epoch odd for the whole preemption, stalling reclamation
          // domain-wide — so the wait is bounded: after kLinkSpinRounds fruitless
          // rounds, leave the section, yield to the (possibly descheduled) winner,
          // and redo the search. `false` is returned only after fully_linked has
          // actually been observed.
          SpinWait spin;
          bool linked = false;
          for (int round = 0; round < kLinkSpinRounds; ++round) {
            if (existing->fully_linked.load(std::memory_order_acquire)) {
              linked = true;
              break;
            }
            spin.Spin();
          }
          EpochDomain::Exit(rec);
          if (linked) {
            return false;
          }
          std::this_thread::yield();
          continue;
        }
        EpochDomain::Exit(rec);
        continue;  // victim mid-removal; retry
      }
      // One range acquisition replaces the per-node lock chain of the original
      // algorithm. The range must be derived from this search's predecessors; if
      // validation below fails the range is released and everything is retried.
      const Range range{preds[top_level]->key, key};
      typename LockPolicy::Handle h = lock_.Lock(range);
      bool valid = true;
      for (int l = 0; valid && l <= top_level; ++l) {
        Node* pred = preds[l];
        Node* succ = succs[l];
        valid = !pred->marked.load(std::memory_order_acquire) &&
                (succ == nullptr || !succ->marked.load(std::memory_order_acquire)) &&
                pred->NextAt(l).load(std::memory_order_acquire) == succ;
      }
      if (!valid) {
        lock_.Unlock(h);
        EpochDomain::Exit(rec);
        continue;
      }
      Node* node = Node::Create(key, top_level);
      for (int l = 0; l <= top_level; ++l) {
        node->NextAt(l).store(succs[l], std::memory_order_relaxed);
      }
      for (int l = 0; l <= top_level; ++l) {
        preds[l]->NextAt(l).store(node, std::memory_order_release);
      }
      if (std::atomic<bool>* gate = link_gate_; gate != nullptr) {
        // Test-only stall point: hold the node in the linked-but-not-fully_linked
        // window so tests can exercise the bounded wait above deterministically.
        SpinWait gate_spin;
        while (!gate->load(std::memory_order_acquire)) {
          gate_spin.Spin();
        }
      }
      node->fully_linked.store(true, std::memory_order_release);
      lock_.Unlock(h);
      EpochDomain::Exit(rec);
      return true;
    }
  }

  // Removes `key`; returns false if absent.
  bool Remove(uint64_t key) {
    assert(key >= 1);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    for (;;) {
      EpochDomain::Enter(rec);
      const int found = Find(key, preds, succs);
      if (found == -1) {
        EpochDomain::Exit(rec);
        return false;
      }
      Node* victim = succs[found];
      if (!victim->fully_linked.load(std::memory_order_acquire) ||
          victim->top_level != found ||
          victim->marked.load(std::memory_order_acquire)) {
        const bool lost_race = victim->marked.load(std::memory_order_acquire);
        EpochDomain::Exit(rec);  // victim must not be dereferenced past this point
        if (lost_race) {
          return false;  // another remover won
        }
        continue;  // not yet fully linked; retry
      }
      const int top_level = victim->top_level;
      // key + 1 (not key): fences off inserts whose range starts at the victim's key
      // because they would rewrite the victim's next pointers.
      const Range range{preds[top_level]->key, key + 1};
      typename LockPolicy::Handle h = lock_.Lock(range);
      bool valid = !victim->marked.load(std::memory_order_acquire);
      for (int l = 0; valid && l <= top_level; ++l) {
        Node* pred = preds[l];
        valid = !pred->marked.load(std::memory_order_acquire) &&
                pred->NextAt(l).load(std::memory_order_acquire) == victim;
      }
      if (!valid) {
        lock_.Unlock(h);
        EpochDomain::Exit(rec);
        continue;
      }
      victim->marked.store(true, std::memory_order_release);
      for (int l = top_level; l >= 0; --l) {
        preds[l]->NextAt(l).store(victim->NextAt(l).load(std::memory_order_relaxed),
                                  std::memory_order_release);
      }
      lock_.Unlock(h);
      EpochDomain::Exit(rec);
      // Retire outside the critical section. RetireCustom itself never frees inline,
      // so the old retire-then-Exit order was not a use-after-free — but keeping the
      // retire after Exit means the remover's record is provably quiescent by the
      // time any flush machinery (today's QuiesceLocal, or a future inline flush)
      // examines it, and matches RetireList's documented contract of retiring while
      // holding no epoch section. The victim stays safe to name here: it was
      // unlinked under the range lock above, so only this thread retires it.
      RetireList::Local().RetireCustom(victim, &Node::DestroyErased);
      return true;
    }
  }

  // Wait-free membership test (identical to the original algorithm's).
  bool Contains(uint64_t key) const {
    assert(key >= 1);
    EpochGuard guard(EpochDomain::Global());
    Node* pred = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* cur = pred->NextAt(l).load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = pred->NextAt(l).load(std::memory_order_acquire);
      }
      if (cur != nullptr && cur->key == key) {
        return cur->fully_linked.load(std::memory_order_acquire) &&
               !cur->marked.load(std::memory_order_acquire);
      }
    }
    return false;
  }

  static void QuiesceLocal() { RetireList::Local().MaybeFlush(); }

  std::size_t DebugCount() const {
    // The walk reads nodes that concurrent removers retire; without a critical
    // section a parked batch whose grace snapshot predates this walk can be freed
    // mid-traversal (use-after-free under churn — caught by the ASan/TSan
    // DebugCountDuringChurn regression test).
    EpochGuard guard(EpochDomain::Global());
    std::size_t n = 0;
    for (Node* cur = head_->NextAt(0).load(std::memory_order_acquire); cur != nullptr;
         cur = cur->NextAt(0).load(std::memory_order_acquire)) {
      if (!cur->marked.load(std::memory_order_acquire)) {
        ++n;
      }
    }
    return n;
  }

  // Per-node memory for a node of the given height: no per-node spin lock, which is the
  // footprint saving §6 claims.
  static std::size_t NodeBytes(int top_level) {
    return sizeof(Node) + static_cast<std::size_t>(top_level + 1) * sizeof(std::atomic<void*>);
  }

  static const char* Name() { return LockPolicy::Name(); }

  // Test-only: while `*gate` is false, Insert stalls after linking a new node but
  // before publishing fully_linked, holding concurrent same-key inserters in the
  // bounded-wait window. Set while quiescent; null disables the stall.
  void TestOnlySetLinkGate(std::atomic<bool>* gate) { link_gate_ = gate; }

 private:
  struct Node {
    uint64_t key;
    int32_t top_level;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};

    std::atomic<Node*>& NextAt(int l) {
      return reinterpret_cast<std::atomic<Node*>*>(this + 1)[l];
    }

    static Node* Create(uint64_t key, int top_level) {
      void* mem = ::operator new(sizeof(Node) +
                                 static_cast<std::size_t>(top_level + 1) *
                                     sizeof(std::atomic<Node*>));
      Node* n = new (mem) Node();
      n->key = key;
      n->top_level = top_level;
      auto* levels = reinterpret_cast<std::atomic<Node*>*>(n + 1);
      for (int l = 0; l <= top_level; ++l) {
        new (&levels[l]) std::atomic<Node*>(nullptr);
      }
      return n;
    }

    static void Destroy(Node* n) {
      n->~Node();
      ::operator delete(n);
    }

    static void DestroyErased(void* p) { Destroy(static_cast<Node*>(p)); }
  };

  int Find(uint64_t key, Node** preds, Node** succs) const {
    int found = -1;
    Node* pred = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* cur = pred->NextAt(l).load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = pred->NextAt(l).load(std::memory_order_acquire);
      }
      if (found == -1 && cur != nullptr && cur->key == key) {
        found = l;
      }
      preds[l] = pred;
      succs[l] = cur;
    }
    return found;
  }

  int RandomLevel() {
    thread_local Xoshiro256 rng(0x5eedba5e ^ reinterpret_cast<uintptr_t>(&rng));
    int level = 0;
    while (level < kMaxLevel - 1 && (rng.Next() & 1) != 0) {
      ++level;
    }
    return level;
  }

  Node* head_;
  mutable LockPolicy lock_;
  std::atomic<bool>* link_gate_ = nullptr;
};

}  // namespace srl

#endif  // SRL_SKIPLIST_RANGE_LOCK_SKIPLIST_H_
