// The optimistic ("lazy") skip list of Herlihy, Lev, Luchangco & Shavit (SIROCCO'07) —
// the `orig` baseline of the paper's skip-list experiment (§6, Figure 4).
//
// Every node carries its own spin lock. Updates search optimistically without locks,
// then lock all predecessors of the affected node (up to one per level, plus the victim
// for removals), validate that the neighbourhood did not change, apply, and unlock.
// Contains() is wait-free: it takes no locks and decides from the marked / fully-linked
// flags.
//
// Keys are uint64_t values >= 1 (0 names the head sentinel). Node memory is reclaimed
// through the epoch scheme; all operations run inside an epoch critical section.
#ifndef SRL_SKIPLIST_OPTIMISTIC_SKIPLIST_H_
#define SRL_SKIPLIST_OPTIMISTIC_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>

#include "src/epoch/epoch_domain.h"
#include "src/epoch/retire_list.h"
#include "src/harness/prng.h"
#include "src/sync/spin_lock.h"
#include "src/sync/spin_wait.h"

namespace srl {

class OptimisticSkipList {
 public:
  static constexpr int kMaxLevel = 20;  // comfortably supports tens of millions of keys

  OptimisticSkipList() : head_(Node::Create(0, kMaxLevel - 1)) {
    for (int l = 0; l < kMaxLevel; ++l) {
      head_->NextAt(l).store(nullptr, std::memory_order_relaxed);
    }
    head_->fully_linked.store(true, std::memory_order_relaxed);
  }

  ~OptimisticSkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->NextAt(0).load(std::memory_order_relaxed);
      Node::Destroy(n);
      n = next;
    }
  }

  OptimisticSkipList(const OptimisticSkipList&) = delete;
  OptimisticSkipList& operator=(const OptimisticSkipList&) = delete;

  // Inserts `key`; returns false if already present.
  bool Insert(uint64_t key) {
    assert(key >= 1);
    const int top_level = RandomLevel();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    EpochGuard guard(EpochDomain::Global());
    for (;;) {
      const int found = Find(key, preds, succs);
      if (found != -1) {
        Node* existing = succs[found];
        if (!existing->marked.load(std::memory_order_acquire)) {
          // Key already present (or being inserted); wait for it to be fully linked so
          // our "false" answer is linearizable.
          SpinWait spin;
          while (!existing->fully_linked.load(std::memory_order_acquire)) {
            spin.Spin();
          }
          return false;
        }
        continue;  // victim mid-removal; retry
      }
      // Lock all predecessors bottom-up (ascending level), skipping repeats.
      int highest_locked = -1;
      Node* prev_locked = nullptr;
      bool valid = true;
      for (int l = 0; valid && l <= top_level; ++l) {
        Node* pred = preds[l];
        Node* succ = succs[l];
        if (pred != prev_locked) {
          pred->lock.lock();
          highest_locked = l;
          prev_locked = pred;
        }
        valid = !pred->marked.load(std::memory_order_acquire) &&
                (succ == nullptr || !succ->marked.load(std::memory_order_acquire)) &&
                pred->NextAt(l).load(std::memory_order_acquire) == succ;
      }
      if (!valid) {
        UnlockPreds(preds, highest_locked);
        continue;
      }
      Node* node = Node::Create(key, top_level);
      for (int l = 0; l <= top_level; ++l) {
        node->NextAt(l).store(succs[l], std::memory_order_relaxed);
      }
      for (int l = 0; l <= top_level; ++l) {
        preds[l]->NextAt(l).store(node, std::memory_order_release);
      }
      node->fully_linked.store(true, std::memory_order_release);
      UnlockPreds(preds, highest_locked);
      return true;
    }
  }

  // Removes `key`; returns false if absent.
  bool Remove(uint64_t key) {
    assert(key >= 1);
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    Node* victim = nullptr;
    bool is_marked = false;
    int top_level = -1;
    EpochGuard guard(EpochDomain::Global());
    for (;;) {
      const int found = Find(key, preds, succs);
      if (found != -1) {
        victim = succs[found];
      }
      if (is_marked ||
          (found != -1 && victim->fully_linked.load(std::memory_order_acquire) &&
           victim->top_level == found &&
           !victim->marked.load(std::memory_order_acquire))) {
        if (!is_marked) {
          top_level = victim->top_level;
          victim->lock.lock();
          if (victim->marked.load(std::memory_order_acquire)) {
            victim->lock.unlock();
            return false;  // someone else is removing it
          }
          victim->marked.store(true, std::memory_order_release);
          is_marked = true;
        }
        int highest_locked = -1;
        Node* prev_locked = nullptr;
        bool valid = true;
        for (int l = 0; valid && l <= top_level; ++l) {
          Node* pred = preds[l];
          if (pred != prev_locked) {
            pred->lock.lock();
            highest_locked = l;
            prev_locked = pred;
          }
          valid = !pred->marked.load(std::memory_order_acquire) &&
                  pred->NextAt(l).load(std::memory_order_acquire) == victim;
        }
        if (!valid) {
          UnlockPreds(preds, highest_locked);
          continue;
        }
        for (int l = top_level; l >= 0; --l) {
          preds[l]->NextAt(l).store(victim->NextAt(l).load(std::memory_order_relaxed),
                                    std::memory_order_release);
        }
        victim->lock.unlock();
        UnlockPreds(preds, highest_locked);
        RetireList::Local().RetireCustom(victim, &Node::DestroyErased);
        return true;
      }
      return false;
    }
  }

  // Wait-free membership test.
  bool Contains(uint64_t key) const {
    assert(key >= 1);
    EpochGuard guard(EpochDomain::Global());
    Node* pred = head_;
    Node* cur = nullptr;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      cur = pred->NextAt(l).load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = pred->NextAt(l).load(std::memory_order_acquire);
      }
      if (cur != nullptr && cur->key == key) {
        return cur->fully_linked.load(std::memory_order_acquire) &&
               !cur->marked.load(std::memory_order_acquire);
      }
    }
    return false;
  }

  // Flushes this thread's retired nodes if the batch is large. Call between operations,
  // never while holding locks.
  static void QuiesceLocal() { RetireList::Local().MaybeFlush(); }

  // Number of live keys (test-only; requires quiescence).
  std::size_t DebugCount() const {
    std::size_t n = 0;
    for (Node* cur = head_->NextAt(0).load(std::memory_order_acquire); cur != nullptr;
         cur = cur->NextAt(0).load(std::memory_order_acquire)) {
      if (!cur->marked.load(std::memory_order_acquire)) {
        ++n;
      }
    }
    return n;
  }

  // Per-node memory for a node of the given height — used by the memory-footprint
  // comparison (§6 notes the range-lock variant drops the per-node lock).
  static std::size_t NodeBytes(int top_level) {
    return sizeof(Node) + static_cast<std::size_t>(top_level + 1) * sizeof(std::atomic<void*>);
  }

 private:
  struct Node {
    uint64_t key;
    int32_t top_level;
    std::atomic<bool> marked{false};
    std::atomic<bool> fully_linked{false};
    SpinLock lock;

    std::atomic<Node*>& NextAt(int l) {
      return reinterpret_cast<std::atomic<Node*>*>(this + 1)[l];
    }

    static Node* Create(uint64_t key, int top_level) {
      void* mem = ::operator new(sizeof(Node) +
                                 static_cast<std::size_t>(top_level + 1) *
                                     sizeof(std::atomic<Node*>));
      Node* n = new (mem) Node();
      n->key = key;
      n->top_level = top_level;
      auto* levels = reinterpret_cast<std::atomic<Node*>*>(n + 1);
      for (int l = 0; l <= top_level; ++l) {
        new (&levels[l]) std::atomic<Node*>(nullptr);
      }
      return n;
    }

    static void Destroy(Node* n) {
      n->~Node();
      ::operator delete(n);
    }

    static void DestroyErased(void* p) { Destroy(static_cast<Node*>(p)); }
  };

  // Returns the highest level at which `key` was found (-1 if absent) and fills
  // preds/succs at every level.
  int Find(uint64_t key, Node** preds, Node** succs) const {
    int found = -1;
    Node* pred = head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      Node* cur = pred->NextAt(l).load(std::memory_order_acquire);
      while (cur != nullptr && cur->key < key) {
        pred = cur;
        cur = pred->NextAt(l).load(std::memory_order_acquire);
      }
      if (found == -1 && cur != nullptr && cur->key == key) {
        found = l;
      }
      preds[l] = pred;
      succs[l] = cur;
    }
    return found;
  }

  static void UnlockPreds(Node** preds, int highest_locked) {
    Node* prev = nullptr;
    for (int l = 0; l <= highest_locked; ++l) {
      if (preds[l] != prev) {
        preds[l]->lock.unlock();
        prev = preds[l];
      }
    }
  }

  int RandomLevel() {
    thread_local Xoshiro256 rng(0x51c9a11 ^
                                reinterpret_cast<uintptr_t>(&rng));
    int level = 0;
    while (level < kMaxLevel - 1 && (rng.Next() & 1) != 0) {
      ++level;
    }
    return level;
  }

  Node* head_;
};

}  // namespace srl

#endif  // SRL_SKIPLIST_OPTIMISTIC_SKIPLIST_H_
