// Segment-based range lock in the style of pNOVA (Kim et al., APSys'19) following the
// design of Quinson & Vernier [33] — the paper's "pnova-rw" baseline (§2, §7.1).
//
// The whole addressable range is statically divided into a preset number of segments,
// each guarded by a reader-writer spin lock. Acquiring [start, end) acquires every
// covered segment's lock, in ascending order (which makes waits strictly "upward" and
// hence deadlock-free); releasing unlocks in descending order. Acquiring the full range
// therefore takes every segment lock — the expensive case the paper highlights.
//
// The granularity trade-off (too few segments → false contention; too many → expensive
// wide acquisitions) is exactly what `bench/abl_segments` quantifies.
#ifndef SRL_BASELINES_SEGMENT_RANGE_LOCK_H_
#define SRL_BASELINES_SEGMENT_RANGE_LOCK_H_

#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>

#include "src/core/range.h"
#include "src/sync/cacheline.h"
#include "src/sync/deadline.h"
#include "src/sync/rw_spin_lock.h"

namespace srl {

class SegmentRangeLock {
 public:
  // Describes an acquisition; returned by Acquire*, consumed by Release.
  struct Handle {
    uint32_t first_seg = 0;
    uint32_t last_seg = 0;  // inclusive
    bool reader = false;
  };

  // Covers addresses [0, universe_end) with `num_segments` equal segments. Addresses at
  // or beyond universe_end (e.g. Range::Full()'s tail) clamp to the last segment.
  SegmentRangeLock(uint64_t universe_end, uint32_t num_segments)
      : seg_size_((universe_end + num_segments - 1) / num_segments),
        num_segments_(num_segments),
        segments_(std::make_unique<CacheAligned<RwSpinLock>[]>(num_segments)) {
    assert(num_segments > 0 && universe_end >= num_segments);
  }

  SegmentRangeLock(const SegmentRangeLock&) = delete;
  SegmentRangeLock& operator=(const SegmentRangeLock&) = delete;

  Handle AcquireRead(const Range& r) { return Acquire(r, /*reader=*/true); }
  Handle AcquireWrite(const Range& r) { return Acquire(r, /*reader=*/false); }

  // Non-blocking acquisition: try_locks each covered segment in ascending order; if any
  // segment is unavailable, the already-acquired prefix is released (in descending
  // order) and the whole acquisition fails. Because segments are coarser than ranges, a
  // failure does not prove a conflicting *range* is held — only a conflicting segment —
  // so disjoint ranges sharing a segment can fail against each other (the lock is not
  // precise; see kPrecise in the adapter layer).
  bool TryAcquireRead(const Range& r, Handle* out) {
    return AcquireDeadline(r, /*reader=*/true, Deadline::Immediate(), out);
  }
  bool TryAcquireWrite(const Range& r, Handle* out) {
    return AcquireDeadline(r, /*reader=*/false, Deadline::Immediate(), out);
  }

  // Timed acquisition: polls each segment until it is taken or the deadline expires;
  // expiry releases the prefix and fails. The deadline covers the whole range, not each
  // segment.
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireDeadline(r, /*reader=*/true, Deadline::After(timeout), out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireDeadline(r, /*reader=*/false, Deadline::After(timeout), out);
  }

  void Release(const Handle& h) {
    for (uint32_t i = h.last_seg + 1; i-- > h.first_seg;) {
      if (h.reader) {
        segments_[i].value.unlock_shared();
      } else {
        segments_[i].value.unlock();
      }
    }
  }

  uint32_t NumSegments() const { return num_segments_; }

 private:
  Handle Acquire(const Range& r, bool reader) {
    // lock_*_until(Infinite) never gives up, so the blocking acquisition is the
    // deadline walk with an inexhaustible deadline — one copy of the segment loop.
    Handle h;
    AcquireDeadline(r, reader, Deadline::Infinite(), &h);
    return h;
  }

  bool AcquireDeadline(const Range& r, bool reader, const Deadline& deadline,
                       Handle* out) {
    assert(r.Valid());
    Handle h;
    h.first_seg = SegmentOf(r.start);
    h.last_seg = SegmentOf(r.end - 1);
    h.reader = reader;
    for (uint32_t i = h.first_seg; i <= h.last_seg; ++i) {
      // The *_until forms keep RwSpinLock's admission policy (readers defer to queued
      // writers; a waiting writer registers), so timed acquisitions neither starve nor
      // get starved by the blocking ones — only the deadline differs.
      RwSpinLock& seg = segments_[i].value;
      if (reader ? seg.lock_shared_until(deadline) : seg.lock_until(deadline)) {
        continue;
      }
      // Unwind the prefix [first_seg, i) and fail.
      for (uint32_t j = i; j-- > h.first_seg;) {
        if (reader) {
          segments_[j].value.unlock_shared();
        } else {
          segments_[j].value.unlock();
        }
      }
      return false;
    }
    *out = h;
    return true;
  }

  uint32_t SegmentOf(uint64_t addr) const {
    const uint64_t seg = addr / seg_size_;
    return seg >= num_segments_ ? num_segments_ - 1 : static_cast<uint32_t>(seg);
  }

  uint64_t seg_size_;
  uint32_t num_segments_;
  std::unique_ptr<CacheAligned<RwSpinLock>[]> segments_;
};

}  // namespace srl

#endif  // SRL_BASELINES_SEGMENT_RANGE_LOCK_H_
