// The existing kernel range lock, ported to user space — the paper's tree-based baseline
// (§3; Kara [22] for the exclusive "lustre-ex" semantics, Bueso [4] for the
// reader-writer "kernel-rw" semantics).
//
// Algorithm, verbatim from §3: to acquire a range, take the spin lock, count the ranges
// already in the interval tree that *block* the request (for a read acquisition,
// overlapping reads do not block), insert a node describing the request, drop the spin
// lock, then wait until the blocking count hits zero. To release: take the spin lock,
// remove the node, decrement the blocking count of every overlapping waiter that had
// counted us, drop the spin lock.
//
// Note the serialization pathologies the paper calls out, which this port reproduces
// deliberately:
//   * every acquisition AND release — even of disjoint or read-only ranges — funnels
//     through the one spin lock;
//   * waiters count *requested* (not just held) overlapping ranges, so in the §3 example
//     (A=[1,3) held, B=[2,7) waiting, C=[4,5)) C blocks behind the waiter B even though
//     C conflicts with nothing that is actually held (FIFO admission).
//
// The optional WaitStats sink measures time spent acquiring the internal spin lock —
// the quantity plotted in Figure 8.
#ifndef SRL_BASELINES_TREE_RANGE_LOCK_H_
#define SRL_BASELINES_TREE_RANGE_LOCK_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>

#include "src/core/range.h"
#include "src/harness/free_list.h"
#include "src/harness/wait_stats.h"
#include "src/rbtree/interval_tree.h"
#include "src/sync/spin_lock.h"
#include "src/sync/spin_wait.h"

namespace srl {

class TreeRangeLock {
 public:
  struct Node {
    Node* rb_parent = nullptr;
    Node* rb_left = nullptr;
    Node* rb_right = nullptr;
    bool rb_red = false;
    uint64_t start = 0;
    uint64_t end = 0;
    uint64_t max_end = 0;
    bool reader = false;
    std::atomic<int> blocking{0};
    Node* pool_next = nullptr;
  };

  using Handle = Node*;

  TreeRangeLock() = default;
  TreeRangeLock(const TreeRangeLock&) = delete;
  TreeRangeLock& operator=(const TreeRangeLock&) = delete;

  ~TreeRangeLock() { assert(tree_.Empty() && "ranges still held at destruction"); }

  // Reader-writer semantics ("kernel-rw"). For the exclusive variant ("lustre-ex"),
  // callers simply acquire everything as a write.
  Handle AcquireRead(const Range& r) { return Acquire(r, /*reader=*/true); }
  Handle AcquireWrite(const Range& r) { return Acquire(r, /*reader=*/false); }

  void Release(Handle n) {
    LockInternal();
    tree_.Erase(n);
    tree_.ForEachOverlap(n->start, n->end, [n](Node* o) {
      // o counted us at its acquisition iff at least one of the two is a writer.
      if (!n->reader || !o->reader) {
        o->blocking.fetch_sub(1, std::memory_order_release);
      }
    });
    spin_.unlock();
    FreeList<Node>::Local().Put(n);
  }

  // Attaches a sink measuring waits on the internal spin lock (Figure 8). Pass nullptr
  // to detach. Not thread-safe against concurrent acquisitions; set before use.
  void SetSpinWaitStats(WaitStats* stats) { spin_stats_ = stats; }

  // --- Test-only introspection (requires quiescence) ---
  std::size_t DebugHeldCount() const { return tree_.Size(); }
  bool DebugTreeValid() const { return tree_.ValidateStructure(); }

  // Like DebugHeldCount, but safe to poll while other threads acquire/release: counts
  // nodes (held + waiting) under the internal lock.
  std::size_t DebugNodeCountLocked() {
    std::lock_guard<SpinLock> g(spin_);
    return tree_.Size();
  }

 private:
  Handle Acquire(const Range& r, bool reader) {
    assert(r.Valid());
    Node* n = FreeList<Node>::Local().Get();
    n->start = r.start;
    n->end = r.end;
    n->reader = reader;
    LockInternal();
    int blockers = 0;
    tree_.ForEachOverlap(r.start, r.end, [&](Node* o) {
      if (!reader || !o->reader) {
        ++blockers;
      }
    });
    n->blocking.store(blockers, std::memory_order_relaxed);
    tree_.Insert(n);
    spin_.unlock();
    SpinWait spin;
    while (n->blocking.load(std::memory_order_acquire) > 0) {
      spin.Spin();
    }
    return n;
  }

  void LockInternal() {
    if (spin_stats_ != nullptr) {
      const uint64_t t0 = WaitStats::NowNs();
      spin_.lock();
      spin_stats_->RecordWrite(WaitStats::NowNs() - t0);
      return;
    }
    spin_.lock();
  }

  SpinLock spin_;
  IntervalTree<Node> tree_;
  WaitStats* spin_stats_ = nullptr;
};

}  // namespace srl

#endif  // SRL_BASELINES_TREE_RANGE_LOCK_H_
