// The existing kernel range lock, ported to user space — the paper's tree-based baseline
// (§3; Kara [22] for the exclusive "lustre-ex" semantics, Bueso [4] for the
// reader-writer "kernel-rw" semantics).
//
// Algorithm, verbatim from §3: to acquire a range, take the spin lock, count the ranges
// already in the interval tree that *block* the request (for a read acquisition,
// overlapping reads do not block), insert a node describing the request, drop the spin
// lock, then wait until the blocking count hits zero. To release: take the spin lock,
// remove the node, decrement the blocking count of every overlapping waiter that had
// counted us, drop the spin lock.
//
// Note the serialization pathologies the paper calls out, which this port reproduces
// deliberately:
//   * every acquisition AND release — even of disjoint or read-only ranges — funnels
//     through the one spin lock;
//   * waiters count *requested* (not just held) overlapping ranges, so in the §3 example
//     (A=[1,3) held, B=[2,7) waiting, C=[4,5)) C blocks behind the waiter B even though
//     C conflicts with nothing that is actually held (FIFO admission).
//
// The optional WaitStats sink measures time spent acquiring the internal spin lock —
// the quantity plotted in Figure 8.
#ifndef SRL_BASELINES_TREE_RANGE_LOCK_H_
#define SRL_BASELINES_TREE_RANGE_LOCK_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "src/core/range.h"
#include "src/harness/free_list.h"
#include "src/harness/wait_stats.h"
#include "src/rbtree/interval_tree.h"
#include "src/sync/admission.h"
#include "src/sync/deadline.h"
#include "src/sync/spin_lock.h"
#include "src/sync/spin_wait.h"

namespace srl {

class TreeRangeLock {
 public:
  struct Node {
    Node* rb_parent = nullptr;
    Node* rb_left = nullptr;
    Node* rb_right = nullptr;
    bool rb_red = false;
    uint64_t start = 0;
    uint64_t end = 0;
    uint64_t max_end = 0;
    bool reader = false;
    std::atomic<int> blocking{0};
    // Arrival order, assigned under the internal spin lock. Establishes who counted
    // whom: node o counted node n in o->blocking iff they conflict and o->seq > n->seq
    // (n was in the tree when o arrived). A waiter that aborts (timed acquisition
    // giving up) must decrement exactly the nodes that counted it — unlike a release,
    // conflicting *earlier* arrivals may still be present, and they never counted us.
    uint64_t seq = 0;
    Node* pool_next = nullptr;
  };

  using Handle = Node*;

  TreeRangeLock() = default;
  TreeRangeLock(const TreeRangeLock&) = delete;
  TreeRangeLock& operator=(const TreeRangeLock&) = delete;

  ~TreeRangeLock() { assert(tree_.Empty() && "ranges still held at destruction"); }

  // Reader-writer semantics ("kernel-rw"). For the exclusive variant ("lustre-ex"),
  // callers simply acquire everything as a write.
  Handle AcquireRead(const Range& r) { return Acquire(r, /*reader=*/true); }
  Handle AcquireWrite(const Range& r) { return Acquire(r, /*reader=*/false); }

  // Non-blocking acquisition: succeeds iff the request would have admitted immediately
  // (zero blockers at insertion time). On failure nothing is inserted, so the FIFO
  // admission pathology (§3) never sees the request. The internal spin lock is still
  // taken — like the kernel's trylock, "non-blocking" refers to the range wait, not the
  // short structure lock.
  bool TryAcquireRead(const Range& r, Handle* out) { return TryAcquire(r, true, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return TryAcquire(r, false, out); }

  // Timed acquisition: inserts and waits like Acquire, but gives up once `timeout`
  // elapses. An aborting waiter removes its node and un-counts itself from every
  // conflicting later arrival (they counted it under FIFO admission), so waiters behind
  // an aborted request admit as if it had never queued.
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireWithDeadline(r, /*reader=*/true, Deadline::After(timeout), out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireWithDeadline(r, /*reader=*/false, Deadline::After(timeout), out);
  }

  void Release(Handle n) {
    LockInternal();
    RemoveAndNotifyLocked(n);
    spin_.unlock();
    FreeList<Node>::Local().Put(n);
  }

  // Attaches a sink measuring waits on the internal spin lock (Figure 8). Pass nullptr
  // to detach. Not thread-safe against concurrent acquisitions; set before use.
  void SetSpinWaitStats(WaitStats* stats) { spin_stats_ = stats; }

  // --- Test-only introspection (requires quiescence) ---
  std::size_t DebugHeldCount() const { return tree_.Size(); }
  bool DebugTreeValid() const { return tree_.ValidateStructure(); }

  // Like DebugHeldCount, but safe to poll while other threads acquire/release: counts
  // nodes (held + waiting) under the internal lock.
  std::size_t DebugNodeCountLocked() {
    std::lock_guard<SpinLock> g(spin_);
    return tree_.Size();
  }

 private:
  Handle Acquire(const Range& r, bool reader) {
    Handle out = nullptr;
    AcquireWithDeadline(r, reader, Deadline::Infinite(), &out);
    return out;
  }

  bool AcquireWithDeadline(const Range& r, bool reader, const Deadline& deadline,
                           Handle* out) {
    assert(r.Valid());
    Node* n = FreeList<Node>::Local().Get();
    n->start = r.start;
    n->end = r.end;
    n->reader = reader;
    LockInternal();
    n->seq = next_seq_++;
    int blockers = 0;
    tree_.ForEachOverlap(r.start, r.end, [&](Node* o) {
      if (!reader || !o->reader) {
        ++blockers;
      }
    });
    n->blocking.store(blockers, std::memory_order_relaxed);
    tree_.Insert(n);
    spin_.unlock();
    if (deadline.IsInfinite()) {
      // Audit (wait-loop unification): the blocking-count watch runs on SpinWait (the
      // shared spin-then-yield primitive) instead of DeadlineSpinner's clock cadence —
      // an infinite wait has no clock to read. Once yielding, each round goes through
      // the admission spinner, which caps how many of these watchers burn scheduler
      // quanta at once and periodically rotates the active slot to a parked waiter
      // (the FIFO-admission pathology means a watcher can block later arrivals while
      // itself parked — eventual rotation is what keeps that chain live).
      AdmissionSpinner gate_spinner(&gate_, deadline);
      SpinWait spin;
      while (n->blocking.load(std::memory_order_acquire) > 0) {
        if (!spin.Yielding()) {
          spin.Spin();
        } else {
          gate_spinner.Pause();
        }
      }
      *out = n;
      return true;
    }
    DeadlineSpinner spinner(deadline);
    while (n->blocking.load(std::memory_order_acquire) > 0) {
      if (!spinner.SpinOrExpire()) {
        // Re-check under the lock: the decrement that admits us may have landed while
        // we were reading the clock. Holding the lock freezes the count.
        LockInternal();
        if (n->blocking.load(std::memory_order_acquire) > 0) {
          RemoveAndNotifyLocked(n);
          spin_.unlock();
          FreeList<Node>::Local().Put(n);
          return false;
        }
        spin_.unlock();
        break;
      }
    }
    *out = n;
    return true;
  }

  bool TryAcquire(const Range& r, bool reader, Handle* out) {
    assert(r.Valid());
    Node* n = FreeList<Node>::Local().Get();
    n->start = r.start;
    n->end = r.end;
    n->reader = reader;
    LockInternal();
    bool blocked = false;
    tree_.ForEachOverlap(r.start, r.end, [&](Node* o) {
      if (!reader || !o->reader) {
        blocked = true;
      }
    });
    if (blocked) {
      spin_.unlock();
      FreeList<Node>::Local().Put(n);
      return false;
    }
    n->seq = next_seq_++;
    n->blocking.store(0, std::memory_order_relaxed);
    tree_.Insert(n);
    spin_.unlock();
    *out = n;
    return true;
  }

  // Removes `n` and decrements the blocking count of every conflicting node that
  // counted n at its own acquisition — exactly the later arrivals (o->seq > n->seq).
  // For a release all conflicting survivors are later arrivals (earlier conflicting
  // nodes must have left the tree for n to have been admitted), so the guard only
  // changes behaviour for aborting waiters. Caller holds the internal spin lock.
  void RemoveAndNotifyLocked(Node* n) {
    tree_.Erase(n);
    tree_.ForEachOverlap(n->start, n->end, [n](Node* o) {
      if ((!n->reader || !o->reader) && o->seq > n->seq) {
        o->blocking.fetch_sub(1, std::memory_order_release);
      }
    });
  }

  void LockInternal() {
    if (spin_stats_ != nullptr) {
      const uint64_t t0 = WaitStats::NowNs();
      LockInternalContended();
      spin_stats_->RecordWrite(WaitStats::NowNs() - t0);
      return;
    }
    LockInternalContended();
  }

  // The one spin lock every acquisition and release funnels through (the §3
  // serialization pathology) is also where oversubscription hurts first: hundreds of
  // spinners starve the holder of CPU. Uncontended acquisitions stay a bare try_lock;
  // a contended one takes an admission ticket, so at most ~#cores threads spin on the
  // lock word while the surplus parks. The ticket spans only the spin acquisition —
  // the caller's critical section under spin_ runs ungated, keeping hold times short.
  void LockInternalContended() {
    if (spin_.try_lock()) {
      return;
    }
    AdmissionGate::Ticket ticket(&spin_gate_);
    spin_.lock();
  }

  SpinLock spin_;
  IntervalTree<Node> tree_;
  uint64_t next_seq_ = 1;  // guarded by spin_
  WaitStats* spin_stats_ = nullptr;
  // Two gates on purpose. gate_ caps the blocking-count watch loops, whose slots are
  // held across waits as long as the conflicting owner's critical section. spin_gate_
  // caps contenders on spin_, where a slot lives for a µs-scale tree operation.
  // Sharing one gate lets watchers exhaust the cap and park releasers — the thread
  // that would have made the watchers' wait finite — behind them.
  AdmissionGate gate_;
  AdmissionGate spin_gate_;
};

}  // namespace srl

#endif  // SRL_BASELINES_TREE_RANGE_LOCK_H_
