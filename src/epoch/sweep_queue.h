// Deferred page-sweep queue — the TLB-batching analogue for the simulated VM.
//
// A munmap (or MADV_DONTNEED) that must drop pages no longer sweeps the page table
// inline under its range acquisition: it enqueues the dead page range here and returns.
// An epoch-tick flusher (AddressSpace::MaybeFlushSweeps / DrainSweeps) later claims the
// accumulated ranges and sweeps the page table outside any range lock, so the length of
// a structural op's critical section stops growing with the size of the region it
// unmaps — the collapse shape the paper's motivation warns about on saturated locks.
//
// Like SharedRetireList, a SweepQueue is owned by one VMA-index stripe and protected by
// its own small spin lock; producers are the stripe's structural writers plus
// MADV_DONTNEED callers, consumers are whichever threads hit the flush threshold at an
// operation boundary. Unlike the retire list it holds plain page-index ranges, not
// pointers, so flushing needs no grace period of its own — the ordering that keeps the
// drain sound is the stripe seqcount fence (see README "Deferred page sweeps"):
//
//   * every enqueue happens after the structural seqcount bump that detached the range
//     (or, for DONTNEED, after the caller's read acquisition began), so a speculative
//     fault that validated successfully installed its page before the bump — and hence
//     before any flush of this range, which therefore erases it;
//   * a fault whose validation failed undoes its own install, EXCEPT when a still-
//     pending sweep covers the page: pending-at-check means the flusher's claim (and
//     thus its erase) is ordered after the check, and the check after the install, so
//     the sweep is guaranteed to drop the page — the undo may hand it off.
//
// Ranges are kept sorted, disjoint and non-adjacent: enqueueing coalesces overlapping
// and abutting dead ranges across calls, so a burst of page-at-a-time trims flushes as
// one wide RemoveRange instead of thousands of narrow ones.
//
// Claimed ranges stay queryable until they are provably settled. A bounded probe that
// stops at its expected budget can be robbed: a losing speculative fault's transient
// install (not counted in the dying VMAs' hints) soaks up a budget unit meant for a
// real dead page, which then survives beyond the probe's stop point with nothing left
// covering it — a permanent leak. So Claim() marks ranges in flight instead of
// forgetting them, FinishClaimed() retains any budget-exhausted range as a *tombstone*
// recording where its probe stopped, and the robbed loser (its ticket-exact RemoveExact
// found the page already gone) calls RaiseClaimed(), which re-enqueues the tombstone's
// unprobed tail with one unit of budget per theft. Tombstones whose grace period has
// passed (every fault in flight at finish time has exited, so every possible thief has
// already raised) are dropped by PurgeFinishedUpTo() — the owner tracks grace with an
// epoch GraceTicket and feeds the batch cutoff back here.
#ifndef SRL_EPOCH_SWEEP_QUEUE_H_
#define SRL_EPOCH_SWEEP_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/sync/spin_lock.h"

namespace srl {

class SweepQueue {
 public:
  // Page-index range [first, last) — exclusive end, matching PageTable::RemoveRange.
  // `expected` is an upper bound on the pages actually present in the range (from the
  // dying VMAs' present_hint sums): the flusher's probe loop stops once it has erased
  // that many, so sweeping a sparsely-faulted region costs its installs, not its size.
  // kUnbounded means "no usable bound" (DONTNEED trims, saturated hints).
  struct Range {
    uint64_t first;
    uint64_t last;
    uint64_t expected;
  };

  static constexpr uint64_t kUnbounded = UINT64_MAX;

  // Pending pages before MaybeFlushSweeps claims the queue. Tunable (SetFlushThreshold)
  // because the right value is load-dependent: the original constants in this layer
  // were picked on one core (see ROADMAP), so benches sweep it instead of trusting it.
  static constexpr uint64_t kDefaultFlushThresholdPages = 1024;

  SweepQueue() = default;
  SweepQueue(const SweepQueue&) = delete;
  SweepQueue& operator=(const SweepQueue&) = delete;

  // Merges [first, last) into the pending set. Overlapping ranges always coalesce;
  // merely ABUTTING ranges coalesce only when neither side carries a finite expected
  // bound. Two abutting bounded munmap regions stay separate on purpose: each region's
  // installs cluster inside it, so the flusher's bounded probe stops at that region's
  // last install — merging would let one region's probe run on into its neighbour's
  // dead tail before finding the neighbour's installs. The dense trim-burst case the
  // coalescing exists for (page-at-a-time DONTNEEDs) enqueues unbounded and still
  // collapses into one wide range. Returns the number of previously separate ranges
  // absorbed into the new one (0 = the range landed disjoint).
  std::size_t Enqueue(uint64_t first, uint64_t last, uint64_t expected = kUnbounded) {
    std::lock_guard<SpinLock> g(lock_);
    return EnqueueLocked(first, last, expected);
  }

 private:
  std::size_t EnqueueLocked(uint64_t first, uint64_t last, uint64_t expected) {
    if (first >= last) {
      return 0;
    }
    // First range that could interact: the last one starting at or before `last`.
    // Scan back from the insertion point for overlap/adjacency with predecessors.
    auto lo = std::lower_bound(
        ranges_.begin(), ranges_.end(), first,
        [](const Range& r, uint64_t v) { return r.last < v; });
    // lo is the first range with r.last >= first (candidate for merging on the left).
    auto hi = lo;
    uint64_t merged_first = first;
    uint64_t merged_last = last;
    uint64_t merged_expected = expected;
    uint64_t absorbed_pages = 0;
    std::size_t absorbed = 0;
    while (hi != ranges_.end() && hi->first <= last) {
      const bool abutting_only = hi->first == last || hi->last == first;
      if (abutting_only &&
          (expected != kUnbounded || hi->expected != kUnbounded)) {
        if (hi->first == last) {
          break;  // right neighbour merely abuts a bounded range: keep separate
        }
        ++hi;     // left neighbour merely abuts: skip it, keep scanning
        continue;
      }
      merged_first = std::min(merged_first, hi->first);
      merged_last = std::max(merged_last, hi->last);
      merged_expected = SatAdd(merged_expected, hi->expected);
      absorbed_pages += hi->last - hi->first;
      ++absorbed;
      ++hi;
    }
    if (absorbed == 0) {
      // May land between the skipped abutting neighbours: insert before `hi`.
      ranges_.insert(hi, Range{first, last, expected});
    } else {
      // Absorbed ranges are contiguous ending at hi: rebuild in place at hi-1 and
      // erase the rest (a skipped left-abutting neighbour may sit before them).
      auto dst = hi - 1;
      dst->first = merged_first;
      dst->last = merged_last;
      dst->expected = merged_expected;
      ranges_.erase(dst - (absorbed - 1), dst);
    }
    if (merged_first < bounds_lo_.load(std::memory_order_relaxed)) {
      bounds_lo_.store(merged_first, std::memory_order_relaxed);
    }
    if (merged_last > bounds_hi_.load(std::memory_order_relaxed)) {
      bounds_hi_.store(merged_last, std::memory_order_relaxed);
    }
    pending_pages_.fetch_add(merged_last - merged_first - absorbed_pages,
                             std::memory_order_relaxed);
    return absorbed;
  }

 public:
  // Lock-free pre-check: false means no pending or claimed range can cover `page`
  // from the caller's vantage point, so the cover/cancel queries below may skip the
  // lock. The bounds only widen while ranges are pending or claimed (they reset only
  // once both sets are empty), and every Enqueue publishes its widened bounds before
  // returning — so any DONTNEED that returned before the caller started observes
  // bounds that include its range. A *racing* enqueue may be missed, which is an
  // allowed outcome of that race (equivalent to the fault ordering ahead of the
  // madvise); the losing-fault undo tolerates a miss too, since RemoveExact on its
  // own ticket is always safe.
  bool MayCover(uint64_t page) const {
    return page >= bounds_lo_.load(std::memory_order_relaxed) &&
           page < bounds_hi_.load(std::memory_order_relaxed);
  }

  // True if a still-pending (unclaimed) range covers `page`, or a claimed one does —
  // in flight (its probe may yet erase the page) or a tombstone (the page may be a
  // survivor awaiting its compensation re-probe). Either way the page is dead-but-not-
  // yet-swept, which the drain-barrier contract allows; the invariant checker uses
  // this as its orphan-page tolerance.
  bool CoversPending(uint64_t page) const {
    if (!MayCover(page)) {
      return false;
    }
    std::lock_guard<SpinLock> g(lock_);
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), page,
        [](uint64_t v, const Range& r) { return v < r.first; });
    if (it != ranges_.begin() && page < (it - 1)->last) {
      return true;
    }
    for (const Claimed& c : claimed_) {
      if (c.first <= page && page < c.last) {
        return true;
      }
    }
    return false;
  }

  // Punches `page` out of any still-pending range (splitting it if interior). A fault
  // that finds or installs a present page calls this so a sweep enqueued by an earlier
  // MADV_DONTNEED cannot erase a page the address space re-validated as present after
  // the call — the deferred analogue of Linux's madvise/fault repopulation contract.
  // Returns true if a pending range covered the page. An already-claimed sweep is out
  // of reach (the inherent madvise-vs-concurrent-fault race); single-threaded
  // DONTNEED → re-fault → drain sequences are exact.
  bool CancelPending(uint64_t page) {
    if (!MayCover(page)) {
      return false;
    }
    std::lock_guard<SpinLock> g(lock_);
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), page,
        [](uint64_t v, const Range& r) { return v < r.first; });
    if (it == ranges_.begin() || page >= (it - 1)->last) {
      return false;
    }
    --it;
    if (it->first == page) {
      if (++it->first == it->last) {
        ranges_.erase(it);
      }
    } else if (it->last == page + 1) {
      --it->last;
    } else {
      // Interior split: both halves keep the full expected bound — it stays an upper
      // bound for each (which half held the cancelled page's neighbours is unknown).
      const uint64_t tail_last = it->last;
      it->last = page;
      ranges_.insert(it + 1, Range{page + 1, tail_last, it->expected});
    }
    pending_pages_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  // Losing-fault undo hand-off (see the header ordering argument): if a still-pending
  // range covers `page`, the flusher's later claim is ordered after the caller's
  // install and is guaranteed to erase it — and the range's expected bound is raised
  // by one, so the bounded probe cannot stop before reaching that extra install.
  // Returns false when nothing pending covers the page: the caller undoes its own
  // install itself (RemoveExact on its own ticket, which is always safe).
  bool DeferUndoToPending(uint64_t page) {
    if (!MayCover(page)) {
      return false;
    }
    std::lock_guard<SpinLock> g(lock_);
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), page,
        [](uint64_t v, const Range& r) { return v < r.first; });
    if (it == ranges_.begin() || page >= (it - 1)->last) {
      return false;
    }
    --it;
    it->expected = SatAdd(it->expected, 1);
    return true;
  }

  // Claims everything pending: the caller owns the returned ranges, must sweep them,
  // and must report each probe's outcome back via FinishClaimed. Claimed ranges stay
  // queryable (CoversPending / RaiseClaimed) until finished-and-purged, so a robbed
  // loser always finds a compensation target. Called holding no locks or ranges.
  std::vector<Range> Claim() {
    std::vector<Range> out;
    std::lock_guard<SpinLock> g(lock_);
    out.swap(ranges_);
    for (const Range& r : out) {
      claimed_.push_back(Claimed{r.first, r.last, /*resume=*/r.first, /*extra=*/0,
                                 /*batch=*/0, /*in_flight=*/true});
    }
    pending_pages_.store(0, std::memory_order_relaxed);
    return out;
  }

  // Reports the probe outcome for a range returned by Claim. `resume` is where the
  // probe stopped (== last when it walked the whole range; survivors can only live in
  // [resume, last)); `may_survive` is true when the probe exhausted a finite budget
  // before reaching `last` — the only case a stolen budget unit can leave a dead page
  // behind. Raises that arrived while the probe ran (RaiseClaimed on the in-flight
  // entry) are re-enqueued as a pending bounded range over the unprobed tail, one
  // budget unit each. A may_survive range is retained as a tombstone stamped with
  // `batch` so later thieves still find it; anything else is settled and dropped.
  void FinishClaimed(uint64_t first, uint64_t last, uint64_t resume, bool may_survive,
                     uint64_t batch) {
    std::lock_guard<SpinLock> g(lock_);
    for (auto it = claimed_.begin(); it != claimed_.end(); ++it) {
      if (!it->in_flight || it->first != first || it->last != last) {
        continue;
      }
      const uint64_t raised = it->extra;
      if (raised != 0) {
        EnqueueLocked(resume, last, raised);
      }
      if (may_survive) {
        it->resume = resume;
        it->extra = 0;
        it->batch = batch;
        it->in_flight = false;
      } else {
        claimed_.erase(it);
        MaybeResetBoundsLocked();
      }
      return;
    }
  }

  // Theft compensation (losing-fault undo whose ticket-exact RemoveExact found the
  // page already erased): some claimed probe swept the caller's transient install. If
  // that probe was budget-bounded, the unit it spent on the install was meant for a
  // real dead page now possibly stranded past the probe's stop point. Raises every
  // claimed entry covering `page`: an in-flight probe accumulates the raise for its
  // FinishClaimed, a tombstone re-enqueues its unprobed tail immediately. Raising an
  // entry whose probe in fact completed only loosens an upper bound (the re-probe
  // finds nothing), so over-matching on overlap is safe. Returns false when no
  // claimed entry covers the page — only possible when the erasing probe ran to
  // completion (unbounded or under budget), which leaves no survivors: a miss needs
  // no compensation.
  bool RaiseClaimed(uint64_t page) {
    if (!MayCover(page)) {
      return false;
    }
    std::lock_guard<SpinLock> g(lock_);
    bool any = false;
    for (Claimed& c : claimed_) {
      if (c.first > page || page >= c.last) {
        continue;
      }
      any = true;
      if (c.in_flight) {
        c.extra = SatAdd(c.extra, 1);
      } else {
        EnqueueLocked(c.resume, c.last, 1);
      }
    }
    return any;
  }

  // Drops settled tombstones with batch <= `batch_hi`. Only safe once every fault in
  // flight when those batches finished has exited (an epoch barrier or an elapsed
  // GraceTicket): after that, every thief the batch could have robbed has already
  // raised, so the tombstone guards nothing.
  void PurgeFinishedUpTo(uint64_t batch_hi) {
    std::lock_guard<SpinLock> g(lock_);
    for (auto it = claimed_.begin(); it != claimed_.end();) {
      if (!it->in_flight && it->batch <= batch_hi) {
        it = claimed_.erase(it);
      } else {
        ++it;
      }
    }
    MaybeResetBoundsLocked();
  }

  // Highest batch stamp among settled tombstones (0 when none): the purge cutoff a
  // flusher snapshots before arming its grace ticket.
  uint64_t NewestFinishedBatch() const {
    std::lock_guard<SpinLock> g(lock_);
    uint64_t hi = 0;
    for (const Claimed& c : claimed_) {
      if (!c.in_flight && c.batch > hi) {
        hi = c.batch;
      }
    }
    return hi;
  }

  std::size_t ClaimedEntries() const {
    std::lock_guard<SpinLock> g(lock_);
    return claimed_.size();
  }

  // Racy fast-path gate for MaybeFlushSweeps: one relaxed load, no lock.
  uint64_t PendingPages() const {
    return pending_pages_.load(std::memory_order_relaxed);
  }
  bool NeedsFlush() const {
    return PendingPages() >= flush_threshold_pages_.load(std::memory_order_relaxed);
  }
  void SetFlushThreshold(uint64_t pages) {
    flush_threshold_pages_.store(pages == 0 ? 1 : pages, std::memory_order_relaxed);
  }
  uint64_t FlushThreshold() const {
    return flush_threshold_pages_.load(std::memory_order_relaxed);
  }

  std::size_t PendingRanges() const {
    std::lock_guard<SpinLock> g(lock_);
    return ranges_.size();
  }

  // a + b, saturating at kUnbounded (so any unbounded contribution stays unbounded).
  static uint64_t SatAdd(uint64_t a, uint64_t b) {
    return a > kUnbounded - b ? kUnbounded : a + b;
  }

 private:
  // A range handed out by Claim: in flight while its probe runs, then either settled
  // away or retained as a tombstone ([resume, last) unprobed) until purged.
  struct Claimed {
    uint64_t first;
    uint64_t last;
    uint64_t resume;
    uint64_t extra;
    uint64_t batch;
    bool in_flight;
  };

  // Bounds may reset only once nothing pending or claimed could be covered by them.
  void MaybeResetBoundsLocked() {
    if (ranges_.empty() && claimed_.empty()) {
      bounds_lo_.store(UINT64_MAX, std::memory_order_relaxed);
      bounds_hi_.store(0, std::memory_order_relaxed);
    }
  }

  mutable SpinLock lock_;
  // Sorted by `first`; pairwise disjoint and non-abutting (Enqueue coalesces).
  std::vector<Range> ranges_;
  // Unsorted, small: ranges between Claim and settlement (see Claimed).
  std::vector<Claimed> claimed_;
  // Conservative [lo, hi) page-index envelope of everything pending or claimed; see
  // MayCover. CancelPending leaves them stale-wide on purpose — they tighten only
  // when both sets drain empty.
  std::atomic<uint64_t> bounds_lo_{UINT64_MAX};
  std::atomic<uint64_t> bounds_hi_{0};
  std::atomic<uint64_t> pending_pages_{0};
  std::atomic<uint64_t> flush_threshold_pages_{kDefaultFlushThresholdPages};
};

}  // namespace srl

#endif  // SRL_EPOCH_SWEEP_QUEUE_H_
