// Epoch-deferred deletion for objects owned by a shared structure rather than a
// thread — the per-stripe companion of RetireList.
//
// RetireList is thread-local by design: a retiring thread parks its own batches and
// reaps them on its own later calls, which is contention-free but ties the backlog's
// lifetime to one thread. That is the wrong shape for a striped VMA index, where any
// structural writer of a stripe may unlink VMAs and *any* later writer of the same
// stripe should be able to reap them — retired memory belongs to the stripe's domain,
// not to whichever thread happened to run the munmap. A SharedRetireList is owned by
// the stripe and protected by its own small spin lock; producers are the stripe's
// structural writers, which the stripe's mutation lock already serializes, so the lock
// is effectively uncontended and exists only so reapers need not hold the tree lock.
//
// Reclamation is the same non-blocking GraceTicket protocol as RetireList: batches
// park with a snapshot of in-flight critical sections and are freed once the snapshot
// has elapsed — MaybeFlush never blocks and is O(1) below the threshold (one relaxed
// load). Only Flush() (destruction) runs a blocking barrier.
//
// Lock ordering: callers may invoke Retire() while holding the stripe's tree mutation
// lock (the list lock nests inside it); MaybeFlush()/Flush() must be called holding no
// locks or ranges, like RetireList. Objects are freed outside the list lock.
#ifndef SRL_EPOCH_SHARED_RETIRE_LIST_H_
#define SRL_EPOCH_SHARED_RETIRE_LIST_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "src/epoch/epoch_domain.h"
#include "src/epoch/retire_list.h"
#include "src/sync/spin_lock.h"

namespace srl {

class SharedRetireList {
 public:
  // Default pending-count threshold before MaybeFlush parks a batch. Runtime-tunable
  // per list (SetFlushThreshold); the default follows RetireList's core-count
  // derivation — a high-churn stripe on a big box wants smaller batches so grace
  // snapshots stay short. bench/abl_async_unmap sweeps it together with the
  // sweep-queue threshold.
  static std::size_t DefaultFlushThreshold() { return RetireList::FlushThreshold(); }
  // Bookkeeping bound, not a memory bound — beyond it new batches coalesce into the
  // newest parked batch (ticket union) instead of blocking, exactly as RetireList
  // (whose core-count derivation this shares).
  static std::size_t MaxParkedBatches() { return RetireList::MaxParkedBatches(); }

  void SetFlushThreshold(std::size_t n) {
    flush_threshold_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::size_t FlushThreshold() const {
    return flush_threshold_.load(std::memory_order_relaxed);
  }

  SharedRetireList() = default;
  ~SharedRetireList() { Flush(); }

  SharedRetireList(const SharedRetireList&) = delete;
  SharedRetireList& operator=(const SharedRetireList&) = delete;

  // Defers `delete static_cast<T*>(obj)` until after a grace period. Must be called by
  // the thread that unlinked the object; holding the owning structure's mutation lock
  // is fine (and typical).
  template <typename T>
  void Retire(T* obj) {
    RetireCustom(obj, [](void* p) { delete static_cast<T*>(p); });
  }

  void RetireCustom(void* obj, void (*deleter)(void*)) {
    std::lock_guard<SpinLock> g(lock_);
    pending_.push_back({obj, deleter});
    pending_count_.store(pending_.size(), std::memory_order_relaxed);
  }

  // Parks the pending batch once it is large and reaps parked batches whose grace has
  // elapsed. Never blocks; free below the threshold. Call at operation boundaries
  // holding no locks or ranges and outside any scoped epoch critical section (an open
  // epoch-per-quantum section on the calling thread is fine — between guards the
  // caller holds no references, and the grace snapshot skips its record).
  void MaybeFlush() {
    if (pending_count_.load(std::memory_order_relaxed) <
        flush_threshold_.load(std::memory_order_relaxed)) {
      return;
    }
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    std::vector<Pending> to_free;
    {
      std::lock_guard<SpinLock> g(lock_);
      Reap(&to_free);
      Park(rec, &to_free);
    }
    FreeAll(to_free);
  }

  // Blocking drain: a full barrier, then everything retired so far is freed.
  // Destruction-only by design (it can wait on another thread's idle open quantum).
  void Flush() {
    std::vector<Pending> to_free;
    {
      std::lock_guard<SpinLock> g(lock_);
      for (Batch& batch : parked_) {
        to_free.insert(to_free.end(), batch.objs.begin(), batch.objs.end());
      }
      parked_.clear();
      to_free.insert(to_free.end(), pending_.begin(), pending_.end());
      pending_.clear();
      pending_count_.store(0, std::memory_order_relaxed);
    }
    if (to_free.empty()) {
      return;
    }
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    EpochDomain::QuiesceQuantum(rec);
    EpochDomain::Global().Barrier(rec);
    FreeAll(to_free);
  }

  // Objects retired and not yet freed (buffered + parked) — racy, for tests.
  std::size_t PendingCount() const {
    std::lock_guard<SpinLock> g(lock_);
    std::size_t n = pending_.size();
    for (const Batch& batch : parked_) {
      n += batch.objs.size();
    }
    return n;
  }

 private:
  struct Pending {
    void* obj;
    void (*deleter)(void*);
  };

  struct Batch {
    std::vector<Pending> objs;
    EpochDomain::GraceTicket ticket;
  };

  // Under lock_. Moves elapsed batches' objects into *out for freeing outside the lock.
  void Reap(std::vector<Pending>* out) {
    std::erase_if(parked_, [out](Batch& batch) {
      if (!batch.ticket.Elapsed()) {
        return false;
      }
      out->insert(out->end(), batch.objs.begin(), batch.objs.end());
      return true;
    });
  }

  // Under lock_. A quiescent domain means grace has trivially elapsed: the batch goes
  // straight to *out (freed outside the lock). Otherwise it parks with a snapshot.
  void Park(EpochDomain::ThreadRec* rec, std::vector<Pending>* out) {
    if (pending_.empty()) {
      return;
    }
    if (EpochDomain::Global().QuiescentNow(rec)) {
      out->insert(out->end(), pending_.begin(), pending_.end());
      pending_.clear();
    } else {
      EpochDomain::GraceTicket ticket = EpochDomain::Global().Snapshot(rec);
      if (parked_.size() >= MaxParkedBatches()) {
        Batch& newest = parked_.back();
        newest.objs.insert(newest.objs.end(), pending_.begin(), pending_.end());
        newest.ticket.Merge(std::move(ticket));
        pending_.clear();
      } else {
        parked_.push_back({std::move(pending_), std::move(ticket)});
        pending_ = {};
      }
    }
    pending_count_.store(0, std::memory_order_relaxed);
  }

  static void FreeAll(std::vector<Pending>& objs) {
    for (const Pending& p : objs) {
      p.deleter(p.obj);
    }
    objs.clear();
  }

  mutable SpinLock lock_;
  std::atomic<std::size_t> flush_threshold_{DefaultFlushThreshold()};
  std::atomic<std::size_t> pending_count_{0};
  std::vector<Pending> pending_;
  std::vector<Batch> parked_;
};

}  // namespace srl

#endif  // SRL_EPOCH_SHARED_RETIRE_LIST_H_
