#include "src/epoch/epoch_domain.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/sync/spin_wait.h"

namespace srl {

EpochDomain& EpochDomain::Global() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::ThreadRec* EpochDomain::AcquireRec() {
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!recs_[i].in_use.load(std::memory_order_relaxed) &&
        recs_[i].in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      // Advance the high-water mark so Barrier() scans this slot.
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 &&
             !high_water_.compare_exchange_weak(hw, i + 1, std::memory_order_acq_rel)) {
      }
      return &recs_[i];
    }
  }
  std::fprintf(stderr, "EpochDomain: more than %zu concurrent threads\n", kMaxThreads);
  std::abort();
}

void EpochDomain::ReleaseRec(ThreadRec* rec) {
  if (rec->depth.load(std::memory_order_relaxed) > 0) {
    // An EpochQuantumGuard left its quantum open (the only legitimate way depth
    // outlives a scope). Close it so a Barrier() snapshotting this record's odd epoch
    // is not left waiting on a thread that will never run again, and so the slot's
    // next owner starts from clean state. CAS: a barrier watchdog may have closed (or
    // be closing) the idle section already.
    rec->depth.store(0, std::memory_order_relaxed);
    rec->quantum_ops = 0;
    rec->quantum_open.store(false, std::memory_order_relaxed);
    rec->quantum_revoked.store(false, std::memory_order_relaxed);
    uint64_t e = rec->epoch.load(std::memory_order_relaxed);
    while ((e & 1) != 0 &&
           !rec->epoch.compare_exchange_weak(e, e + 1, std::memory_order_release)) {
    }
  }
  rec->in_use.store(false, std::memory_order_release);
}

void EpochQuantumQuiesce(EpochDomain& domain) {
  EpochDomain::QuiesceQuantum(CurrentThreadRec(domain));
}

EpochDomain::GraceTicket EpochDomain::Snapshot(const ThreadRec* self) const {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  // Record every in-flight critical section (odd epoch). A slot released and
  // re-acquired mid-grace still satisfies the elapse condition: the new owner bumps
  // the epoch on its first Enter, and a freshly even epoch is also fine because the
  // old owner exited its critical section before releasing the slot (per-slot epochs
  // are monotone, so there is no ABA).
  GraceTicket ticket;
  ticket.entries_.reserve(hw);
  for (std::size_t i = 0; i < hw; ++i) {
    const ThreadRec& rec = recs_[i];
    if (&rec == self || !rec.in_use.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t e = rec.epoch.load(std::memory_order_seq_cst);
    if ((e & 1) != 0) {
      ticket.entries_.push_back({&rec.epoch, e});
    }
  }
  return ticket;
}

bool EpochDomain::QuiescentNow(const ThreadRec* self) const {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < hw; ++i) {
    const ThreadRec& rec = recs_[i];
    if (&rec == self || !rec.in_use.load(std::memory_order_acquire)) {
      continue;
    }
    if ((rec.epoch.load(std::memory_order_seq_cst) & 1) != 0) {
      return false;
    }
  }
  return true;
}

void EpochDomain::Barrier(const ThreadRec* self) {
  // Direct wait over the records (not a GraceTicket): the watchdog needs the owning
  // ThreadRec of each unfinished section, which a ticket's bare epoch pointers lose.
  struct Wait {
    ThreadRec* rec;
    uint64_t seen_epoch;
    uint64_t seen_ticks;
    std::chrono::steady_clock::time_point revoked_at;  // zero until notice posted
  };
  std::vector<Wait> waits;
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  waits.reserve(hw);
  for (std::size_t i = 0; i < hw; ++i) {
    ThreadRec& rec = recs_[i];
    if (&rec == self || !rec.in_use.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t e = rec.epoch.load(std::memory_order_seq_cst);
    if ((e & 1) != 0) {
      waits.push_back({&rec, e, rec.quantum_ticks.load(std::memory_order_relaxed), {}});
    }
  }

  const std::chrono::nanoseconds threshold = ForceQuiesceAfter();
  const auto started = std::chrono::steady_clock::now();
  SpinWait spin;
  while (!waits.empty()) {
    const auto now = std::chrono::steady_clock::now();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < waits.size(); ++i) {
      Wait w = waits[i];
      if (w.rec->epoch.load(std::memory_order_seq_cst) != w.seen_epoch) {
        continue;  // section exited (or refreshed/acknowledged) — elapsed
      }
      if (threshold.count() > 0 && now - started >= threshold) {
        // Watchdog: only an *idle quantum* is evictable — quantum open, exactly the
        // quantum's own depth unit (a nested plain guard may hold references), and the
        // guard-scope heartbeat even (between guards) and unmoving since the snapshot.
        const uint64_t ticks = w.rec->quantum_ticks.load(std::memory_order_seq_cst);
        const bool idle_quantum =
            w.rec->quantum_open.load(std::memory_order_relaxed) &&
            w.rec->depth.load(std::memory_order_relaxed) == 1 && (ticks & 1) == 0 &&
            ticks == w.seen_ticks;
        if (!idle_quantum) {
          // Heartbeat moved or a guard is live: re-arm the observation.
          w.seen_ticks = ticks;
          w.revoked_at = {};
        } else if (w.revoked_at == std::chrono::steady_clock::time_point{}) {
          // Post the eviction notice, then keep observing: an owner that wakes now
          // acknowledges by refreshing its section (epoch moves — handled above).
          w.rec->quantum_revoked.store(true, std::memory_order_seq_cst);
          w.revoked_at = now;
        } else if (now - w.revoked_at >= kRevokeConfirmWindow) {
          // Notice unacknowledged and the heartbeat provably still for the whole
          // confirmation window: the owner is parked between guards and holds
          // nothing. Close the section for it. CAS on the snapshotted value — if the
          // owner woke at the last instant, its refresh wins and we observe the epoch
          // move on the next pass.
          uint64_t expect = w.seen_epoch;
          if (w.rec->epoch.compare_exchange_strong(expect, expect + 1,
                                                   std::memory_order_seq_cst)) {
            forced_quiesces_.fetch_add(1, std::memory_order_relaxed);
            continue;  // section closed — elapsed
          }
          continue;  // owner refreshed concurrently — also elapsed
        }
      }
      waits[keep++] = w;
    }
    waits.resize(keep);
    if (!waits.empty()) {
      spin.Spin();
    }
  }
}

std::size_t EpochDomain::LiveThreads() const {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  std::size_t n = 0;
  for (std::size_t i = 0; i < hw; ++i) {
    if (recs_[i].in_use.load(std::memory_order_acquire)) {
      ++n;
    }
  }
  return n;
}

namespace {

// Binds a thread to its record in a domain and releases the record at thread exit.
// A thread normally touches exactly one domain (the global one); the small vector below
// handles tests that create private domains without penalizing the common case.
struct ThreadSlots {
  struct Entry {
    EpochDomain* domain;
    EpochDomain::ThreadRec* rec;
  };
  std::vector<Entry> entries;

  ~ThreadSlots() {
    for (Entry& e : entries) {
      e.domain->ReleaseRec(e.rec);
    }
  }
};

thread_local ThreadSlots t_slots;

}  // namespace

EpochDomain::ThreadRec* CurrentThreadRec(EpochDomain& domain) {
  for (const ThreadSlots::Entry& e : t_slots.entries) {
    if (e.domain == &domain) {
      return e.rec;
    }
  }
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  t_slots.entries.push_back({&domain, rec});
  return rec;
}

}  // namespace srl
