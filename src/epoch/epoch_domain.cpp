#include "src/epoch/epoch_domain.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/sync/spin_wait.h"

namespace srl {

EpochDomain& EpochDomain::Global() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::ThreadRec* EpochDomain::AcquireRec() {
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (!recs_[i].in_use.load(std::memory_order_relaxed) &&
        recs_[i].in_use.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      // Advance the high-water mark so Barrier() scans this slot.
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 &&
             !high_water_.compare_exchange_weak(hw, i + 1, std::memory_order_acq_rel)) {
      }
      return &recs_[i];
    }
  }
  std::fprintf(stderr, "EpochDomain: more than %zu concurrent threads\n", kMaxThreads);
  std::abort();
}

void EpochDomain::ReleaseRec(ThreadRec* rec) {
  rec->in_use.store(false, std::memory_order_release);
}

void EpochDomain::Barrier(const ThreadRec* self) const {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  // Snapshot every in-flight critical section (odd epoch), then wait for each epoch to
  // move. A slot released and re-acquired mid-wait still satisfies the condition: the new
  // owner bumps the epoch on its first Enter, and a freshly even epoch is also fine
  // because the old owner exited its critical section before releasing the slot.
  struct Pending {
    const std::atomic<uint64_t>* epoch;
    uint64_t seen;
  };
  std::vector<Pending> pending;
  pending.reserve(hw);
  for (std::size_t i = 0; i < hw; ++i) {
    const ThreadRec& rec = recs_[i];
    if (&rec == self || !rec.in_use.load(std::memory_order_acquire)) {
      continue;
    }
    const uint64_t e = rec.epoch.load(std::memory_order_seq_cst);
    if ((e & 1) != 0) {
      pending.push_back({&rec.epoch, e});
    }
  }
  for (const Pending& p : pending) {
    SpinWait spin;
    while (p.epoch->load(std::memory_order_acquire) == p.seen) {
      spin.Spin();
    }
  }
}

std::size_t EpochDomain::LiveThreads() const {
  const std::size_t hw = high_water_.load(std::memory_order_acquire);
  std::size_t n = 0;
  for (std::size_t i = 0; i < hw; ++i) {
    if (recs_[i].in_use.load(std::memory_order_acquire)) {
      ++n;
    }
  }
  return n;
}

namespace {

// Binds a thread to its record in a domain and releases the record at thread exit.
// A thread normally touches exactly one domain (the global one); the small vector below
// handles tests that create private domains without penalizing the common case.
struct ThreadSlots {
  struct Entry {
    EpochDomain* domain;
    EpochDomain::ThreadRec* rec;
  };
  std::vector<Entry> entries;

  ~ThreadSlots() {
    for (Entry& e : entries) {
      e.domain->ReleaseRec(e.rec);
    }
  }
};

thread_local ThreadSlots t_slots;

}  // namespace

EpochDomain::ThreadRec* CurrentThreadRec(EpochDomain& domain) {
  for (const ThreadSlots::Entry& e : t_slots.entries) {
    if (e.domain == &domain) {
      return e.rec;
    }
  }
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  t_slots.entries.push_back({&domain, rec});
  return rec;
}

}  // namespace srl
