// Thread-local object pools amortizing epoch reclamation (paper §4.4).
//
// Each thread keeps two pools per node type:
//   * `active`    — nodes ready to be handed out for new range acquisitions;
//   * `reclaimed` — nodes this thread unlinked from some lock's list but that may still be
//                   referenced by concurrent traversals.
// When the active pool runs dry the thread takes a grace *snapshot*
// (EpochDomain::GraceTicket): if no critical section is in flight the reclaimed pool is
// provably unreachable and swaps in immediately (the paper's barrier-and-swap, for
// free); otherwise the reclaimed batch is parked with its snapshot and reaped by a
// later refill once the snapshot has elapsed, and the pool replenishes from the system
// allocator in the meantime. Refill therefore NEVER blocks or yields — essential since
// epoch-per-quantum readers (EpochQuantumGuard) park their epochs odd across whole
// operation batches, which a blocking barrier would have to wait out at scheduler
// latency (measured as a 6-10x munmap collapse for the scoped VM variants).
//
// Deferred grace needs standing inventory: a parked batch is out of circulation for
// roughly one scheduler round, so a hot thread must own enough nodes to bridge
// alloc_rate x grace_latency of demand — far more than the paper's fixed N, whose
// blocking barrier never had in-flight batches. The pool therefore *self-sizes*:
// every park is a shortage signal that ratchets the inventory target up by one batch
// (bounded), and the paper's trim rule (back to target when above 2x target) only
// prunes down to that learned floor, with no batch in flight. Without the ratchet the
// pool thrashes — park forces a kTargetSize malloc burst, the reap overfills, the
// trim deletes the overfill, and the next park mallocs again (measured as a ~1.5x
// locked-fault-path slowdown); with it, parking and the malloc traffic die out once
// the floor covers the grace latency. The floor also *decays*: after a run of
// shortage-free reap cycles it gives back one batch per further quiet cycle, so a
// fault storm followed by a long quiet phase does not strand the storm's inventory
// forever (see DecayQuietRefills()). Fresh pools behave exactly as the paper's
// (target stays kTargetSize until the first shortage), which is also what keeps the
// pool-size ablation meaningful.
//
// Pools are bound to EpochDomain::Global(): the grace condition must cover every thread
// that can traverse a list containing these nodes, and the global domain is the only
// set with that property.
#ifndef SRL_EPOCH_NODE_POOL_H_
#define SRL_EPOCH_NODE_POOL_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "src/epoch/epoch_domain.h"

namespace srl {

// T must provide `T* pool_next` usable while the node is free. (LNode aliases this onto
// its atomic next field; see src/core/lnode.h.)
template <typename T>
struct PoolTraits {
  static void SetNext(T* node, T* next) { node->pool_next = next; }
  static T* GetNext(T* node) { return node->pool_next; }
};

// kTarget is the paper's N (128 by default; templated so the pool-size ablation bench
// can sweep it).
template <typename T, typename Traits = PoolTraits<T>, std::size_t kTarget = 128>
class NodePool {
 public:
  static constexpr std::size_t kTargetSize = kTarget;
  // Parked-batch bound: beyond this, refills stop parking and Alloc falls back to
  // fresh allocation until grace elapses somewhere.
  static constexpr std::size_t kMaxParkedBatches = 8;
  // Inventory-ratchet bound: the learned target never exceeds this many batches, so a
  // pathological reader parked in a critical section cannot grow the pool without
  // limit.
  static constexpr std::size_t kMaxInventory = 64 * kTargetSize;
  // Ratchet decay: after this many consecutive refills with no shortage (no park, no
  // batch in flight), the learned floor gives back one batch per further quiet refill.
  // A fault storm ratchets the floor up in minutes; without decay, the storm's
  // inventory stays resident through hours of light load (ROADMAP: "a phase change
  // strands inventory"). The run-up requirement keeps steady park-every-few-refills
  // workloads from oscillating: any shortage resets the count. Derived from the core
  // count at first use: max(8, cores) — more running cores means more threads whose
  // open quanta stretch grace windows, so "quiet" needs a longer run-up before it is
  // evidence of a real phase change. hardware_concurrency() == 1 reproduces the old
  // constant 8 exactly; epoch_test asserts this derivation.
  static std::size_t DecayQuietRefills() {
    static const std::size_t v =
        std::max<std::size_t>(8, std::max(1u, std::thread::hardware_concurrency()));
    return v;
  }

  NodePool() : rec_(CurrentThreadRec(EpochDomain::Global())) {
    Replenish(kTargetSize);
  }

  ~NodePool() {
    // Everything in `reclaimed` and the parked batches may still be referenced; wait
    // out in-flight traversals. Quiesce first: barriers must never run with the
    // caller's own quantum open.
    EpochDomain::QuiesceQuantum(rec_);
    EpochDomain::Global().Barrier(rec_);
    FreeAll(&active_);
    FreeAll(&reclaimed_);
    for (Parked& p : parked_) {
      FreeAll(&p.nodes);
    }
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // Hands out a node for a new acquisition. Never blocks (see Refill), so it is legal
  // from inside epoch critical sections.
  T* Alloc() {
    if (active_.head == nullptr) {
      Refill();
    }
    if (active_.head == nullptr) {
      // Every reclaimed node is still inside someone's grace period and the parked
      // backlog is full: allocate fresh rather than wait.
      Replenish(kTargetSize);
    }
    return Pop(&active_);
  }

  // Returns an unused node (one that never entered a shared list) straight to the active
  // pool — no grace period required.
  void Recycle(T* node) { Push(&active_, node); }

  // Accepts a node that was just physically unlinked from a shared list. It becomes
  // allocatable only after a future barrier.
  void Retire(T* node) { Push(&reclaimed_, node); }

  std::size_t ActiveSize() const { return active_.size; }
  std::size_t ReclaimedSize() const { return reclaimed_.size; }
  std::size_t ParkedBatches() const { return parked_.size(); }
  // The learned inventory floor (kTargetSize when never ratcheted / fully decayed).
  std::size_t InventoryTarget() const { return target_; }

  // The calling thread's pool for T. One instance per (thread, T).
  static NodePool& Local() {
    thread_local NodePool pool;
    return pool;
  }

 private:
  struct List {
    T* head = nullptr;
    T* tail = nullptr;
    std::size_t size = 0;
  };

  struct Parked {
    List nodes;
    EpochDomain::GraceTicket ticket;
  };

  // Moves every node of `src` onto `dst` in O(1) — refills splice whole batches on
  // the allocation hot path.
  static void Splice(List* dst, List* src) {
    if (src->head == nullptr) {
      return;
    }
    Traits::SetNext(src->tail, dst->head);
    if (dst->head == nullptr) {
      dst->tail = src->tail;
    }
    dst->head = src->head;
    dst->size += src->size;
    *src = List{};
  }

  static void Push(List* list, T* node) {
    Traits::SetNext(node, list->head);
    if (list->head == nullptr) {
      list->tail = node;
    }
    list->head = node;
    ++list->size;
  }

  static T* Pop(List* list) {
    T* node = list->head;
    list->head = Traits::GetNext(node);
    if (list->head == nullptr) {
      list->tail = nullptr;
    }
    --list->size;
    return node;
  }

  // Refill never blocks, yields, or runs a barrier, so it is safe from any context,
  // scoped epoch critical sections included (a range acquisition made from within a
  // skip-list operation allocates here with depth > 0).
  void Refill() {
    // First reap: any parked batch whose grace has elapsed is unreachable and becomes
    // allocatable wholesale (O(1) splice each).
    std::erase_if(parked_, [this](Parked& p) {
      if (!p.ticket.Elapsed()) {
        return false;
      }
      Splice(&active_, &p.nodes);
      return true;
    });

    bool shortage = false;
    if (active_.head == nullptr && reclaimed_.head != nullptr) {
      if (EpochDomain::Global().QuiescentNow(rec_)) {
        // No concurrent critical sections: the classic barrier-and-swap, without the
        // barrier (and without allocating a ticket — this is the refill fast path).
        Splice(&active_, &reclaimed_);
      } else if (parked_.size() < kMaxParkedBatches) {
        parked_.push_back({reclaimed_, EpochDomain::Global().Snapshot(rec_)});
        reclaimed_ = List{};
        shortage = true;
        // Shortage: demand outran inventory by one grace period. Ratchet the target
        // so the replenishment below becomes standing inventory instead of being
        // trimmed away after the reap.
        if (target_ < kMaxInventory) {
          target_ += kTargetSize;
        }
      }
      // else: keep accumulating in `reclaimed`; a later refill retries once a parked
      // batch has been reaped.
    }

    // Ratchet decay: a reap cycle that neither parked nor has a batch in flight is
    // evidence the grace latency is covered with room to spare; enough of them in a
    // row and the learned floor gives back one batch per quiet cycle, letting the trim
    // below reclaim inventory a past storm stranded.
    if (shortage) {
      quiet_refills_ = 0;
    } else if (parked_.empty() && target_ > kTargetSize &&
               ++quiet_refills_ >= DecayQuietRefills()) {
      --quiet_refills_;  // hold at the threshold: one batch per further quiet refill
      target_ -= kTargetSize;
    }

    if (active_.size < target_ / 2) {
      Replenish(target_ - active_.size);
    } else if (active_.size > 2 * target_ && parked_.empty()) {
      // Trim only down to the learned floor, and only with no batch in flight: while
      // grace is pending, the excess IS the inventory that keeps the next park from
      // forcing a malloc burst.
      Trim(target_);
    }
  }

  void Replenish(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Push(&active_, new T());
    }
  }

  void Trim(std::size_t down_to) {
    while (active_.size > down_to) {
      delete Pop(&active_);
    }
  }

  static void FreeAll(List* list) {
    while (list->head != nullptr) {
      delete Pop(list);
    }
  }

  EpochDomain::ThreadRec* rec_;
  List active_;
  List reclaimed_;
  std::vector<Parked> parked_;
  // Learned inventory floor: kTargetSize until the first shortage, ratcheted up one
  // batch per park, decayed one batch per quiet reap cycle after a quiet run-up,
  // never above kMaxInventory. See the header comment.
  std::size_t target_ = kTargetSize;
  // Consecutive shortage-free refills (see DecayQuietRefills()).
  std::size_t quiet_refills_ = 0;
};

}  // namespace srl

#endif  // SRL_EPOCH_NODE_POOL_H_
