// Thread-local object pools amortizing epoch reclamation (paper §4.4).
//
// Each thread keeps exactly two pools per node type:
//   * `active`    — nodes ready to be handed out for new range acquisitions;
//   * `reclaimed` — nodes this thread unlinked from some lock's list but that may still be
//                   referenced by concurrent traversals.
// When the active pool runs dry the thread runs an epoch barrier, after which everything
// in `reclaimed` is provably unreachable; the pools are swapped, then the new active pool
// is replenished up to kTargetSize if it holds fewer than kTargetSize/2 nodes and trimmed
// back to kTargetSize if it holds more than 2*kTargetSize. In a balanced workload the
// system allocator is therefore only touched during warm-up, exactly as the paper notes.
//
// Pools are bound to EpochDomain::Global(): the barrier must cover every thread that can
// traverse a list containing these nodes, and the global domain is the only set with that
// property.
#ifndef SRL_EPOCH_NODE_POOL_H_
#define SRL_EPOCH_NODE_POOL_H_

#include <cstddef>

#include "src/epoch/epoch_domain.h"

namespace srl {

// T must provide `T* pool_next` usable while the node is free. (LNode aliases this onto
// its atomic next field; see src/core/lnode.h.)
template <typename T>
struct PoolTraits {
  static void SetNext(T* node, T* next) { node->pool_next = next; }
  static T* GetNext(T* node) { return node->pool_next; }
};

// kTarget is the paper's N (128 by default; templated so the pool-size ablation bench
// can sweep it).
template <typename T, typename Traits = PoolTraits<T>, std::size_t kTarget = 128>
class NodePool {
 public:
  static constexpr std::size_t kTargetSize = kTarget;

  NodePool() : rec_(CurrentThreadRec(EpochDomain::Global())) {
    Replenish(kTargetSize);
  }

  ~NodePool() {
    // Everything in `reclaimed` may still be referenced; wait out in-flight traversals.
    EpochDomain::Global().Barrier(rec_);
    FreeAll(&active_);
    FreeAll(&reclaimed_);
  }

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  // Hands out a node for a new acquisition. Must not be called from inside an epoch
  // critical section (the refill path runs a barrier).
  T* Alloc() {
    if (active_.head == nullptr) {
      Refill();
    }
    return Pop(&active_);
  }

  // Returns an unused node (one that never entered a shared list) straight to the active
  // pool — no grace period required.
  void Recycle(T* node) { Push(&active_, node); }

  // Accepts a node that was just physically unlinked from a shared list. It becomes
  // allocatable only after a future barrier.
  void Retire(T* node) { Push(&reclaimed_, node); }

  std::size_t ActiveSize() const { return active_.size; }
  std::size_t ReclaimedSize() const { return reclaimed_.size; }

  // The calling thread's pool for T. One instance per (thread, T).
  static NodePool& Local() {
    thread_local NodePool pool;
    return pool;
  }

 private:
  struct List {
    T* head = nullptr;
    std::size_t size = 0;
  };

  static void Push(List* list, T* node) {
    Traits::SetNext(node, list->head);
    list->head = node;
    ++list->size;
  }

  static T* Pop(List* list) {
    T* node = list->head;
    list->head = Traits::GetNext(node);
    --list->size;
    return node;
  }

  void Refill() {
    if (rec_->depth > 0) {
      // This thread is inside an epoch critical section (e.g. a range acquisition made
      // from within a skip-list operation). Running the barrier here could deadlock:
      // two threads in this state would each wait for the other's never-ending epoch.
      // Allocating is always safe, so take fresh nodes now and leave the reclaimed pool
      // for a future refill made from outside any critical section.
      Replenish(kTargetSize);
      return;
    }
    EpochDomain::Global().Barrier(rec_);
    // After the barrier every node in `reclaimed` is unreachable: swap the (empty) active
    // pool with it.
    List tmp = active_;
    active_ = reclaimed_;
    reclaimed_ = tmp;
    if (active_.size < kTargetSize / 2) {
      Replenish(kTargetSize - active_.size);
    } else if (active_.size > 2 * kTargetSize) {
      Trim(kTargetSize);
    }
  }

  void Replenish(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Push(&active_, new T());
    }
  }

  void Trim(std::size_t down_to) {
    while (active_.size > down_to) {
      delete Pop(&active_);
    }
  }

  static void FreeAll(List* list) {
    while (list->head != nullptr) {
      delete Pop(list);
    }
  }

  EpochDomain::ThreadRec* rec_;
  List active_;
  List reclaimed_;
};

}  // namespace srl

#endif  // SRL_EPOCH_NODE_POOL_H_
