// Generic epoch-deferred deletion for heterogeneous objects (skip-list nodes, VMAs).
//
// Unlike NodePool (which recycles fixed-type lock nodes), RetireList frees arbitrary
// objects once a grace period has elapsed. Retired objects accumulate in a thread-local
// buffer; when the buffer reaches kFlushThreshold the thread runs one epoch barrier and
// frees the whole batch, amortizing the barrier cost.
#ifndef SRL_EPOCH_RETIRE_LIST_H_
#define SRL_EPOCH_RETIRE_LIST_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/epoch/epoch_domain.h"

namespace srl {

class RetireList {
 public:
  static constexpr std::size_t kFlushThreshold = 256;

  RetireList() : rec_(CurrentThreadRec(EpochDomain::Global())) {}

  ~RetireList() { Flush(); }

  RetireList(const RetireList&) = delete;
  RetireList& operator=(const RetireList&) = delete;

  // Defers `delete static_cast<T*>(obj)` until after a grace period. Must be called by
  // the thread that made the object unreachable, after unlinking it. Never flushes
  // inline: Retire() may legally be called while the thread holds locks or ranges, and a
  // barrier at that point could deadlock with threads waiting on those ranges. Callers
  // invoke MaybeFlush() at a quiescent point (holding nothing) instead.
  template <typename T>
  void Retire(T* obj) {
    pending_.push_back({obj, [](void* p) { delete static_cast<T*>(p); }});
  }

  // As above, for objects with bespoke deallocation (e.g. variable-height skip-list
  // nodes created with raw operator new).
  void RetireCustom(void* obj, void (*deleter)(void*)) {
    pending_.push_back({obj, deleter});
  }

  // Flushes if the pending batch is large. Call at operation boundaries, while holding no
  // locks or ranges and outside any epoch critical section.
  void MaybeFlush() {
    if (pending_.size() >= kFlushThreshold) {
      Flush();
    }
  }

  // Runs a barrier and frees everything retired so far. Must not be called from inside an
  // epoch critical section.
  void Flush() {
    if (pending_.empty()) {
      return;
    }
    EpochDomain::Global().Barrier(rec_);
    for (const Pending& p : pending_) {
      p.deleter(p.obj);
    }
    pending_.clear();
  }

  std::size_t PendingCount() const { return pending_.size(); }

  // The calling thread's retire list.
  static RetireList& Local() {
    thread_local RetireList list;
    return list;
  }

 private:
  struct Pending {
    void* obj;
    void (*deleter)(void*);
  };

  EpochDomain::ThreadRec* rec_;
  std::vector<Pending> pending_;
};

}  // namespace srl

#endif  // SRL_EPOCH_RETIRE_LIST_H_
