// Generic epoch-deferred deletion for heterogeneous objects (skip-list nodes, VMAs).
//
// Unlike NodePool (which recycles fixed-type lock nodes), RetireList frees arbitrary
// objects once a grace period has elapsed. Retired objects accumulate in a thread-local
// buffer; when the buffer reaches FlushThreshold() the thread *parks* the batch together
// with a grace snapshot (EpochDomain::GraceTicket) and frees it on a later call once the
// snapshot has elapsed — reclamation never waits.
//
// The non-blocking shape matters because of epoch-per-quantum readers
// (EpochQuantumGuard): a fault-heavy thread keeps its epoch odd across whole batches of
// operations, so a blocking barrier at every flush point would cost the retiring thread
// a full scheduler round per flush (measured as a ~6-10x munmap-throughput collapse on
// one core). Parking costs one snapshot; the memory simply stays alive a little longer
// — bounded by the readers' forced quantum refresh. A blocking Flush() remains for
// destruction and for the parked-batch backstop.
#ifndef SRL_EPOCH_RETIRE_LIST_H_
#define SRL_EPOCH_RETIRE_LIST_H_

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "src/epoch/epoch_domain.h"

namespace srl {

class RetireList {
 public:
  // Per-thread batch size before MaybeFlush parks, derived from the core count at
  // first use (the old constexpr 256 was guessed on a one-core container — ROADMAP
  // PR-5 carryover). The buffer is thread-local, so total deferred memory scales with
  // the thread count; shrinking the per-thread batch as cores grow keeps the
  // aggregate roughly constant and keeps grace snapshots short on busy machines:
  // 1024 / cores, clamped to [64, 256]. hardware_concurrency() == 1 reproduces the
  // old 256 exactly. epoch_test asserts this derivation.
  static std::size_t FlushThreshold() {
    static const std::size_t v =
        std::clamp<std::size_t>(1024 / std::max(1u, std::thread::hardware_concurrency()),
                                64, 256);
    return v;
  }
  // At most this many separately-ticketed parked batches; beyond it, new batches
  // coalesce into the newest parked batch (ticket union). This bounds bookkeeping,
  // NOT memory: a live thread that idles forever inside an open epoch quantum pins
  // every later retirement until it quiesces or exits — the deliberate
  // memory-over-blocking policy (kernel RCU makes the same call). MaybeFlush never
  // waits; only Flush() (destruction) runs a blocking barrier. Sized so coalescing
  // essentially never happens against healthy quantum readers, whose tickets elapse
  // within one scheduler round — and scaled with the core count, because each running
  // core can hold one quantum open and stretch one more ticket past its grace window:
  // 16 * cores, clamped to [64, 512] (== the old 64 up to four cores). epoch_test
  // asserts this derivation too.
  static std::size_t MaxParkedBatches() {
    static const std::size_t v = std::clamp<std::size_t>(
        16 * std::max(1u, std::thread::hardware_concurrency()), 64, 512);
    return v;
  }

  RetireList() : rec_(CurrentThreadRec(EpochDomain::Global())) {}

  ~RetireList() { Flush(); }

  RetireList(const RetireList&) = delete;
  RetireList& operator=(const RetireList&) = delete;

  // Defers `delete static_cast<T*>(obj)` until after a grace period. Must be called by
  // the thread that made the object unreachable, after unlinking it. Never flushes
  // inline: Retire() may legally be called while the thread holds locks or ranges, and a
  // barrier at that point could deadlock with threads waiting on those ranges. Callers
  // invoke MaybeFlush() at a quiescent point (holding nothing) instead.
  template <typename T>
  void Retire(T* obj) {
    pending_.push_back({obj, [](void* p) { delete static_cast<T*>(p); }});
  }

  // As above, for objects with bespoke deallocation (e.g. variable-height skip-list
  // nodes created with raw operator new).
  void RetireCustom(void* obj, void (*deleter)(void*)) {
    pending_.push_back({obj, deleter});
  }

  // Parks the current batch once it is large, reaping previously parked batches whose
  // grace period has elapsed. Never blocks, and free for the (FlushThreshold() - 1 of
  // every FlushThreshold()) calls below the threshold — this runs after every munmap,
  // so the ticket polling must stay off that path. Call at operation boundaries,
  // while holding no locks or ranges and outside any scoped epoch critical section
  // (EpochGuard); an open epoch-per-quantum section on the calling thread is fine —
  // the grace snapshot skips the caller's own record.
  void MaybeFlush() {
    if (pending_.size() < FlushThreshold()) {
      return;
    }
    Reap();
    Park();
  }

  // Blocking drain: runs a full barrier and frees everything retired so far, parked
  // batches included. Destruction-only by design — it can wait on another thread's
  // idle open quantum (see kMaxParkedBatches). Must not be called from inside a
  // scoped epoch critical section; the caller's own open quantum is closed here (a
  // barrier only skips *self*, so two threads barriering with open quanta would
  // deadlock on each other's idle epochs).
  void Flush() {
    if (pending_.empty() && parked_.empty()) {
      return;
    }
    EpochDomain::QuiesceQuantum(rec_);
    EpochDomain::Global().Barrier(rec_);
    for (Batch& batch : parked_) {
      FreeAll(batch.objs);
    }
    parked_.clear();
    FreeAll(pending_);
    pending_.clear();
  }

  // Objects retired and not yet freed (buffered + parked).
  std::size_t PendingCount() const {
    std::size_t n = pending_.size();
    for (const Batch& batch : parked_) {
      n += batch.objs.size();
    }
    return n;
  }

  // The calling thread's retire list.
  static RetireList& Local() {
    thread_local RetireList list;
    return list;
  }

 private:
  struct Pending {
    void* obj;
    void (*deleter)(void*);
  };

  struct Batch {
    std::vector<Pending> objs;
    EpochDomain::GraceTicket ticket;
  };

  void Park() {
    if (EpochDomain::Global().QuiescentNow(rec_)) {
      // No concurrent critical sections: the grace period is already over, no ticket
      // needed.
      FreeAll(pending_);
      pending_.clear();
      return;
    }
    EpochDomain::GraceTicket ticket = EpochDomain::Global().Snapshot(rec_);
    if (parked_.size() >= MaxParkedBatches()) {
      // Bookkeeping bound reached (some section is outliving many grace windows):
      // coalesce into the newest batch instead of blocking. The union ticket frees
      // both batches once both snapshots have elapsed — strictly conservative.
      Batch& newest = parked_.back();
      newest.objs.insert(newest.objs.end(), pending_.begin(), pending_.end());
      newest.ticket.Merge(std::move(ticket));
    } else {
      parked_.push_back({std::move(pending_), std::move(ticket)});
    }
    pending_.clear();
  }

  void Reap() {
    std::erase_if(parked_, [](Batch& batch) {
      if (!batch.ticket.Elapsed()) {
        return false;
      }
      FreeAll(batch.objs);
      return true;
    });
  }

  static void FreeAll(std::vector<Pending>& objs) {
    for (const Pending& p : objs) {
      p.deleter(p.obj);
    }
    objs.clear();
  }

  EpochDomain::ThreadRec* rec_;
  std::vector<Pending> pending_;
  std::vector<Batch> parked_;
};

}  // namespace srl

#endif  // SRL_EPOCH_RETIRE_LIST_H_
