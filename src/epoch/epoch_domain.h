// Epoch-based memory reclamation (paper §4.4).
//
// The lock-less list traversals of the range lock read nodes that concurrent threads may
// simultaneously unlink. A node therefore cannot be freed at unlink time; it is *retired*
// and only reclaimed once every thread that might still hold a reference has provably
// moved on. The paper uses RCU for its kernel implementation and this epoch scheme for
// user space; we implement the user-space scheme exactly:
//
//   * every thread owns an epoch counter, incremented before the first and after the last
//     reference to a list node in an operation (so: odd = inside a critical section);
//   * a thread that needs to recycle retired memory runs a *barrier*: it snapshots all
//     odd epochs and waits for each to change, which proves the owning threads have left
//     the critical sections that could reference the retired nodes.
//
// Memory-model note: entering a critical section is a seq_cst RMW and the barrier reads
// epochs with seq_cst. This gives the store-load ordering the scheme needs (announce
// in-CS before reading shared pointers; unlink before reading epochs) — the same fence
// discipline used by folly's RCU and crossbeam-epoch. On x86 the RMWs are full fences
// anyway, so this costs nothing over the paper's implicit sequential consistency.
#ifndef SRL_EPOCH_EPOCH_DOMAIN_H_
#define SRL_EPOCH_EPOCH_DOMAIN_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "src/sync/cacheline.h"
#include "src/sync/pause.h"

namespace srl {

// A reclamation domain: a set of threads whose critical sections guard each other's
// retired memory. Most code uses EpochDomain::Global(); separate instances exist so tests
// can exercise the machinery in isolation.
class EpochDomain {
 public:
  // Static record table. Sized for the oversubscription benches (bench/abl_oversub
  // sweeps to 1024 concurrent threads) with headroom; each record is one cache line,
  // so the table costs kMaxThreads * 64 bytes of static storage.
  static constexpr std::size_t kMaxThreads = 2048;

  // Per-thread epoch record. Obtained once per thread (cached in a ThreadSlot by
  // CurrentThreadRec) and released when the thread exits. Fields beyond `epoch` and
  // `in_use` are written by the owning thread only (relaxed atomics where the barrier
  // watchdog also reads them; `quantum_ops` stays plain because nothing else looks).
  struct alignas(kCacheLineSize) ThreadRec {
    std::atomic<uint64_t> epoch{0};   // odd while inside a critical section
    std::atomic<bool> in_use{false};  // slot allocated to a live thread
    std::atomic<uint32_t> depth{0};   // nesting level; owner-thread writes only
    // Epoch-per-quantum state (EpochQuantumGuard).
    uint32_t quantum_ops = 0;                 // operations completed in the open quantum
    std::atomic<bool> quantum_open{false};    // quantum owns one `depth` unit while true
    // Guard-scope heartbeat: bumped on quantum-guard entry (odd = inside a guard's
    // scope) and exit (even = parked between guards). The barrier watchdog samples it
    // to tell "idle between guards, holding nothing" from "preempted mid-guard".
    std::atomic<uint64_t> quantum_ticks{0};
    // Set by a barrier that has been waiting on this record's idle-open quantum: a
    // polite eviction notice. The owner acknowledges on its next guard by refreshing
    // (or reopening) its section; a barrier that waits past the force-quiesce
    // threshold with the notice unacknowledged closes the section itself.
    std::atomic<bool> quantum_revoked{false};
  };

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // The process-wide domain shared by all range locks and concurrent structures
  // ("each thread has only two pools, regardless of the number of range locks it
  // accesses" — §4.4).
  static EpochDomain& Global();

  // Claims a free thread record. Aborts the process if more than kMaxThreads concurrent
  // threads register (a deliberate static limit, as in most epoch implementations).
  ThreadRec* AcquireRec();

  // Returns a record to the free set. The caller must not be in a critical section.
  void ReleaseRec(ThreadRec* rec);

  // Marks the start of a critical section for `rec` (epoch becomes odd). Reentrant:
  // nested Enter/Exit pairs (e.g. a range-lock acquisition inside a skip-list
  // operation's critical section) only toggle the epoch at the outermost level, so the
  // whole nest stays protected. A nested Enter piggy-backs on an existing section —
  // usually an open quantum's — so it must also defend against the barrier watchdog:
  // it bumps the guard-scope heartbeat (making the section visibly live), then
  // validates the section was not (and is not being) force-quiesced, refreshing or
  // reopening it via CAS on the epoch word so this Enter and a concurrent force-close
  // can never both win. Without that, a plain guard entered into an idle quantum in
  // the instant the watchdog decides could run inside a closed section.
  static void Enter(ThreadRec* rec) {
    const uint32_t d = rec->depth.load(std::memory_order_relaxed);
    rec->depth.store(d + 1, std::memory_order_relaxed);
    if (d == 0) {
      rec->epoch.fetch_add(1, std::memory_order_seq_cst);
      return;
    }
    rec->quantum_ticks.store(rec->quantum_ticks.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
    uint64_t e = rec->epoch.load(std::memory_order_relaxed);
    if ((e & 1) == 0) {
      // The watchdog already closed the idle section this depth unit belongs to:
      // reopen before any reference is taken (plain fetch_add — the watchdog never
      // touches an even epoch).
      rec->quantum_revoked.store(false, std::memory_order_relaxed);
      rec->epoch.fetch_add(1, std::memory_order_seq_cst);
    } else if (rec->quantum_revoked.load(std::memory_order_relaxed)) {
      // Eviction notice posted: acknowledge by refreshing in place (odd -> odd),
      // racing the watchdog's close CAS on the same expected value.
      rec->quantum_revoked.store(false, std::memory_order_relaxed);
      if (!rec->epoch.compare_exchange_strong(e, e + 2, std::memory_order_seq_cst)) {
        rec->epoch.fetch_add(1, std::memory_order_seq_cst);  // e reloaded even: reopen
      }
    }
  }

  // Marks the end of a critical section for `rec` (epoch becomes even again at the
  // outermost level). Nested exits bump the heartbeat back to even, mirroring Enter.
  static void Exit(ThreadRec* rec) {
    const uint32_t d = rec->depth.load(std::memory_order_relaxed) - 1;
    rec->depth.store(d, std::memory_order_relaxed);
    if (d == 0) {
      rec->epoch.fetch_add(1, std::memory_order_release);
      return;
    }
    rec->quantum_ticks.store(rec->quantum_ticks.load(std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
  }

  // Closes `rec`'s open epoch-per-quantum section, if any (see EpochQuantumGuard).
  // Always safe on the owning thread: quantum sections hold no references between
  // guards. MANDATORY before running Barrier(): two threads barriering with their
  // quanta open would otherwise each wait forever on the other's idle odd epoch —
  // each barrier skips only *self* (the watchdog would eventually break the tie, but
  // only after the force-quiesce threshold). If the watchdog already force-closed the
  // section, only the depth unit is dropped; the CAS keeps owner and watchdog from
  // both closing it.
  static void QuiesceQuantum(ThreadRec* rec) {
    if (!rec->quantum_open.load(std::memory_order_relaxed)) {
      return;
    }
    rec->quantum_open.store(false, std::memory_order_relaxed);
    rec->quantum_ops = 0;
    rec->quantum_revoked.store(false, std::memory_order_relaxed);
    const uint32_t d = rec->depth.load(std::memory_order_relaxed) - 1;
    rec->depth.store(d, std::memory_order_relaxed);
    if (d != 0) {
      return;  // nested guards still own the section
    }
    uint64_t e = rec->epoch.load(std::memory_order_relaxed);
    while ((e & 1) != 0 &&
           !rec->epoch.compare_exchange_weak(e, e + 1, std::memory_order_release)) {
    }
  }

  // A recorded set of in-flight critical sections — the non-blocking half of the grace
  // protocol. Snapshot() records every section live at call time; Elapsed() polls
  // (never waits) whether all of them have since exited. Memory unlinked before the
  // snapshot may be reclaimed once Elapsed() first returns true: any section that
  // could still reference it was live at snapshot time (it started before the unlink
  // and had not exited) and is therefore recorded. Epoch-per-quantum readers made this
  // split necessary — a quantum parks a thread's epoch odd across whole operation
  // batches, so *waiting* for it (Barrier) costs a scheduler round on a loaded box,
  // while deferring the free until a later poll costs nothing.
  class GraceTicket {
   public:
    GraceTicket() = default;

    // True once every recorded section has exited. Prunes satisfied entries, so
    // repeated polls get cheaper; monotone (true stays true).
    bool Elapsed() {
      std::size_t keep = 0;
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].epoch->load(std::memory_order_acquire) == entries_[i].seen) {
          entries_[keep++] = entries_[i];
        }
      }
      entries_.resize(keep);
      return entries_.empty();
    }

    // Folds `other` in: this ticket then elapses only once both tickets' sections
    // have exited (conservative union — used to coalesce deferred batches so a
    // backlog can stay bounded in count without ever blocking).
    void Merge(GraceTicket&& other) {
      entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
      other.entries_.clear();
    }

   private:
    friend class EpochDomain;
    struct Entry {
      const std::atomic<uint64_t>* epoch;
      uint64_t seen;
    };
    std::vector<Entry> entries_;
  };

  // Records every critical section in progress at call time. `self` (may be null) is
  // skipped — a thread's own section never guards memory it retires itself.
  GraceTicket Snapshot(const ThreadRec* self = nullptr) const;

  // Allocation-free fast path of Snapshot(): true if no critical section other than
  // `self`'s is in flight right now, i.e. grace for anything already unlinked has
  // trivially elapsed. Reclaimers call this before building a ticket so the common
  // quiescent case costs a handful of loads on their hot paths.
  bool QuiescentNow(const ThreadRec* self = nullptr) const;

  // Waits until every critical section that was in progress when the call started has
  // finished. After Barrier() returns, memory unlinked before the call is unreachable
  // from any live traversal and may be reclaimed. `self` (may be null) is skipped.
  // Callers must close their own open quantum first (QuiesceQuantum) — see GraceTicket
  // for the non-blocking alternative that needs no such care.
  //
  // Watchdog: a quantum section that stays *idle* — open, exactly one depth unit, its
  // tick heartbeat even and unmoving — past ForceQuiesceAfter() is force-quiesced from
  // the barrier side, so one thread parked between guards cannot pin retired memory
  // forever (the classic failure mode of quiescent-state schemes; liburcu answers it
  // with an explicit offline call, this answers it with eviction). Protocol: the
  // barrier posts a revocation notice, keeps observing for a confirmation window, and
  // only then CASes the idle epoch closed; the owner's next guard notices the even
  // epoch (or the notice) before taking any reference and re-opens a fresh section.
  // Every close/refresh of the section is a CAS on the epoch word, so owner and
  // watchdog can never both close it. The owner's fast path stays free of fences: the
  // handshake instead leans on the confirmation window — a heartbeat store that a
  // multi-millisecond observation window cannot see is not something cache-coherent
  // hardware produces (and the standard's visibility "should" clause backs it) — the
  // deliberate trade for keeping the quantum optimization's cost profile intact.
  void Barrier(const ThreadRec* self = nullptr);

  // Idle threshold for the barrier watchdog; zero disables force-quiesce entirely.
  // The default is generous — the watchdog is a liveness backstop, not a scheduler.
  void SetForceQuiesceAfter(std::chrono::nanoseconds d) {
    force_quiesce_after_ns_.store(d.count(), std::memory_order_relaxed);
  }
  std::chrono::nanoseconds ForceQuiesceAfter() const {
    return std::chrono::nanoseconds(
        force_quiesce_after_ns_.load(std::memory_order_relaxed));
  }
  // Quanta force-quiesced by barriers on this domain (tests / introspection).
  uint64_t ForcedQuiesces() const {
    return forced_quiesces_.load(std::memory_order_relaxed);
  }

  // Default watchdog threshold, derived from the core count at first use (the 250 ms
  // constant was guessed on a one-core container — ROADMAP PR-5 carryover). Rationale:
  // on a one-core host an idle open quantum usually means its owner is merely
  // descheduled, so evicting early just churns sections that would have refreshed
  // themselves; with real parallelism a stuck quantum blocks reclamation for every
  // other core at once and barriers complete quickly, so eviction should come sooner.
  // 250 ms / cores, floored at 50 ms; hardware_concurrency() == 1 reproduces the old
  // 250 ms exactly. epoch_test asserts this derivation.
  static std::chrono::nanoseconds DefaultForceQuiesceAfter() {
    static const std::chrono::nanoseconds v = [] {
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      return std::max(std::chrono::nanoseconds(std::chrono::milliseconds(50)),
                      std::chrono::nanoseconds(std::chrono::milliseconds(250)) / hw);
    }();
    return v;
  }

  // Number of records currently registered (for tests / introspection).
  std::size_t LiveThreads() const;

 private:
  // How long a posted revocation notice must sit unacknowledged, with the heartbeat
  // provably still, before the barrier may close the section itself.
  static constexpr std::chrono::nanoseconds kRevokeConfirmWindow =
      std::chrono::milliseconds(2);

  ThreadRec recs_[kMaxThreads];
  std::atomic<std::size_t> high_water_{0};  // one past the highest slot ever used
  std::atomic<int64_t> force_quiesce_after_ns_{DefaultForceQuiesceAfter().count()};
  std::atomic<uint64_t> forced_quiesces_{0};
};

// RAII helper binding the current thread to a domain record for the lifetime of the
// thread. The first call on a thread claims a slot; the slot is released when the thread
// terminates.
EpochDomain::ThreadRec* CurrentThreadRec(EpochDomain& domain);

// RAII critical-section guard.
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain) : rec_(CurrentThreadRec(domain)) {
    EpochDomain::Enter(rec_);
  }
  ~EpochGuard() { EpochDomain::Exit(rec_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain::ThreadRec* rec_;
};

// Epoch-per-quantum guard — the amortized form of EpochGuard for operations hot enough
// that two RMWs per operation show up (the speculative page-fault path: the list-scoped
// vs list-full single-core faults/sec gap was exactly this cost).
//
// The first guard on a thread opens a critical section ("quantum") that then *stays
// open across guards*: the next kOpsPerQuantum - 1 guards are a plain-integer
// increment, no atomics at all. The guard that completes the quantum closes the
// section (and the one after opens a fresh one), so the epoch provably moves every
// kOpsPerQuantum operations and a concurrent Barrier() waits at most one quantum of
// the slowest active thread. A quantum left open by a thread that stops issuing guards
// is closed when the thread exits (ReleaseRec) or by an explicit
// EpochQuantumQuiesce(); a live thread that goes idle *between* those points delays —
// never breaks — reclamation, the standard quiescent-state-based tradeoff.
//
// Safety is the conservative direction: the barrier may wait for sections that no
// longer reference anything, never the reverse. References obtained under a guard must
// still not outlive that guard (they are only *protected* for the guard's scope; the
// longer-lived section merely keeps the protection cheap).
//
// Constraints: guards of the same domain must not nest on one thread (the inner
// guard's quantum completion would strip protection from the outer); plain EpochGuards
// nest freely inside (the quantum owns one depth unit, so they never toggle the
// epoch).
class EpochQuantumGuard {
 public:
  // Refresh period. Large enough that the two quantum-boundary RMWs vanish into the
  // noise, small enough that an active faulting thread stalls a barrier for microseconds
  // only.
  static constexpr uint32_t kOpsPerQuantum = 64;

  explicit EpochQuantumGuard(EpochDomain& domain) : rec_(CurrentThreadRec(domain)) {
    // Heartbeat first (odd = inside a guard's scope): the barrier watchdog only evicts
    // sections whose heartbeat is even and still, so announcing before the reuse
    // checks below shrinks its decision window from the wrong side.
    rec_->quantum_ticks.store(rec_->quantum_ticks.load(std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed);
    if (!rec_->quantum_open.load(std::memory_order_relaxed)) {
      EpochDomain::Enter(rec_);
      rec_->quantum_open.store(true, std::memory_order_relaxed);
      return;
    }
    const uint64_t e = rec_->epoch.load(std::memory_order_relaxed);
    if ((e & 1) == 0) {
      // The barrier watchdog force-quiesced our idle quantum. Reopen a fresh section
      // under the same depth unit before any reference is taken. Plain fetch_add is
      // safe: the watchdog never touches an even epoch.
      rec_->quantum_revoked.store(false, std::memory_order_relaxed);
      rec_->quantum_ops = 0;
      rec_->epoch.fetch_add(1, std::memory_order_seq_cst);
    } else if (rec_->quantum_revoked.load(std::memory_order_relaxed)) {
      // A barrier posted an eviction notice while we idled: acknowledge by refreshing
      // the section in place (odd -> odd), which releases the barrier without ever
      // dropping protection. CAS, because the watchdog may close the section in the
      // same instant; if it wins, reopen.
      rec_->quantum_revoked.store(false, std::memory_order_relaxed);
      rec_->quantum_ops = 0;
      uint64_t expect = e;
      if (!rec_->epoch.compare_exchange_strong(expect, e + 2,
                                               std::memory_order_seq_cst)) {
        rec_->epoch.fetch_add(1, std::memory_order_seq_cst);  // expect reloaded even
      }
    }
  }
  ~EpochQuantumGuard() {
    rec_->quantum_ticks.store(rec_->quantum_ticks.load(std::memory_order_relaxed) + 1,
                              std::memory_order_relaxed);
    if (++rec_->quantum_ops >= kOpsPerQuantum) {
      rec_->quantum_ops = 0;
      rec_->quantum_open.store(false, std::memory_order_relaxed);
      EpochDomain::Exit(rec_);
    }
  }
  EpochQuantumGuard(const EpochQuantumGuard&) = delete;
  EpochQuantumGuard& operator=(const EpochQuantumGuard&) = delete;

 private:
  EpochDomain::ThreadRec* rec_;
};

// Closes the calling thread's open quantum in `domain`, if any. Call when a thread
// leaves a fault-heavy phase but stays alive (e.g. a worker that switches to waiting on
// a queue), so concurrent barriers stop waiting on its idle critical section.
void EpochQuantumQuiesce(EpochDomain& domain);
inline void EpochQuantumQuiesce() { EpochQuantumQuiesce(EpochDomain::Global()); }

}  // namespace srl

#endif  // SRL_EPOCH_EPOCH_DOMAIN_H_
