// Epoch-based memory reclamation (paper §4.4).
//
// The lock-less list traversals of the range lock read nodes that concurrent threads may
// simultaneously unlink. A node therefore cannot be freed at unlink time; it is *retired*
// and only reclaimed once every thread that might still hold a reference has provably
// moved on. The paper uses RCU for its kernel implementation and this epoch scheme for
// user space; we implement the user-space scheme exactly:
//
//   * every thread owns an epoch counter, incremented before the first and after the last
//     reference to a list node in an operation (so: odd = inside a critical section);
//   * a thread that needs to recycle retired memory runs a *barrier*: it snapshots all
//     odd epochs and waits for each to change, which proves the owning threads have left
//     the critical sections that could reference the retired nodes.
//
// Memory-model note: entering a critical section is a seq_cst RMW and the barrier reads
// epochs with seq_cst. This gives the store-load ordering the scheme needs (announce
// in-CS before reading shared pointers; unlink before reading epochs) — the same fence
// discipline used by folly's RCU and crossbeam-epoch. On x86 the RMWs are full fences
// anyway, so this costs nothing over the paper's implicit sequential consistency.
#ifndef SRL_EPOCH_EPOCH_DOMAIN_H_
#define SRL_EPOCH_EPOCH_DOMAIN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/sync/cacheline.h"
#include "src/sync/pause.h"

namespace srl {

// A reclamation domain: a set of threads whose critical sections guard each other's
// retired memory. Most code uses EpochDomain::Global(); separate instances exist so tests
// can exercise the machinery in isolation.
class EpochDomain {
 public:
  static constexpr std::size_t kMaxThreads = 512;

  // Per-thread epoch record. Obtained once per thread (cached in a thread_local by
  // ThreadSlot below) and released when the thread exits.
  struct alignas(kCacheLineSize) ThreadRec {
    std::atomic<uint64_t> epoch{0};   // odd while inside a critical section
    std::atomic<bool> in_use{false};  // slot allocated to a live thread
    uint32_t depth = 0;               // nesting level; owner-thread access only
  };

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // The process-wide domain shared by all range locks and concurrent structures
  // ("each thread has only two pools, regardless of the number of range locks it
  // accesses" — §4.4).
  static EpochDomain& Global();

  // Claims a free thread record. Aborts the process if more than kMaxThreads concurrent
  // threads register (a deliberate static limit, as in most epoch implementations).
  ThreadRec* AcquireRec();

  // Returns a record to the free set. The caller must not be in a critical section.
  void ReleaseRec(ThreadRec* rec);

  // Marks the start of a critical section for `rec` (epoch becomes odd). Reentrant:
  // nested Enter/Exit pairs (e.g. a range-lock acquisition inside a skip-list
  // operation's critical section) only toggle the epoch at the outermost level, so the
  // whole nest stays protected.
  static void Enter(ThreadRec* rec) {
    if (rec->depth++ == 0) {
      rec->epoch.fetch_add(1, std::memory_order_seq_cst);
    }
  }

  // Marks the end of a critical section for `rec` (epoch becomes even again at the
  // outermost level).
  static void Exit(ThreadRec* rec) {
    if (--rec->depth == 0) {
      rec->epoch.fetch_add(1, std::memory_order_release);
    }
  }

  // Waits until every critical section that was in progress when the call started has
  // finished. After Barrier() returns, memory unlinked before the call is unreachable
  // from any live traversal and may be reclaimed. `self` (may be null) is skipped.
  void Barrier(const ThreadRec* self = nullptr) const;

  // Number of records currently registered (for tests / introspection).
  std::size_t LiveThreads() const;

 private:
  ThreadRec recs_[kMaxThreads];
  std::atomic<std::size_t> high_water_{0};  // one past the highest slot ever used
};

// RAII helper binding the current thread to a domain record for the lifetime of the
// thread. The first call on a thread claims a slot; the slot is released when the thread
// terminates.
EpochDomain::ThreadRec* CurrentThreadRec(EpochDomain& domain);

// RAII critical-section guard.
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain) : rec_(CurrentThreadRec(domain)) {
    EpochDomain::Enter(rec_);
  }
  ~EpochGuard() { EpochDomain::Exit(rec_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain::ThreadRec* rec_;
};

}  // namespace srl

#endif  // SRL_EPOCH_EPOCH_DOMAIN_H_
