// Epoch-based memory reclamation (paper §4.4).
//
// The lock-less list traversals of the range lock read nodes that concurrent threads may
// simultaneously unlink. A node therefore cannot be freed at unlink time; it is *retired*
// and only reclaimed once every thread that might still hold a reference has provably
// moved on. The paper uses RCU for its kernel implementation and this epoch scheme for
// user space; we implement the user-space scheme exactly:
//
//   * every thread owns an epoch counter, incremented before the first and after the last
//     reference to a list node in an operation (so: odd = inside a critical section);
//   * a thread that needs to recycle retired memory runs a *barrier*: it snapshots all
//     odd epochs and waits for each to change, which proves the owning threads have left
//     the critical sections that could reference the retired nodes.
//
// Memory-model note: entering a critical section is a seq_cst RMW and the barrier reads
// epochs with seq_cst. This gives the store-load ordering the scheme needs (announce
// in-CS before reading shared pointers; unlink before reading epochs) — the same fence
// discipline used by folly's RCU and crossbeam-epoch. On x86 the RMWs are full fences
// anyway, so this costs nothing over the paper's implicit sequential consistency.
#ifndef SRL_EPOCH_EPOCH_DOMAIN_H_
#define SRL_EPOCH_EPOCH_DOMAIN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sync/cacheline.h"
#include "src/sync/pause.h"

namespace srl {

// A reclamation domain: a set of threads whose critical sections guard each other's
// retired memory. Most code uses EpochDomain::Global(); separate instances exist so tests
// can exercise the machinery in isolation.
class EpochDomain {
 public:
  static constexpr std::size_t kMaxThreads = 512;

  // Per-thread epoch record. Obtained once per thread (cached in a thread_local by
  // ThreadSlot below) and released when the thread exits.
  struct alignas(kCacheLineSize) ThreadRec {
    std::atomic<uint64_t> epoch{0};   // odd while inside a critical section
    std::atomic<bool> in_use{false};  // slot allocated to a live thread
    uint32_t depth = 0;               // nesting level; owner-thread access only
    // Epoch-per-quantum state (EpochQuantumGuard); owner-thread access only.
    uint32_t quantum_ops = 0;         // operations completed in the open quantum
    bool quantum_open = false;        // quantum owns one `depth` unit while true
  };

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // The process-wide domain shared by all range locks and concurrent structures
  // ("each thread has only two pools, regardless of the number of range locks it
  // accesses" — §4.4).
  static EpochDomain& Global();

  // Claims a free thread record. Aborts the process if more than kMaxThreads concurrent
  // threads register (a deliberate static limit, as in most epoch implementations).
  ThreadRec* AcquireRec();

  // Returns a record to the free set. The caller must not be in a critical section.
  void ReleaseRec(ThreadRec* rec);

  // Marks the start of a critical section for `rec` (epoch becomes odd). Reentrant:
  // nested Enter/Exit pairs (e.g. a range-lock acquisition inside a skip-list
  // operation's critical section) only toggle the epoch at the outermost level, so the
  // whole nest stays protected.
  static void Enter(ThreadRec* rec) {
    if (rec->depth++ == 0) {
      rec->epoch.fetch_add(1, std::memory_order_seq_cst);
    }
  }

  // Marks the end of a critical section for `rec` (epoch becomes even again at the
  // outermost level).
  static void Exit(ThreadRec* rec) {
    if (--rec->depth == 0) {
      rec->epoch.fetch_add(1, std::memory_order_release);
    }
  }

  // Closes `rec`'s open epoch-per-quantum section, if any (see EpochQuantumGuard).
  // Always safe on the owning thread: quantum sections hold no references between
  // guards. MANDATORY before running Barrier(): two threads barriering with their
  // quanta open would otherwise each wait forever on the other's idle odd epoch —
  // each barrier skips only *self*.
  static void QuiesceQuantum(ThreadRec* rec) {
    if (rec->quantum_open) {
      rec->quantum_open = false;
      rec->quantum_ops = 0;
      Exit(rec);
    }
  }

  // A recorded set of in-flight critical sections — the non-blocking half of the grace
  // protocol. Snapshot() records every section live at call time; Elapsed() polls
  // (never waits) whether all of them have since exited. Memory unlinked before the
  // snapshot may be reclaimed once Elapsed() first returns true: any section that
  // could still reference it was live at snapshot time (it started before the unlink
  // and had not exited) and is therefore recorded. Epoch-per-quantum readers made this
  // split necessary — a quantum parks a thread's epoch odd across whole operation
  // batches, so *waiting* for it (Barrier) costs a scheduler round on a loaded box,
  // while deferring the free until a later poll costs nothing.
  class GraceTicket {
   public:
    GraceTicket() = default;

    // True once every recorded section has exited. Prunes satisfied entries, so
    // repeated polls get cheaper; monotone (true stays true).
    bool Elapsed() {
      std::size_t keep = 0;
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].epoch->load(std::memory_order_acquire) == entries_[i].seen) {
          entries_[keep++] = entries_[i];
        }
      }
      entries_.resize(keep);
      return entries_.empty();
    }

    // Folds `other` in: this ticket then elapses only once both tickets' sections
    // have exited (conservative union — used to coalesce deferred batches so a
    // backlog can stay bounded in count without ever blocking).
    void Merge(GraceTicket&& other) {
      entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
      other.entries_.clear();
    }

   private:
    friend class EpochDomain;
    struct Entry {
      const std::atomic<uint64_t>* epoch;
      uint64_t seen;
    };
    std::vector<Entry> entries_;
  };

  // Records every critical section in progress at call time. `self` (may be null) is
  // skipped — a thread's own section never guards memory it retires itself.
  GraceTicket Snapshot(const ThreadRec* self = nullptr) const;

  // Allocation-free fast path of Snapshot(): true if no critical section other than
  // `self`'s is in flight right now, i.e. grace for anything already unlinked has
  // trivially elapsed. Reclaimers call this before building a ticket so the common
  // quiescent case costs a handful of loads on their hot paths.
  bool QuiescentNow(const ThreadRec* self = nullptr) const;

  // Waits until every critical section that was in progress when the call started has
  // finished. After Barrier() returns, memory unlinked before the call is unreachable
  // from any live traversal and may be reclaimed. `self` (may be null) is skipped.
  // Callers must close their own open quantum first (QuiesceQuantum) — see GraceTicket
  // for the non-blocking alternative that needs no such care.
  void Barrier(const ThreadRec* self = nullptr) const;

  // Number of records currently registered (for tests / introspection).
  std::size_t LiveThreads() const;

 private:
  ThreadRec recs_[kMaxThreads];
  std::atomic<std::size_t> high_water_{0};  // one past the highest slot ever used
};

// RAII helper binding the current thread to a domain record for the lifetime of the
// thread. The first call on a thread claims a slot; the slot is released when the thread
// terminates.
EpochDomain::ThreadRec* CurrentThreadRec(EpochDomain& domain);

// RAII critical-section guard.
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain) : rec_(CurrentThreadRec(domain)) {
    EpochDomain::Enter(rec_);
  }
  ~EpochGuard() { EpochDomain::Exit(rec_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain::ThreadRec* rec_;
};

// Epoch-per-quantum guard — the amortized form of EpochGuard for operations hot enough
// that two RMWs per operation show up (the speculative page-fault path: the list-scoped
// vs list-full single-core faults/sec gap was exactly this cost).
//
// The first guard on a thread opens a critical section ("quantum") that then *stays
// open across guards*: the next kOpsPerQuantum - 1 guards are a plain-integer
// increment, no atomics at all. The guard that completes the quantum closes the
// section (and the one after opens a fresh one), so the epoch provably moves every
// kOpsPerQuantum operations and a concurrent Barrier() waits at most one quantum of
// the slowest active thread. A quantum left open by a thread that stops issuing guards
// is closed when the thread exits (ReleaseRec) or by an explicit
// EpochQuantumQuiesce(); a live thread that goes idle *between* those points delays —
// never breaks — reclamation, the standard quiescent-state-based tradeoff.
//
// Safety is the conservative direction: the barrier may wait for sections that no
// longer reference anything, never the reverse. References obtained under a guard must
// still not outlive that guard (they are only *protected* for the guard's scope; the
// longer-lived section merely keeps the protection cheap).
//
// Constraints: guards of the same domain must not nest on one thread (the inner
// guard's quantum completion would strip protection from the outer); plain EpochGuards
// nest freely inside (the quantum owns one depth unit, so they never toggle the
// epoch).
class EpochQuantumGuard {
 public:
  // Refresh period. Large enough that the two quantum-boundary RMWs vanish into the
  // noise, small enough that an active faulting thread stalls a barrier for microseconds
  // only.
  static constexpr uint32_t kOpsPerQuantum = 64;

  explicit EpochQuantumGuard(EpochDomain& domain) : rec_(CurrentThreadRec(domain)) {
    if (!rec_->quantum_open) {
      EpochDomain::Enter(rec_);
      rec_->quantum_open = true;
    }
  }
  ~EpochQuantumGuard() {
    if (++rec_->quantum_ops >= kOpsPerQuantum) {
      rec_->quantum_ops = 0;
      rec_->quantum_open = false;
      EpochDomain::Exit(rec_);
    }
  }
  EpochQuantumGuard(const EpochQuantumGuard&) = delete;
  EpochQuantumGuard& operator=(const EpochQuantumGuard&) = delete;

 private:
  EpochDomain::ThreadRec* rec_;
};

// Closes the calling thread's open quantum in `domain`, if any. Call when a thread
// leaves a fault-heavy phase but stays alive (e.g. a worker that switches to waiting on
// a queue), so concurrent barriers stop waiting on its idle critical section.
void EpochQuantumQuiesce(EpochDomain& domain);
inline void EpochQuantumQuiesce() { EpochQuantumQuiesce(EpochDomain::Global()); }

}  // namespace srl

#endif  // SRL_EPOCH_EPOCH_DOMAIN_H_
