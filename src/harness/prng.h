// Deterministic pseudo-random number generation for workloads and tests.
//
// splitmix64 seeds xoshiro256**, the standard pairing recommended by the xoshiro
// authors. Implemented from the public-domain reference algorithms so benchmarks are
// reproducible across standard libraries (std::mt19937 is heavier and its distributions
// are not portable bit-for-bit).
#ifndef SRL_HARNESS_PRNG_H_
#define SRL_HARNESS_PRNG_H_

#include <cstdint>

namespace srl {

// One-off mixer; also usable standalone for hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Fast, high-quality 64-bit PRNG (xoshiro256**). Not cryptographic.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    for (auto& word : s_) {
      word = SplitMix64(seed);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Bound must be non-zero. Uses the widening-multiply trick
  // (Lemire) — no modulo bias worth caring about at these bound sizes.
  uint64_t NextBelow(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool NextChance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace srl

#endif  // SRL_HARNESS_PRNG_H_
