// Aligned text / CSV table printer for the figure-reproduction benches, plus the
// machine-readable BENCH_*.json emitter behind the harness --json flag.
#ifndef SRL_HARNESS_TABLE_H_
#define SRL_HARNESS_TABLE_H_

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace srl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  const std::vector<std::string>& Headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& Rows() const { return rows_; }

  void Print(std::ostream& os, bool csv) const {
    if (csv) {
      PrintDelimited(os, ",");
      return;
    }
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintPadded(os, headers_, widths);
    std::size_t total = 0;
    for (std::size_t w : widths) {
      total += w + 2;
    }
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) {
      PrintPadded(os, row, widths);
    }
  }

  static std::string Num(double v, int decimals = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
  }

 private:
  void PrintDelimited(std::ostream& os, const char* sep) const {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c ? sep : "") << headers_[c];
    }
    os << "\n";
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c ? sep : "") << row[c];
      }
      os << "\n";
    }
  }

  static void PrintPadded(std::ostream& os, const std::vector<std::string>& cells,
                          const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Accumulates the tables a bench prints — each tagged with the panel metadata that the
// table's title line carries for humans — and writes them as one JSON document:
//
//   {"bench": "<name>",
//    "tables": [{"meta": {...}, "headers": [...],
//                "rows": [{"<header>": <cell>, ...}, ...]}, ...]}
//
// Cells that parse fully as numbers are emitted as JSON numbers so downstream tooling
// (the perf-trajectory scripts) can consume them without a coercion pass. Benches call
// Write() with the path from --json; an empty path is a no-op, so the call can be
// unconditional.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  // meta: flat key/value pairs describing the panel (variant, read_pct, ...).
  void AddTable(std::vector<std::pair<std::string, std::string>> meta,
                const Table& table) {
    tables_.push_back({std::move(meta), table.Headers(), table.Rows()});
  }

  // Returns false (after printing to stderr) if the file cannot be written.
  bool Write(const std::string& path) const {
    if (path.empty()) {
      return true;
    }
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write JSON to " << path << "\n";
      return false;
    }
    out << "{\"bench\": " << Quoted(bench_name_) << ", \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const Entry& e = tables_[t];
      out << (t ? ",\n  " : "\n  ") << "{\"meta\": {";
      for (std::size_t m = 0; m < e.meta.size(); ++m) {
        out << (m ? ", " : "") << Quoted(e.meta[m].first) << ": "
            << Value(e.meta[m].second);
      }
      out << "}, \"headers\": [";
      for (std::size_t h = 0; h < e.headers.size(); ++h) {
        out << (h ? ", " : "") << Quoted(e.headers[h]);
      }
      out << "], \"rows\": [";
      for (std::size_t r = 0; r < e.rows.size(); ++r) {
        out << (r ? ",\n    " : "\n    ") << "{";
        for (std::size_t c = 0; c < e.rows[r].size() && c < e.headers.size(); ++c) {
          out << (c ? ", " : "") << Quoted(e.headers[c]) << ": " << Value(e.rows[r][c]);
        }
        out << "}";
      }
      out << "]}";
    }
    out << "\n]}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Entry {
    std::vector<std::pair<std::string, std::string>> meta;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  // Emit as a bare JSON number only when the cell matches the JSON number grammar:
  //   -? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE][+-]?[0-9]+)?
  // Everything else (inf/nan, ".5", "+3", hex, ...) is quoted.
  static std::string Value(const std::string& s) {
    return IsJsonNumber(s) ? s : Quoted(s);
  }

  static bool IsJsonNumber(const std::string& s) {
    std::size_t i = 0;
    const std::size_t n = s.size();
    auto digits = [&] {  // consumes [0-9]+, false if none
      const std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      return i > start;
    };
    if (i < n && s[i] == '-') {
      ++i;
    }
    if (i < n && s[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (i < n && s[i] == '.') {
      ++i;
      if (!digits()) {
        return false;
      }
    }
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < n && (s[i] == '+' || s[i] == '-')) {
        ++i;
      }
      if (!digits()) {
        return false;
      }
    }
    return i == n && n > 0;
  }

  std::string bench_name_;
  std::vector<Entry> tables_;
};

}  // namespace srl

#endif  // SRL_HARNESS_TABLE_H_
