// Aligned text / CSV table printer for the figure-reproduction benches.
#ifndef SRL_HARNESS_TABLE_H_
#define SRL_HARNESS_TABLE_H_

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace srl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print(std::ostream& os, bool csv) const {
    if (csv) {
      PrintDelimited(os, ",");
      return;
    }
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintPadded(os, headers_, widths);
    std::size_t total = 0;
    for (std::size_t w : widths) {
      total += w + 2;
    }
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) {
      PrintPadded(os, row, widths);
    }
  }

  static std::string Num(double v, int decimals = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
  }

 private:
  void PrintDelimited(std::ostream& os, const char* sep) const {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c ? sep : "") << headers_[c];
    }
    os << "\n";
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c ? sep : "") << row[c];
      }
      os << "\n";
    }
  }

  static void PrintPadded(std::ostream& os, const std::vector<std::string>& cells,
                          const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace srl

#endif  // SRL_HARNESS_TABLE_H_
