// Minimal command-line flag parsing for the bench binaries.
//
// Flags take the form --name=value or --name value; bare --name is a boolean true.
// Unknown flags are tolerated (benches print their understood flags with --help).
#ifndef SRL_HARNESS_CLI_H_
#define SRL_HARNESS_CLI_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace srl {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      args_.emplace_back(argv[i]);
    }
  }

  bool Has(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == name || a.rfind(name + "=", 0) == 0) {
        return true;
      }
    }
    return false;
  }

  std::string GetString(const std::string& name, const std::string& def) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& a = args_[i];
      if (a.rfind(name + "=", 0) == 0) {
        return a.substr(name.size() + 1);
      }
      if (a == name && i + 1 < args_.size()) {
        return args_[i + 1];
      }
    }
    return def;
  }

  int64_t GetInt(const std::string& name, int64_t def) const {
    const std::string v = GetString(name, "");
    return v.empty() ? def : std::strtoll(v.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    const std::string v = GetString(name, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  bool GetBool(const std::string& name) const { return Has(name); }

  // The harness-wide --json flag: path for the bench's machine-readable output (see
  // BenchJson in table.h). Empty when not requested.
  std::string JsonPath() const { return GetString("--json", ""); }

  // Comma-separated integer list, e.g. --threads=1,2,4,8.
  std::vector<int> GetIntList(const std::string& name, std::vector<int> def) const {
    const std::string v = GetString(name, "");
    if (v.empty()) {
      return def;
    }
    std::vector<int> out;
    for (const std::string& item : SplitCommas(v)) {
      out.push_back(std::atoi(item.c_str()));
    }
    return out;
  }

  // Comma-separated string list, e.g. --variants=stock,list-refined.
  std::vector<std::string> GetStringList(const std::string& name,
                                         std::vector<std::string> def) const {
    const std::string v = GetString(name, "");
    return v.empty() ? def : SplitCommas(v);
  }

 private:
  static std::vector<std::string> SplitCommas(const std::string& v) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < v.size()) {  // a trailing comma yields no empty tail element
      const std::size_t comma = v.find(',', pos);
      if (comma == std::string::npos) {
        out.push_back(v.substr(pos));
        break;
      }
      out.push_back(v.substr(pos, comma - pos));
      pos = comma + 1;
    }
    return out;
  }

  std::vector<std::string> args_;
};

}  // namespace srl

#endif  // SRL_HARNESS_CLI_H_
