// Lock wait-time accounting — the user-space analogue of the kernel's lock_stat
// facility used for Figures 7 and 8.
//
// Like lock_stat, enabling collection introduces a probe effect (two clock reads per
// acquisition); benches only attach a WaitStats sink for the wait-time experiments.
#ifndef SRL_HARNESS_WAIT_STATS_H_
#define SRL_HARNESS_WAIT_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace srl {

class WaitStats {
 public:
  void RecordRead(uint64_t ns) {
    read_count_.fetch_add(1, std::memory_order_relaxed);
    read_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  void RecordWrite(uint64_t ns) {
    write_count_.fetch_add(1, std::memory_order_relaxed);
    write_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  uint64_t ReadCount() const { return read_count_.load(std::memory_order_relaxed); }
  uint64_t WriteCount() const { return write_count_.load(std::memory_order_relaxed); }

  // Mean wait per acquisition, in nanoseconds.
  double MeanReadNs() const { return Mean(read_ns_, read_count_); }
  double MeanWriteNs() const { return Mean(write_ns_, write_count_); }
  double MeanTotalNs() const {
    const uint64_t c = ReadCount() + WriteCount();
    if (c == 0) {
      return 0.0;
    }
    return static_cast<double>(read_ns_.load(std::memory_order_relaxed) +
                               write_ns_.load(std::memory_order_relaxed)) /
           static_cast<double>(c);
  }

  void Reset() {
    read_count_.store(0, std::memory_order_relaxed);
    read_ns_.store(0, std::memory_order_relaxed);
    write_count_.store(0, std::memory_order_relaxed);
    write_ns_.store(0, std::memory_order_relaxed);
  }

  // Monotonic nanosecond timestamp for measuring waits.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now().time_since_epoch())
                                     .count());
  }

 private:
  static double Mean(const std::atomic<uint64_t>& total, const std::atomic<uint64_t>& count) {
    const uint64_t c = count.load(std::memory_order_relaxed);
    if (c == 0) {
      return 0.0;
    }
    return static_cast<double>(total.load(std::memory_order_relaxed)) /
           static_cast<double>(c);
  }

  std::atomic<uint64_t> read_count_{0};
  std::atomic<uint64_t> read_ns_{0};
  std::atomic<uint64_t> write_count_{0};
  std::atomic<uint64_t> write_ns_{0};
};

}  // namespace srl

#endif  // SRL_HARNESS_WAIT_STATS_H_
