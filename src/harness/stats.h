// Summary statistics for repeated measurements.
#ifndef SRL_HARNESS_STATS_H_
#define SRL_HARNESS_STATS_H_

#include <cmath>
#include <vector>

namespace srl {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;

  double RelStddevPct() const { return mean == 0 ? 0 : 100.0 * stddev / mean; }
};

inline Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) {
    return s;
  }
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) {
    var += (x - s.mean) * (x - s.mean);
  }
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

}  // namespace srl

#endif  // SRL_HARNESS_STATS_H_
