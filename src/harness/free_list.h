// Minimal thread-local free list for node types whose lifetimes never escape their
// owner's synchronized sections (e.g., the tree range lock's nodes, which are only
// observed while the auxiliary spin lock serializes access, or while the owner waits on
// them). No grace periods needed — contrast with src/epoch/node_pool.h.
#ifndef SRL_HARNESS_FREE_LIST_H_
#define SRL_HARNESS_FREE_LIST_H_

namespace srl {

// T must provide `T* pool_next`.
template <typename T>
class FreeList {
 public:
  FreeList() = default;
  FreeList(const FreeList&) = delete;
  FreeList& operator=(const FreeList&) = delete;

  ~FreeList() {
    while (head_ != nullptr) {
      T* n = head_;
      head_ = n->pool_next;
      delete n;
    }
  }

  T* Get() {
    if (head_ == nullptr) {
      return new T();
    }
    T* n = head_;
    head_ = n->pool_next;
    return n;
  }

  void Put(T* n) {
    n->pool_next = head_;
    head_ = n;
  }

  static FreeList& Local() {
    thread_local FreeList list;
    return list;
  }

 private:
  T* head_ = nullptr;
};

}  // namespace srl

#endif  // SRL_HARNESS_FREE_LIST_H_
