// Fixed-duration multi-threaded throughput measurement, the methodology of §7.1
// ("throughput is calculated based on the total number of operations performed by all
// the threads running for ten seconds"), with configurable duration and repeats for
// smaller machines.
#ifndef SRL_HARNESS_THROUGHPUT_RUNNER_H_
#define SRL_HARNESS_THROUGHPUT_RUNNER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/harness/stats.h"

namespace srl {

// Runs `worker(tid, stop_flag)` on `threads` threads for `secs` seconds; the worker
// must loop until the flag is set and return its operation count. Returns total
// operations per second. Threads start together behind a barrier so short runs are not
// skewed by spawn time.
template <typename Worker>
double MeasureThroughput(int threads, double secs, Worker&& worker) {
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<uint64_t> ops(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      ops[static_cast<std::size_t>(t)] = worker(t, stop);
    });
  }
  while (ready.load() < threads) {
    std::this_thread::yield();
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) {
    th.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  uint64_t total = 0;
  for (uint64_t o : ops) {
    total += o;
  }
  return static_cast<double>(total) / elapsed;
}

// Repeats the measurement and reports mean and relative standard deviation, as the
// paper does (5 runs; std-dev < 3% of mean for nearly all points).
template <typename Worker>
Summary MeasureThroughputRepeated(int threads, double secs, int repeats, Worker&& worker) {
  std::vector<double> samples;
  samples.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    samples.push_back(MeasureThroughput(threads, secs, worker));
  }
  return Summarize(samples);
}

}  // namespace srl

#endif  // SRL_HARNESS_THROUGHPUT_RUNNER_H_
