// Uniform adapters over every range-lock implementation in the repository.
//
// Tests (typed suites) and benchmarks (template sweeps) drive all lock flavours through
// this single interface:
//
//   struct Adapter {
//     using Handle = ...;
//     static constexpr bool kSharedReaders;   // readers of overlapping ranges coexist
//     static constexpr bool kPrecise;         // disjoint ranges never serialize
//     static constexpr bool kUsesNodePool;    // handles are NodePool<LNode> nodes
//     static const char* Name();
//     Handle AcquireRead(const Range&);
//     Handle AcquireWrite(const Range&);
//     bool TryAcquireRead(const Range&, Handle*);    // non-blocking; false = not held
//     bool TryAcquireWrite(const Range&, Handle*);
//     bool AcquireReadFor(const Range&, std::chrono::nanoseconds, Handle*);
//     bool AcquireWriteFor(const Range&, std::chrono::nanoseconds, Handle*);
//     void Release(Handle);
//   };
//
// Exclusive locks serve reads as writes (kSharedReaders == false), mirroring how the
// paper benchmarks lustre-ex / list-ex in read workloads. The try/timed contract: for a
// kPrecise lock, TryAcquire* of a range conflicting with nothing held succeeds; for any
// lock, TryAcquire* of a range conflicting with a held acquisition fails without
// blocking, and a failed try/timed acquisition holds nothing (no Release needed).
#ifndef SRL_HARNESS_LOCK_ADAPTERS_H_
#define SRL_HARNESS_LOCK_ADAPTERS_H_

#include <chrono>

#include "src/baselines/segment_range_lock.h"
#include "src/baselines/tree_range_lock.h"
#include "src/core/fair_list_range_lock.h"
#include "src/core/list_lockfree_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/core/range.h"
#include "src/core/skiplist_range_lock.h"
#include "src/sync/rw_semaphore.h"

namespace srl {

// list-ex: the paper's exclusive list-based range lock (§4.1).
struct ListExAdapter {
  using Handle = ListRangeLock::Handle;
  static constexpr bool kSharedReaders = false;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-ex"; }

  Handle AcquireRead(const Range& r) { return lock.Lock(r); }
  Handle AcquireWrite(const Range& r) { return lock.Lock(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  ListRangeLock lock;
};

// list-ex with the §4.5 fast path enabled.
struct ListExFastPathAdapter {
  using Handle = ListRangeLock::Handle;
  static constexpr bool kSharedReaders = false;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-ex-fp"; }

  ListExFastPathAdapter() : lock(ListRangeLock::Options{.enable_fast_path = true}) {}

  Handle AcquireRead(const Range& r) { return lock.Lock(r); }
  Handle AcquireWrite(const Range& r) { return lock.Lock(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  ListRangeLock lock;
};

// list-rw: the paper's reader-writer list-based range lock (§4.2).
struct ListRwAdapter {
  using Handle = ListRwRangeLock::Handle;
  static constexpr bool kSharedReaders = true;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-rw"; }

  Handle AcquireRead(const Range& r) { return lock.LockRead(r); }
  Handle AcquireWrite(const Range& r) { return lock.LockWrite(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLockRead(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLockWrite(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockReadFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockWriteFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  ListRwRangeLock lock;
};

// list-rw with the fast path enabled.
struct ListRwFastPathAdapter {
  using Handle = ListRwRangeLock::Handle;
  static constexpr bool kSharedReaders = true;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-rw-fp"; }

  ListRwFastPathAdapter() : lock(ListRwRangeLock::Options{.enable_fast_path = true}) {}

  Handle AcquireRead(const Range& r) { return lock.LockRead(r); }
  Handle AcquireWrite(const Range& r) { return lock.LockWrite(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLockRead(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLockWrite(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockReadFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockWriteFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  ListRwRangeLock lock;
};

// list-lf: the bucketed lock-free exclusive range lock (hash-bucketed heads, mark-bit
// release with no lock taken). The geometry suits the test universes (ranges of a few
// dozen units): window_shift=2 so a typical short range covers 1-4 windows, 16 buckets
// so disjoint test ranges usually land on distinct heads while multi-bucket
// acquisitions (sibling chains, partial-failure release) still get exercised.
struct ListLockFreeAdapter {
  using Handle = ListLockFreeRangeLock::Handle;
  static constexpr bool kSharedReaders = false;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-lf"; }

  ListLockFreeAdapter()
      : lock(ListLockFreeRangeLock::Options{.buckets = 16, .window_shift = 2}) {}

  Handle AcquireRead(const Range& r) { return lock.Lock(r); }
  Handle AcquireWrite(const Range& r) { return lock.Lock(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  ListLockFreeRangeLock lock;
};

// skiplist-indexed: exclusive lock whose live ranges live in a concurrent skiplist —
// O(log n) acquire in the held-range count where the list locks are O(n).
// kUsesNodePool is false because the shared pool-conservation epilogues assert on
// NodePool<LNode> specifically; this lock's NodePool<SkipLockNode> accounting is
// covered by skiplist_range_lock_test.cpp.
struct SkiplistIndexedAdapter {
  using Handle = SkiplistRangeLock::Handle;
  static constexpr bool kSharedReaders = false;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = false;
  static const char* Name() { return "skiplist-indexed"; }

  Handle AcquireRead(const Range& r) { return lock.Lock(r); }
  Handle AcquireWrite(const Range& r) { return lock.Lock(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  SkiplistRangeLock lock;
};

// list-ex behind the §4.3 fairness layer.
struct FairListExAdapter {
  using Handle = FairListRangeLock::Handle;
  static constexpr bool kSharedReaders = false;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-ex-fair"; }

  Handle AcquireRead(const Range& r) { return lock.Lock(r); }
  Handle AcquireWrite(const Range& r) { return lock.Lock(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLock(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  FairListRangeLock lock;
};

// list-rw behind the §4.3 fairness layer.
struct FairListRwAdapter {
  using Handle = FairListRwRangeLock::Handle;
  static constexpr bool kSharedReaders = true;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = true;
  static const char* Name() { return "list-rw-fair"; }

  Handle AcquireRead(const Range& r) { return lock.LockRead(r); }
  Handle AcquireWrite(const Range& r) { return lock.LockWrite(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryLockRead(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) { return lock.TryLockWrite(r, out); }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockReadFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.LockWriteFor(r, t, out);
  }
  void Release(Handle h) { lock.Unlock(h); }

  FairListRwRangeLock lock;
};

// lustre-ex: the user-space port of the kernel's exclusive tree range lock.
struct TreeExAdapter {
  using Handle = TreeRangeLock::Handle;
  static constexpr bool kSharedReaders = false;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = false;
  static const char* Name() { return "lustre-ex"; }

  Handle AcquireRead(const Range& r) { return lock.AcquireWrite(r); }
  Handle AcquireWrite(const Range& r) { return lock.AcquireWrite(r); }
  bool TryAcquireRead(const Range& r, Handle* out) {
    return lock.TryAcquireWrite(r, out);
  }
  bool TryAcquireWrite(const Range& r, Handle* out) {
    return lock.TryAcquireWrite(r, out);
  }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.AcquireWriteFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.AcquireWriteFor(r, t, out);
  }
  void Release(Handle h) { lock.Release(h); }

  TreeRangeLock lock;
};

// kernel-rw: the reader-writer tree range lock (Bueso's patch, ported).
struct TreeRwAdapter {
  using Handle = TreeRangeLock::Handle;
  static constexpr bool kSharedReaders = true;
  static constexpr bool kPrecise = true;
  static constexpr bool kUsesNodePool = false;
  static const char* Name() { return "kernel-rw"; }

  Handle AcquireRead(const Range& r) { return lock.AcquireRead(r); }
  Handle AcquireWrite(const Range& r) { return lock.AcquireWrite(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryAcquireRead(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) {
    return lock.TryAcquireWrite(r, out);
  }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.AcquireReadFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.AcquireWriteFor(r, t, out);
  }
  void Release(Handle h) { lock.Release(h); }

  TreeRangeLock lock;
};

// pnova-rw: segment-per-RW-lock baseline. The default geometry suits the unit tests;
// benches construct their own SegmentRangeLock with workload-matched geometry.
struct SegmentRwAdapter {
  using Handle = SegmentRangeLock::Handle;
  static constexpr bool kSharedReaders = true;
  static constexpr bool kPrecise = false;
  static constexpr bool kUsesNodePool = false;
  static const char* Name() { return "pnova-rw"; }

  SegmentRwAdapter() : lock(/*universe_end=*/1024, /*num_segments=*/64) {}

  Handle AcquireRead(const Range& r) { return lock.AcquireRead(r); }
  Handle AcquireWrite(const Range& r) { return lock.AcquireWrite(r); }
  bool TryAcquireRead(const Range& r, Handle* out) { return lock.TryAcquireRead(r, out); }
  bool TryAcquireWrite(const Range& r, Handle* out) {
    return lock.TryAcquireWrite(r, out);
  }
  bool AcquireReadFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.AcquireReadFor(r, t, out);
  }
  bool AcquireWriteFor(const Range& r, std::chrono::nanoseconds t, Handle* out) {
    return lock.AcquireWriteFor(r, t, out);
  }
  void Release(Handle h) { lock.Release(h); }

  SegmentRangeLock lock;
};

// stock: a plain reader-writer semaphore treated as a degenerate range lock that ignores
// the range (always whole-resource) — the mmap_sem baseline of the kernel experiments.
struct RwSemAdapter {
  struct Handle {
    bool reader = false;
  };
  static constexpr bool kSharedReaders = true;
  static constexpr bool kPrecise = false;
  static constexpr bool kUsesNodePool = false;
  static const char* Name() { return "stock-rwsem"; }

  Handle AcquireRead(const Range&) {
    sem.lock_shared();
    return Handle{true};
  }
  Handle AcquireWrite(const Range&) {
    sem.lock();
    return Handle{false};
  }
  bool TryAcquireRead(const Range&, Handle* out) {
    if (!sem.try_lock_shared()) {
      return false;
    }
    *out = Handle{true};
    return true;
  }
  bool TryAcquireWrite(const Range&, Handle* out) {
    if (!sem.try_lock()) {
      return false;
    }
    *out = Handle{false};
    return true;
  }
  bool AcquireReadFor(const Range&, std::chrono::nanoseconds t, Handle* out) {
    if (!sem.try_lock_shared_for(t)) {
      return false;
    }
    *out = Handle{true};
    return true;
  }
  bool AcquireWriteFor(const Range&, std::chrono::nanoseconds t, Handle* out) {
    if (!sem.try_lock_for(t)) {
      return false;
    }
    *out = Handle{false};
    return true;
  }
  void Release(Handle h) {
    if (h.reader) {
      sem.unlock_shared();
    } else {
      sem.unlock();
    }
  }

  RwSemaphore sem;
};

}  // namespace srl

#endif  // SRL_HARNESS_LOCK_ADAPTERS_H_
