// List node of the list-based range locks (paper Listing 1) and its tagged-pointer
// helpers.
#ifndef SRL_CORE_LNODE_H_
#define SRL_CORE_LNODE_H_

#include <atomic>
#include <cstdint>

#include "src/epoch/node_pool.h"

namespace srl {

// One acquired (or requested) range in a lock's list. A node present and unmarked in the
// list *is* the acquired lock for [start, end).
//
// The least significant bit of `next` is the logical-delete mark: releasing a range sets
// it with a single fetch_add(1) (wait-free), and marked nodes are physically unlinked by
// whichever traversal encounters them (Harris-style helping).
struct LNode {
  uint64_t start = 0;
  uint64_t end = 0;
  std::atomic<uintptr_t> next{0};
  bool reader = false;  // used by the reader-writer variant only

  // Free-list linkage for NodePool. Deliberately distinct from `next`: a retired node's
  // `next` must stay frozen (marked + pointing at its unlink-time successor) because
  // traversals that found the node before it was unlinked may still follow that pointer
  // until their epoch critical section ends.
  LNode* pool_next = nullptr;

  // Handle chaining for the bucketed lock-free lock (ListLockFreeRangeLock): an
  // acquisition covering several buckets owns one node per bucket, linked through this
  // field in ascending bucket order. Written by the acquiring thread before the handle
  // is handed out and read only by the releasing owner (handle transfer between threads
  // synchronizes via the transfer itself), so the field needs no atomicity. Other
  // threads' traversals read only start/end/next and never follow siblings.
  LNode* sibling = nullptr;
};

inline constexpr uintptr_t kMarkBit = 1;

inline bool IsMarked(uintptr_t word) { return (word & kMarkBit) != 0; }
inline uintptr_t Unmark(uintptr_t word) { return word & ~kMarkBit; }
inline uintptr_t MarkedWord(const LNode* node) {
  return reinterpret_cast<uintptr_t>(node) | kMarkBit;
}
inline uintptr_t NodeWord(const LNode* node) { return reinterpret_cast<uintptr_t>(node); }
inline LNode* ToNode(uintptr_t word) { return reinterpret_cast<LNode*>(Unmark(word)); }

}  // namespace srl

#endif  // SRL_CORE_LNODE_H_
