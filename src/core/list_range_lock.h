// Exclusive list-based range lock — the paper's core contribution (§4.1, Listing 1).
//
// Acquired ranges live in a singly-linked list sorted by start address. Inserting a node
// with a single CAS *is* acquiring the range: overlapping requests compete for the same
// insertion point, so at most one can be in the list at a time. Releasing marks the
// node's next pointer (one fetch_add — wait-free); marked nodes are physically unlinked
// by later traversals (Harris-style helping) and retired through the epoch scheme of
// src/epoch/.
//
// Differences from the pseudo-code, all discussed in DESIGN.md:
//   * the wait-for-overlap loop watches the conflicting node for a bounded number of
//     spins and then briefly leaves its epoch critical section and restarts from the
//     head. This matches the behaviour the paper describes for the kernel variant
//     ("threads block for a small period of time ... and recheck the range", §7.2) and
//     keeps epoch barriers from stalling behind application-length critical sections;
//   * the fast path (§4.5) is integrated behind Options::enable_fast_path;
//   * LockBounded() exposes the failure counting that the fairness layer (§4.3) needs.
#ifndef SRL_CORE_LIST_RANGE_LOCK_H_
#define SRL_CORE_LIST_RANGE_LOCK_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/lnode.h"
#include "src/core/range.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"
#include "src/sync/admission.h"
#include "src/sync/deadline.h"
#include "src/sync/pause.h"
#include "src/sync/spin_wait.h"

namespace srl {

class ListRangeLock {
 public:
  struct Options {
    // §4.5: constant-step acquire/release when the list is empty.
    bool enable_fast_path = false;
  };

  // Opaque handle to an acquired range; returned by Lock, consumed by Unlock.
  using Handle = LNode*;

  ListRangeLock() = default;
  explicit ListRangeLock(Options options) : options_(options) {}
  ListRangeLock(const ListRangeLock&) = delete;
  ListRangeLock& operator=(const ListRangeLock&) = delete;

  // All ranges must have been released; residual marked nodes (released but never
  // unlinked because no later traversal passed by) are freed here.
  ~ListRangeLock() {
    uintptr_t word = head_.load(std::memory_order_acquire);
    assert(!IsMarked(word) && "range still held on the fast path at destruction");
    LNode* cur = ToNode(word);
    while (cur != nullptr) {
      const uintptr_t next = cur->next.load(std::memory_order_acquire);
      assert(IsMarked(next) && "range still held at destruction");
      LNode* succ = ToNode(next);
      delete cur;
      cur = succ;
    }
  }

  // Blocks until [range.start, range.end) is held exclusively. The returned handle must
  // be passed to Unlock() by the same logical owner (any thread may release it).
  Handle Lock(const Range& range) {
    Handle h = nullptr;
    AcquireImpl(range, /*max_failures=*/-1, Deadline::Infinite(), &h);
    return h;
  }

  // Non-blocking acquisition (down_write_trylock semantics): fails the moment the range
  // would have to wait for an overlapping holder. Lost insertion CASes are retried —
  // they signal contention on the list structure, not a held conflicting range — so a
  // TryLock of a range that conflicts with nothing held always succeeds.
  bool TryLock(const Range& range, Handle* out) {
    return AcquireImpl(range, /*max_failures=*/-1, Deadline::Immediate(), out);
  }

  // Timed acquisition: blocks like Lock() but gives up (returns false, no range held)
  // once `timeout` has elapsed. The waiter aborts before ever entering the list, so an
  // abandoned acquisition leaves no trace for other threads to clean up.
  bool LockFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireImpl(range, /*max_failures=*/-1, Deadline::After(timeout), out);
  }

  // Bounded-patience variant for the fairness layer: gives up (returns false, no range
  // held) once the acquisition suffered more than `max_failures` lock-induced failures
  // (lost insertion CASes or forced traversal restarts). Waiting for an overlapping
  // holder does not count — that is ordinary blocking, not starvation.
  bool LockBounded(const Range& range, int max_failures, Handle* out) {
    return AcquireImpl(range, max_failures, Deadline::Infinite(), out);
  }

  // Releases an acquired range. Wait-free: one atomic fetch_add (plus a CAS attempt on
  // the fast path).
  void Unlock(Handle node) {
    if (options_.enable_fast_path) {
      uintptr_t expected = MarkedWord(node);
      // Ordering: the relaxed probe is only an optimization — the CAS repeats the
      // comparison with full strength. Its release success order pairs with the acquire
      // side of whichever insertion CAS next observes head == 0, ordering this holder's
      // critical-section writes before the next holder's reads; failure needs no
      // ordering because a failed probe just falls through to the marked-release path.
      if (head_.load(std::memory_order_relaxed) == expected &&
          head_.compare_exchange_strong(expected, 0, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        // Eager removal (§4.5): nobody can still reference the node — converting it to a
        // regular node requires winning a CAS against the release we just performed.
        NodePool<LNode>::Local().Recycle(node);
        return;
      }
    }
    node->next.fetch_add(kMarkBit, std::memory_order_release);
  }

  // RAII guard.
  class Guard {
   public:
    Guard(ListRangeLock& lock, const Range& range) : lock_(lock), h_(lock.Lock(range)) {}
    ~Guard() { lock_.Unlock(h_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ListRangeLock& lock_;
    Handle h_;
  };

  // --- Test-only introspection (callers must guarantee quiescence) ---

  // Number of unmarked (held) nodes currently in the list.
  int DebugHeldCount() const {
    int n = 0;
    uintptr_t word = head_.load(std::memory_order_acquire);
    for (LNode* cur = ToNode(word); cur != nullptr;
         cur = ToNode(cur->next.load(std::memory_order_acquire))) {
      if (!IsMarked(cur->next.load(std::memory_order_acquire))) {
        ++n;
      }
    }
    return n;
  }

  // Checks Invariant 1: consecutive held ranges satisfy r1.end <= r2.start.
  bool DebugInvariantHolds() const {
    uint64_t prev_end = 0;
    bool first = true;
    uintptr_t word = head_.load(std::memory_order_acquire);
    for (LNode* cur = ToNode(word); cur != nullptr;
         cur = ToNode(cur->next.load(std::memory_order_acquire))) {
      if (IsMarked(cur->next.load(std::memory_order_acquire))) {
        continue;  // released, logically absent
      }
      if (!first && cur->start < prev_end) {
        return false;
      }
      prev_end = cur->end;
      first = false;
    }
    return true;
  }

 private:
  // Listing 1's compare(): relationship of `cur` (in-list) to `node` (to insert).
  //  -1: cur entirely precedes node — keep traversing.
  //   0: overlap — must wait for cur's release.
  //  +1: cur entirely succeeds node — insert before cur.
  static int Compare(const LNode* cur, const LNode* node) {
    if (cur->start >= node->end) {
      return 1;
    }
    if (node->start >= cur->end) {
      return -1;
    }
    return 0;
  }

  bool AcquireImpl(const Range& range, int max_failures, const Deadline& deadline,
                   Handle* out) {
    assert(range.Valid() && "range locks require start < end");
    LNode* node = NodePool<LNode>::Local().Alloc();
    node->start = range.start;
    node->end = range.end;
    node->reader = false;
    node->next.store(0, std::memory_order_relaxed);

    if (options_.enable_fast_path) {
      uintptr_t expected = 0;
      // Ordering (audited for the lock-free-list PR): acq_rel on success. The acquire
      // half pairs with the releasing CAS (head -> 0) of the previous fast-path holder,
      // so its critical section happens-before ours; the release half publishes
      // node->{start,end,next} (all written above, `next` relaxed) to the slow-path
      // strip-CAS that may later convert this node into a regular list node — the
      // relaxed stores are sequenced before this CAS, so any thread that observes
      // MarkedWord(node) in head with an acquire load sees them. Failure order relaxed:
      // a failed fast path learns nothing and retries through the list.
      if (head_.load(std::memory_order_relaxed) == 0 &&
          head_.compare_exchange_strong(expected, MarkedWord(node),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        *out = node;
        return true;
      }
    }

    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    // Concurrency restriction for the slow path: once yielding between watch rounds,
    // the spinner caps how many contenders actively re-traverse at ~#cores and parks
    // the surplus (outside the epoch critical section — Pause runs between
    // Exit/Enter, so a parked thread never pins reclamation). Timed and immediate
    // deadlines make it inert. The slot, if held, releases when this frame returns.
    AdmissionSpinner gate_spinner(&gate_, deadline);
    EpochDomain::Enter(rec);
    const bool ok = InsertNode(node, rec, max_failures, deadline, gate_spinner);
    EpochDomain::Exit(rec);
    if (ok) {
      *out = node;
      return true;
    }
    NodePool<LNode>::Local().Recycle(node);  // never entered the list
    return false;
  }

  // Outcome of one watch of a conflicting node.
  enum class WaitResult {
    kReleased,  // the conflicting node became marked; proceed
    kRestart,   // cycled the epoch critical section; re-traverse from the head
    kTimedOut,  // the deadline expired (or was immediate) with the conflict still held
  };

  // Core of Listing 1. Returns false only if `max_failures` >= 0 was exhausted or the
  // deadline expired while a conflicting range was held (the node is then guaranteed not
  // to be in the list — exclusive waiters abort *before* insertion, so an abandoned
  // acquisition leaves nothing behind).
  bool InsertNode(LNode* node, EpochDomain::ThreadRec* rec, int max_failures,
                  const Deadline& deadline, AdmissionSpinner& gate_spinner) {
    int failures = 0;
    for (;;) {
      std::atomic<uintptr_t>* prev = &head_;
      uintptr_t cur_word = prev->load(std::memory_order_acquire);
      bool at_head = true;
      for (;;) {
        if (IsMarked(cur_word)) {
          if (!at_head) {
            // prev's owner was logically deleted under us: the pointer into the list is
            // lost, restart from the head (Listing 1 line 32).
            if (max_failures >= 0 && ++failures > max_failures) {
              return false;
            }
            break;
          }
          // Marked head == a fast-path holder. Strip the mark to convert its node into a
          // regular list node (§4.5), then continue with the unmarked value.
          if (head_.compare_exchange_weak(cur_word, Unmark(cur_word),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            cur_word = Unmark(cur_word);
          }
          continue;
        }
        LNode* cur = ToNode(cur_word);
        if (cur != nullptr) {
          const uintptr_t cur_next = cur->next.load(std::memory_order_acquire);
          if (IsMarked(cur_next)) {
            // cur was released: help unlink it (Listing 1 lines 34–37).
            const uintptr_t succ = Unmark(cur_next);
            if (prev->compare_exchange_strong(cur_word, succ, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
              NodePool<LNode>::Local().Retire(cur);
              cur_word = succ;
            }
            continue;  // on CAS failure cur_word holds the fresh *prev
          }
          const int rel = Compare(cur, node);
          if (rel < 0) {
            prev = &cur->next;
            cur_word = cur_next;
            at_head = false;
            continue;
          }
          if (rel == 0) {
            const WaitResult w = WaitForRelease(cur, rec, deadline, gate_spinner);
            if (w == WaitResult::kTimedOut) {
              return false;
            }
            if (w == WaitResult::kRestart) {
              break;  // left the epoch CS while waiting; restart from head
            }
            continue;  // cur is now marked; the unlink branch above collects it
          }
          // rel > 0: insert before cur.
        }
        // Publication pairing (audited for the lock-free-list PR; no hole found): the
        // relaxed store of node->next is safe because no other thread can reach `node`
        // until the CAS below publishes it, and the CAS's release half (seq_cst ⊇
        // release) orders the store — plus node->{start,end,reader} — before any
        // acquire load that observes NodeWord(node) in *prev. Conflict detection in
        // this exclusive lock needs no SeqCstFence pairing, unlike the RW variant's
        // insert-then-validate: overlapping acquirers compete for the SAME insertion
        // point, so exclusion is decided by CAS success/failure on one location, not by
        // two threads each having to observe the other's independent store (the
        // store-buffering shape that forces seq_cst in list_rw_range_lock.h). seq_cst
        // on success is kept anyway: it makes every insertion also participate in the
        // RW lock's fence protocol for free if a node migrates between analyses, and
        // costs nothing extra on x86/ARM LL-SC versus acq_rel here.
        node->next.store(cur_word, std::memory_order_relaxed);
        if (prev->compare_exchange_strong(cur_word, NodeWord(node),
                                          std::memory_order_seq_cst,
                                          std::memory_order_acquire)) {
          return true;
        }
        if (max_failures >= 0 && ++failures > max_failures) {
          return false;
        }
        // Lost the race for this insertion point; cur_word holds the fresh *prev.
      }
    }
  }

  // Watches `cur` until its owner releases it or the deadline expires. Once the
  // bounded watch is exhausted, briefly exits the epoch critical section (so
  // reclamation barriers are never blocked behind an application critical section) and
  // reports kRestart, telling the caller to re-traverse. An immediate deadline never
  // watches at all: the trylock contract is to fail as soon as a wait would begin.
  //
  // Audit (wait-loop unification): the watch runs on SpinWait instead of a hand-rolled
  // kWatchSpins CpuRelax loop. SpinWait's switch to yielding is the signal to stop
  // watching — the yield itself must happen OUTSIDE the epoch critical section, so it
  // is delegated to gate_spinner.Pause(), which also rotates the admission slot
  // (capping how many watchers burn scheduler quanta under oversubscription).
  WaitResult WaitForRelease(const LNode* cur, EpochDomain::ThreadRec* rec,
                            const Deadline& deadline, AdmissionSpinner& gate_spinner) {
    if (deadline.IsImmediate()) {
      return IsMarked(cur->next.load(std::memory_order_acquire)) ? WaitResult::kReleased
                                                                 : WaitResult::kTimedOut;
    }
    SpinWait spin;
    for (int i = 0; !spin.Yielding(); ++i) {
      if (IsMarked(cur->next.load(std::memory_order_acquire))) {
        return WaitResult::kReleased;
      }
      if ((i + 1) % Deadline::kSpinsPerClockCheck == 0 && deadline.Expired()) {
        return WaitResult::kTimedOut;
      }
      spin.Spin();
    }
    EpochDomain::Exit(rec);
    // Outside the critical section, cede the CPU (rotating the admission slot): on an
    // oversubscribed host the holder may be preempted — or parked at the gate — and
    // re-traversing in a tight loop would just burn our quantum.
    gate_spinner.Pause();
    EpochDomain::Enter(rec);
    return deadline.Expired() ? WaitResult::kTimedOut : WaitResult::kRestart;
  }

  std::atomic<uintptr_t> head_{0};
  Options options_;
  // Caps active contenders on the slow path (see AcquireImpl).
  AdmissionGate gate_;
};

}  // namespace srl

#endif  // SRL_CORE_LIST_RANGE_LOCK_H_
