// Anti-starvation layer for the list-based range locks (paper §4.3).
//
// The raw list algorithms are deadlock-free but not starvation-free: a thread can lose
// its insertion CAS (or have its traversal restarted) indefinitely often while other
// threads churn the list. The remedy is an auxiliary *fair* reader-writer lock plus an
// "impatient" counter:
//
//   * common case (counter == 0): acquire the range directly, with bounded patience;
//   * a thread that exhausts its patience bumps the counter and takes the auxiliary lock
//     for WRITE, which holds off all newly arriving acquisitions (they see the non-zero
//     counter and queue on the auxiliary lock for READ) while in-flight ones drain;
//   * the counter is decremented when the impatient thread releases the auxiliary lock.
//
// The race between a thread reading zero and another thread incrementing the counter is
// benign (the paper makes the same observation): the counter only adds fairness, the
// underlying range lock alone enforces exclusion.
#ifndef SRL_CORE_FAIR_LIST_RANGE_LOCK_H_
#define SRL_CORE_FAIR_LIST_RANGE_LOCK_H_

#include <atomic>
#include <chrono>

#include "src/core/list_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/core/range.h"
#include "src/sync/fair_rw_lock.h"

namespace srl {

// Fairness wrapper over the exclusive list-based range lock.
class FairListRangeLock {
 public:
  struct Options {
    ListRangeLock::Options inner;
    // Lock-induced failures (lost CASes / restarts) tolerated before going impatient.
    int patience = 16;
  };

  using Handle = ListRangeLock::Handle;

  FairListRangeLock() : FairListRangeLock(Options{}) {}
  explicit FairListRangeLock(Options options)
      : inner_(options.inner), patience_(options.patience) {}

  Handle Lock(const Range& range) {
    Handle h = nullptr;
    if (impatient_.load(std::memory_order_acquire) == 0) {
      if (inner_.LockBounded(range, patience_, &h)) {
        return h;
      }
      // Patience exhausted — escalate below.
    } else {
      // Impatient thread(s) ahead of us: wait our turn, then acquire normally. Readers
      // of the auxiliary lock proceed in parallel with each other.
      aux_.lock_shared();
      h = inner_.Lock(range);
      aux_.unlock_shared();
      return h;
    }
    impatient_.fetch_add(1, std::memory_order_acq_rel);
    aux_.lock();
    h = inner_.Lock(range);
    aux_.unlock();
    impatient_.fetch_sub(1, std::memory_order_acq_rel);
    return h;
  }

  // Non-blocking / timed acquisitions go straight to the inner lock, bypassing the
  // fairness machinery: a try acquisition never waits, so it cannot starve, and making
  // it queue behind impatient threads would turn "fail fast" into "block". This mirrors
  // the kernel, where down_read_trylock ignores the waiter queue.
  bool TryLock(const Range& range, Handle* out) { return inner_.TryLock(range, out); }
  bool LockFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return inner_.LockFor(range, timeout, out);
  }

  void Unlock(Handle h) { inner_.Unlock(h); }

 private:
  ListRangeLock inner_;
  FairRwLock aux_;
  std::atomic<uint32_t> impatient_{0};
  int patience_;
};

// Fairness wrapper over the reader-writer list-based range lock. Writer validation
// failures count against patience, so a writer forever restarted by a reader stream
// eventually escalates — the starvation scenario §4.2 calls out.
class FairListRwRangeLock {
 public:
  struct Options {
    ListRwRangeLock::Options inner;
    int patience = 16;
  };

  using Handle = ListRwRangeLock::Handle;

  FairListRwRangeLock() : FairListRwRangeLock(Options{}) {}
  explicit FairListRwRangeLock(Options options)
      : inner_(options.inner), patience_(options.patience) {}

  Handle LockRead(const Range& range) { return LockImpl(range, /*reader=*/true); }
  Handle LockWrite(const Range& range) { return LockImpl(range, /*reader=*/false); }

  // See FairListRangeLock: try/timed acquisitions bypass the fairness layer.
  bool TryLockRead(const Range& range, Handle* out) {
    return inner_.TryLockRead(range, out);
  }
  bool TryLockWrite(const Range& range, Handle* out) {
    return inner_.TryLockWrite(range, out);
  }
  bool LockReadFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return inner_.LockReadFor(range, timeout, out);
  }
  bool LockWriteFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return inner_.LockWriteFor(range, timeout, out);
  }

  void Unlock(Handle h) { inner_.Unlock(h); }

 private:
  Handle LockImpl(const Range& range, bool reader) {
    Handle h = nullptr;
    if (impatient_.load(std::memory_order_acquire) == 0) {
      const bool ok = reader ? inner_.LockReadBounded(range, patience_, &h)
                             : inner_.LockWriteBounded(range, patience_, &h);
      if (ok) {
        return h;
      }
    } else {
      aux_.lock_shared();
      h = reader ? inner_.LockRead(range) : inner_.LockWrite(range);
      aux_.unlock_shared();
      return h;
    }
    impatient_.fetch_add(1, std::memory_order_acq_rel);
    aux_.lock();
    h = reader ? inner_.LockRead(range) : inner_.LockWrite(range);
    aux_.unlock();
    impatient_.fetch_sub(1, std::memory_order_acq_rel);
    return h;
  }

  ListRwRangeLock inner_;
  FairRwLock aux_;
  std::atomic<uint32_t> impatient_{0};
  int patience_;
};

}  // namespace srl

#endif  // SRL_CORE_FAIR_LIST_RANGE_LOCK_H_
