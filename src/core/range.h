// Address ranges as locked by range locks.
#ifndef SRL_CORE_RANGE_H_
#define SRL_CORE_RANGE_H_

#include <cassert>
#include <cstdint>
#include <ostream>

namespace srl {

// A half-open interval [start, end). `end` is exclusive, so adjacent ranges such as
// [0,10) and [10,20) do not overlap and can be held concurrently.
//
// The "full range" of the paper's API ([0 .. 2^64-1]) is Range::Full(): it spans every
// address the VM experiments can produce; the single unreachable top address keeps `end`
// representable without widening the type.
struct Range {
  uint64_t start = 0;
  uint64_t end = 0;

  static constexpr Range Full() { return Range{0, UINT64_MAX}; }

  constexpr bool Valid() const { return start < end; }
  constexpr uint64_t Length() const { return end - start; }

  constexpr bool Overlaps(const Range& other) const {
    return start < other.end && other.start < end;
  }

  constexpr bool Contains(uint64_t addr) const { return addr >= start && addr < end; }
  constexpr bool Contains(const Range& other) const {
    return start <= other.start && other.end <= end;
  }

  friend constexpr bool operator==(const Range& a, const Range& b) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Range& r) {
  return os << "[" << r.start << "," << r.end << ")";
}

}  // namespace srl

#endif  // SRL_CORE_RANGE_H_
