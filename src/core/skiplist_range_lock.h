// Skiplist-indexed exclusive range lock: O(log n) acquire at thousands of live ranges.
//
// Every list-based variant in this repository pays O(n) per acquisition in the number
// of held ranges sharing a list (bucketing divides n by a constant, nothing more).
// That is invisible in the paper's VM workloads — an address space rarely holds more
// than a few ranges at once — but fatal for the "and beyond" use case of range locks
// as a storage-engine primitive, where a file store keeps thousands of record and scan
// ranges live simultaneously (bench/macro_file_store.cpp is that workload, and
// bench/abl_listlen.cpp measures the curve directly).
//
// The index here adapts src/skiplist/optimistic_skiplist.h's structure to the lock's
// own protocol. The optimistic skiplist synchronizes updates with per-node locks,
// which a lock cannot use for its own index without recursing; instead, level 0 is
// run exactly as the paper's Listing 1 list (see list_lockfree_range_lock.h):
//
//   * Level 0 is a Harris-style sorted-by-start list of live ranges. The single CAS
//     that links a node into level 0 IS the acquisition — no separate lock state.
//   * Releasing sets the mark bit on each of the node's next words with one fetch_add
//     per level (wait-free, no traversal, no CAS loop, no epoch fence). The level-0
//     mark is the release point conflict waiters watch; upper levels are marked first
//     so the index never advertises a node below after it is navigable above.
//   * Marked nodes are physically snipped, level by level, by whichever later
//     traversal passes them (helping). A per-node countdown of still-linked levels
//     (`links_remaining`) makes the last snip — and only the last — retire the node
//     through NodePool/EpochDomain, so reclamation needs no coordination beyond the
//     snip CASes themselves.
//   * Levels 1..top are a pure index: the owner links them (bottom-up, re-finding on
//     CAS failure, Herlihy–Shavit style) after the level-0 CAS succeeds. They carry no
//     lock semantics, so a node navigable at level 3 but not yet at level 5 is merely
//     a slightly worse index, never a correctness issue.
//
// Overlap detection needs only the find's immediate neighbours: live ranges are
// disjoint and sorted by start, so a candidate [s, e) can conflict only with the
// last node whose start < s (if its end > s) and the first node whose start >= s
// (if its start < e). Every earlier node ends at or before the predecessor's start by
// the disjointness invariant, and every later node starts at or after the successor's
// start. Two in-flight overlapping acquisitions are arbitrated by the level-0 CAS
// itself: they either target the same insertion point (one CAS fails and re-finds,
// sees the winner, waits on its mark bit) or are separated by a node that conflicts
// with one of them.
//
// Fairness caveat: like the other list locks — and unlike the fair layer — waiters
// race to re-insert when a conflicting range releases, so a stream of short ranges
// can starve a wide one. The skiplist makes this marginally worse than list-ex: a
// wide waiter re-descends the whole index per retry. Workloads needing fairness
// should wrap a fair lock; this one buys scalability in live-range count.
#ifndef SRL_CORE_SKIPLIST_RANGE_LOCK_H_
#define SRL_CORE_SKIPLIST_RANGE_LOCK_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/lnode.h"  // kMarkBit / IsMarked / Unmark word helpers
#include "src/core/range.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"
#include "src/harness/prng.h"
#include "src/sync/admission.h"
#include "src/sync/deadline.h"
#include "src/sync/pause.h"
#include "src/sync/spin_wait.h"

namespace srl {

// Fixed height so nodes are a single pool-recyclable type: NodePool hands out
// default-constructed nodes, so the next-word array cannot be tail-allocated per
// height the way RangeLockSkipList::Node does it. 16 levels index ~2^16 live ranges
// at the canonical p=1/2 — far beyond any workload here — for 128 bytes of next
// words per node.
inline constexpr int kSkipLockMaxLevel = 16;

// One live (or released-but-unsnipped) range in the skiplist index. The LSB of each
// next word is the per-level logical-delete mark (kMarkBit, as in LNode).
struct SkipLockNode {
  uint64_t start = 0;
  uint64_t end = 0;
  int32_t top_level = 0;
  // Levels this node is still physically linked at. Initialized to top_level + 1
  // before the level-0 publication CAS; each successful snip decrements it, and the
  // snipper that reaches zero owns the retire. A marked level is never re-linked
  // (insertion CASes require an unmarked expected word; finds snip marked nodes
  // instead of traversing them), so each level is unlinked exactly once.
  std::atomic<int32_t> links_remaining{0};
  std::atomic<uintptr_t> next[kSkipLockMaxLevel];

  // Free-list linkage for NodePool; dead while the node is in the index. Distinct
  // from the next words, which must stay frozen (marked, pointing at the unlink-time
  // successor) until every traversal that could have seen the node has left its epoch
  // critical section.
  SkipLockNode* pool_next = nullptr;
};

class SkiplistRangeLock {
 public:
  static constexpr int kMaxLevel = kSkipLockMaxLevel;

  // The acquisition's own node. Opaque to callers; consumed by Unlock (any thread).
  using Handle = SkipLockNode*;

  SkiplistRangeLock() = default;
  SkiplistRangeLock(const SkiplistRangeLock&) = delete;
  SkiplistRangeLock& operator=(const SkiplistRangeLock&) = delete;

  // All ranges must have been released. Residue (released nodes no later traversal
  // snipped) is swept level by level: each node is visited once per still-linked
  // level, its links_remaining countdown reaches zero exactly once, and it is freed
  // there — partially-snipped nodes included, whichever levels they still occupy.
  ~SkiplistRangeLock() {
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      SkipLockNode* cur = ToSkipNode(head_.next[l].load(std::memory_order_relaxed));
      while (cur != nullptr) {
        const uintptr_t next = cur->next[l].load(std::memory_order_relaxed);
        assert(IsMarked(next) && "range still held at destruction");
        SkipLockNode* succ = ToSkipNode(next);
        if (cur->links_remaining.fetch_sub(1, std::memory_order_relaxed) == 1) {
          delete cur;
        }
        cur = succ;
      }
    }
  }

  // Blocks until [range.start, range.end) is held exclusively. The returned handle
  // must be passed to Unlock() by the same logical owner (any thread may release it).
  Handle Lock(const Range& range) {
    Handle h = nullptr;
    AcquireImpl(range, Deadline::Infinite(), &h);
    return h;
  }

  // Non-blocking: fails the moment the range would have to wait for an overlapping
  // holder. Lost insertion CASes are retried — they signal contention on the list
  // structure, not a held conflicting range — so a TryLock of a range conflicting
  // with nothing held always succeeds.
  bool TryLock(const Range& range, Handle* out) {
    return AcquireImpl(range, Deadline::Immediate(), out);
  }

  // Timed: blocks like Lock() but gives up (returns false, nothing held) once
  // `timeout` elapses. The node never entered the index on failure, so it recycles
  // with no grace period.
  bool LockFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireImpl(range, Deadline::After(timeout), out);
  }

  // Releases an acquired range: one fetch_add per level of this node (expected 2 at
  // p=1/2), no traversal, no loop, no epoch fence. Upper levels are marked before
  // level 0 — the release point waiters watch — so by the time a waiter can acquire
  // an overlapping range, every index level already advertises the node as dead.
  void Unlock(Handle handle) {
    assert(handle != nullptr);
    for (int l = handle->top_level; l >= 0; --l) {
      handle->next[l].fetch_add(kMarkBit, std::memory_order_release);
    }
  }

  // RAII guard.
  class Guard {
   public:
    Guard(SkiplistRangeLock& lock, const Range& range)
        : lock_(lock), h_(lock.Lock(range)) {}
    ~Guard() { lock_.Unlock(h_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    SkiplistRangeLock& lock_;
    Handle h_;
  };

  // --- Test-only introspection ---

  // Number of held (unmarked-at-level-0) ranges. The epoch guard keeps concurrently
  // snipped nodes unreclaimed for the duration of the walk, so counting while other
  // threads churn is safe; the value is of course only exact under quiescence.
  std::size_t DebugHeldCount() const {
    EpochGuard guard(EpochDomain::Global());
    std::size_t n = 0;
    for (const SkipLockNode* cur =
             ToSkipNode(head_.next[0].load(std::memory_order_acquire));
         cur != nullptr;
         cur = ToSkipNode(cur->next[0].load(std::memory_order_acquire))) {
      if (!IsMarked(cur->next[0].load(std::memory_order_acquire))) {
        ++n;
      }
    }
    return n;
  }

  // Checks, under the same epoch protection, that (a) held ranges are disjoint and
  // sorted by start along level 0, and (b) every level's chain is sorted by start
  // (the index invariant navigation relies on).
  bool DebugInvariantHolds() const {
    EpochGuard guard(EpochDomain::Global());
    uint64_t prev_end = 0;
    bool first = true;
    for (const SkipLockNode* cur =
             ToSkipNode(head_.next[0].load(std::memory_order_acquire));
         cur != nullptr;
         cur = ToSkipNode(cur->next[0].load(std::memory_order_acquire))) {
      if (IsMarked(cur->next[0].load(std::memory_order_acquire))) {
        continue;  // released, logically absent
      }
      if (!first && cur->start < prev_end) {
        return false;
      }
      prev_end = cur->end;
      first = false;
    }
    for (int l = kMaxLevel - 1; l >= 1; --l) {
      uint64_t prev_start = 0;
      bool lvl_first = true;
      for (const SkipLockNode* cur =
               ToSkipNode(head_.next[l].load(std::memory_order_acquire));
           cur != nullptr;
           cur = ToSkipNode(cur->next[l].load(std::memory_order_acquire))) {
        if (!lvl_first && cur->start < prev_start) {
          return false;
        }
        prev_start = cur->start;
        lvl_first = false;
      }
    }
    return true;
  }

  static const char* Name() { return "skiplist-indexed"; }

 private:
  static SkipLockNode* ToSkipNode(uintptr_t word) {
    return reinterpret_cast<SkipLockNode*>(Unmark(word));
  }
  static uintptr_t NodeWord(const SkipLockNode* node) {
    return reinterpret_cast<uintptr_t>(node);
  }

  enum class WaitResult { kReleased, kRestart, kTimedOut };

  // Positions preds[l]/succ_words[l] around `key` at every level: preds[l] is the
  // last node at level l with start < key (head_ if none), succ_words[l] the unmarked
  // word it pointed at when observed (0 at tail). Marked nodes encountered on the way
  // are snipped (helping); a marked pred word means the pointer chain under our feet
  // was released, so the walk restarts from the head. Must run inside an epoch
  // critical section.
  void Find(uint64_t key, SkipLockNode** preds, uintptr_t* succ_words) {
  retry:
    SkipLockNode* pred = &head_;
    for (int l = kMaxLevel - 1; l >= 0; --l) {
      uintptr_t cur_word = pred->next[l].load(std::memory_order_acquire);
      for (;;) {
        if (IsMarked(cur_word)) {
          // pred was released at this level while we stood on it; the snapshot of
          // the levels above is stale too — restart (head_ is never marked).
          goto retry;
        }
        SkipLockNode* cur = ToSkipNode(cur_word);
        if (cur != nullptr) {
          const uintptr_t cur_next = cur->next[l].load(std::memory_order_acquire);
          if (IsMarked(cur_next)) {
            // cur was released: snip it at this level. acq_rel as in the list locks'
            // unlink CAS — acquire pairs with the releasing fetch_add, release keeps
            // the snip ordered before any later insertion observes the new word.
            if (pred->next[l].compare_exchange_strong(cur_word, Unmark(cur_next),
                                                      std::memory_order_acq_rel,
                                                      std::memory_order_acquire)) {
              FinishUnlink(cur);
              cur_word = Unmark(cur_next);
            }
            continue;  // on CAS failure cur_word holds the fresh *pred->next[l]
          }
          if (cur->start < key) {
            pred = cur;
            cur_word = cur_next;
            continue;
          }
        }
        preds[l] = pred;
        succ_words[l] = cur_word;
        break;
      }
    }
  }

  // Called by whichever snip CAS unlinked `node` from one level. The countdown makes
  // the last level's snipper retire the node; every level is snipped exactly once
  // (marked words are never re-linked), so the node is retired exactly once.
  static void FinishUnlink(SkipLockNode* node) {
    if (node->links_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      NodePool<SkipLockNode>::Local().Retire(node);
    }
  }

  // Watches `cur`'s level-0 mark until its owner releases it or the deadline
  // expires; identical contract to list_lockfree_range_lock.h's WaitForRelease.
  // Audit (wait-loop unification): bounded watch on SpinWait (the hand-rolled
  // kWatchSpins loop is gone); the inter-round yield runs outside the epoch critical
  // section via gate_spinner.Pause(), which also rotates the admission slot.
  WaitResult WaitForRelease(const SkipLockNode* cur, EpochDomain::ThreadRec* rec,
                            const Deadline& deadline, AdmissionSpinner& gate_spinner) {
    if (deadline.IsImmediate()) {
      return IsMarked(cur->next[0].load(std::memory_order_acquire))
                 ? WaitResult::kReleased
                 : WaitResult::kTimedOut;
    }
    SpinWait spin;
    for (int i = 0; !spin.Yielding(); ++i) {
      if (IsMarked(cur->next[0].load(std::memory_order_acquire))) {
        return WaitResult::kReleased;
      }
      if ((i + 1) % Deadline::kSpinsPerClockCheck == 0 && deadline.Expired()) {
        return WaitResult::kTimedOut;
      }
      spin.Spin();
    }
    EpochDomain::Exit(rec);
    gate_spinner.Pause();
    EpochDomain::Enter(rec);
    return deadline.Expired() ? WaitResult::kTimedOut : WaitResult::kRestart;
  }

  bool AcquireImpl(const Range& range, const Deadline& deadline, Handle* out) {
    assert(range.Valid() && "range locks require start < end");
    SkipLockNode* node = NodePool<SkipLockNode>::Local().Alloc();
    const int top = RandomLevel();
    node->start = range.start;
    node->end = range.end;
    node->top_level = top;
    node->links_remaining.store(top + 1, std::memory_order_relaxed);
    SkipLockNode* preds[kMaxLevel];
    uintptr_t succs[kMaxLevel];
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    // Concurrency restriction for the conflict-wait loop: once yielding between watch
    // rounds the spinner caps active re-finders at ~#cores and parks the surplus,
    // always outside the epoch critical section. Timed/immediate deadlines: inert.
    AdmissionSpinner gate_spinner(&gate_, deadline);
    EpochDomain::Enter(rec);
    for (;;) {
      Find(range.start, preds, succs);
      // Overlap scan from the skiplist predecessor: disjointness + sort order mean
      // only the immediate neighbours can conflict (see the header comment).
      SkipLockNode* conflict = nullptr;
      if (preds[0] != &head_ && preds[0]->end > range.start) {
        conflict = preds[0];
      } else if (SkipLockNode* succ = ToSkipNode(succs[0]);
                 succ != nullptr && succ->start < range.end) {
        conflict = succ;
      }
      if (conflict != nullptr) {
        const WaitResult w = WaitForRelease(conflict, rec, deadline, gate_spinner);
        if (w == WaitResult::kTimedOut) {
          EpochDomain::Exit(rec);
          NodePool<SkipLockNode>::Local().Recycle(node);  // never entered the index
          return false;
        }
        continue;  // released (its mark makes our re-find snip it) or restart
      }
      // No conflict at the insertion point: the level-0 CAS is the acquisition.
      // seq_cst success as in the list locks' insertion CAS (the publication point
      // the memory-ordering audit pins); the relaxed store of node->next[0] is
      // ordered before any observer by the CAS's release half. A release of preds[0]
      // racing us lands its mark on this same word and fails the CAS — exactly
      // Listing 1's arbitration.
      node->next[0].store(succs[0], std::memory_order_relaxed);
      uintptr_t expected = succs[0];
      if (preds[0]->next[0].compare_exchange_strong(expected, NodeWord(node),
                                                    std::memory_order_seq_cst,
                                                    std::memory_order_acquire)) {
        break;
      }
      // Lost the race for the insertion point; re-find and re-check conflicts.
    }
    LinkUpperLevels(node, range.start, preds, succs);
    EpochDomain::Exit(rec);
    *out = node;
    return true;
  }

  // Links levels 1..top of a node already acquired at level 0, bottom-up, re-finding
  // on CAS failure (Herlihy–Shavit's retry loop). The node cannot be marked while we
  // link — only the owner releases — so the only failures are concurrent structural
  // changes around the insertion point. Runs inside the acquire's epoch section;
  // Lock() returns only with the index fully built, keeping acquire cost and index
  // quality deterministic.
  void LinkUpperLevels(SkipLockNode* node, uint64_t key, SkipLockNode** preds,
                       uintptr_t* succs) {
    for (int l = 1; l <= node->top_level; ++l) {
      for (;;) {
        node->next[l].store(succs[l], std::memory_order_relaxed);
        uintptr_t expected = succs[l];
        if (preds[l]->next[l].compare_exchange_strong(expected, NodeWord(node),
                                                      std::memory_order_acq_rel,
                                                      std::memory_order_relaxed)) {
          break;
        }
        Find(key, preds, succs);  // structure moved: refresh every level's snapshot
      }
    }
  }

  int RandomLevel() {
    thread_local Xoshiro256 rng(0x5eedc0de ^ reinterpret_cast<uintptr_t>(&rng));
    int level = 0;
    while (level < kMaxLevel - 1 && (rng.Next() & 1) != 0) {
      ++level;
    }
    return level;
  }

  // Head sentinel: never marked, never retired, start/end unused.
  SkipLockNode head_;
  // Caps active contenders on the conflict-wait path (see AcquireImpl).
  AdmissionGate gate_;
};

}  // namespace srl

#endif  // SRL_CORE_SKIPLIST_RANGE_LOCK_H_
