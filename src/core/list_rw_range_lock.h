// Reader-writer list-based range lock (paper §4.2, Listings 2 and 3).
//
// Extends the exclusive algorithm: readers with overlapping ranges coexist (ordered by
// start address); any overlap involving a writer conflicts. Because an overlapping reader
// and writer may insert at *different* list positions (Figure 1), insertion alone cannot
// detect every conflict, so each insertion is followed by a validation pass:
//
//   * a reader scans forward from its own node until ranges no longer overlap; if it
//     meets a conflicting writer it waits for that writer to release;
//   * a writer re-scans from the head to its own node; if it meets any conflicting node
//     it deletes itself and the whole acquisition restarts with a fresh node.
//
// The insert-then-scan handshake on both sides is a store-buffering pattern; a seq_cst
// fence after the insertion CAS on each side makes it impossible for both parties to
// miss each other (free on x86, where the CAS is already a full fence).
#ifndef SRL_CORE_LIST_RW_RANGE_LOCK_H_
#define SRL_CORE_LIST_RW_RANGE_LOCK_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/core/lnode.h"
#include "src/core/range.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"
#include "src/sync/admission.h"
#include "src/sync/deadline.h"
#include "src/sync/fence.h"
#include "src/sync/pause.h"
#include "src/sync/spin_wait.h"

namespace srl {

class ListRwRangeLock {
 public:
  struct Options {
    bool enable_fast_path = false;  // §4.5
  };

  using Handle = LNode*;

  ListRwRangeLock() = default;
  explicit ListRwRangeLock(Options options) : options_(options) {}
  ListRwRangeLock(const ListRwRangeLock&) = delete;
  ListRwRangeLock& operator=(const ListRwRangeLock&) = delete;

  ~ListRwRangeLock() {
    uintptr_t word = head_.load(std::memory_order_acquire);
    assert(!IsMarked(word) && "range still held on the fast path at destruction");
    LNode* cur = ToNode(word);
    while (cur != nullptr) {
      const uintptr_t next = cur->next.load(std::memory_order_acquire);
      assert(IsMarked(next) && "range still held at destruction");
      LNode* succ = ToNode(next);
      delete cur;
      cur = succ;
    }
  }

  // Blocks until [range.start, range.end) is held in shared (read) mode.
  Handle LockRead(const Range& range) {
    Handle h = nullptr;
    AcquireImpl(range, /*reader=*/true, /*max_failures=*/-1, Deadline::Infinite(), &h);
    return h;
  }

  // Blocks until [range.start, range.end) is held in exclusive (write) mode.
  Handle LockWrite(const Range& range) {
    Handle h = nullptr;
    AcquireImpl(range, /*reader=*/false, /*max_failures=*/-1, Deadline::Infinite(), &h);
    return h;
  }

  // Non-blocking acquisitions (down_read_trylock / down_write_trylock semantics): fail
  // the moment the acquisition would have to wait for a conflicting holder, or — for a
  // writer — the moment its validation pass finds a conflicting node. A try acquisition
  // of a range conflicting with nothing held always succeeds; failure under a transient
  // in-flight conflict (e.g. a writer that is about to self-delete) is possible and
  // allowed, exactly as for the kernel's trylocks.
  bool TryLockRead(const Range& range, Handle* out) {
    return AcquireImpl(range, /*reader=*/true, /*max_failures=*/-1,
                       Deadline::Immediate(), out);
  }
  bool TryLockWrite(const Range& range, Handle* out) {
    return AcquireImpl(range, /*reader=*/false, /*max_failures=*/-1,
                       Deadline::Immediate(), out);
  }

  // Timed acquisitions: block like LockRead/LockWrite but give up once `timeout` has
  // elapsed. A waiter that aborts before insertion leaves no trace; a reader that
  // aborts *inside* its validation pass is already in the list and self-deletes (marks
  // its own node) — later traversals unlink and reclaim it like any released range.
  bool LockReadFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireImpl(range, /*reader=*/true, /*max_failures=*/-1,
                       Deadline::After(timeout), out);
  }
  bool LockWriteFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireImpl(range, /*reader=*/false, /*max_failures=*/-1,
                       Deadline::After(timeout), out);
  }

  // Bounded-patience variants for the fairness layer (§4.3). Failed writer validations
  // count as failures, as do lost CASes and forced restarts.
  bool LockReadBounded(const Range& range, int max_failures, Handle* out) {
    return AcquireImpl(range, /*reader=*/true, max_failures, Deadline::Infinite(), out);
  }
  bool LockWriteBounded(const Range& range, int max_failures, Handle* out) {
    return AcquireImpl(range, /*reader=*/false, max_failures, Deadline::Infinite(), out);
  }

  // Releases a range acquired in either mode.
  void Unlock(Handle node) {
    if (options_.enable_fast_path) {
      uintptr_t expected = MarkedWord(node);
      if (head_.load(std::memory_order_relaxed) == expected &&
          head_.compare_exchange_strong(expected, 0, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        NodePool<LNode>::Local().Recycle(node);
        return;
      }
    }
    node->next.fetch_add(kMarkBit, std::memory_order_release);
  }

  class ReadGuard {
   public:
    ReadGuard(ListRwRangeLock& lock, const Range& range)
        : lock_(lock), h_(lock.LockRead(range)) {}
    ~ReadGuard() { lock_.Unlock(h_); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    ListRwRangeLock& lock_;
    Handle h_;
  };

  class WriteGuard {
   public:
    WriteGuard(ListRwRangeLock& lock, const Range& range)
        : lock_(lock), h_(lock.LockWrite(range)) {}
    ~WriteGuard() { lock_.Unlock(h_); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    ListRwRangeLock& lock_;
    Handle h_;
  };

  // --- Test-only introspection (callers must guarantee quiescence) ---

  // Times a timed reader expired inside r_validate and self-deleted its enqueued node.
  // This branch is reachable only through the Figure-1 concurrent-insertion race, so
  // tests use the counter to confirm a raced scenario actually drove it.
  uint64_t DebugRValidateAborts() const {
    return rvalidate_aborts_.load(std::memory_order_relaxed);
  }

  int DebugHeldCount() const {
    int n = 0;
    for (LNode* cur = ToNode(head_.load(std::memory_order_acquire)); cur != nullptr;
         cur = ToNode(cur->next.load(std::memory_order_acquire))) {
      if (!IsMarked(cur->next.load(std::memory_order_acquire))) {
        ++n;
      }
    }
    return n;
  }

  // Invariant 2: held ranges sorted by start; a held writer never overlaps a successor.
  bool DebugInvariantHolds() const {
    const LNode* prev = nullptr;
    for (LNode* cur = ToNode(head_.load(std::memory_order_acquire)); cur != nullptr;
         cur = ToNode(cur->next.load(std::memory_order_acquire))) {
      if (IsMarked(cur->next.load(std::memory_order_acquire))) {
        continue;
      }
      if (prev != nullptr) {
        if (prev->start > cur->start) {
          return false;
        }
        if ((!prev->reader || !cur->reader) && prev->end > cur->start) {
          return false;
        }
      }
      prev = cur;
    }
    return true;
  }

 private:

  // Listing 2's compare(): relationship of `cur` (in-list) to `node` (to insert).
  //  -1: keep traversing (cur precedes node, or reader-reader ordered by start).
  //   0: conflict involving a writer — wait for cur's release before inserting.
  //  +1: insertion point found (node goes before cur).
  static int CompareRw(const LNode* cur, const LNode* node) {
    const bool both_readers = cur->reader && node->reader;
    if (node->start >= cur->end) {
      return -1;
    }
    if (both_readers && node->start >= cur->start) {
      return -1;
    }
    if (cur->start >= node->end) {
      return 1;
    }
    if (both_readers && cur->start >= node->start) {
      return 1;
    }
    return 0;
  }

  bool AcquireImpl(const Range& range, bool reader, int max_failures,
                   const Deadline& deadline, Handle* out) {
    assert(range.Valid() && "range locks require start < end");
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    // Concurrency restriction across the whole acquisition (all validation restarts
    // included): once yielding between watch rounds the spinner caps active contenders
    // at ~#cores and parks the surplus, always outside the epoch critical section.
    // Timed and immediate deadlines make it inert.
    AdmissionSpinner gate_spinner(&gate_, deadline);
    int failures = 0;
    // Writer validation failure restarts the whole acquisition with a fresh node
    // (Listing 2's do/while): the failed node is already marked inside the list and will
    // be unlinked by other traversals.
    for (;;) {
      LNode* node = NodePool<LNode>::Local().Alloc();
      node->start = range.start;
      node->end = range.end;
      node->reader = reader;
      node->next.store(0, std::memory_order_relaxed);

      if (options_.enable_fast_path) {
        uintptr_t expected = 0;
        if (head_.load(std::memory_order_relaxed) == 0 &&
            head_.compare_exchange_strong(expected, MarkedWord(node),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          // The list was empty, so there is nothing to validate against; later arrivals
          // always see this node (it is the head) and defer to it as needed.
          *out = node;
          return true;
        }
      }

      EpochDomain::Enter(rec);
      const InsertResult res =
          InsertNode(node, rec, max_failures, deadline, &failures, gate_spinner);
      EpochDomain::Exit(rec);
      switch (res) {
        case InsertResult::kAcquired:
          *out = node;
          return true;
        case InsertResult::kGaveUp:
          NodePool<LNode>::Local().Recycle(node);  // never entered the list
          return false;
        case InsertResult::kValidationFailed:
          // The node is already marked in-list; other traversals unlink it. A writer
          // whose patience or deadline is exhausted stops here; a reader only reports
          // kValidationFailed when its deadline expired mid-validation, so the
          // Expired() check below is what terminates it.
          //
          // Exactly-once pool return (audited for the lock-free-list PR): this branch
          // must NOT Recycle — the self-deleted node is still reachable from the list,
          // and exactly one future traversal wins the unlink CAS over it and Retires
          // it. A Recycle here would be a double return (the try-exactness fuzz's pool
          // conservation check catches exactly that); conversely kGaveUp above must
          // Recycle, because a node that never entered the list has no unlinker and
          // would otherwise leak. The self-delete itself cannot double-fire either:
          // RValidate/WValidate mark the node at most once, on their single return
          // false path, and only the owner ever marks an unmarked node.
          if (max_failures >= 0 && ++failures > max_failures) {
            return false;
          }
          if (deadline.Expired()) {
            return false;
          }
          continue;  // retry with a fresh node
      }
    }
  }

  enum class InsertResult { kAcquired, kGaveUp, kValidationFailed };

  // Outcome of one watch of a conflicting node.
  enum class WaitResult { kReleased, kRestart, kTimedOut };

  InsertResult InsertNode(LNode* node, EpochDomain::ThreadRec* rec, int max_failures,
                          const Deadline& deadline, int* failures,
                          AdmissionSpinner& gate_spinner) {
    for (;;) {
      std::atomic<uintptr_t>* prev = &head_;
      uintptr_t cur_word = prev->load(std::memory_order_acquire);
      bool at_head = true;
      for (;;) {
        if (IsMarked(cur_word)) {
          if (!at_head) {
            if (max_failures >= 0 && ++*failures > max_failures) {
              return InsertResult::kGaveUp;
            }
            break;  // prev's owner deleted — restart from head
          }
          if (head_.compare_exchange_weak(cur_word, Unmark(cur_word),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            cur_word = Unmark(cur_word);
          }
          continue;
        }
        LNode* cur = ToNode(cur_word);
        if (cur != nullptr) {
          const uintptr_t cur_next = cur->next.load(std::memory_order_acquire);
          if (IsMarked(cur_next)) {
            const uintptr_t succ = Unmark(cur_next);
            if (prev->compare_exchange_strong(cur_word, succ, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
              NodePool<LNode>::Local().Retire(cur);
              cur_word = succ;
            }
            continue;
          }
          const int rel = CompareRw(cur, node);
          if (rel < 0) {
            prev = &cur->next;
            cur_word = cur_next;
            at_head = false;
            continue;
          }
          if (rel == 0) {
            const WaitResult w = WaitForRelease(cur, rec, deadline, gate_spinner);
            if (w == WaitResult::kTimedOut) {
              return InsertResult::kGaveUp;  // pre-insertion: node never entered
            }
            if (w == WaitResult::kRestart) {
              break;  // epoch CS was cycled while waiting; restart from head
            }
            continue;
          }
        }
        node->next.store(cur_word, std::memory_order_relaxed);
        if (prev->compare_exchange_strong(cur_word, NodeWord(node),
                                          std::memory_order_seq_cst,
                                          std::memory_order_acquire)) {
          // Paired with the same fence in the conflicting party's insertion (see the
          // file comment): both sides cannot miss each other's nodes.
          SeqCstFence();
          if (node->reader) {
            return RValidate(node, rec, deadline, gate_spinner)
                       ? InsertResult::kAcquired
                       : InsertResult::kValidationFailed;
          }
          return WValidate(node) ? InsertResult::kAcquired
                                 : InsertResult::kValidationFailed;
        }
        if (max_failures >= 0 && ++*failures > max_failures) {
          return InsertResult::kGaveUp;
        }
      }
    }
  }

  // Listing 3, r_validate: scan forward from our node; wait out any conflicting writer.
  // Under a blocking deadline this always succeeds (readers have priority over writers
  // in this scheme). Under an immediate or expired deadline the reader aborts instead of
  // waiting: it is already enqueued, so it self-deletes — marks its own node exactly
  // like a release would — and returns false; later traversals unlink and reclaim it.
  bool RValidate(LNode* node, EpochDomain::ThreadRec* rec, const Deadline& deadline,
                 AdmissionSpinner& gate_spinner) {
    for (;;) {
      std::atomic<uintptr_t>* prev = &node->next;
      uintptr_t cur_word = Unmark(prev->load(std::memory_order_acquire));
      bool done = false;
      while (!done) {
        LNode* cur = ToNode(cur_word);
        // Precise half-open overlap test; every node past our position has
        // start >= node->start, so start < node->end is the full overlap condition.
        if (cur == nullptr || cur->start >= node->end) {
          return true;
        }
        const uintptr_t cur_next = cur->next.load(std::memory_order_acquire);
        if (IsMarked(cur_next)) {
          const uintptr_t succ = Unmark(cur_next);
          uintptr_t expected = cur_word;
          if (prev->compare_exchange_strong(expected, succ, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
            NodePool<LNode>::Local().Retire(cur);
          }
          cur_word = succ;  // continue through the (possibly stale) chain — safe in a CS
          continue;
        }
        if (cur->reader) {
          prev = &cur->next;
          cur_word = Unmark(cur_next);
          continue;
        }
        // Conflicting writer: wait for it to release, then re-examine.
        switch (WaitForRelease(cur, rec, deadline, gate_spinner)) {
          case WaitResult::kReleased:
            break;
          case WaitResult::kRestart:
            done = true;  // cycled the epoch CS; restart the scan from our own node
            break;
          case WaitResult::kTimedOut:
            // Timed-reader self-delete under a lost race with a writer's validate: the
            // reader is enqueued but unwilling to wait the writer out, so it releases
            // its own node exactly as an Unlock would. Ownership of the node transfers
            // to the list here — the caller must not touch it again (no Recycle; see
            // the kValidationFailed comment in AcquireImpl), and whichever concurrent
            // traversal — possibly that very writer's WValidate — wins the unlink CAS
            // Retires it exactly once.
            node->next.fetch_add(kMarkBit, std::memory_order_release);
            rvalidate_aborts_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
      }
    }
  }

  // Listing 3, w_validate: re-scan from the head to our own node. On meeting any
  // conflicting node, self-delete and report failure.
  bool WValidate(LNode* node) {
    for (;;) {
      std::atomic<uintptr_t>* prev = &head_;
      uintptr_t cur_word = Unmark(prev->load(std::memory_order_acquire));
      for (;;) {
        LNode* cur = ToNode(cur_word);
        if (cur == node) {
          return true;
        }
        if (cur == nullptr) {
          // Our node is always reachable from the head within one epoch critical
          // section (frozen next pointers never skip forward past live nodes); hitting
          // the end means a stale chain was followed mid-unlink — rescan.
          break;
        }
        const uintptr_t cur_next = cur->next.load(std::memory_order_acquire);
        if (IsMarked(cur_next)) {
          const uintptr_t succ = Unmark(cur_next);
          uintptr_t expected = cur_word;
          if (prev->compare_exchange_strong(expected, succ, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
            NodePool<LNode>::Local().Retire(cur);
          }
          cur_word = succ;
          continue;
        }
        if (cur->end <= node->start) {
          prev = &cur->next;
          cur_word = Unmark(cur_next);
          continue;
        }
        // cur overlaps us (cur->start <= node->start < cur->end given list order, or we
        // raced with a same-start insert). Defer: delete ourselves and fail.
        node->next.fetch_add(kMarkBit, std::memory_order_release);
        return false;
      }
    }
  }

  // Audit (wait-loop unification): bounded watch on SpinWait instead of a hand-rolled
  // kWatchSpins CpuRelax loop; the switch to yielding signals the epoch-CS cycle, and
  // the yield itself runs outside the CS via gate_spinner.Pause(), which also rotates
  // the admission slot. See ListRangeLock::WaitForRelease.
  WaitResult WaitForRelease(const LNode* cur, EpochDomain::ThreadRec* rec,
                            const Deadline& deadline, AdmissionSpinner& gate_spinner) {
    if (deadline.IsImmediate()) {
      return IsMarked(cur->next.load(std::memory_order_acquire)) ? WaitResult::kReleased
                                                                 : WaitResult::kTimedOut;
    }
    SpinWait spin;
    for (int i = 0; !spin.Yielding(); ++i) {
      if (IsMarked(cur->next.load(std::memory_order_acquire))) {
        return WaitResult::kReleased;
      }
      if ((i + 1) % Deadline::kSpinsPerClockCheck == 0 && deadline.Expired()) {
        return WaitResult::kTimedOut;
      }
      spin.Spin();
    }
    EpochDomain::Exit(rec);
    // Yield outside the critical section — rotating the admission slot — so a
    // preempted (or gate-parked) holder can run instead of us re-traversing for a
    // whole quantum.
    gate_spinner.Pause();
    EpochDomain::Enter(rec);
    return deadline.Expired() ? WaitResult::kTimedOut : WaitResult::kRestart;
  }

  std::atomic<uintptr_t> head_{0};
  std::atomic<uint64_t> rvalidate_aborts_{0};  // see DebugRValidateAborts
  Options options_;
  // Caps active contenders on the slow path (see AcquireImpl).
  AdmissionGate gate_;
};

}  // namespace srl

#endif  // SRL_CORE_LIST_RW_RANGE_LOCK_H_
