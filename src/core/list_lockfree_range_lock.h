// Lock-free bucketed range lock: CAS insertion + mark-bit deletion, no lock anywhere.
//
// This is the paper's exclusive list-based range lock (§4.1, Listing 1 — see
// list_range_lock.h) with the remaining serialization point removed: instead of one
// shared list head, the address space is cut into fixed-size windows
// (1 << Options::window_shift units each) and every window hashes to one of
// Options::buckets sorted lock lists. Disjoint ranges in different windows touch
// disjoint heads, so they contend on nothing at all — no head pointer, no cache line —
// which composes with the VM layer's stripes (bucketing *within* a stripe's window).
//
// Protocol per bucket is exactly Listing 1: a single CAS inserts a node into the sorted
// list (insertion *is* acquisition), releasing marks the node's next pointer with one
// fetch_add (wait-free, never takes a lock — the property the tentpole is named for),
// and marked nodes are physically unlinked by whichever later traversal passes by
// (Harris-style helping), then retired through NodePool/EpochDomain.
//
// Multi-bucket acquisitions (a range whose windows hash to several buckets) insert one
// node per covered bucket in ascending bucket-index order and chain them through
// LNode::sibling. Ascending order makes the scheme deadlock-free: a thread blocked in
// bucket b already holds only buckets < b, so every wait chain strictly increases in
// bucket index and cannot cycle. Mutual exclusion holds because two overlapping ranges
// share at least one point, hence at least one window, hence at least one bucket where
// both insert overlapping nodes into the same sorted list — Listing 1's compare()==0
// conflict fires there. Ranges covering >= `buckets` windows short-circuit to *all*
// buckets; inserting into a superset of the covered buckets is conservative (it can
// only add conflicts, never hide one), and it bounds acquisition cost at `buckets`
// nodes regardless of range length.
//
// The §4.5 fast path is integrated per bucket (unconditionally — unlike the single-list
// lock, where one shared head makes it an optional whole-lock gamble): an acquisition
// whose bucket head is empty installs its node marked-at-head with one CAS and skips
// the epoch critical section for that bucket entirely; release CASes the head back to
// zero and recycles the node with no grace period. Eager recycling is sound because
// converting a fast node into a regular list node requires winning a strip CAS against
// exactly that release — whoever loses learns nothing about the node. Per-bucket heads
// make the fast path free rather than a contention hazard: the fast CAS touches the
// same cache line the slow insertion CAS would touch anyway, and on disjoint workloads
// each thread's bucket head is effectively private.
#ifndef SRL_CORE_LIST_LOCKFREE_RANGE_LOCK_H_
#define SRL_CORE_LIST_LOCKFREE_RANGE_LOCK_H_

#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "src/core/lnode.h"
#include "src/core/range.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"
#include "src/sync/admission.h"
#include "src/sync/cacheline.h"
#include "src/sync/deadline.h"
#include "src/sync/pause.h"
#include "src/sync/spin_wait.h"

namespace srl {

class ListLockFreeRangeLock {
 public:
  struct Options {
    // Number of hash-bucketed list heads. Clamped to a power of two in [1, 64] — 64 so
    // the covered-bucket set fits one uint64_t mask, power of two so the bucket hash is
    // a multiply-shift. 16 suits the unit-test universes; the VM backend uses 64.
    std::size_t buckets = 16;
    // log2 of the window size: addresses in the same window always share a bucket.
    // Pick it so a typical acquisition covers ~1 window; too small and short ranges
    // straddle windows (multi-node acquisitions), too large and distinct hot ranges
    // share windows (false bucket conflicts).
    int window_shift = 4;
  };

  // Head of the acquisition's sibling chain (one node per covered bucket, ascending
  // bucket order). Opaque to callers; consumed by Unlock.
  using Handle = LNode*;

  ListLockFreeRangeLock() : ListLockFreeRangeLock(Options{}) {}
  explicit ListLockFreeRangeLock(Options options)
      : bucket_count_(ClampBuckets(options.buckets)),
        bucket_shift_(static_cast<int>(std::countr_zero(bucket_count_))),
        window_shift_(options.window_shift < 0    ? 0
                      : options.window_shift > 63 ? 63
                                                  : options.window_shift),
        all_mask_(bucket_count_ == 64 ? ~uint64_t{0}
                                      : (uint64_t{1} << bucket_count_) - 1),
        heads_(new CacheAligned<std::atomic<uintptr_t>>[bucket_count_]) {}

  ListLockFreeRangeLock(const ListLockFreeRangeLock&) = delete;
  ListLockFreeRangeLock& operator=(const ListLockFreeRangeLock&) = delete;

  // All ranges must have been released; residual marked nodes (released but never
  // unlinked because no later traversal passed their bucket) are freed here.
  ~ListLockFreeRangeLock() {
    for (std::size_t b = 0; b < bucket_count_; ++b) {
      uintptr_t word = heads_[b]->load(std::memory_order_acquire);
      // A marked head is a live fast-path holder: once released, its head is either
      // CASed back to zero or (if stripped first) left unmarked with a marked node.
      assert(!IsMarked(word) && "fast-path range still held at destruction");
      LNode* cur = ToNode(word);
      while (cur != nullptr) {
        const uintptr_t next = cur->next.load(std::memory_order_acquire);
        assert(IsMarked(next) && "range still held at destruction");
        LNode* succ = ToNode(next);
        delete cur;
        cur = succ;
      }
    }
  }

  // Blocks until [range.start, range.end) is held exclusively. The returned handle must
  // be passed to Unlock() by the same logical owner (any thread may release it).
  Handle Lock(const Range& range) {
    Handle h = nullptr;
    AcquireImpl(range, Deadline::Infinite(), &h);
    return h;
  }

  // Non-blocking acquisition: fails the moment the range would have to wait for an
  // overlapping holder in any covered bucket. Lost insertion CASes are retried — they
  // signal contention on a list's structure, not a held conflicting range — so a
  // TryLock of a range that conflicts with nothing held always succeeds.
  bool TryLock(const Range& range, Handle* out) {
    return AcquireImpl(range, Deadline::Immediate(), out);
  }

  // Timed acquisition: blocks like Lock() but gives up (returns false, no range held)
  // once `timeout` has elapsed. Nodes already inserted into earlier buckets are marked
  // released on the way out, so an abandoned acquisition leaves only inert marked
  // residue for other traversals to collect.
  bool LockFor(const Range& range, std::chrono::nanoseconds timeout, Handle* out) {
    return AcquireImpl(range, Deadline::After(timeout), out);
  }

  // Releases an acquired range. Wait-free and lock-free in the strongest sense: per
  // covered bucket, one fast-path CAS attempt (no loop) and at most one fetch_add —
  // no lock acquisition, no traversal, no retry.
  void Unlock(Handle handle) { ReleaseChain(handle); }

  // RAII guard.
  class Guard {
   public:
    Guard(ListLockFreeRangeLock& lock, const Range& range)
        : lock_(lock), h_(lock.Lock(range)) {}
    ~Guard() { lock_.Unlock(h_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ListLockFreeRangeLock& lock_;
    Handle h_;
  };

  std::size_t bucket_count() const { return bucket_count_; }
  int window_shift() const { return window_shift_; }

  // --- Test-only introspection (callers must guarantee quiescence) ---

  // Number of unmarked (held) nodes across all buckets. An acquisition covering k
  // buckets contributes k, so this counts nodes, not acquisitions.
  int DebugHeldCount() const {
    int n = 0;
    for (std::size_t b = 0; b < bucket_count_; ++b) {
      // A marked head is a fast-path holder: unmark to reach its (held) node.
      for (LNode* cur = ToNode(Unmark(heads_[b]->load(std::memory_order_acquire)));
           cur != nullptr; cur = ToNode(cur->next.load(std::memory_order_acquire))) {
        if (!IsMarked(cur->next.load(std::memory_order_acquire))) {
          ++n;
        }
      }
    }
    return n;
  }

  // Checks Invariant 1 per bucket: consecutive held ranges satisfy r1.end <= r2.start.
  bool DebugInvariantHolds() const {
    for (std::size_t b = 0; b < bucket_count_; ++b) {
      uint64_t prev_end = 0;
      bool first = true;
      for (LNode* cur = ToNode(Unmark(heads_[b]->load(std::memory_order_acquire)));
           cur != nullptr; cur = ToNode(cur->next.load(std::memory_order_acquire))) {
        if (IsMarked(cur->next.load(std::memory_order_acquire))) {
          continue;  // released, logically absent
        }
        if (!first && cur->start < prev_end) {
          return false;
        }
        prev_end = cur->end;
        first = false;
      }
    }
    return true;
  }

 private:
  static std::size_t ClampBuckets(std::size_t buckets) {
    if (buckets < 1) {
      return 1;
    }
    if (buckets > 64) {
      return 64;
    }
    return std::bit_ceil(buckets);
  }

  // Window index -> bucket index. Fibonacci multiplicative hashing rather than
  // `w & (buckets - 1)`: the VM layer's stripes start at multiples of 2^30, so under
  // identity hashing every stripe's base window would land in bucket 0 and striped
  // workloads would collide on one head — the multiply diffuses the high base bits
  // into the selected bucket.
  std::size_t BucketOf(uint64_t window) const {
    if (bucket_count_ == 1) {
      return 0;
    }
    return static_cast<std::size_t>((window * uint64_t{0x9E3779B97F4A7C15}) >>
                                    (64 - bucket_shift_));
  }

  // Bit b set == the range has a node in bucket b. Ranges spanning >= bucket_count_
  // windows short-circuit to all buckets instead of walking a potentially huge window
  // span. That is a conservative superset — extra buckets can only add conflicts, never
  // hide one, since overlap detection only needs *some* shared bucket to hold both
  // ranges' nodes, and every precisely-covered bucket is in the superset.
  uint64_t CoveredMask(const Range& range) const {
    const uint64_t first = range.start >> window_shift_;
    const uint64_t last = (range.end - 1) >> window_shift_;
    if (last - first >= bucket_count_ - 1) {
      return all_mask_;
    }
    uint64_t mask = 0;
    for (uint64_t w = first; w <= last; ++w) {
      mask |= uint64_t{1} << BucketOf(w);
    }
    return mask;
  }

  // Releases every node of a sibling chain, in chain (= ascending bucket) order. The
  // chain's buckets are recomputed from the range (every node carries it), iterated in
  // lockstep with the chain: a partial chain from a timed/try failure is exactly the
  // first k bits of the mask. Per node, first try the §4.5 fast-path release — if the
  // bucket head still holds this node marked, one CAS empties the bucket and the node
  // recycles with no grace period (nobody else ever obtained a reference: converting a
  // fast node into a regular node requires winning a strip CAS against this release).
  // Otherwise mark the node released with one fetch_add. The sibling pointer is read
  // BEFORE either: the instant a node is marked, a concurrent traversal may unlink it,
  // retire it, and hand it to a new acquisition — ReleaseChain runs outside any epoch
  // critical section, so the node must not be touched after its own release.
  void ReleaseChain(LNode* node) {
    if (node == nullptr) {
      return;
    }
    uint64_t m = CoveredMask(Range{node->start, node->end});
    while (node != nullptr) {
      assert(m != 0 && "sibling chain longer than its covered-bucket mask");
      const std::size_t b = static_cast<std::size_t>(std::countr_zero(m));
      m &= m - 1;
      LNode* next = node->sibling;
      uintptr_t expected = MarkedWord(node);
      // Ordering as in list_range_lock.h's fast-path Unlock: the relaxed probe is an
      // optimization (the CAS repeats the comparison); release success order pairs with
      // the acquire side of whichever CAS next observes head == 0.
      if (heads_[b]->load(std::memory_order_relaxed) == expected &&
          heads_[b]->compare_exchange_strong(expected, 0, std::memory_order_release,
                                             std::memory_order_relaxed)) {
        NodePool<LNode>::Local().Recycle(node);
      } else {
        node->next.fetch_add(kMarkBit, std::memory_order_release);
      }
      node = next;
    }
  }

  bool AcquireImpl(const Range& range, const Deadline& deadline, Handle* out) {
    assert(range.Valid() && "range locks require start < end");
    const uint64_t mask = CoveredMask(range);
    // Concurrency restriction across the whole (possibly multi-bucket) acquisition.
    // The spinner's rotation on Pause() is load-bearing for deadlock freedom here: a
    // parked thread may hold nodes in buckets < b that active spinners in those
    // buckets wait on, and their own Pause() calls are what cycle it back into the
    // active set (see admission.h). Timed and immediate deadlines make it inert.
    AdmissionSpinner gate_spinner(&gate_, deadline);
    // The epoch critical section is entered lazily, only once some bucket takes the
    // slow path: fast-path buckets never dereference another thread's node, so an
    // acquisition whose every covered bucket is empty pays no epoch fence at all.
    EpochDomain::ThreadRec* rec = nullptr;
    LNode* chain_head = nullptr;
    LNode* chain_tail = nullptr;
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      const std::size_t b = static_cast<std::size_t>(std::countr_zero(m));
      LNode* node = NodePool<LNode>::Local().Alloc();
      node->start = range.start;
      node->end = range.end;
      node->reader = false;
      node->sibling = nullptr;
      node->next.store(0, std::memory_order_relaxed);
      std::atomic<uintptr_t>& head = heads_[b].value;
      bool inserted;
      uintptr_t expected = 0;
      // §4.5 fast path, per bucket. Ordering as in list_range_lock.h: acq_rel on
      // success — the acquire half pairs with the previous fast-path holder's releasing
      // CAS (head -> 0), the release half publishes node->{start,end,next,sibling} to
      // the strip-CAS that may later convert this node into a regular list node.
      // Failure order relaxed: a failed fast path learns nothing and goes slow.
      if (head.load(std::memory_order_relaxed) == 0 &&
          head.compare_exchange_strong(expected, MarkedWord(node),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        inserted = true;
      } else {
        if (rec == nullptr) {
          rec = CurrentThreadRec(EpochDomain::Global());
          EpochDomain::Enter(rec);
        }
        inserted = InsertNode(&head, node, rec, deadline, gate_spinner);
      }
      if (!inserted) {
        NodePool<LNode>::Local().Recycle(node);  // never entered a list
        EpochDomain::Exit(rec);                  // failure implies the slow path ran
        // Timed/try partial failure: the prefix inserted into buckets < b is released
        // exactly as a normal unlock would release it — fast nodes recycle, the rest
        // leave marked residue.
        ReleaseChain(chain_head);
        return false;
      }
      if (chain_tail != nullptr) {
        chain_tail->sibling = node;
      } else {
        chain_head = node;
      }
      chain_tail = node;
    }
    if (rec != nullptr) {
      EpochDomain::Exit(rec);
    }
    *out = chain_head;
    return true;
  }

  // Listing 1's compare(): relationship of `cur` (in-list) to `node` (to insert).
  static int Compare(const LNode* cur, const LNode* node) {
    if (cur->start >= node->end) {
      return 1;
    }
    if (node->start >= cur->end) {
      return -1;
    }
    return 0;
  }

  enum class WaitResult { kReleased, kRestart, kTimedOut };

  // Listing 1's insertion loop against one bucket's head — list_range_lock.h's
  // InsertNode minus the fairness failure budget (the fair layer wraps the single-list
  // lock, not this one).
  bool InsertNode(std::atomic<uintptr_t>* head, LNode* node,
                  EpochDomain::ThreadRec* rec, const Deadline& deadline,
                  AdmissionSpinner& gate_spinner) {
    for (;;) {
      std::atomic<uintptr_t>* prev = head;
      uintptr_t cur_word = prev->load(std::memory_order_acquire);
      bool at_head = true;
      for (;;) {
        if (IsMarked(cur_word)) {
          if (!at_head) {
            // prev's owner was logically deleted under us: the pointer into the list is
            // lost, restart from the head (Listing 1 line 32).
            break;
          }
          // Marked head == a fast-path holder (§4.5). Strip the mark to convert its
          // node into a regular list node, then continue with the unmarked value. The
          // node is not dereferenced before the strip CAS succeeds — if its owner's
          // releasing CAS wins instead, the node may already be recycled.
          if (head->compare_exchange_weak(cur_word, Unmark(cur_word),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            cur_word = Unmark(cur_word);
          }
          continue;
        }
        LNode* cur = ToNode(cur_word);
        if (cur != nullptr) {
          const uintptr_t cur_next = cur->next.load(std::memory_order_acquire);
          if (IsMarked(cur_next)) {
            // cur was released: help unlink it (Listing 1 lines 34–37).
            const uintptr_t succ = Unmark(cur_next);
            if (prev->compare_exchange_strong(cur_word, succ, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
              NodePool<LNode>::Local().Retire(cur);
              cur_word = succ;
            }
            continue;  // on CAS failure cur_word holds the fresh *prev
          }
          const int rel = Compare(cur, node);
          if (rel < 0) {
            prev = &cur->next;
            cur_word = cur_next;
            at_head = false;
            continue;
          }
          if (rel == 0) {
            const WaitResult w = WaitForRelease(cur, rec, deadline, gate_spinner);
            if (w == WaitResult::kTimedOut) {
              return false;
            }
            if (w == WaitResult::kRestart) {
              break;  // left the epoch CS while waiting; restart from head
            }
            continue;  // cur is now marked; the unlink branch above collects it
          }
          // rel > 0: insert before cur.
        }
        // Publication pairing as in list_range_lock.h: the relaxed store of node->next
        // is ordered before any other thread can see the node by the release half of
        // the successful insertion CAS below.
        node->next.store(cur_word, std::memory_order_relaxed);
        if (prev->compare_exchange_strong(cur_word, NodeWord(node),
                                          std::memory_order_seq_cst,
                                          std::memory_order_acquire)) {
          return true;
        }
        // Lost the race for this insertion point; cur_word holds the fresh *prev.
      }
    }
  }

  // Watches `cur` until its owner releases it or the deadline expires; identical to
  // list_range_lock.h (see the rationale there). Audit (wait-loop unification):
  // bounded watch on SpinWait; the yield between watch rounds runs outside the epoch
  // critical section via gate_spinner.Pause(), which also rotates the admission slot.
  WaitResult WaitForRelease(const LNode* cur, EpochDomain::ThreadRec* rec,
                            const Deadline& deadline, AdmissionSpinner& gate_spinner) {
    if (deadline.IsImmediate()) {
      return IsMarked(cur->next.load(std::memory_order_acquire)) ? WaitResult::kReleased
                                                                 : WaitResult::kTimedOut;
    }
    SpinWait spin;
    for (int i = 0; !spin.Yielding(); ++i) {
      if (IsMarked(cur->next.load(std::memory_order_acquire))) {
        return WaitResult::kReleased;
      }
      if ((i + 1) % Deadline::kSpinsPerClockCheck == 0 && deadline.Expired()) {
        return WaitResult::kTimedOut;
      }
      spin.Spin();
    }
    EpochDomain::Exit(rec);
    gate_spinner.Pause();
    EpochDomain::Enter(rec);
    return deadline.Expired() ? WaitResult::kTimedOut : WaitResult::kRestart;
  }

  const std::size_t bucket_count_;
  const int bucket_shift_;   // log2(bucket_count_)
  const int window_shift_;
  const uint64_t all_mask_;  // low bucket_count_ bits set
  // One cache line per head: disjoint buckets must not false-share.
  const std::unique_ptr<CacheAligned<std::atomic<uintptr_t>>[]> heads_;
  // Caps active contenders on the slow path (see AcquireImpl).
  AdmissionGate gate_;
};

}  // namespace srl

#endif  // SRL_CORE_LIST_LOCKFREE_RANGE_LOCK_H_
