#!/usr/bin/env python3
"""Compare two BENCH_*.json sets and flag throughput regressions.

The bench binaries (fig3/5/6/7, abl_trylock, abl_scoped_structural, ...) emit a common
JSON schema via BenchJson (src/harness/table.h):

    {"bench": "<name>", "tables": [
      {"meta": {...}, "headers": [...], "rows": [{"<header>": <value>, ...}, ...]}
    ]}

This tool pairs up rows between a baseline set and a current set and compares their
throughput-like columns (by default every numeric column whose header ends in "/sec").
Rows are keyed by the table index plus every string-valued cell (variant names, lock
names, ...) plus any integer-valued known key column (threads, readers, ...), so
reordering rows or adding new variants never mispairs measurements.

A row regresses when current < baseline * (1 - threshold). Noise handling: benches
report a "rel-stddev%" column; when either side of a comparison carries a relative
stddev above --noise-cap, the finding is reported as NOISY and does not affect the
exit code (shared CI runners routinely show 2x swings on contended microbenches).

Schema drift is reported, never silently skipped: a metric column present on only one
side is flagged METRIC-ADDED / METRIC-REMOVED (per table), a row present only in the
baseline is MISSING, a row present only in the current run is ADDED, a whole bench
present only in the current set is NEW-BENCH, and the closing summary counts them all —
so a bench that grew (or lost) variants or per-stripe keys shows up as an explicit
schema change rather than a quietly shrinking comparison. New-variant rows (e.g. a lock
added to a bench's default roster) therefore arrive as ADDED/NEW-BENCH drift, never as
a failure.

Exit codes: 0 = no firm regressions, 1 = at least one firm regression, 2 = usage or
input error. Schema drift never affects the exit code. --advisory forces exit 0 while
still printing everything (for CI lanes on shared hardware where the report is
informational).

Usage:
    tools/perf_diff.py BASELINE CURRENT [--threshold 10] [--noise-cap 25]
                       [--metrics col1,col2] [--advisory] [--verbose]

BASELINE and CURRENT are each either a BENCH_*.json file or a directory containing
BENCH_*.json files (matched to each other by the embedded "bench" name).
"""

import argparse
import json
import os
import sys

KEY_COLUMNS = {"variant", "threads", "readers", "lock", "segments", "pool", "list-len",
               "workload", "mode", "bench", "stripes", "stripe", "role", "cold-drop",
               "gate", "mix"}
STDDEV_COLUMN = "rel-stddev%"


def fail(msg):
    print(f"perf_diff: error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_bench_files(path):
    """Returns {bench_name: parsed_json} for a file or a directory of BENCH_*.json."""
    if os.path.isdir(path):
        out = {}
        for name in sorted(os.listdir(path)):
            if name.endswith(".json") and name.startswith("BENCH"):
                full = os.path.join(path, name)
                data = parse_file(full)
                out[data.get("bench", name)] = data
        if not out:
            fail(f"no BENCH_*.json files under directory {path}")
        return out
    data = parse_file(path)
    return {data.get("bench", os.path.basename(path)): data}


def parse_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        fail(f"cannot open {path}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def row_key(table_index, row):
    """Stable identity of a measurement row: table index + every key-ish cell."""
    parts = [("table", table_index)]
    for col, val in row.items():
        if isinstance(val, str) or col in KEY_COLUMNS:
            parts.append((col, val))
    return tuple(sorted(parts))


def metric_columns(headers, explicit):
    if explicit:
        return [c for c in explicit if c in headers]
    return [h for h in headers if h.endswith("/sec")]


def index_rows(data):
    """Returns {row_key: (row, table_meta)} across all tables of one bench."""
    out = {}
    for t_idx, table in enumerate(data.get("tables", [])):
        for row in table.get("rows", []):
            out[row_key(t_idx, row)] = (row, table.get("meta", {}))
    return out


def fmt_key(key):
    return " ".join(f"{c}={v}" for c, v in key if c != "table")


def table_headers(data):
    """Returns {table_index: headers}."""
    return {i: t.get("headers", []) for i, t in enumerate(data.get("tables", []))}


def compare_bench(name, base, cur, args, findings):
    base_headers = table_headers(base)
    cur_headers = table_headers(cur)

    # Metric-set drift, per table: a metric on only one side is schema change, not a
    # silent skip. Comparison proceeds over the shared metrics.
    shared_metrics = {}
    any_metrics = False
    for t_idx in sorted(set(base_headers) | set(cur_headers)):
        bm = metric_columns(base_headers.get(t_idx, []), args.metrics)
        cm = metric_columns(cur_headers.get(t_idx, []), args.metrics)
        for col in bm:
            if col not in cm and t_idx in cur_headers:
                findings.append(("METRIC-REMOVED", name, f"table {t_idx}",
                                 f"metric column '{col}' only in baseline", 0.0))
        for col in cm:
            if col not in bm and t_idx in base_headers:
                findings.append(("METRIC-ADDED", name, f"table {t_idx}",
                                 f"metric column '{col}' only in current run", 0.0))
        shared_metrics[t_idx] = [c for c in bm if c in cm]
        any_metrics = any_metrics or bool(bm) or bool(cm)
    if not any_metrics:
        findings.append(("SKIP", name, "", "no throughput columns to compare", 0.0))
        return

    base_rows = index_rows(base)
    cur_rows = index_rows(cur)
    matched = 0
    for key, (brow, _) in base_rows.items():
        if key not in cur_rows:
            findings.append(("MISSING", name, fmt_key(key),
                             "row present in baseline but not in current run", 0.0))
            continue
        crow, _ = cur_rows[key]
        matched += 1
        noisy = False
        for row in (brow, crow):
            stddev = row.get(STDDEV_COLUMN)
            if isinstance(stddev, (int, float)) and stddev > args.noise_cap:
                noisy = True
        t_idx = dict(key).get("table", 0)
        for col in shared_metrics.get(t_idx, []):
            bval, cval = brow.get(col), crow.get(col)
            if not isinstance(bval, (int, float)) or not isinstance(cval, (int, float)):
                continue
            if bval <= 0:
                continue
            delta = (cval - bval) / bval * 100.0
            if cval < bval * (1.0 - args.threshold / 100.0):
                kind = "NOISY-REGRESSION" if noisy else "REGRESSION"
                findings.append((kind, name, fmt_key(key),
                                 f"{col}: {bval:.0f} -> {cval:.0f}", delta))
            elif args.verbose:
                findings.append(("OK", name, fmt_key(key),
                                 f"{col}: {bval:.0f} -> {cval:.0f}", delta))
    for key in cur_rows:
        if key not in base_rows:
            findings.append(("ADDED", name, fmt_key(key),
                             "row present only in current run", 0.0))
    if matched == 0:
        findings.append(("SKIP", name, "", "no rows matched between the two sets", 0.0))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="BENCH_*.json file or directory")
    ap.add_argument("current", help="BENCH_*.json file or directory")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--noise-cap", type=float, default=25.0,
                    help="rel-stddev%% above which a finding is only advisory "
                         "(default 25)")
    ap.add_argument("--metrics", type=lambda s: s.split(","), default=None,
                    help="comma-separated metric columns (default: every */sec column)")
    ap.add_argument("--advisory", action="store_true",
                    help="always exit 0 (report-only mode for noisy CI hardware)")
    ap.add_argument("--verbose", action="store_true",
                    help="also print rows that did not regress")
    args = ap.parse_args()

    base_set = load_bench_files(args.baseline)
    cur_set = load_bench_files(args.current)

    findings = []
    compared = []
    for name, base in sorted(base_set.items()):
        if name not in cur_set:
            findings.append(("SKIP", name, "", "bench absent from current set", 0.0))
            continue
        compared.append(name)
        compare_bench(name, base, cur_set[name], args, findings)
    for name in sorted(cur_set):
        if name not in base_set:
            findings.append(("NEW-BENCH", name, "",
                             "bench absent from baseline set (schema drift, "
                             "not a failure)", 0.0))

    firm = [f for f in findings if f[0] == "REGRESSION"]
    noisy = [f for f in findings if f[0] == "NOISY-REGRESSION"]
    schema_kinds = ("SKIP", "MISSING", "ADDED", "METRIC-ADDED", "METRIC-REMOVED",
                    "NEW-BENCH")

    print(f"perf_diff: compared {compared or 'nothing'} at threshold "
          f"{args.threshold:.0f}% (noise cap {args.noise_cap:.0f}% rel-stddev)")
    for kind, bench, key, detail, delta in findings:
        suffix = f"  ({delta:+.1f}%)" if kind not in schema_kinds else ""
        location = f"{bench}: {key}" if key else bench
        print(f"  [{kind}] {location}  {detail}{suffix}")
    counts = {k: sum(1 for f in findings if f[0] == k) for k in schema_kinds}
    print(f"perf_diff: {len(firm)} firm regression(s), {len(noisy)} noisy; schema "
          f"drift: {counts['ADDED']} added row(s), {counts['MISSING']} missing row(s), "
          f"{counts['METRIC-ADDED']} added metric(s), "
          f"{counts['METRIC-REMOVED']} removed metric(s), "
          f"{counts['NEW-BENCH']} new bench(es)")

    if firm and not args.advisory:
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
