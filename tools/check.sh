#!/usr/bin/env bash
# CI-style verification: configure + build + ctest in plain, TSan and ASan(+UBSan)
# configurations, failing on the first error.
#
# Usage:
#   tools/check.sh                # all three configurations
#   tools/check.sh plain          # just one (plain | thread | address)
#   tools/check.sh --oversub plain
#                                 # additionally run the oversubscription smoke (a
#                                 # short bench/abl_oversub sweep at 64 threads) after
#                                 # the plain test pass — a cheap "does the admission
#                                 # gate still survive oversubscription" canary
#
# The sanitizer passes run the concurrency-heavy lock tests (not the full suite) to keep
# wall-clock sane under the ~10x sanitizer slowdown; the plain pass runs everything —
# including the `bench_smoke` tier, which runs every bench binary with tiny durations so
# benches can rot neither at compile time nor at runtime.
# CTest labels split the tiers further: `unit` tests run under every configuration, but
# `stress` tests (the randomized fuzz batteries) run only in plain and TSan — their value
# under a sanitizer is catching data races, which is TSan's job; repeating them under
# ASan+UBSan would double the slowest part of the matrix for little coverage.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

# Peel option flags off before the remaining words become the configuration list.
OVERSUB=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --oversub) OVERSUB=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done
CONFIGS=("${ARGS[@]:-plain thread address}")
# Word-split the default string while leaving explicit args intact.
read -r -a CONFIGS <<<"${CONFIGS[*]}"

# Lock-free hot paths + the sync substrate: what TSan/ASan must stay clean on.
# VmStructuralFuzz is the structural-VM-op battery (optimistic mm_rb walks, epoch-
# reclaimed VMAs, range-scoped mmap/munmap); it carries the `stress` label, so the
# ASan+UBSan pass (-LE stress) skips it while TSan races it for real.
SANITIZED_TESTS='ListRangeLock|ListLockFree|ListRwRangeLock|FairList|LockConformance|LockFuzz|Epoch|Sync|SpinLock|TicketLock|RwSpinLock|FairRwLock|RwSemaphore|TreeRangeLock|SegmentRangeLock|RangeOracle|VmStructuralFuzz|VmFaultUnmapRace|VmStripe|VmSweep|SkiplistRangeLock|SkipList|Admission|Topology'

run_config() {
  local config="$1"
  local build_dir sanitize
  case "$config" in
    plain)   build_dir=build-check;      sanitize="" ;;
    thread)  build_dir=build-check-tsan; sanitize=thread ;;
    address) build_dir=build-check-asan; sanitize=address ;;
    *) echo "unknown configuration: $config (want plain|thread|address)" >&2; exit 2 ;;
  esac

  echo "=== [$config] configure ==="
  cmake -B "$build_dir" -S . -DSRL_SANITIZE="$sanitize" -DCMAKE_BUILD_TYPE=RelWithDebInfo

  echo "=== [$config] build ==="
  cmake --build "$build_dir" -j "$JOBS"

  echo "=== [$config] test ==="
  if [[ "$config" == plain ]]; then
    ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
    if [[ "$OVERSUB" == 1 ]]; then
      # Oversubscription canary: far more threads than any CI core count, long enough
      # for the parking/cull machinery to engage. Exit status only — perf numbers from
      # shared runners are not judged here (see tools/perf_diff.py for trajectories).
      echo "=== [$config] oversubscription smoke ==="
      "$build_dir/bench/abl_oversub" \
        --variants=stock,tree,list,list-lf,skiplist --mixes=adversarial \
        --threads=64 --gates=on,off --secs=0.2 --repeats=1
    fi
  elif [[ "$config" == thread ]]; then
    # Sanitizers must abort the test process on any finding, not just log it.
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" -R "$SANITIZED_TESTS"
  else
    # ASan+UBSan: unit tier only (-LE stress); see the header comment.
    ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1" \
      ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" \
        -R "$SANITIZED_TESTS" -LE stress
  fi
}

for config in "${CONFIGS[@]}"; do
  run_config "$config"
done

echo "=== all configurations green ==="
