// Quickstart: the scalable range-lock API in five minutes.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <thread>
#include <vector>

#include "src/core/fair_list_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/list_rw_range_lock.h"

int main() {
  // 1. Exclusive range lock (paper §4.1): disjoint ranges proceed in parallel,
  //    overlapping ranges serialize.
  srl::ListRangeLock mutex_lock;
  {
    auto a = mutex_lock.Lock({0, 100});     // holds [0,100)
    auto b = mutex_lock.Lock({100, 200});   // adjacent — no conflict (end is exclusive)
    std::cout << "holding [0,100) and [100,200) simultaneously\n";
    mutex_lock.Unlock(b);
    mutex_lock.Unlock(a);
  }

  // RAII style:
  {
    srl::ListRangeLock::Guard guard(mutex_lock, {42, 64});
    std::cout << "holding [42,64) via RAII guard\n";
  }

  // 2. Reader-writer variant (§4.2): overlapping readers share; writers exclude.
  srl::ListRwRangeLock rw_lock;
  {
    auto r1 = rw_lock.LockRead({0, 1000});
    auto r2 = rw_lock.LockRead({500, 1500});  // overlaps r1, but both are readers
    std::cout << "two overlapping readers inside\n";
    rw_lock.Unlock(r1);
    rw_lock.Unlock(r2);
  }

  // 3. Real concurrency: each thread updates its own slice of a shared array under a
  //    write range; a full-range read takes a consistent snapshot.
  constexpr int kThreads = 4;
  constexpr int kSlotsPerThread = 8;
  std::vector<long> data(kThreads * kSlotsPerThread, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const srl::Range r{static_cast<uint64_t>(t) * kSlotsPerThread,
                         static_cast<uint64_t>(t + 1) * kSlotsPerThread};
      for (int iter = 0; iter < 1000; ++iter) {
        srl::ListRwRangeLock::WriteGuard g(rw_lock, r);
        for (uint64_t i = r.start; i < r.end; ++i) {
          data[i] += 1;
        }
      }
    });
  }
  long snapshot_total = -1;
  {
    // A concurrent full-range reader always sees each slice internally consistent.
    srl::ListRwRangeLock::ReadGuard g(rw_lock, srl::Range::Full());
    snapshot_total = 0;
    for (long v : data) {
      snapshot_total += v;
    }
  }
  for (auto& th : threads) {
    th.join();
  }
  std::cout << "snapshot total (consistent at some instant): " << snapshot_total << "\n";
  long final_total = 0;
  for (long v : data) {
    final_total += v;
  }
  std::cout << "final total: " << final_total << " (expected "
            << kThreads * kSlotsPerThread * 1000 << ")\n";

  // 4. Fast path (§4.5) for mostly-uncontended locks, and the fairness layer (§4.3)
  //    for starvation-sensitive workloads.
  srl::ListRangeLock fast(srl::ListRangeLock::Options{.enable_fast_path = true});
  auto h = fast.Lock({0, 10});
  fast.Unlock(h);  // constant-step acquire/release when uncontended
  srl::FairListRangeLock fair;
  auto fh = fair.Lock({0, 10});
  fair.Unlock(fh);
  std::cout << "fast-path and fair variants work identically from the caller's side\n";
  return 0;
}
