// vm_playground: a tour of the simulated VM subsystem (§5) — watch VMAs split, merge
// and boundary-move, and see the speculative mprotect path in action.
//
// Build & run:  ./build/examples/vm_playground
#include <iostream>
#include <thread>

#include "src/metis/arena_allocator.h"
#include "src/vm/address_space.h"

namespace {

void Dump(srl::vm::AddressSpace& as, const char* label) {
  std::cout << label << ":\n";
  for (const auto& v : as.SnapshotVmas()) {
    std::cout << "  [" << std::hex << v.start << ", " << v.end << std::dec << ")  "
              << ((v.prot & srl::vm::kProtRead) ? "r" : "-")
              << ((v.prot & srl::vm::kProtWrite) ? "w" : "-")
              << ((v.prot & srl::vm::kProtExec) ? "x" : "-") << "\n";
  }
}

}  // namespace

int main() {
  using namespace srl::vm;
  constexpr uint64_t kPage = AddressSpace::kPageSize;

  // The refined variant: speculative mprotect + page-granular fault locking.
  AddressSpace as(VmVariant::kListRefined);

  // mmap an 8-page region and carve it up.
  const uint64_t base = as.Mmap(8 * kPage, kProtNone);
  Dump(as, "after mmap(8 pages, PROT_NONE)");

  as.Mprotect(base, 2 * kPage, kProtRead | kProtWrite);
  Dump(as, "after mprotect(first 2 pages, RW)  — structural split, full-range lock");

  as.Mprotect(base + 2 * kPage, 2 * kPage, kProtRead | kProtWrite);
  Dump(as, "after mprotect(next 2 pages, RW)   — Figure 2 boundary move, SPECULATIVE");

  as.Mprotect(base + 2 * kPage, 2 * kPage, kProtNone);
  Dump(as, "after shrinking back               — tail boundary move, SPECULATIVE");

  std::cout << "\npage faults: touching committed memory succeeds, PROT_NONE faults:\n";
  std::cout << "  write to page 0: " << (as.PageFault(base, true) ? "ok" : "SIGSEGV")
            << "\n";
  std::cout << "  write to page 5: " << (as.PageFault(base + 5 * kPage, true) ? "ok" : "SIGSEGV")
            << "\n";

  // The fault path is trylock-first (mmap_read_trylock in the kernel): uncontended
  // faults get in without ever preparing to block. Demonstrate the fallback by faulting
  // while another thread holds the full-range write lock, as an mmap would.
  std::cout << "\ntrylock-first faulting: a full-range writer forces the fault path "
               "onto the blocking fallback:\n";
  {
    void* wh = as.Lock().LockFullWrite();
    std::thread faulter([&] { as.PageFault(base, false); });
    // Give the faulter a moment to hit the trylock and fail it.
    while (as.Stats().fault_try_fallback.load() == 0) {
      std::this_thread::yield();
    }
    as.Lock().UnlockWrite(wh);  // the blocked fault now admits
    faulter.join();
  }
  std::cout << "  faults admitted without blocking: " << as.Stats().fault_try_ok.load()
            << "\n  faults that fell back to blocking: "
            << as.Stats().fault_try_fallback.load() << "\n";

  // The glibc-arena pattern at a larger scale, via the allocator simulation.
  std::cout << "\nrunning a glibc-style arena through 2000 allocations...\n";
  {
    srl::metis::ArenaAllocator arena(as, /*arena_pages=*/512, /*grow_chunk_pages=*/4);
    for (int i = 0; i < 2000; ++i) {
      arena.Alloc(700);
      if (i % 500 == 499) {
        arena.Reset();  // trim: shrink mprotect + MADV_DONTNEED
      }
    }
  }

  const VmStats& st = as.Stats();
  std::cout << "VM operation counts:\n"
            << "  mmaps:           " << st.mmaps.load() << "\n"
            << "  mprotects:       " << st.mprotects.load() << "\n"
            << "  page faults:     " << st.Faults() << " (" << st.MajorFaults()
            << " major)\n"
            << "  speculative ok:  " << st.spec_success.load() << "\n"
            << "  spec fallbacks:  " << st.spec_fallback.load() << "\n"
            << "  spec retries:    " << st.spec_retries.load() << "\n"
            << "  speculation rate: " << st.SpeculationSuccessRate() * 100.0 << "%  "
            << "(the paper reports >99% for this pattern)\n";
  return as.CheckInvariants() ? 0 : 1;
}
