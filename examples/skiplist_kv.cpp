// skiplist_kv: the range-lock-based skip list (§6) as a concurrent ordered set,
// compared against the classic per-node-lock design on the same workload.
//
// Build & run:  ./build/examples/skiplist_kv
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "src/harness/prng.h"
#include "src/skiplist/optimistic_skiplist.h"
#include "src/skiplist/range_lock_skiplist.h"

namespace {

template <typename ListT>
double RunWorkload(ListT& list, int threads, int ops_per_thread) {
  std::atomic<uint64_t> hits{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      srl::Xoshiro256 rng(0xabc + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const uint64_t key = 1 + rng.NextBelow(100000);
        const double roll = rng.NextDouble();
        if (roll < 0.1) {
          list.Insert(key);
        } else if (roll < 0.2) {
          list.Remove(key);
        } else if (list.Contains(key)) {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ListT::QuiesceLocal();
    });
  }
  for (auto& th : pool) {
    th.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << "  " << threads << " threads x " << ops_per_thread << " ops in " << secs
            << "s, " << hits.load() << " membership hits, " << list.DebugCount()
            << " keys remain\n";
  return secs;
}

}  // namespace

int main() {
  constexpr int kThreads = 4;
  constexpr int kOps = 50000;

  std::cout << "orig (Herlihy optimistic, a spin lock in every node):\n";
  srl::OptimisticSkipList orig;
  for (uint64_t k = 1; k <= 50000; ++k) {
    orig.Insert(k * 2);
  }
  RunWorkload(orig, kThreads, kOps);

  std::cout << "range-list (one range lock for the whole structure, §6):\n";
  srl::RangeLockSkipList<srl::ListLockPolicy> range_list;
  for (uint64_t k = 1; k <= 50000; ++k) {
    range_list.Insert(k * 2);
  }
  RunWorkload(range_list, kThreads, kOps);

  std::cout << "\nper-node memory, height-1 node: orig "
            << srl::OptimisticSkipList::NodeBytes(0) << "B vs range-list "
            << srl::RangeLockSkipList<srl::ListLockPolicy>::NodeBytes(0)
            << "B (no embedded lock; with pthread_mutex the gap is 40+ bytes)\n";
  return 0;
}
