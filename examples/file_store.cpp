// file_store: byte-range locking for a shared "file" — the original use case of range
// locks (§1: "multiple writers would want to write into different parts of the same
// file" without a whole-file lock).
//
// A FileStore holds fixed-size records in one flat byte buffer. Writers lock only the
// byte range of the record they update; readers lock the range they scan. Record
// payloads carry a checksum, so any torn read — the symptom of broken range exclusion —
// is detected immediately.
//
// Build & run:  ./build/examples/file_store
#include <atomic>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "src/core/list_rw_range_lock.h"
#include "src/harness/prng.h"

namespace {

constexpr uint64_t kRecordSize = 256;
constexpr uint64_t kRecords = 128;
constexpr int kWriters = 3;
constexpr int kReaders = 2;
constexpr int kOpsPerWriter = 20000;

struct Record {
  uint64_t sequence;
  uint64_t payload[29];
  uint64_t checksum;  // sum of sequence and payload words
};
static_assert(sizeof(Record) <= kRecordSize);

class FileStore {
 public:
  FileStore() : bytes_(kRecords * kRecordSize, 0) {}

  void WriteRecord(uint64_t index, uint64_t sequence, srl::Xoshiro256& rng) {
    const uint64_t offset = index * kRecordSize;
    srl::ListRwRangeLock::WriteGuard g(lock_, {offset, offset + kRecordSize});
    Record rec{};
    rec.sequence = sequence;
    rec.checksum = sequence;
    for (uint64_t& w : rec.payload) {
      w = rng.Next();
      rec.checksum += w;
    }
    std::memcpy(bytes_.data() + offset, &rec, sizeof rec);
  }

  // Returns false if the record is torn (checksum mismatch).
  bool ReadRecord(uint64_t index) const {
    const uint64_t offset = index * kRecordSize;
    srl::ListRwRangeLock::ReadGuard g(lock_, {offset, offset + kRecordSize});
    Record rec;
    std::memcpy(&rec, bytes_.data() + offset, sizeof rec);
    uint64_t sum = rec.sequence;
    for (uint64_t w : rec.payload) {
      sum += w;
    }
    return sum == rec.checksum;
  }

  // Whole-file scan under one full-range read acquisition.
  bool ScanAll() const {
    srl::ListRwRangeLock::ReadGuard g(lock_, srl::Range::Full());
    for (uint64_t i = 0; i < kRecords; ++i) {
      Record rec;
      std::memcpy(&rec, bytes_.data() + i * kRecordSize, sizeof rec);
      uint64_t sum = rec.sequence;
      for (uint64_t w : rec.payload) {
        sum += w;
      }
      if (sum != rec.checksum) {
        return false;
      }
    }
    return true;
  }

 private:
  mutable srl::ListRwRangeLock lock_;
  std::vector<uint8_t> bytes_;
};

}  // namespace

int main() {
  FileStore store;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      srl::Xoshiro256 rng(100 + w);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        store.WriteRecord(rng.NextBelow(kRecords), static_cast<uint64_t>(i), rng);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      srl::Xoshiro256 rng(200 + r);
      while (!stop.load()) {
        const bool whole_file = rng.NextChance(0.05);
        const bool ok = whole_file ? store.ScanAll() : store.ReadRecord(rng.NextBelow(kRecords));
        if (!ok) {
          torn.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads[w].join();
  }
  stop.store(true);
  for (std::size_t i = kWriters; i < threads.size(); ++i) {
    threads[i].join();
  }

  std::cout << "writers: " << kWriters << " x " << kOpsPerWriter << " record updates\n"
            << "readers: " << reads.load() << " scans, torn reads: " << torn.load()
            << (torn.load() == 0 ? " (range exclusion held)" : " (BUG!)") << "\n";
  return torn.load() == 0 ? 0 : 1;
}
