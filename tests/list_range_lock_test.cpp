// Tests for the exclusive list-based range lock (§4.1) and its fast-path / fairness
// configurations.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fair_list_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::StaysFalse;

TEST(ListRangeLockTest, LockUnlockSingleThread) {
  ListRangeLock lock;
  ListRangeLock::Handle h = lock.Lock({10, 20});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(lock.DebugHeldCount(), 1);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  lock.Unlock(h);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

TEST(ListRangeLockTest, DisjointRangesHeldTogether) {
  ListRangeLock lock;
  auto h1 = lock.Lock({0, 10});
  auto h2 = lock.Lock({20, 30});
  auto h3 = lock.Lock({10, 20});  // fills the gap; adjacent, not overlapping
  EXPECT_EQ(lock.DebugHeldCount(), 3);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  lock.Unlock(h2);
  lock.Unlock(h1);
  lock.Unlock(h3);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

TEST(ListRangeLockTest, SortedInsertionAnyOrder) {
  ListRangeLock lock;
  auto h3 = lock.Lock({40, 50});
  auto h1 = lock.Lock({0, 10});
  auto h2 = lock.Lock({20, 30});
  EXPECT_TRUE(lock.DebugInvariantHolds());
  EXPECT_EQ(lock.DebugHeldCount(), 3);
  lock.Unlock(h1);
  lock.Unlock(h2);
  lock.Unlock(h3);
}

TEST(ListRangeLockTest, OverlapBlocksUntilRelease) {
  ListRangeLock lock;
  auto h = lock.Lock({0, 10});
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    auto h2 = lock.Lock({5, 15});
    acquired.store(true);
    lock.Unlock(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return acquired.load(); }));
  lock.Unlock(h);
  blocked.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ListRangeLockTest, FullRangeBlocksEverything) {
  ListRangeLock lock;
  auto h = lock.Lock(Range::Full());
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    auto h2 = lock.Lock({1000, 1001});
    acquired.store(true);
    lock.Unlock(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return acquired.load(); }));
  lock.Unlock(h);
  blocked.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ListRangeLockTest, AdjacentRangesDoNotBlock) {
  ListRangeLock lock;
  auto h = lock.Lock({0, 10});
  std::atomic<bool> acquired{false};
  std::thread other([&] {
    auto h2 = lock.Lock({10, 20});
    acquired.store(true);
    lock.Unlock(h2);
  });
  other.join();
  EXPECT_TRUE(acquired.load());
  lock.Unlock(h);
}

// The §3 motivating example: A=[1,3) held, B=[2,7) blocked on A, C=[4,5) must proceed —
// the list design does not serialize C behind B the way the kernel tree lock does.
TEST(ListRangeLockTest, NonOverlappingRequestNotBlockedBehindWaiter) {
  ListRangeLock lock;
  auto a = lock.Lock({1, 3});
  std::atomic<bool> b_acquired{false};
  std::thread b([&] {
    auto h = lock.Lock({2, 7});
    b_acquired.store(true);
    lock.Unlock(h);
  });
  // B cannot be observed waiting from outside (a blocked list requester inserts nothing
  // until the conflict clears), so bound the observation instead of sleeping blind: B
  // must not get in while A holds [1,3).
  EXPECT_TRUE(StaysFalse([&] { return b_acquired.load(); }));
  std::atomic<bool> c_acquired{false};
  std::thread c([&] {
    auto h = lock.Lock({4, 5});
    c_acquired.store(true);
    lock.Unlock(h);
  });
  c.join();  // C terminates while A is still held and B still waits
  EXPECT_TRUE(c_acquired.load());
  EXPECT_FALSE(b_acquired.load());
  lock.Unlock(a);
  b.join();
  EXPECT_TRUE(b_acquired.load());
}

TEST(ListRangeLockTest, LockBoundedUncontendedSucceeds) {
  ListRangeLock lock;
  ListRangeLock::Handle h = nullptr;
  EXPECT_TRUE(lock.LockBounded({0, 10}, 0, &h));
  ASSERT_NE(h, nullptr);
  lock.Unlock(h);
}

TEST(ListRangeLockFastPathTest, SingleThreadUsesFastPath) {
  ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = true});
  for (int i = 0; i < 1000; ++i) {
    auto h = lock.Lock({0, 100});
    lock.Unlock(h);
  }
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

TEST(ListRangeLockFastPathTest, FastPathHolderBlocksOverlap) {
  ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = true});
  auto h = lock.Lock({0, 10});  // fast path (empty list)
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    auto h2 = lock.Lock({5, 15});  // must unmark-convert the fast-path node, then wait
    acquired.store(true);
    lock.Unlock(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return acquired.load(); }));
  lock.Unlock(h);  // fast-path release CAS fails (converted); regular release
  blocked.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ListRangeLockFastPathTest, FastPathHolderAllowsDisjoint) {
  ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = true});
  auto h = lock.Lock({0, 10});
  std::atomic<bool> acquired{false};
  std::thread other([&] {
    auto h2 = lock.Lock({50, 60});
    acquired.store(true);
    lock.Unlock(h2);
  });
  other.join();
  EXPECT_TRUE(acquired.load());
  lock.Unlock(h);
}

// Randomized exclusion stress, parameterized over (threads, fast_path, fairness).
struct StressParam {
  int threads;
  bool fast_path;
  bool fair;
};

class ListExStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ListExStressTest, RandomRangesNeverOverlap) {
  const StressParam param = GetParam();
  constexpr uint64_t kUniverse = 128;
  constexpr int kIters = 4000;
  testing::RangeOracle oracle(kUniverse);

  auto body = [&](auto& lock, int tid) {
    Xoshiro256 rng(0x5eed0000 + tid);
    for (int i = 0; i < kIters; ++i) {
      uint64_t a = rng.NextBelow(kUniverse);
      uint64_t b = rng.NextBelow(kUniverse);
      if (a > b) {
        std::swap(a, b);
      }
      const Range r{a, b + 1};
      auto h = lock.Lock(r);
      oracle.EnterWrite(r);
      oracle.ExitWrite(r);
      lock.Unlock(h);
    }
  };

  auto run = [&](auto& lock) {
    std::vector<std::thread> threads;
    for (int t = 0; t < param.threads; ++t) {
      threads.emplace_back([&, t] { body(lock, t); });
    }
    for (auto& th : threads) {
      th.join();
    }
  };

  if (param.fair) {
    FairListRangeLock lock(FairListRangeLock::Options{
        .inner = {.enable_fast_path = param.fast_path}, .patience = 4});
    run(lock);
  } else {
    ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = param.fast_path});
    run(lock);
    EXPECT_EQ(lock.DebugHeldCount(), 0);
    EXPECT_TRUE(lock.DebugInvariantHolds());
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListExStressTest,
    ::testing::Values(StressParam{2, false, false}, StressParam{4, false, false},
                      StressParam{8, false, false}, StressParam{4, true, false},
                      StressParam{8, true, false}, StressParam{4, false, true},
                      StressParam{8, true, true}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return "t" + std::to_string(info.param.threads) +
             (info.param.fast_path ? "_fp" : "") + (info.param.fair ? "_fair" : "");
    });

// Pinpoint stress on a single hot range: maximum CAS contention at one insertion point.
TEST(ListRangeLockTest, HotSpotContention) {
  ListRangeLock lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto h = lock.Lock({100, 200});
        counter += 1;  // protected by the range
        lock.Unlock(h);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

// Handles may be released by a different thread than the acquirer (the VM subsystem
// moves guards across logical contexts).
TEST(ListRangeLockTest, CrossThreadRelease) {
  ListRangeLock lock;
  auto h = lock.Lock({0, 10});
  std::thread releaser([&] { lock.Unlock(h); });
  releaser.join();
  auto h2 = lock.Lock({0, 10});  // must be acquirable again
  lock.Unlock(h2);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

// TSan regression test for the insert-CAS publication ordering (the memory-ordering
// audit of the lock-free-list PR): plain, non-atomic data is mutated only under
// overlapping range acquisitions, so every inter-thread edge must flow through the
// lock's release (mark fetch_add / releasing CAS) into the next acquirer's insertion.
// If the relaxed node->next store or a too-weak CAS ordering ever leaked past the
// publication point, TSan would flag a data race on `slots`/`total` here; the final
// sums double as a plain-build exclusion check.
TEST(ListRangeLockTest, GuardedPlainDataHasNoRace) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  constexpr uint64_t kSlots = 8;
  ListRangeLock lock;
  uint64_t slots[kSlots] = {};  // deliberately non-atomic
  uint64_t wide_passes = 0;     // mutated under the covering range only
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x7a50 + t);
      for (int i = 0; i < kIters; ++i) {
        if (rng.NextChance(0.05)) {
          // Covering acquisition: reads and writes every slot, so it must be ordered
          // against every narrow holder.
          auto h = lock.Lock({0, kSlots});
          uint64_t sum = 0;
          for (uint64_t s = 0; s < kSlots; ++s) {
            sum += slots[s];
          }
          wide_passes += 1 + (sum >> 63);  // counts passes; keeps the reads live
          lock.Unlock(h);
        } else {
          const uint64_t s = rng.NextBelow(kSlots);
          auto h = lock.Lock({s, s + 2});  // overlaps the neighbouring slot's range
          ++slots[s];
          lock.Unlock(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t total = 0;
  for (uint64_t s = 0; s < kSlots; ++s) {
    total += slots[s];
  }
  EXPECT_GT(total, 0u);
  EXPECT_GT(wide_passes, 0u);
}

// Same shape for the §4.5 fast path, whose ordering is subtler: the fast-path release
// is a CAS back to empty (not a mark), and a fast-path holder's node can be converted
// into a regular list node by a concurrent acquirer's strip-CAS — the handoff the
// acq_rel orderings at the head must cover. Two threads hammer ONE range so the list
// keeps collapsing to empty and re-entering the fast path, crossing the strip-convert
// boundary constantly.
TEST(ListRangeLockFastPathTest, GuardedPlainDataHasNoRaceAcrossStripConvert) {
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = true});
  uint64_t counter = 0;  // deliberately non-atomic
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto h = lock.Lock({10, 20});
        ++counter;
        lock.Unlock(h);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace srl
