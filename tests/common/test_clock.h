// Bounded-retry timing helpers for concurrency tests.
//
// The anti-pattern these replace: `sleep_for(30ms); EXPECT_FALSE(acquired)`. A fixed
// sleep encodes a machine-speed assumption twice over — on a slow or oversubscribed CI
// host the observed thread may not even have reached the interesting state when the
// sleep expires, and on a fast machine the test wastes the full sleep even when the
// outcome is already decided. Both helpers poll instead, so a genuine lock violation is
// reported as soon as it happens and a setup condition is waited for only as long as it
// actually takes.
#ifndef SRL_TESTS_COMMON_TEST_CLOCK_H_
#define SRL_TESTS_COMMON_TEST_CLOCK_H_

#include <chrono>
#include <thread>

namespace srl::testing {

// Generous default for positive waits ("the blocked thread must get in after release"):
// a correct implementation satisfies the predicate in microseconds, so the deadline only
// bounds how long a *broken* implementation can hang the suite.
inline constexpr std::chrono::steady_clock::duration kEventuallyDeadline =
    std::chrono::seconds(10);

// Observation window for negative checks ("the overlapping request must still be
// blocked"). A violation typically shows up immediately, so polling for this long —
// instead of sleeping it — keeps correct runs short without weakening the check.
inline constexpr std::chrono::steady_clock::duration kBlockedWindow =
    std::chrono::milliseconds(50);

// Polls `pred` until it returns true or `deadline` elapses. Returns whether the
// predicate became true. Polls densely at first (catching fast transitions without a
// syscall), then backs off to yields so a starved peer thread can run.
template <typename Pred>
bool EventuallyTrue(Pred&& pred, std::chrono::steady_clock::duration deadline = kEventuallyDeadline) {
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  for (int i = 0; ; ++i) {
    if (pred()) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= give_up) {
      return pred();
    }
    if (i < 128) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

// Watches `pred` for `window` and returns true iff it never became true — the deflaked
// replacement for `sleep_for(30ms); EXPECT_FALSE(pred)`. A wrongly-admitted thread
// fails the check the moment it gets in; a correct lock pays exactly `window`.
template <typename Pred>
bool StaysFalse(Pred&& pred, std::chrono::steady_clock::duration window = kBlockedWindow) {
  return !EventuallyTrue(pred, window);
}

}  // namespace srl::testing

#endif  // SRL_TESTS_COMMON_TEST_CLOCK_H_
