// Self-test for the RangeOracle: a test for the test infrastructure. Every lock test in
// the repository trusts the oracle to latch exclusion violations; this suite proves the
// oracle actually fires when violations are injected, and stays silent when the access
// pattern is legal. If the oracle were broken (never latching), the whole conformance
// battery would pass vacuously — this is the guard against that.
#include <gtest/gtest.h>

#include "src/core/range.h"
#include "tests/common/range_oracle.h"

namespace srl::testing {
namespace {

constexpr uint64_t kUniverse = 64;

TEST(RangeOracleTest, StartsQuiescentAndClean) {
  RangeOracle oracle(kUniverse);
  EXPECT_TRUE(oracle.Quiescent());
  EXPECT_FALSE(oracle.Violated());
}

TEST(RangeOracleTest, DisjointWritersAreLegal) {
  RangeOracle oracle(kUniverse);
  oracle.EnterWrite(Range{0, 10});
  oracle.EnterWrite(Range{10, 20});  // adjacent, not overlapping
  EXPECT_FALSE(oracle.Violated());
  EXPECT_FALSE(oracle.Quiescent());
  oracle.ExitWrite(Range{0, 10});
  oracle.ExitWrite(Range{10, 20});
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

TEST(RangeOracleTest, DetectsWriteWriteOverlap) {
  RangeOracle oracle(kUniverse);
  oracle.EnterWrite(Range{0, 10});
  EXPECT_FALSE(oracle.Violated());
  oracle.EnterWrite(Range{5, 15});  // overlaps [5,10)
  EXPECT_TRUE(oracle.Violated());
}

TEST(RangeOracleTest, DetectsSingleAddressWriteOverlap) {
  RangeOracle oracle(kUniverse);
  oracle.EnterWrite(Range{7, 8});
  oracle.EnterWrite(Range{7, 8});
  EXPECT_TRUE(oracle.Violated());
}

TEST(RangeOracleTest, ConcurrentReadersAreLegal) {
  RangeOracle oracle(kUniverse);
  oracle.EnterRead(Range{0, 32});
  oracle.EnterRead(Range{16, 48});
  EXPECT_FALSE(oracle.Violated());
  oracle.ExitRead(Range{0, 32});
  oracle.ExitRead(Range{16, 48});
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

TEST(RangeOracleTest, DetectsReaderEnteringWriterRange) {
  RangeOracle oracle(kUniverse);
  oracle.EnterWrite(Range{10, 20});
  oracle.EnterRead(Range{15, 25});  // reader walks into a writer's slots
  EXPECT_TRUE(oracle.Violated());
}

TEST(RangeOracleTest, DetectsWriterEnteringReaderRange) {
  RangeOracle oracle(kUniverse);
  oracle.EnterRead(Range{10, 20});
  oracle.EnterWrite(Range{15, 25});  // writer walks into a reader's slots
  EXPECT_TRUE(oracle.Violated());
}

TEST(RangeOracleTest, ViolationLatchesAcrossExit) {
  RangeOracle oracle(kUniverse);
  oracle.EnterWrite(Range{0, 4});
  oracle.EnterWrite(Range{0, 4});
  oracle.ExitWrite(Range{0, 4});
  oracle.ExitWrite(Range{0, 4});
  // Both holders are gone, but the recorded violation must survive for the assert.
  EXPECT_TRUE(oracle.Violated());
}

TEST(RangeOracleTest, AccessesBeyondUniverseAreClipped) {
  RangeOracle oracle(kUniverse);
  oracle.EnterWrite(Range{kUniverse - 2, kUniverse + 100});
  oracle.EnterWrite(Range{kUniverse + 1, kUniverse + 50});  // entirely out of bounds
  // The second write is invisible to the oracle (clipped), so no violation: this
  // documents that the oracle only checks addresses inside its universe.
  EXPECT_FALSE(oracle.Violated());
  oracle.ExitWrite(Range{kUniverse - 2, kUniverse + 100});
  EXPECT_TRUE(oracle.Quiescent());
}

TEST(RangeOracleTest, SequentialWritersAreLegal) {
  RangeOracle oracle(kUniverse);
  for (int pass = 0; pass < 3; ++pass) {
    oracle.EnterWrite(Range{0, kUniverse});
    oracle.ExitWrite(Range{0, kUniverse});
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

}  // namespace
}  // namespace srl::testing
