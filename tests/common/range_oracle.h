// Executable specification of range-lock exclusion, used by the lock test suites.
//
// The oracle models the protected resource as an array of per-address slots. A thread
// that believes it holds [start,end) for write flips every covered slot from 0 to -1 on
// entry (and back on exit); a reader increments the slot. Any observation of a competing
// holder — a writer finding a non-zero slot, a reader finding a writer — is a violation
// of the lock's exclusion guarantee and is latched for the test to assert on.
#ifndef SRL_TESTS_COMMON_RANGE_ORACLE_H_
#define SRL_TESTS_COMMON_RANGE_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/core/range.h"
#include "src/sync/cacheline.h"

namespace srl::testing {

class RangeOracle {
 public:
  explicit RangeOracle(uint64_t universe) : universe_(universe) {
    slots_ = std::make_unique<CacheAligned<std::atomic<int32_t>>[]>(universe);
  }

  void EnterWrite(const Range& r) {
    for (uint64_t i = r.start; i < r.end && i < universe_; ++i) {
      int32_t expected = 0;
      if (!slots_[i].value.compare_exchange_strong(expected, -1,
                                                   std::memory_order_acq_rel)) {
        violated_.store(true, std::memory_order_relaxed);
      }
    }
  }

  void ExitWrite(const Range& r) {
    for (uint64_t i = r.start; i < r.end && i < universe_; ++i) {
      slots_[i].value.store(0, std::memory_order_release);
    }
  }

  void EnterRead(const Range& r) {
    for (uint64_t i = r.start; i < r.end && i < universe_; ++i) {
      if (slots_[i].value.fetch_add(1, std::memory_order_acq_rel) < 0) {
        violated_.store(true, std::memory_order_relaxed);
      }
    }
  }

  void ExitRead(const Range& r) {
    for (uint64_t i = r.start; i < r.end && i < universe_; ++i) {
      slots_[i].value.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  bool Violated() const { return violated_.load(std::memory_order_acquire); }

  // All slots idle — every holder has exited.
  bool Quiescent() const {
    for (uint64_t i = 0; i < universe_; ++i) {
      if (slots_[i].value.load(std::memory_order_acquire) != 0) {
        return false;
      }
    }
    return true;
  }

 private:
  uint64_t universe_;
  std::unique_ptr<CacheAligned<std::atomic<int32_t>>[]> slots_;
  std::atomic<bool> violated_{false};
};

}  // namespace srl::testing

#endif  // SRL_TESTS_COMMON_RANGE_ORACLE_H_
