// Tests for the bucketed lock-free range lock: bucket geometry, multi-bucket sibling
// chains, the all-buckets short-circuit, partial-failure release on timed acquisition,
// cross-thread release, and destructor collection of marked residue. Exclusion and
// try/timed semantics are covered by the shared conformance and fuzz batteries; this
// file pins down what is specific to the bucketed structure.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/list_lockfree_range_lock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using Options = ListLockFreeRangeLock::Options;

TEST(ListLockFreeRangeLockTest, BucketCountClampsAndRoundsToPowerOfTwo) {
  EXPECT_EQ(ListLockFreeRangeLock(Options{.buckets = 0}).bucket_count(), 1u);
  EXPECT_EQ(ListLockFreeRangeLock(Options{.buckets = 1}).bucket_count(), 1u);
  EXPECT_EQ(ListLockFreeRangeLock(Options{.buckets = 3}).bucket_count(), 4u);
  EXPECT_EQ(ListLockFreeRangeLock(Options{.buckets = 16}).bucket_count(), 16u);
  EXPECT_EQ(ListLockFreeRangeLock(Options{.buckets = 200}).bucket_count(), 64u)
      << "covered-bucket mask is one uint64_t: 64 is the ceiling";
  EXPECT_EQ(ListLockFreeRangeLock(Options{.window_shift = -5}).window_shift(), 0);
  EXPECT_EQ(ListLockFreeRangeLock(Options{.window_shift = 99}).window_shift(), 63);
}

TEST(ListLockFreeRangeLockTest, LockUnlockSingleThread) {
  ListLockFreeRangeLock lock(Options{.buckets = 16, .window_shift = 4});
  // {10, 20} sits inside windows 0..1 of 16: at most two buckets, at least one node.
  ListLockFreeRangeLock::Handle h = lock.Lock({10, 20});
  ASSERT_NE(h, nullptr);
  EXPECT_GE(lock.DebugHeldCount(), 1);
  EXPECT_LE(lock.DebugHeldCount(), 2);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  lock.Unlock(h);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

// A range spanning >= bucket_count windows short-circuits to every bucket: the handle
// chains exactly bucket_count sibling nodes, and one Unlock releases them all.
TEST(ListLockFreeRangeLockTest, WideRangeOwnsOneNodePerBucket) {
  ListLockFreeRangeLock lock(Options{.buckets = 8, .window_shift = 0});
  auto h = lock.Lock({0, 8});  // 8 windows of size 1 -> all-buckets short-circuit
  EXPECT_EQ(lock.DebugHeldCount(), 8) << "held count counts nodes, not acquisitions";
  EXPECT_TRUE(lock.DebugInvariantHolds());
  // A disjoint range can still be acquired: same buckets, non-overlapping -> the
  // sorted lists hold both without conflict.
  auto h2 = lock.Lock({100, 108});
  EXPECT_EQ(lock.DebugHeldCount(), 16);
  lock.Unlock(h);
  EXPECT_EQ(lock.DebugHeldCount(), 8);
  lock.Unlock(h2);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

TEST(ListLockFreeRangeLockTest, SingleBucketDegeneratesToOneSortedList) {
  ListLockFreeRangeLock lock(Options{.buckets = 1, .window_shift = 4});
  auto h1 = lock.Lock({0, 10});
  auto h2 = lock.Lock({20, 30});
  auto h3 = lock.Lock({10, 20});  // adjacent, not overlapping
  EXPECT_EQ(lock.DebugHeldCount(), 3);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  ListLockFreeRangeLock::Handle h4 = nullptr;
  EXPECT_FALSE(lock.TryLock({5, 25}, &h4)) << "overlaps all three held ranges";
  lock.Unlock(h3);
  lock.Unlock(h1);
  lock.Unlock(h2);  // out-of-order release is fine: marks are independent
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

TEST(ListLockFreeRangeLockTest, TryLockConflictFailsWithoutResidue) {
  ListLockFreeRangeLock lock(Options{.buckets = 8, .window_shift = 0});
  auto held = lock.Lock({5, 15});
  const int held_nodes = lock.DebugHeldCount();
  ListLockFreeRangeLock::Handle h = nullptr;
  EXPECT_FALSE(lock.TryLock({10, 20}, &h));
  EXPECT_EQ(lock.DebugHeldCount(), held_nodes)
      << "failed TryLock left an unmarked node behind";
  EXPECT_TRUE(lock.DebugInvariantHolds());
  ASSERT_TRUE(lock.TryLock({50, 60}, &h)) << "disjoint range must not be refused";
  lock.Unlock(h);
  lock.Unlock(held);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

// Timed acquisition failing at a later bucket must release the already-inserted prefix.
// Geometry: with 8 buckets and window_shift 0, window 16 Fibonacci-hashes to bucket 7,
// so a holder of {16, 17} conflicts with an all-buckets range in the LAST bucket the
// ascending-order insertion reaches — after seven prefix nodes are already in place.
TEST(ListLockFreeRangeLockTest, TimedFailureReleasesInsertedPrefix) {
  ListLockFreeRangeLock lock(Options{.buckets = 8, .window_shift = 0});
  auto holder = lock.Lock({16, 17});
  ASSERT_EQ(lock.DebugHeldCount(), 1) << "geometry drifted: holder must cover 1 bucket";
  ListLockFreeRangeLock::Handle h = nullptr;
  EXPECT_FALSE(lock.LockFor({0, 100}, 2ms, &h));
  EXPECT_EQ(lock.DebugHeldCount(), 1)
      << "aborted multi-bucket acquisition left prefix nodes held";
  EXPECT_TRUE(lock.DebugInvariantHolds());
  lock.Unlock(holder);
  // The marked prefix residue must not block anyone: the full range is acquirable now.
  ASSERT_TRUE(lock.LockFor({0, 100}, 1s, &h));
  EXPECT_EQ(lock.DebugHeldCount(), 8);
  lock.Unlock(h);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

TEST(ListLockFreeRangeLockTest, HandleReleasableFromAnotherThread) {
  ListLockFreeRangeLock lock(Options{.buckets = 8, .window_shift = 0});
  auto h = lock.Lock({0, 32});  // all buckets
  std::thread releaser([&] { lock.Unlock(h); });
  releaser.join();
  EXPECT_EQ(lock.DebugHeldCount(), 0);
  ListLockFreeRangeLock::Handle h2 = nullptr;
  ASSERT_TRUE(lock.TryLock({0, 32}, &h2));
  lock.Unlock(h2);
}

// The mutual-exclusion argument across buckets: overlapping ranges always share at
// least one bucket, so a plain counter guarded by overlapping Lock calls from many
// threads must never tear — also the TSan target for the insertion-CAS publication.
TEST(ListLockFreeRangeLockTest, OverlappingGuardedCounterNeverTears) {
  ListLockFreeRangeLock lock(Options{.buckets = 16, .window_shift = 2});
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  uint64_t counter = 0;  // non-atomic on purpose
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Alternate narrow and wide overlapping ranges so multi-bucket and
        // single-bucket acquisitions exclude each other.
        const Range r = (i + t) % 3 == 0 ? Range{0, 64} : Range{4, 8};
        ListLockFreeRangeLock::Guard g(lock, r);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

// Destruction with marked residue in several buckets (released ranges no later
// traversal collected): the destructor must reclaim them without tripping its
// all-released assertions.
TEST(ListLockFreeRangeLockTest, DestructorCollectsMarkedResidue) {
  for (int round = 0; round < 4; ++round) {
    ListLockFreeRangeLock lock(Options{.buckets = 8, .window_shift = 0});
    // Two disjoint wide ranges (both cover >= 8 windows, hence every bucket): the
    // first acquisition takes every bucket's fast path, the second strips those
    // marked heads and inserts behind them. Both releases then find non-empty
    // buckets, so neither can fast-recycle — 16 marked nodes of residue per round
    // that only the destructor collects.
    auto h1 = lock.Lock({0, 40});
    auto h2 = lock.Lock({100, 140});
    lock.Unlock(h1);
    lock.Unlock(h2);
    EXPECT_EQ(lock.DebugHeldCount(), 0);
  }  // destructor runs here
}

}  // namespace
}  // namespace srl
