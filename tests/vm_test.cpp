// Single-threaded semantic tests for the simulated VM subsystem, including a
// property test that shadows every operation in a flat page→protection map.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/vm/address_space.h"

namespace srl::vm {
namespace {

constexpr uint64_t kPage = AddressSpace::kPageSize;

class VmSemanticsTest : public ::testing::TestWithParam<VmVariant> {
 protected:
  AddressSpace as_{GetParam()};
};

TEST_P(VmSemanticsTest, MmapCreatesVma) {
  const uint64_t addr = as_.Mmap(10 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(addr, 0u);
  EXPECT_EQ(addr % kPage, 0u);
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 1u);
  EXPECT_EQ(vmas[0], (VmaInfo{addr, addr + 10 * kPage, kProtRead | kProtWrite}));
  EXPECT_TRUE(as_.CheckInvariants());
}

TEST_P(VmSemanticsTest, MmapRoundsUpToPages) {
  const uint64_t addr = as_.Mmap(100, kProtRead);
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 1u);
  EXPECT_EQ(vmas[0].end - vmas[0].start, kPage);
  EXPECT_NE(addr, 0u);
}

TEST_P(VmSemanticsTest, MunmapWhole) {
  const uint64_t addr = as_.Mmap(4 * kPage, kProtRead);
  EXPECT_TRUE(as_.Munmap(addr, 4 * kPage));
  EXPECT_TRUE(as_.SnapshotVmas().empty());
  EXPECT_FALSE(as_.Munmap(addr, 4 * kPage)) << "already unmapped";
}

TEST_P(VmSemanticsTest, MunmapMiddleSplits) {
  const uint64_t a = as_.Mmap(10 * kPage, kProtRead);
  EXPECT_TRUE(as_.Munmap(a + 4 * kPage, 2 * kPage));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 4 * kPage, kProtRead}));
  EXPECT_EQ(vmas[1], (VmaInfo{a + 6 * kPage, a + 10 * kPage, kProtRead}));
  EXPECT_TRUE(as_.CheckInvariants());
}

TEST_P(VmSemanticsTest, MunmapDropsPages) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  EXPECT_TRUE(as_.PageFault(a, true));
  EXPECT_TRUE(as_.PageFault(a + kPage, true));
  EXPECT_EQ(as_.PresentPages(), 2u);
  EXPECT_TRUE(as_.Munmap(a, 4 * kPage));
  // The unlink is synchronous but the page sweep is deferred by default; DrainSweeps
  // is the edge after which the pages must be gone.
  as_.DrainSweeps();
  EXPECT_EQ(as_.PresentPages(), 0u);
}

TEST_P(VmSemanticsTest, InlineSweepsDropPagesAtMunmapReturn) {
  as_.SetDeferredSweeps(false);
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  EXPECT_TRUE(as_.PageFault(a, true));
  EXPECT_TRUE(as_.Munmap(a, 4 * kPage));
  EXPECT_EQ(as_.PresentPages(), 0u) << "inline mode sweeps under the write lock";
  EXPECT_EQ(as_.Stats().sweeps_queued.load(), 0u);
}

TEST_P(VmSemanticsTest, MunmapAsyncDefersTheSweep) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  EXPECT_TRUE(as_.PageFault(a, true));
  EXPECT_TRUE(as_.PageFault(a + kPage, true));
  EXPECT_TRUE(as_.MunmapAsync(a, 4 * kPage));
  EXPECT_TRUE(as_.SnapshotVmas().empty()) << "the unlink itself is synchronous";
  EXPECT_EQ(as_.PendingSweepPages(), 4u);
  EXPECT_EQ(as_.PresentPages(), 2u) << "async munmap never flushes in-call";
  as_.DrainSweeps();
  EXPECT_EQ(as_.PendingSweepPages(), 0u);
  EXPECT_EQ(as_.PresentPages(), 0u);
  EXPECT_TRUE(as_.CheckInvariants());
}

TEST_P(VmSemanticsTest, EmptyVmaMunmapSkipsTheSweep) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  EXPECT_TRUE(as_.Munmap(a, 4 * kPage)) << "no page was ever faulted in";
  EXPECT_EQ(as_.Stats().sweeps_skipped_empty.load(), 1u);
  EXPECT_EQ(as_.Stats().sweeps_queued.load(), 0u);
  // A populated VMA must not be skipped.
  const uint64_t b = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  EXPECT_TRUE(as_.PageFault(b, true));
  EXPECT_TRUE(as_.Munmap(b, 4 * kPage));
  EXPECT_EQ(as_.Stats().sweeps_skipped_empty.load(), 1u);
  EXPECT_EQ(as_.Stats().sweeps_queued.load(), 1u);
  as_.DrainSweeps();
  EXPECT_EQ(as_.PresentPages(), 0u);
}

TEST_P(VmSemanticsTest, MprotectWholeVma) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtNone);
  EXPECT_TRUE(as_.Mprotect(a, 4 * kPage, kProtRead | kProtWrite));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 1u);
  EXPECT_EQ(vmas[0].prot, kProtRead | kProtWrite);
}

TEST_P(VmSemanticsTest, MprotectHeadSplits) {
  const uint64_t a = as_.Mmap(8 * kPage, kProtNone);
  EXPECT_TRUE(as_.Mprotect(a, 3 * kPage, kProtRead | kProtWrite));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 3 * kPage, kProtRead | kProtWrite}));
  EXPECT_EQ(vmas[1], (VmaInfo{a + 3 * kPage, a + 8 * kPage, kProtNone}));
  EXPECT_TRUE(as_.CheckInvariants());
}

TEST_P(VmSemanticsTest, MprotectMiddleSplitsInThree) {
  const uint64_t a = as_.Mmap(9 * kPage, kProtRead);
  EXPECT_TRUE(as_.Mprotect(a + 3 * kPage, 3 * kPage, kProtNone));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 3u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 3 * kPage, kProtRead}));
  EXPECT_EQ(vmas[1], (VmaInfo{a + 3 * kPage, a + 6 * kPage, kProtNone}));
  EXPECT_EQ(vmas[2], (VmaInfo{a + 6 * kPage, a + 9 * kPage, kProtRead}));
}

// The Figure 2 scenario: protecting the head of the second of two adjacent VMAs with
// the first VMA's protection moves the boundary without changing the VMA count.
TEST_P(VmSemanticsTest, Figure2BoundaryMove) {
  const uint64_t a = as_.Mmap(8 * kPage, kProtNone);
  ASSERT_TRUE(as_.Mprotect(a, 2 * kPage, kProtRead | kProtWrite));  // structural split
  ASSERT_EQ(as_.SnapshotVmas().size(), 2u);
  // Now: [a, a+2p) RW | [a+2p, a+8p) NONE. Extend the RW region by two pages.
  ASSERT_TRUE(as_.Mprotect(a + 2 * kPage, 2 * kPage, kProtRead | kProtWrite));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 4 * kPage, kProtRead | kProtWrite}));
  EXPECT_EQ(vmas[1], (VmaInfo{a + 4 * kPage, a + 8 * kPage, kProtNone}));
  EXPECT_TRUE(as_.CheckInvariants());
}

TEST_P(VmSemanticsTest, MprotectTailMoveShrinks) {
  const uint64_t a = as_.Mmap(8 * kPage, kProtNone);
  ASSERT_TRUE(as_.Mprotect(a, 4 * kPage, kProtRead | kProtWrite));
  // Shrink the RW region: its tail joins the NONE neighbour.
  ASSERT_TRUE(as_.Mprotect(a + 2 * kPage, 2 * kPage, kProtNone));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 2 * kPage, kProtRead | kProtWrite}));
  EXPECT_EQ(vmas[1], (VmaInfo{a + 2 * kPage, a + 8 * kPage, kProtNone}));
}

TEST_P(VmSemanticsTest, MprotectMergesAllThree) {
  const uint64_t a = as_.Mmap(6 * kPage, kProtRead);
  ASSERT_TRUE(as_.Mprotect(a + 2 * kPage, 2 * kPage, kProtNone));
  ASSERT_EQ(as_.SnapshotVmas().size(), 3u);
  // Restoring the middle merges everything back into one VMA.
  ASSERT_TRUE(as_.Mprotect(a + 2 * kPage, 2 * kPage, kProtRead));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 1u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 6 * kPage, kProtRead}));
}

TEST_P(VmSemanticsTest, MprotectUnmappedFails) {
  EXPECT_FALSE(as_.Mprotect(0x100000, kPage, kProtRead));
  const uint64_t a = as_.Mmap(2 * kPage, kProtRead);
  // Range extending past the mapping (across the guard page) must fail too.
  EXPECT_FALSE(as_.Mprotect(a, 4 * kPage, kProtNone));
}

TEST_P(VmSemanticsTest, MprotectAcrossAdjacentVmas) {
  const uint64_t a = as_.Mmap(8 * kPage, kProtRead);
  ASSERT_TRUE(as_.Mprotect(a + 4 * kPage, 4 * kPage, kProtWrite | kProtRead));
  ASSERT_EQ(as_.SnapshotVmas().size(), 2u);
  // Spans both VMAs: structural path, single resulting VMA.
  ASSERT_TRUE(as_.Mprotect(a + 2 * kPage, 4 * kPage, kProtNone));
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 3u);
  EXPECT_EQ(vmas[1], (VmaInfo{a + 2 * kPage, a + 6 * kPage, kProtNone}));
  EXPECT_TRUE(as_.CheckInvariants());
}

TEST_P(VmSemanticsTest, PageFaultChecksProtection) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead);
  EXPECT_TRUE(as_.PageFault(a, false));
  EXPECT_FALSE(as_.PageFault(a, true)) << "write to read-only mapping";
  EXPECT_FALSE(as_.PageFault(a - kPage, false)) << "guard page is unmapped";
  ASSERT_TRUE(as_.Mprotect(a, 4 * kPage, kProtNone));
  EXPECT_FALSE(as_.PageFault(a, false)) << "PROT_NONE denies reads";
  EXPECT_EQ(as_.Stats().fault_errors.load(), 3u);
}

TEST_P(VmSemanticsTest, MajorFaultOnlyOnFirstTouch) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  EXPECT_TRUE(as_.PageFault(a, true));
  EXPECT_TRUE(as_.PageFault(a, true));
  EXPECT_TRUE(as_.PageFault(a + 1, false));  // same page
  EXPECT_EQ(as_.Stats().MajorFaults(), 1u);
  EXPECT_EQ(as_.Stats().Faults(), 3u);
}

TEST_P(VmSemanticsTest, MadviseDropsPages) {
  const uint64_t a = as_.Mmap(4 * kPage, kProtRead | kProtWrite);
  as_.PageFault(a, true);
  as_.PageFault(a + kPage, true);
  EXPECT_EQ(as_.PresentPages(), 2u);
  EXPECT_TRUE(as_.MadviseDontNeed(a, 4 * kPage));
  as_.DrainSweeps();  // deferred contract: pre-call installs are gone after the drain
  EXPECT_EQ(as_.PresentPages(), 0u);
  as_.PageFault(a, true);
  EXPECT_EQ(as_.Stats().MajorFaults(), 3u) << "retouch faults again";
}

// The glibc-arena pattern (§1, §5.2): after the first structural split, every
// expand/shrink is a boundary move and must take the speculative path.
TEST_P(VmSemanticsTest, ArenaPatternSpeculates) {
  const uint64_t a = as_.Mmap(64 * kPage, kProtNone);
  ASSERT_TRUE(as_.Mprotect(a, 4 * kPage, kProtRead | kProtWrite));  // structural
  for (int i = 1; i < 15; ++i) {
    ASSERT_TRUE(as_.Mprotect(a + 4 * i * kPage, 4 * kPage, kProtRead | kProtWrite));
  }
  for (int i = 14; i >= 1; --i) {
    ASSERT_TRUE(as_.Mprotect(a + 4 * i * kPage, 4 * kPage, kProtNone));
  }
  const auto vmas = as_.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 4 * kPage, kProtRead | kProtWrite}));
  const auto& st = as_.Stats();
  if (GetParam() == VmVariant::kListRefined || GetParam() == VmVariant::kTreeRefined ||
      GetParam() == VmVariant::kListMprotect || GetParam() == VmVariant::kTreeScoped ||
      GetParam() == VmVariant::kListScoped || GetParam() == VmVariant::kListLfScoped ||
      GetParam() == VmVariant::kSkiplistScoped) {
    // 28 of 29 mprotects are boundary moves; only the first split is structural.
    EXPECT_EQ(st.spec_success.load(), 28u);
    EXPECT_EQ(st.spec_fallback.load(), 1u);
    EXPECT_GE(st.SpeculationSuccessRate(), 0.9);
  } else {
    EXPECT_EQ(st.spec_success.load(), 0u);
  }
  if (as_.ScopedStructural()) {
    // The structural fallback of the arena pattern (the first split) must itself have
    // stayed range-scoped: no full-range write degradation for in-range mutations.
    EXPECT_GE(st.scoped_structural.load(), 1u);
    EXPECT_EQ(st.scoped_fallback.load(), 0u);
  }
  EXPECT_TRUE(as_.CheckInvariants());
}

// Randomized property test: every operation is shadowed in a flat page→prot map and
// fault outcomes are cross-checked for a sample of addresses after every step.
TEST_P(VmSemanticsTest, RandomOpsMatchFlatOracle) {
  Xoshiro256 rng(0x7777 + static_cast<uint64_t>(GetParam()));
  std::map<uint64_t, uint32_t> oracle;  // page index -> prot
  std::vector<std::pair<uint64_t, uint64_t>> regions;  // [start, end) of live mmaps

  const uint32_t prots[] = {kProtNone, kProtRead, kProtRead | kProtWrite};

  for (int step = 0; step < 1500; ++step) {
    const double roll = rng.NextDouble();
    if (regions.empty() || roll < 0.08) {
      const uint64_t pages = 1 + rng.NextBelow(32);
      const uint32_t prot = prots[rng.NextBelow(3)];
      const uint64_t addr = as_.Mmap(pages * kPage, prot);
      ASSERT_NE(addr, 0u);
      for (uint64_t p = 0; p < pages; ++p) {
        oracle[addr / kPage + p] = prot;
      }
      regions.push_back({addr, addr + pages * kPage});
    } else if (roll < 0.13) {
      // Unmap a random sub-range of a random region.
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t total = (re - rs) / kPage;
      const uint64_t off = rng.NextBelow(total);
      const uint64_t len = 1 + rng.NextBelow(total - off);
      as_.Munmap(rs + off * kPage, len * kPage);
      for (uint64_t p = 0; p < len; ++p) {
        oracle.erase(rs / kPage + off + p);
      }
    } else if (roll < 0.55) {
      // Mprotect a random sub-range; legality judged by the oracle.
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t total = (re - rs) / kPage;
      const uint64_t off = rng.NextBelow(total);
      const uint64_t len = 1 + rng.NextBelow(total - off);
      const uint32_t prot = prots[rng.NextBelow(3)];
      bool covered = true;
      for (uint64_t p = 0; p < len; ++p) {
        if (oracle.count(rs / kPage + off + p) == 0) {
          covered = false;
        }
      }
      ASSERT_EQ(as_.Mprotect(rs + off * kPage, len * kPage, prot), covered)
          << "step " << step;
      if (covered) {
        for (uint64_t p = 0; p < len; ++p) {
          oracle[rs / kPage + off + p] = prot;
        }
      }
    } else {
      // Fault at a random address in a random region; compare with oracle.
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t addr = rs + rng.NextBelow(re - rs);
      const bool is_write = rng.NextChance(0.5);
      const auto it = oracle.find(addr / kPage);
      const uint32_t required = is_write ? kProtWrite : kProtRead;
      const bool expect = it != oracle.end() && (it->second & required) == required;
      ASSERT_EQ(as_.PageFault(addr, is_write), expect) << "step " << step;
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(as_.CheckInvariants()) << "step " << step;
    }
  }
  // Final deep check: the VMA snapshot must tile exactly the oracle's pages.
  std::map<uint64_t, uint32_t> from_vmas;
  for (const VmaInfo& v : as_.SnapshotVmas()) {
    for (uint64_t p = v.start / kPage; p < v.end / kPage; ++p) {
      from_vmas[p] = v.prot;
    }
  }
  EXPECT_EQ(from_vmas, oracle);
  EXPECT_TRUE(as_.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VmSemanticsTest, ::testing::ValuesIn(kAllVmVariants),
    [](const ::testing::TestParamInfo<VmVariant>& info) {
      std::string name = VmVariantName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace srl::vm
