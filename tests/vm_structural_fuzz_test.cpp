// Structural-operation fuzz for the simulated VM subsystem, aimed at the range-scoped
// variants (mmap/munmap/structural mprotect under partial-range write locks) but run
// against every variant so the full-lock configurations pin the reference behaviour.
//
// Two batteries:
//   * A sequential battery drives a seeded random mix of mmap / munmap / mprotect /
//     madvise / fault against a flat page->prot oracle that also tracks present pages,
//     including degenerate top-of-address-space ranges that force the scoped
//     classify-then-fallback path.
//   * A concurrent battery runs per-thread arenas (each with its own deterministic
//     oracle) plus continuous structural churn in disjoint ranges, while a checker
//     thread repeatedly takes the full-range lock and validates CheckInvariants().
//
// Registered under the `stress` label: runs in the plain configuration and under TSan
// (where the optimistic-walk / epoch-reclamation machinery gets its race coverage).
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/vm/address_space.h"
#include "tests/common/test_clock.h"

namespace srl::vm {
namespace {

constexpr uint64_t kPage = AddressSpace::kPageSize;

// (variant, stripe count): every battery runs single-stripe for all variants (the
// reference semantics), and the scoped variants additionally run against a 4-stripe
// space so the per-stripe trees, seqcounts, and retire lists carry the same load.
struct FuzzParam {
  VmVariant variant;
  unsigned stripes;
};

std::string VariantTestName(const ::testing::TestParamInfo<FuzzParam>& info) {
  std::string name = VmVariantName(info.param.variant);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  if (info.param.stripes > 1) {
    name += "_s" + std::to_string(info.param.stripes);
  }
  return name;
}

class VmStructuralFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

// Flat reference model: page index -> prot for mapped pages, plus the present set.
struct PageOracle {
  std::map<uint64_t, uint32_t> prot;
  std::set<uint64_t> present;

  void Map(uint64_t addr, uint64_t pages, uint32_t p) {
    for (uint64_t i = 0; i < pages; ++i) {
      prot[addr / kPage + i] = p;
    }
  }
  bool Unmap(uint64_t first_page, uint64_t last_page) {
    bool any = false;
    for (uint64_t p = first_page; p < last_page; ++p) {
      any |= prot.erase(p) > 0;
      present.erase(p);
    }
    return any;
  }
  bool Mprotect(uint64_t first_page, uint64_t last_page, uint32_t p) {
    for (uint64_t q = first_page; q < last_page; ++q) {
      if (prot.count(q) == 0) {
        return false;
      }
    }
    for (uint64_t q = first_page; q < last_page; ++q) {
      prot[q] = p;
    }
    return true;
  }
  bool Fault(uint64_t addr, bool is_write) {
    const auto it = prot.find(addr / kPage);
    const uint32_t required = is_write ? kProtWrite : kProtRead;
    if (it == prot.end() || (it->second & required) != required) {
      return false;
    }
    present.insert(addr / kPage);
    return true;
  }
  void Madvise(uint64_t first_page, uint64_t last_page) {
    for (uint64_t p = first_page; p < last_page; ++p) {
      present.erase(p);
    }
  }
};

TEST_P(VmStructuralFuzzTest, SequentialMixMatchesOracle) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  // Unmap-lookup speculation stays off here (the concurrent battery covers it): the
  // read-path probe would short-circuit missing unmaps before they can reach the
  // scoped classify-then-fallback path this battery wants to exercise.
  Xoshiro256 rng(0x5eed + static_cast<uint64_t>(GetParam().variant) * 8 +
                 GetParam().stripes);
  PageOracle oracle;
  std::vector<std::pair<uint64_t, uint64_t>> regions;  // [start, end) of mmap calls
  const uint32_t prots[] = {kProtNone, kProtRead, kProtRead | kProtWrite};

  for (int step = 0; step < 6000; ++step) {
    const double roll = rng.NextDouble();
    if (regions.empty() || roll < 0.10) {
      const uint64_t pages = 1 + rng.NextBelow(24);
      const uint32_t prot = prots[rng.NextBelow(3)];
      const uint64_t addr = as.Mmap(pages * kPage, prot);
      ASSERT_NE(addr, 0u);
      oracle.Map(addr, pages, prot);
      regions.push_back({addr, addr + pages * kPage});
    } else if (roll < 0.22) {
      // Unmap a random sub-range of a random region (possibly already unmapped).
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t total = (re - rs) / kPage;
      const uint64_t off = rng.NextBelow(total);
      const uint64_t len = 1 + rng.NextBelow(total - off);
      const bool expect = oracle.Unmap(rs / kPage + off, rs / kPage + off + len);
      ASSERT_EQ(as.Munmap(rs + off * kPage, len * kPage), expect) << "step " << step;
    } else if (roll < 0.25) {
      // Degenerate top-of-address-space ranges. A wrapped range denotes nothing and
      // returns before taking any lock; a representable range in the last page cannot
      // be padded, exercising the scoped classify-then-fallback path.
      if (rng.NextChance(0.5)) {
        const uint64_t top = ~uint64_t{0} - rng.NextBelow(4) * kPage;
        ASSERT_FALSE(as.Munmap(top - 2 * kPage, 8 * kPage)) << "step " << step;
      } else {
        ASSERT_FALSE(as.Munmap(~uint64_t{0} - 2 * kPage + 1, kPage)) << "step " << step;
      }
    } else if (roll < 0.55) {
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t total = (re - rs) / kPage;
      const uint64_t off = rng.NextBelow(total);
      const uint64_t len = 1 + rng.NextBelow(total - off);
      const uint32_t prot = prots[rng.NextBelow(3)];
      const bool expect = oracle.Mprotect(rs / kPage + off, rs / kPage + off + len, prot);
      ASSERT_EQ(as.Mprotect(rs + off * kPage, len * kPage, prot), expect)
          << "step " << step;
    } else if (roll < 0.65) {
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t total = (re - rs) / kPage;
      const uint64_t off = rng.NextBelow(total);
      const uint64_t len = 1 + rng.NextBelow(total - off);
      ASSERT_TRUE(as.MadviseDontNeed(rs + off * kPage, len * kPage));
      oracle.Madvise(rs / kPage + off, rs / kPage + off + len);
    } else {
      const auto [rs, re] = regions[rng.NextBelow(regions.size())];
      const uint64_t addr = rs + rng.NextBelow(re - rs);
      const bool is_write = rng.NextChance(0.5);
      ASSERT_EQ(as.PageFault(addr, is_write), oracle.Fault(addr, is_write))
          << "step " << step;
    }
    if (step % 200 == 0) {
      ASSERT_TRUE(as.CheckInvariants()) << "step " << step;
      ASSERT_EQ(as.PresentPages(), oracle.present.size()) << "step " << step;
    }
  }

  // Final deep check: the VMA snapshot must tile exactly the oracle's pages. Deferred
  // sweeps move the oracle's drain edge to the flush, so settle them first.
  as.DrainSweeps();
  std::map<uint64_t, uint32_t> from_vmas;
  for (const VmaInfo& v : as.SnapshotVmas()) {
    for (uint64_t p = v.start / kPage; p < v.end / kPage; ++p) {
      from_vmas[p] = v.prot;
    }
  }
  EXPECT_EQ(from_vmas, oracle.prot);
  EXPECT_EQ(as.PresentPages(), oracle.present.size());
  EXPECT_TRUE(as.CheckInvariants());
  if (as.ScopedStructural()) {
    // The degenerate munmaps above must have degraded through the fallback guard.
    EXPECT_GT(as.Stats().scoped_fallback.load(), 0u);
    EXPECT_GT(as.Stats().scoped_structural.load(), 0u);
  }
}

// A structural mprotect whose merge sweep would absorb a same-protection neighbour
// extending far past the padded lock span: erasing that VMA under a partial-range lock
// would race readers of its unlocked bytes, so the scoped variants must classify it as
// an escape and degrade to the full-range path — with identical semantics.
TEST_P(VmStructuralFuzzTest, MergeAbsorbingWideNeighbourFallsBack) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t a = as.Mmap(16 * kPage, kProtRead | kProtWrite);
  ASSERT_TRUE(as.Mprotect(a, kPage, kProtRead));  // split: [a, a+p) R | [a+p, a+16p) RW
  // Flipping [a, a+2p) back to RW merges all three pieces; the absorbed tail ends 13
  // pages past the padded span [a-p, a+3p).
  ASSERT_TRUE(as.Mprotect(a, 2 * kPage, kProtRead | kProtWrite));
  const auto vmas = as.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 1u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + 16 * kPage, kProtRead | kProtWrite}));
  EXPECT_TRUE(as.CheckInvariants());
  if (as.ScopedStructural()) {
    EXPECT_GT(as.Stats().scoped_fallback.load(), 0u);
  }
}

// Concurrent battery: per-thread arenas with deterministic per-thread oracles, plus
// disjoint-range structural churn, while a checker thread validates global invariants.
TEST_P(VmStructuralFuzzTest, ConcurrentStructuralMixKeepsInvariants) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  as.SetUnmapLookupSpeculation(true);
  constexpr int kThreads = 4;
  constexpr int kCycles = 4000;
  constexpr uint64_t kArenaPages = 48;
  std::atomic<bool> ok{true};
  std::atomic<bool> done{false};
  std::atomic<bool> checker_ok{true};

  std::thread checker([&] {
    while (!done.load(std::memory_order_acquire)) {
      // strict_present_counts=false: in-flight installs make the per-VMA hint
      // reconciliation meaningless against live faulters; the final post-join
      // CheckInvariants below runs the strict form.
      if (!as.CheckInvariants(/*strict_present_counts=*/false)) {
        checker_ok.store(false);
        return;
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0xf522 + static_cast<uint64_t>(t));
      PageOracle oracle;
      const uint64_t arena = as.Mmap(kArenaPages * kPage, kProtNone);
      if (arena == 0) {
        ok.store(false);
        return;
      }
      oracle.Map(arena, kArenaPages, kProtNone);
      const uint32_t prots[] = {kProtNone, kProtRead, kProtRead | kProtWrite};
      // Far past every mapping this run can create — beyond the last stripe window,
      // where the cursor allocator never carves: miss-unmaps probe here. (arena +
      // 2^24 pages is exactly one stripe span: on a multi-stripe space that is the
      // NEXT stripe's arena neighbourhood, not nowhere.)
      const uint64_t nowhere = AddressSpace::kMmapBase +
                               as.Stripes() * AddressSpace::kStripeSpan +
                               (uint64_t{1} << 20) * kPage;

      for (int c = 0; c < kCycles && ok.load(std::memory_order_relaxed); ++c) {
        const double roll = rng.NextDouble();
        if (roll < 0.35) {
          // Arena mprotect: always covered, so the result is deterministic.
          const uint64_t off = rng.NextBelow(kArenaPages);
          const uint64_t len = 1 + rng.NextBelow(kArenaPages - off);
          const uint32_t prot = prots[rng.NextBelow(3)];
          if (!as.Mprotect(arena + off * kPage, len * kPage, prot)) {
            ok.store(false);
            return;
          }
          oracle.Mprotect(arena / kPage + off, arena / kPage + off + len, prot);
        } else if (roll < 0.55) {
          // Structural churn: map, touch, unmap a scratch region; every outcome is
          // deterministic because the region is thread-private.
          const uint64_t pages = 1 + rng.NextBelow(8);
          const uint64_t scratch = as.Mmap(pages * kPage, kProtRead | kProtWrite);
          if (scratch == 0 || !as.PageFault(scratch, true) ||
              !as.Munmap(scratch, pages * kPage) ||
              as.PageFault(scratch, false) /* unmapped now */) {
            ok.store(false);
            return;
          }
        } else if (roll < 0.65) {
          // Miss-unmap: nothing is ever mapped there (read-path fast exit when the
          // unmap-lookup speculation is on).
          if (as.Munmap(nowhere + rng.NextBelow(512) * kPage, kPage)) {
            ok.store(false);
            return;
          }
        } else if (roll < 0.75) {
          const uint64_t off = rng.NextBelow(kArenaPages);
          const uint64_t len = 1 + rng.NextBelow(kArenaPages - off);
          if (!as.MadviseDontNeed(arena + off * kPage, len * kPage)) {
            ok.store(false);
            return;
          }
          oracle.Madvise(arena / kPage + off, arena / kPage + off + len);
        } else {
          const uint64_t addr = arena + rng.NextBelow(kArenaPages * kPage);
          const bool is_write = rng.NextChance(0.5);
          if (as.PageFault(addr, is_write) != oracle.Fault(addr, is_write)) {
            ok.store(false);
            return;
          }
        }
      }
      // Closing sweep: the arena's final protection state must match the oracle.
      for (uint64_t p = 0; p < kArenaPages; ++p) {
        const bool expect_read = (oracle.prot[arena / kPage + p] & kProtRead) != 0;
        if (as.PageFault(arena + p * kPage, false) != expect_read) {
          ok.store(false);
          return;
        }
      }
    });
  }
  for (auto& th : workers) {
    th.join();
  }
  done.store(true, std::memory_order_release);
  checker.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(checker_ok.load());
  EXPECT_TRUE(as.CheckInvariants());
  if (as.ScopedStructural()) {
    // The churn above is structural and nearly all of it fits its padded range, so the
    // scoped variants must have kept the bulk of it off the full-range path. The
    // legitimate remainder (~6% with these seeds) is arena mprotects whose merge sweep
    // would absorb a same-protection neighbour extending past the padded span — the
    // classify-then-fallback escape.
    EXPECT_GT(as.Stats().ScopedStructuralRate(), 0.9)
        << "scoped=" << as.Stats().scoped_structural.load()
        << " fallback=" << as.Stats().scoped_fallback.load();
    EXPECT_GT(as.Lock().RangedWriteAcquisitions(), 0u);
    // The speculative fault path must carry real load here, not just exist: per-thread
    // arena faults are the common case and the oracle above held them to exact
    // outcomes while the speculation ran.
    EXPECT_GT(as.Stats().FaultSpecOk(), 0u)
        << "speculative faults never engaged (retries="
        << as.Stats().fault_spec_retry.load()
        << " fallbacks=" << as.Stats().fault_spec_fallback.load() << ")";
  }
}

// mprotect-during-fault torn-read oracle. One writer flips a page's protection through
// the *metadata-only* speculative-mprotect path — the one mutation class invisible to
// the structural seqcount, so only the per-VMA seqlock stands between the lock-free
// fault and a torn (bounds, prot) read. Faulting threads bracket every fault with a
// snapshot of the writer's state log:
//
//   * a fault whose whole execution fits inside one stable window (same even log value
//     on both sides) has a deterministic answer — the logged protection decides it, and
//     any disagreement is a torn or stale read;
//   * the boundary-anchor page, which every flip moves a VMA boundary across but which
//     is *never unmapped and never loses read permission*, must be readable on every
//     single fault — a failed read there is the transient-gap bug (the walk observed
//     the mid-boundary-move hole and mistook it for unmapped space).
TEST_P(VmStructuralFuzzTest, MprotectDuringFaultTornReadOracle) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  // The glibc arena shape: [anchor RW | flip region | NONE tail]. The flip region
  // ([base+2p, base+4p)) toggles between RW (expand: the head of the NONE VMA joins
  // the RW VMA — kHeadMove) and NONE (shrink: the RW VMA's tail joins the NONE VMA —
  // kTailMove). Every flip after the initial split is a metadata-only boundary move
  // for the refined/scoped variants, and every flip drags a VMA boundary across the
  // flip region while the anchor's VMA end moves with it.
  const uint64_t base = as.Mmap(8 * kPage, kProtNone);
  ASSERT_NE(base, 0u);
  ASSERT_TRUE(as.Mprotect(base, 2 * kPage, kProtRead | kProtWrite));  // one-time split
  const uint64_t anchor = base;            // pages 0-1: always RW, never unmapped
  const uint64_t flip = base + 2 * kPage;  // pages 2-3: RW <-> NONE
  constexpr int kFlips = 4000;

  // Writer state log: odd while an mprotect is in flight; bit 1 of an even value
  // encodes whether the flip region is currently writable. Starts NONE (bit clear).
  std::atomic<uint64_t> wstate{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::atomic<bool> anchor_segv{false};
  std::atomic<uint64_t> total_faults{0};
  std::atomic<uint64_t> stable_window_faults{0};

  std::vector<std::thread> faulters;
  for (int t = 0; t < 2; ++t) {
    faulters.emplace_back([&, t] {
      Xoshiro256 rng(0x70a7 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        total_faults.fetch_add(1, std::memory_order_relaxed);
        if (rng.NextChance(0.3)) {
          // The anchor pages never change protection and are never unmapped; reads
          // must succeed on every single fault, mid-boundary-move included.
          if (!as.PageFault(anchor + rng.NextBelow(2 * kPage), false)) {
            anchor_segv.store(true, std::memory_order_relaxed);
          }
          continue;
        }
        const uint64_t s0 = wstate.load(std::memory_order_seq_cst);
        const bool r = as.PageFault(flip + rng.NextBelow(2 * kPage), true);
        const uint64_t s1 = wstate.load(std::memory_order_seq_cst);
        if (s0 == s1 && (s0 & 1) == 0) {
          // No mprotect began, ran, or ended anywhere inside this fault: the logged
          // protection is the truth for the entire window.
          stable_window_faults.fetch_add(1, std::memory_order_relaxed);
          const bool writable = (s0 & 2) != 0;
          if (r != writable) {
            torn.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Do not start flipping until the faulters are actually faulting, and hand the core
  // over regularly: on a single-CPU host the whole flip loop otherwise fits inside one
  // scheduler quantum and the "during" in mprotect-during-fault never happens.
  ASSERT_TRUE(srl::testing::EventuallyTrue(
      [&] { return total_faults.load(std::memory_order_relaxed) > 0; }));
  for (int i = 0; i < kFlips; ++i) {
    if (i % 16 == 0) {
      std::this_thread::yield();
    }
    const bool writable = (i % 2) == 0;  // expand first (flip starts NONE)
    const uint32_t prot = writable ? (kProtRead | kProtWrite) : kProtNone;
    wstate.fetch_add(1, std::memory_order_seq_cst);  // odd: in flight
    ASSERT_TRUE(as.Mprotect(flip, 2 * kPage, prot));
    // Close the window with the new protection encoded (bit 0 clears, bit 1 encodes
    // writability; the value stays strictly increasing so windows never alias).
    const uint64_t cur = wstate.load(std::memory_order_relaxed);
    wstate.store(((cur + 1) & ~uint64_t{2}) | (writable ? 2 : 0),
                 std::memory_order_seq_cst);
  }
  // Give the oracle a guaranteed quiet tail: with the log even and stable, faults now
  // have deterministic outcomes and must populate the stable-window count.
  EXPECT_TRUE(srl::testing::EventuallyTrue(
      [&] { return stable_window_faults.load(std::memory_order_relaxed) > 0; }));
  stop.store(true, std::memory_order_release);
  for (auto& th : faulters) {
    th.join();
  }

  EXPECT_FALSE(torn.load()) << "a fault inside a stable window contradicted the "
                               "logged protection: torn or stale prot read";
  EXPECT_FALSE(anchor_segv.load())
      << "a read fault on the never-unmapped, always-readable anchor pages failed — "
         "the transient-gap bug (walk observed a mid-boundary-move hole)";
  EXPECT_TRUE(as.CheckInvariants());
  const VmVariant v = GetParam().variant;
  if (v == VmVariant::kTreeRefined || v == VmVariant::kListRefined ||
      v == VmVariant::kListMprotect || v == VmVariant::kTreeScoped ||
      v == VmVariant::kListScoped || v == VmVariant::kListLfScoped ||
      v == VmVariant::kSkiplistScoped) {
    // The flips must really have exercised the metadata-only speculative path.
    EXPECT_GT(as.Stats().spec_success.load(), 0u);
  }
}

std::vector<FuzzParam> AllFuzzParams() {
  std::vector<FuzzParam> params;
  for (const VmVariant v : kAllVmVariants) {
    params.push_back({v, 1});
  }
  // Multi-stripe spaces for the variants whose machinery is per-stripe.
  params.push_back({VmVariant::kTreeScoped, 4});
  params.push_back({VmVariant::kListScoped, 4});
  params.push_back({VmVariant::kListLfScoped, 4});
  params.push_back({VmVariant::kSkiplistScoped, 4});
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VmStructuralFuzzTest,
                         ::testing::ValuesIn(AllFuzzParams()), VariantTestName);

}  // namespace
}  // namespace srl::vm
