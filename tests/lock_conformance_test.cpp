// Conformance suite: every range-lock implementation in the repository must satisfy the
// same behavioural contract. Run as typed tests over the adapters of
// src/harness/lock_adapters.h, so any new lock added to the repo gets the full battery
// by appending one line to the type list.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/lock_adapters.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::StaysFalse;

template <typename Adapter>
class LockConformanceTest : public ::testing::Test {
 protected:
  Adapter adapter_;
};

using AllLocks =
    ::testing::Types<ListExAdapter, ListExFastPathAdapter, ListRwAdapter,
                     ListRwFastPathAdapter, FairListExAdapter, FairListRwAdapter,
                     TreeExAdapter, TreeRwAdapter, SegmentRwAdapter, RwSemAdapter>;

class LockNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string name = T::Name();
    for (char& c : name) {
      if (c == '-') {
        c = '_';
      }
    }
    return name;
  }
};

TYPED_TEST_SUITE(LockConformanceTest, AllLocks, LockNames);

TYPED_TEST(LockConformanceTest, WriteAcquireRelease) {
  auto h = this->adapter_.AcquireWrite({0, 100});
  this->adapter_.Release(h);
  auto h2 = this->adapter_.AcquireWrite({0, 100});  // reacquirable
  this->adapter_.Release(h2);
}

TYPED_TEST(LockConformanceTest, ReadAcquireRelease) {
  auto h = this->adapter_.AcquireRead({0, 100});
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, OverlappingWritersExclude) {
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xabc + t);
      for (int i = 0; i < 1500; ++i) {
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t b = rng.NextBelow(kUniverse);
        if (a > b) {
          std::swap(a, b);
        }
        const Range r{a, b + 1};
        auto h = this->adapter_.AcquireWrite(r);
        oracle.EnterWrite(r);
        oracle.ExitWrite(r);
        this->adapter_.Release(h);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

TYPED_TEST(LockConformanceTest, ReadersAndWritersExclude) {
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x777 + t);
      for (int i = 0; i < 1500; ++i) {
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t b = rng.NextBelow(kUniverse);
        if (a > b) {
          std::swap(a, b);
        }
        const Range r{a, b + 1};
        if (rng.NextChance(0.3)) {
          auto h = this->adapter_.AcquireWrite(r);
          oracle.EnterWrite(r);
          oracle.ExitWrite(r);
          this->adapter_.Release(h);
        } else {
          auto h = this->adapter_.AcquireRead(r);
          oracle.EnterRead(r);
          oracle.ExitRead(r);
          this->adapter_.Release(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

TYPED_TEST(LockConformanceTest, OverlappingReadersShareIfSupported) {
  if (!TypeParam::kSharedReaders) {
    GTEST_SKIP() << "exclusive-only lock";
  }
  auto r1 = this->adapter_.AcquireRead({0, 50});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto r2 = this->adapter_.AcquireRead({25, 75});
    in.store(true);
    this->adapter_.Release(r2);
  });
  t.join();  // completes while r1 is held
  EXPECT_TRUE(in.load());
  this->adapter_.Release(r1);
}

TYPED_TEST(LockConformanceTest, WriterBlockedUntilOverlapReleased) {
  auto h = this->adapter_.AcquireWrite({10, 20});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = this->adapter_.AcquireWrite({15, 25});
    in.store(true);
    this->adapter_.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  this->adapter_.Release(h);
  t.join();
  EXPECT_TRUE(in.load());
}

TYPED_TEST(LockConformanceTest, FullRangeIsExclusiveAgainstAll) {
  auto h = this->adapter_.AcquireWrite(Range::Full());
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = this->adapter_.AcquireWrite({5, 6});
    in.store(true);
    this->adapter_.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  this->adapter_.Release(h);
  t.join();
  EXPECT_TRUE(in.load());
}

TYPED_TEST(LockConformanceTest, ManySequentialAcquisitions) {
  Xoshiro256 rng(12345);
  for (int i = 0; i < 3000; ++i) {
    uint64_t a = rng.NextBelow(64);
    const Range r{a, a + 1 + rng.NextBelow(16)};
    if (i % 2 == 0) {
      auto h = this->adapter_.AcquireWrite(r);
      this->adapter_.Release(h);
    } else {
      auto h = this->adapter_.AcquireRead(r);
      this->adapter_.Release(h);
    }
  }
}

TYPED_TEST(LockConformanceTest, DisjointWritersRunConcurrently) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained lock may serialize disjoint ranges";
  }
  auto h = this->adapter_.AcquireWrite({0, 10});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = this->adapter_.AcquireWrite({100, 110});
    in.store(true);
    this->adapter_.Release(h2);
  });
  t.join();  // must complete while [0,10) is still held
  EXPECT_TRUE(in.load());
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, HandleReleasableByAnotherThread) {
  // The Lock/Unlock contract is ownership-by-handle, not ownership-by-thread: a range
  // acquired here must be releasable from any thread (the VM layer hands handles across
  // worker threads this way).
  auto h = this->adapter_.AcquireWrite({10, 20});
  std::thread t([&] { this->adapter_.Release(h); });
  t.join();
  // The range must actually be free again.
  auto h2 = this->adapter_.AcquireWrite({10, 20});
  this->adapter_.Release(h2);
}

TYPED_TEST(LockConformanceTest, OutOfOrderRelease) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained lock may serialize disjoint ranges";
  }
  // Acquisition order must impose no release order.
  auto h1 = this->adapter_.AcquireWrite({0, 10});
  auto h2 = this->adapter_.AcquireWrite({20, 30});
  auto h3 = this->adapter_.AcquireWrite({40, 50});
  this->adapter_.Release(h2);
  auto h4 = this->adapter_.AcquireWrite({20, 30});  // middle range is free again
  this->adapter_.Release(h1);
  this->adapter_.Release(h4);
  this->adapter_.Release(h3);
}

TYPED_TEST(LockConformanceTest, StressWithOccasionalFullRange) {
  // Mixed-width hammer: mostly small ranges, occasionally Range::Full(). Exercises the
  // list locks' wait-then-retraverse and helping paths far more than uniform smalls.
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xf00d + t);
      for (int i = 0; i < 600; ++i) {
        const bool full = rng.NextChance(0.02);
        uint64_t a = rng.NextBelow(kUniverse);
        const Range r = full ? Range::Full() : Range{a, a + 1 + rng.NextBelow(8)};
        if (full || rng.NextChance(0.4)) {
          auto h = this->adapter_.AcquireWrite(r);
          oracle.EnterWrite(r);
          oracle.ExitWrite(r);
          this->adapter_.Release(h);
        } else {
          auto h = this->adapter_.AcquireRead(r);
          oracle.EnterRead(r);
          oracle.ExitRead(r);
          this->adapter_.Release(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

}  // namespace
}  // namespace srl
