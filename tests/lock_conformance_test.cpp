// Conformance suite: every range-lock implementation in the repository must satisfy the
// same behavioural contract. Run as typed tests over the adapters of
// src/harness/lock_adapters.h, so any new lock added to the repo gets the full battery
// by appending one line to the type list.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/lnode.h"
#include "src/epoch/node_pool.h"
#include "src/harness/lock_adapters.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::StaysFalse;

template <typename Adapter>
class LockConformanceTest : public ::testing::Test {
 protected:
  Adapter adapter_;
};

using AllLocks =
    ::testing::Types<ListExAdapter, ListExFastPathAdapter, ListLockFreeAdapter,
                     SkiplistIndexedAdapter, ListRwAdapter, ListRwFastPathAdapter,
                     FairListExAdapter, FairListRwAdapter, TreeExAdapter, TreeRwAdapter,
                     SegmentRwAdapter, RwSemAdapter>;

class LockNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string name = T::Name();
    for (char& c : name) {
      if (c == '-') {
        c = '_';
      }
    }
    return name;
  }
};

TYPED_TEST_SUITE(LockConformanceTest, AllLocks, LockNames);

TYPED_TEST(LockConformanceTest, WriteAcquireRelease) {
  auto h = this->adapter_.AcquireWrite({0, 100});
  this->adapter_.Release(h);
  auto h2 = this->adapter_.AcquireWrite({0, 100});  // reacquirable
  this->adapter_.Release(h2);
}

TYPED_TEST(LockConformanceTest, ReadAcquireRelease) {
  auto h = this->adapter_.AcquireRead({0, 100});
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, OverlappingWritersExclude) {
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xabc + t);
      for (int i = 0; i < 1500; ++i) {
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t b = rng.NextBelow(kUniverse);
        if (a > b) {
          std::swap(a, b);
        }
        const Range r{a, b + 1};
        auto h = this->adapter_.AcquireWrite(r);
        oracle.EnterWrite(r);
        oracle.ExitWrite(r);
        this->adapter_.Release(h);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

TYPED_TEST(LockConformanceTest, ReadersAndWritersExclude) {
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x777 + t);
      for (int i = 0; i < 1500; ++i) {
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t b = rng.NextBelow(kUniverse);
        if (a > b) {
          std::swap(a, b);
        }
        const Range r{a, b + 1};
        if (rng.NextChance(0.3)) {
          auto h = this->adapter_.AcquireWrite(r);
          oracle.EnterWrite(r);
          oracle.ExitWrite(r);
          this->adapter_.Release(h);
        } else {
          auto h = this->adapter_.AcquireRead(r);
          oracle.EnterRead(r);
          oracle.ExitRead(r);
          this->adapter_.Release(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

TYPED_TEST(LockConformanceTest, OverlappingReadersShareIfSupported) {
  if (!TypeParam::kSharedReaders) {
    GTEST_SKIP() << "exclusive-only lock";
  }
  auto r1 = this->adapter_.AcquireRead({0, 50});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto r2 = this->adapter_.AcquireRead({25, 75});
    in.store(true);
    this->adapter_.Release(r2);
  });
  t.join();  // completes while r1 is held
  EXPECT_TRUE(in.load());
  this->adapter_.Release(r1);
}

TYPED_TEST(LockConformanceTest, WriterBlockedUntilOverlapReleased) {
  auto h = this->adapter_.AcquireWrite({10, 20});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = this->adapter_.AcquireWrite({15, 25});
    in.store(true);
    this->adapter_.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  this->adapter_.Release(h);
  t.join();
  EXPECT_TRUE(in.load());
}

TYPED_TEST(LockConformanceTest, FullRangeIsExclusiveAgainstAll) {
  auto h = this->adapter_.AcquireWrite(Range::Full());
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = this->adapter_.AcquireWrite({5, 6});
    in.store(true);
    this->adapter_.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  this->adapter_.Release(h);
  t.join();
  EXPECT_TRUE(in.load());
}

TYPED_TEST(LockConformanceTest, ManySequentialAcquisitions) {
  Xoshiro256 rng(12345);
  for (int i = 0; i < 3000; ++i) {
    uint64_t a = rng.NextBelow(64);
    const Range r{a, a + 1 + rng.NextBelow(16)};
    if (i % 2 == 0) {
      auto h = this->adapter_.AcquireWrite(r);
      this->adapter_.Release(h);
    } else {
      auto h = this->adapter_.AcquireRead(r);
      this->adapter_.Release(h);
    }
  }
}

TYPED_TEST(LockConformanceTest, DisjointWritersRunConcurrently) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained lock may serialize disjoint ranges";
  }
  auto h = this->adapter_.AcquireWrite({0, 10});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = this->adapter_.AcquireWrite({100, 110});
    in.store(true);
    this->adapter_.Release(h2);
  });
  t.join();  // must complete while [0,10) is still held
  EXPECT_TRUE(in.load());
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, HandleReleasableByAnotherThread) {
  // The Lock/Unlock contract is ownership-by-handle, not ownership-by-thread: a range
  // acquired here must be releasable from any thread (the VM layer hands handles across
  // worker threads this way).
  auto h = this->adapter_.AcquireWrite({10, 20});
  std::thread t([&] { this->adapter_.Release(h); });
  t.join();
  // The range must actually be free again.
  auto h2 = this->adapter_.AcquireWrite({10, 20});
  this->adapter_.Release(h2);
}

TYPED_TEST(LockConformanceTest, OutOfOrderRelease) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained lock may serialize disjoint ranges";
  }
  // Acquisition order must impose no release order.
  auto h1 = this->adapter_.AcquireWrite({0, 10});
  auto h2 = this->adapter_.AcquireWrite({20, 30});
  auto h3 = this->adapter_.AcquireWrite({40, 50});
  this->adapter_.Release(h2);
  auto h4 = this->adapter_.AcquireWrite({20, 30});  // middle range is free again
  this->adapter_.Release(h1);
  this->adapter_.Release(h4);
  this->adapter_.Release(h3);
}

// --- Non-blocking (TryAcquire*) and timed (Acquire*For) conformance ---

TYPED_TEST(LockConformanceTest, TryAcquireConflictFailsWithoutBlocking) {
  // Called from the thread that already holds the conflicting range: if the try
  // acquisition blocked, this test would deadlock rather than fail.
  auto h = this->adapter_.AcquireWrite({10, 20});
  typename TypeParam::Handle t{};
  EXPECT_FALSE(this->adapter_.TryAcquireWrite({15, 25}, &t));
  EXPECT_FALSE(this->adapter_.TryAcquireRead({15, 25}, &t));
  this->adapter_.Release(h);
  // The failed attempts held nothing: the range must be immediately reacquirable.
  ASSERT_TRUE(this->adapter_.TryAcquireWrite({15, 25}, &t));
  this->adapter_.Release(t);
}

TYPED_TEST(LockConformanceTest, TryAcquireFullRangeConflictFails) {
  auto h = this->adapter_.AcquireWrite(Range::Full());
  typename TypeParam::Handle t{};
  EXPECT_FALSE(this->adapter_.TryAcquireWrite({5, 6}, &t));
  EXPECT_FALSE(this->adapter_.TryAcquireRead({5, 6}, &t));
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, TryAcquireDisjointSucceeds) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained lock may fail try acquisitions of disjoint ranges";
  }
  auto h = this->adapter_.AcquireWrite({0, 10});
  typename TypeParam::Handle t1{};
  typename TypeParam::Handle t2{};
  ASSERT_TRUE(this->adapter_.TryAcquireWrite({100, 110}, &t1));
  ASSERT_TRUE(this->adapter_.TryAcquireRead({200, 210}, &t2));
  this->adapter_.Release(t2);
  this->adapter_.Release(t1);
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, TryAcquireUncontendedSucceeds) {
  typename TypeParam::Handle t{};
  ASSERT_TRUE(this->adapter_.TryAcquireWrite({10, 20}, &t));
  this->adapter_.Release(t);
  ASSERT_TRUE(this->adapter_.TryAcquireRead({10, 20}, &t));
  this->adapter_.Release(t);
}

TYPED_TEST(LockConformanceTest, TryReadSharesWithReaderIfSupported) {
  if (!TypeParam::kSharedReaders) {
    GTEST_SKIP() << "exclusive-only lock";
  }
  auto r1 = this->adapter_.AcquireRead({0, 50});
  typename TypeParam::Handle r2{};
  ASSERT_TRUE(this->adapter_.TryAcquireRead({25, 75}, &r2));
  this->adapter_.Release(r2);
  this->adapter_.Release(r1);
}

TYPED_TEST(LockConformanceTest, TimedAcquireConflictTimesOut) {
  using namespace std::chrono;
  const auto timeout = 20ms;
  auto h = this->adapter_.AcquireWrite({10, 20});
  typename TypeParam::Handle t{};
  const auto t0 = steady_clock::now();
  EXPECT_FALSE(this->adapter_.AcquireWriteFor({15, 25}, timeout, &t));
  // The deadline is a lower bound on the wait (Expired() is now >= when); no upper
  // bound is asserted — sanitizers and oversubscribed CI dilate time freely.
  EXPECT_GE(steady_clock::now() - t0, timeout);
  EXPECT_FALSE(this->adapter_.AcquireReadFor({15, 25}, timeout, &t));
  this->adapter_.Release(h);
  // With the conflict gone the same timed acquisition succeeds.
  ASSERT_TRUE(this->adapter_.AcquireWriteFor({15, 25}, timeout, &t));
  this->adapter_.Release(t);
}

TYPED_TEST(LockConformanceTest, TimedAcquireDisjointSucceeds) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained lock may serialize disjoint ranges";
  }
  using namespace std::chrono;
  auto h = this->adapter_.AcquireWrite({0, 10});
  typename TypeParam::Handle t{};
  ASSERT_TRUE(this->adapter_.AcquireWriteFor({100, 110}, 10ms, &t));
  this->adapter_.Release(t);
  this->adapter_.Release(h);
}

TYPED_TEST(LockConformanceTest, TimedAcquireReleasedMidWaitSucceeds) {
  // A waiter whose deadline has not yet expired must admit when the holder releases,
  // not burn the whole timeout.
  using namespace std::chrono_literals;
  auto h = this->adapter_.AcquireWrite({10, 20});
  std::atomic<bool> got{false};
  std::thread t([&] {
    typename TypeParam::Handle th{};
    if (this->adapter_.AcquireWriteFor({15, 25}, 60s, &th)) {
      got.store(true);
      this->adapter_.Release(th);
    }
  });
  EXPECT_TRUE(StaysFalse([&] { return got.load(); }));
  this->adapter_.Release(h);
  t.join();
  EXPECT_TRUE(got.load());
}

TYPED_TEST(LockConformanceTest, AbortedWaiterLeaksNoListNode) {
  if (!TypeParam::kUsesNodePool) {
    GTEST_SKIP() << "lock does not allocate from NodePool<LNode>";
  }
  using namespace std::chrono_literals;
  // An always-held disjoint anchor keeps the list non-empty, so the §4.5 fast path
  // (which recycles without ever entering the list) stays out of play and both
  // measurements see the same list shape. Wide enough (64 units = 16 windows of the
  // lock-free adapter's 4-unit windows) to cover every bucket of a bucketed lock —
  // a one-bucket anchor would leave the other buckets' fast paths live and the sweep
  // residue would vary with which buckets the storm dirtied.
  auto anchor = this->adapter_.AcquireWrite({1000, 1064});
  // sweep(): a write acquisition covering every range this test uses traverses the
  // list, unlinking all marked nodes into this thread's pool; its own release then
  // leaves exactly one marked node behind. Sweeping before each measurement makes the
  // in-list residue constant, so pool-total conservation is exact.
  auto sweep = [&] {
    auto h = this->adapter_.AcquireWrite({0, 100});
    this->adapter_.Release(h);
  };
  auto pool_total = [] {
    auto& pool = NodePool<LNode>::Local();
    return pool.ActiveSize() + pool.ReclaimedSize();
  };
  sweep();
  const std::size_t baseline = pool_total();
  auto h = this->adapter_.AcquireWrite({0, 10});
  typename TypeParam::Handle t{};
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(this->adapter_.TryAcquireWrite({5, 15}, &t));
    EXPECT_FALSE(this->adapter_.TryAcquireRead({5, 15}, &t));
    EXPECT_FALSE(this->adapter_.AcquireWriteFor({5, 15}, 1ms, &t));
    EXPECT_FALSE(this->adapter_.AcquireReadFor({5, 15}, 1ms, &t));
  }
  this->adapter_.Release(h);
  sweep();
  // Every aborted acquisition returned its node to the pool (directly, or via the
  // sweep's unlink of a self-deleted in-list node). Under ASan, an actually dropped
  // node would additionally be reported as a leak at exit.
  EXPECT_EQ(pool_total(), baseline);
  this->adapter_.Release(anchor);
}

TYPED_TEST(LockConformanceTest, StressWithOccasionalFullRange) {
  // Mixed-width hammer: mostly small ranges, occasionally Range::Full(). Exercises the
  // list locks' wait-then-retraverse and helping paths far more than uniform smalls.
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xf00d + t);
      for (int i = 0; i < 600; ++i) {
        const bool full = rng.NextChance(0.02);
        uint64_t a = rng.NextBelow(kUniverse);
        const Range r = full ? Range::Full() : Range{a, a + 1 + rng.NextBelow(8)};
        if (full || rng.NextChance(0.4)) {
          auto h = this->adapter_.AcquireWrite(r);
          oracle.EnterWrite(r);
          oracle.ExitWrite(r);
          this->adapter_.Release(h);
        } else {
          auto h = this->adapter_.AcquireRead(r);
          oracle.EnterRead(r);
          oracle.ExitRead(r);
          this->adapter_.Release(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

}  // namespace
}  // namespace srl
