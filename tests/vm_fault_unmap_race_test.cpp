// Adversarial fault-vs-unmap oracle battery for the lock-free speculative page-fault
// path (and, as a control, the locked fault paths of the full/refined variants).
//
// The speculative fault's headline claim is a memory-ordering claim: a fault that loses
// the race to a munmap must never leave a page present in an unmapped range, and must
// never report an outcome justified only by a freed VMA's metadata. This battery hunts
// exactly those bugs:
//
//   * Generation-tagged arenas. The mmap cursor never reuses addresses, so an address
//     uniquely identifies the one mapping (generation) that ever covered it — each
//     generation's fixed protection is an *exact* oracle for every fault outcome at its
//     addresses, concurrent unmaps notwithstanding:
//       - a fault that SUCCEEDS must have been permitted by that generation's
//         protection ("no fault observed a freed VMA's prot": a stale or foreign VMA's
//         protection justifying an access is flagged the moment it happens);
//       - a fault that FAILS while the generation's teardown provably had not begun by
//         the time the fault returned (the `retiring` flag, set before Munmap, is still
//         clear *after* the fault) is a spurious SIGSEGV on a live mapping — the
//         transient-gap bug a mid-boundary-move walk could produce.
//   * Post-munmap drain. After every Munmap returns, all pages of the unmapped range
//     must vanish and stay vanished: an in-flight fault may transiently re-install one,
//     but only with a validation failure it must then undo. A page that never drains is
//     a stale install — the bug that installing *after* validating would produce.
//   * Broken-ordering demonstration. A test-only hook inverts the install/validate
//     order (and widens the race window); the same drain oracle must then catch a stale
//     page within a bounded number of generations, proving the battery has teeth — and
//     the correct ordering must survive the identical widened window untouched.
//
// Registered under the `stress` label (plain + TSan); TSan is the torn-read detector
// backing the oracle's linearizability reasoning.
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/vm/address_space.h"
#include "tests/common/test_clock.h"

namespace srl::vm {
namespace {

constexpr uint64_t kPage = AddressSpace::kPageSize;

// (variant, stripe count): the battery's ordering claims are per-stripe statements
// since the sharding refactor, so the scoped variants run against both a single-stripe
// and a multi-stripe space (generations round-robin across stripes in the latter).
struct RaceParam {
  VmVariant variant;
  unsigned stripes;
};

std::string VariantTestName(const ::testing::TestParamInfo<RaceParam>& info) {
  std::string name = VmVariantName(info.param.variant);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  if (info.param.stripes > 1) {
    name += "_s" + std::to_string(info.param.stripes);
  }
  return name;
}

int GenerationBudget() {
  // SRL_RACE_GENS scales the battery (the 100-consecutive-iterations TSan run uses the
  // default; bigger soaks can turn it up).
  if (const char* env = std::getenv("SRL_RACE_GENS")) {
    return std::max(1, std::atoi(env));
  }
  return 40;
}

class VmFaultUnmapRaceTest : public ::testing::TestWithParam<RaceParam> {};

// One mapping lifetime. Plain fields are published via the release store of the
// generation index and never change afterwards; the retiring flags are the teardown
// announcements the spurious-SIGSEGV oracle keys on.
struct Generation {
  uint64_t base = 0;
  uint64_t pages = 0;
  uint32_t prot = 0;
  std::atomic<bool> retiring_head{false};  // first half unmap announced
  std::atomic<bool> retiring{false};       // full unmap announced
  std::atomic<uint64_t> attempts{0};       // faults issued against this generation
};

TEST_P(VmFaultUnmapRaceTest, FaultVsUnmapOracle) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  constexpr int kFaulters = 3;
  constexpr uint64_t kArenaPages = 16;
  const int generations = GenerationBudget();

  std::vector<Generation> gens(static_cast<std::size_t>(generations));
  std::atomic<int> published{-1};
  std::atomic<bool> stop{false};
  std::atomic<bool> prot_violation{false};     // success a live prot cannot justify
  std::atomic<bool> spurious_segv{false};      // failure with teardown provably not begun

  std::vector<std::thread> faulters;
  for (int t = 0; t < kFaulters; ++t) {
    faulters.emplace_back([&, t] {
      Xoshiro256 rng(0xface + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const int idx = published.load(std::memory_order_acquire);
        if (idx < 0) {
          std::this_thread::yield();
          continue;
        }
        Generation& g = gens[static_cast<std::size_t>(idx)];
        const uint64_t page = rng.NextBelow(g.pages);
        const uint64_t addr = g.base + page * kPage + rng.NextBelow(kPage);
        const bool is_write = rng.NextChance(0.4);
        const uint32_t required = is_write ? kProtWrite : kProtRead;
        const bool permitted = (g.prot & required) == required;
        const bool r = as.PageFault(addr, is_write);
        if (r && !permitted) {
          // The only mapping that ever covered `addr` forbids this access: the fault
          // must have trusted a freed/foreign VMA's protection or a torn read.
          prot_violation.store(true, std::memory_order_relaxed);
        }
        if (!r && permitted) {
          // Failure is legal only if the covering mapping's teardown had begun. The
          // flag is set (seq_cst) strictly before Munmap is invoked, so reading it
          // clear *after* the fault completed proves the mapping was fully live for
          // the fault's entire execution — the fault had no excuse to fail.
          const bool torn_down = page < g.pages / 2
                                     ? g.retiring_head.load(std::memory_order_seq_cst) ||
                                           g.retiring.load(std::memory_order_seq_cst)
                                     : g.retiring.load(std::memory_order_seq_cst);
          if (!torn_down) {
            spurious_segv.store(true, std::memory_order_relaxed);
          }
        }
        g.attempts.fetch_add(1, std::memory_order_release);
      }
    });
  }

  Xoshiro256 rng(0x5eed4);
  for (int i = 0; i < generations; ++i) {
    Generation& g = gens[static_cast<std::size_t>(i)];
    g.prot = (i % 2 == 0) ? (kProtRead | kProtWrite) : kProtRead;
    g.pages = kArenaPages;
    // Generations round-robin across the stripes so every stripe's seqcount, retire
    // list, and page-table shard group carries fault-vs-unmap races.
    g.base = as.MmapInStripe(static_cast<unsigned>(i) % as.Stripes(), g.pages * kPage,
                             g.prot);
    ASSERT_NE(g.base, 0u);
    published.store(i, std::memory_order_release);

    // Let the faulters race this generation for a while before tearing it down.
    const uint64_t target = 24 + rng.NextBelow(64);
    ASSERT_TRUE(srl::testing::EventuallyTrue(
        [&] { return g.attempts.load(std::memory_order_acquire) >= target; }))
        << "faulters stalled on generation " << i;

    if (rng.NextChance(0.5)) {
      // Partial unmap first: the head half dies while faults keep hammering both
      // halves (second-half outcomes must stay exact throughout).
      g.retiring_head.store(true, std::memory_order_seq_cst);
      ASSERT_TRUE(as.Munmap(g.base, (g.pages / 2) * kPage)) << "generation " << i;
      // Deferred sweeps move the drain edge from "Munmap returned" to "the covering
      // sweep flushed": DrainSweeps is that edge. A straggler fault in flight at the
      // drain may still transiently re-install, but must undo — EventuallyTrue.
      as.DrainSweeps();
      EXPECT_TRUE(srl::testing::EventuallyTrue([&] {
        return as.PresentPagesInRange(g.base, (g.pages / 2) * kPage) == 0;
      })) << "stale page(s) in the unmapped head half of generation " << i
          << " — a fault that lost the race left its install behind";
    }
    g.retiring.store(true, std::memory_order_seq_cst);
    ASSERT_TRUE(as.Munmap(g.base, g.pages * kPage)) << "generation " << i;
    as.DrainSweeps();
    EXPECT_TRUE(srl::testing::EventuallyTrue(
        [&] { return as.PresentPagesInRange(g.base, g.pages * kPage) == 0; }))
        << "stale page(s) in unmapped generation " << i;
  }

  stop.store(true, std::memory_order_release);
  for (auto& th : faulters) {
    th.join();
  }

  EXPECT_FALSE(prot_violation.load()) << "a fault succeeded against an access its "
                                         "generation's protection forbids";
  EXPECT_FALSE(spurious_segv.load()) << "a fault failed while its mapping was provably "
                                        "live and untouched";
  // Terminal sweep: no unmapped range (addresses are never reused) may hold a page.
  as.DrainSweeps();
  for (const Generation& g : gens) {
    EXPECT_EQ(as.PresentPagesInRange(g.base, g.pages * kPage), 0u);
  }
  EXPECT_TRUE(as.CheckInvariants());
  if (as.ScopedStructural()) {
    // The battery must actually exercise the speculative path, not just its fallback.
    EXPECT_GT(as.Stats().FaultSpecOk(), 0u);
  }
}

// The install-before-validate ordering is the load-bearing line of the speculative
// fault. Invert it (test hook) and the drain oracle above must catch the stale page it
// strands — within a bounded number of generations, on the same machine, with the same
// oracle. The control leg re-runs the identical widened-window harness with the correct
// ordering and must stay clean, so the detection cannot be a false positive.
TEST_P(VmFaultUnmapRaceTest, BrokenValidateBeforeInstallIsCaught) {
  if (!AddressSpace(GetParam().variant).ScopedStructural()) {
    GTEST_SKIP() << "only scoped variants have the speculative fault path";
  }
  // The widened window parks the faulting thread between its two speculative steps for
  // ~thousands of yields, giving the unmapper time to run a complete munmap inside the
  // window on any machine, single-core included.
  constexpr uint32_t kWindowYields = 400;
  constexpr int kMaxGenerations = 400;

  auto run_leg = [&](bool validate_before_install) {
    AddressSpace as(GetParam().variant, GetParam().stripes);
    // Inline sweeps: this leg demonstrates the PRE-deferral ordering bug, where the
    // drain edge is Munmap's return itself. (BrokenUndoSweepCheckIsCaught below is the
    // deferred-sweep counterpart.)
    as.SetDeferredSweeps(false);
    as.TestOnlySetSpecFaultOrdering(validate_before_install, kWindowYields);
    std::atomic<uint64_t> pub_base{0};
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> completed{0};

    std::thread faulter([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t base = pub_base.load(std::memory_order_acquire);
        if (base == 0) {
          std::this_thread::yield();
          continue;
        }
        as.PageFault(base, true);
        completed.fetch_add(1, std::memory_order_release);
      }
    });

    int stale_generations = 0;
    for (int i = 0; i < kMaxGenerations && stale_generations == 0; ++i) {
      const uint64_t base = as.Mmap(kPage, kProtRead | kProtWrite);
      pub_base.store(base, std::memory_order_release);
      const uint64_t c0 = completed.load(std::memory_order_acquire);
      // Wait until the faulter is provably working on this generation, then unmap
      // while it races. The generation stays published: faults issued after the unmap
      // observe the bumped seqcount, find nothing, and fail without installing, so
      // they keep the completion counter moving without disturbing the oracle.
      srl::testing::EventuallyTrue(
          [&] { return completed.load(std::memory_order_acquire) > c0; });
      as.Munmap(base, kPage);
      // Any fault in flight at munmap time has finished once two more faults complete
      // (the +2 covers one straggler plus one full successor); after that, a page
      // still present here can only be a stale install that will never be undone.
      const uint64_t c1 = completed.load(std::memory_order_acquire);
      srl::testing::EventuallyTrue(
          [&] { return completed.load(std::memory_order_acquire) >= c1 + 2; });
      if (as.PresentPagesInRange(base, kPage) != 0) {
        ++stale_generations;
      }
    }
    stop.store(true, std::memory_order_release);
    faulter.join();
    return stale_generations;
  };

  EXPECT_GT(run_leg(/*validate_before_install=*/true), 0)
      << "the battery failed to catch a deliberately broken validate-before-install "
         "ordering — the oracle has lost its teeth";
  EXPECT_EQ(run_leg(/*validate_before_install=*/false), 0)
      << "correct install-before-validate ordering left a stale page behind";
}

// Deferred-sweep extension of the oracle: the losing-fault undo must consult the sweep
// queue and remove only its OWN install (ticket-exact). The interleaving that needs it:
//
//   loser L installs P (ticket t1)  →  DONTNEED enqueues P  →  the flusher claims and
//   erases P  →  winner W re-installs P (ticket t2)  →  L's validation fails and it
//   undoes.
//
// A blind `Remove(P)` undo — the pre-deferral code — destroys W's install: P reads
// absent although the last settled operation on it was W's successful fault, the
// stale-ABSENCE mirror of the stale-page bug. The correct undo either defers to a
// still-pending sweep or calls RemoveExact(P, t1), which cannot touch t2. Each
// generation forces that interleaving with the deterministic park gate: L parks
// between install and validate (TestOnlyParkNextSpecFault) while the main thread
// bumps the stripe seqcount (scratch mmap, making L a loser), flushes L's install
// (threshold-1 DONTNEED), re-installs as the winner, then flips the arena read-only
// so L's retry is denied rather than repairing the damage with a fresh install. Only
// then is L released. The broken leg must observe vanished winner pages in nearly
// every generation (the gate leaves no timing luck to hope for); the correct leg must
// never observe one.
TEST_P(VmFaultUnmapRaceTest, BrokenUndoSweepCheckIsCaught) {
  if (!AddressSpace(GetParam().variant).ScopedStructural()) {
    GTEST_SKIP() << "only scoped variants have the speculative fault path";
  }
  constexpr int kGenerations = 50;

  auto run_leg = [&](bool undo_sweep_check) {
    AddressSpace as(GetParam().variant, GetParam().stripes);
    as.TestOnlySetUndoSweepCheck(undo_sweep_check);
    // Every enqueue crosses the threshold, so MadviseDontNeed flushes its own sweep
    // before returning — the flusher runs exactly between L's install and undo.
    as.SetSweepFlushThreshold(1);
    int stale_generations = 0;
    for (int i = 0; i < kGenerations; ++i) {
      const uint64_t arena = as.MmapInStripe(0, kPage, kProtRead | kProtWrite);
      if (arena == 0) {
        break;  // stripe window exhausted (cannot happen within the budget)
      }
      as.TestOnlyParkNextSpecFault();
      std::thread loser([&] { as.PageFault(arena, true); });
      // Wait until L holds the park (it has installed P and will not validate until
      // released). A false return means L's walk fell back to the locked path and the
      // token went unconsumed — the generation is inconclusive, skip it.
      if (!srl::testing::EventuallyTrue([&] { return as.TestOnlySpecFaultParked(); })) {
        as.TestOnlyReleaseParkedFault();
        loser.join();
        continue;
      }
      as.MmapInStripe(0, kPage, kProtRead | kProtWrite);  // seq bump: L must lose
      as.MadviseDontNeed(arena, kPage);   // enqueue + immediate flush erases L's install
      as.PageFault(arena, true);          // winner re-install (fresh ticket)
      as.Mprotect(arena, kPage, kProtRead);  // deny L's retry attempts
      as.TestOnlyReleaseParkedFault();
      loser.join();
      if (as.PresentPagesInRange(arena, kPage) == 0) {
        // The winner's page vanished: only an undo that removed an install it did not
        // own can do that (no unmap or DONTNEED covered it after the winner's fault).
        ++stale_generations;
      }
    }
    return stale_generations;
  };

  EXPECT_GT(run_leg(/*undo_sweep_check=*/false), 0)
      << "the battery failed to catch the reverted (blind) losing-fault undo — the "
         "sweep-queue check has lost its teeth";
  EXPECT_EQ(run_leg(/*undo_sweep_check=*/true), 0)
      << "the ticket-exact, sweep-queue-aware undo removed a winning fault's install";
}

INSTANTIATE_TEST_SUITE_P(
    ScopedAndControls, VmFaultUnmapRaceTest,
    ::testing::Values(RaceParam{VmVariant::kTreeScoped, 1},
                      RaceParam{VmVariant::kListScoped, 1},
                      RaceParam{VmVariant::kTreeFull, 1},
                      RaceParam{VmVariant::kListRefined, 1},
                      RaceParam{VmVariant::kListLfScoped, 1},
                      RaceParam{VmVariant::kListLfFull, 1},
                      RaceParam{VmVariant::kSkiplistScoped, 1},
                      RaceParam{VmVariant::kSkiplistFull, 1},
                      // Multi-stripe spaces: the install-then-validate ordering must
                      // hold per stripe, with generations spread across all four.
                      RaceParam{VmVariant::kTreeScoped, 4},
                      RaceParam{VmVariant::kListScoped, 4},
                      RaceParam{VmVariant::kListLfScoped, 4},
                      RaceParam{VmVariant::kSkiplistScoped, 4}),
    VariantTestName);

}  // namespace
}  // namespace srl::vm
