// Tests for the reader-writer list-based range lock (§4.2, Listings 2–3).
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/fair_list_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::StaysFalse;

TEST(ListRwRangeLockTest, ReadWriteSingleThread) {
  ListRwRangeLock lock;
  auto r = lock.LockRead({0, 10});
  ASSERT_NE(r, nullptr);
  lock.Unlock(r);
  auto w = lock.LockWrite({0, 10});
  ASSERT_NE(w, nullptr);
  lock.Unlock(w);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

TEST(ListRwRangeLockTest, OverlappingReadersShare) {
  ListRwRangeLock lock;
  auto r1 = lock.LockRead({0, 100});
  std::atomic<bool> second_in{false};
  std::thread t([&] {
    auto r2 = lock.LockRead({50, 150});  // overlaps r1; must not block
    second_in.store(true);
    lock.Unlock(r2);
  });
  t.join();  // terminates while r1 is still held
  EXPECT_TRUE(second_in.load());
  lock.Unlock(r1);
}

TEST(ListRwRangeLockTest, SameRangeReadersShare) {
  ListRwRangeLock lock;
  auto r1 = lock.LockRead({0, 10});
  auto r2 = lock.LockRead({0, 10});  // identical range, same start — still shared
  EXPECT_EQ(lock.DebugHeldCount(), 2);
  lock.Unlock(r1);
  lock.Unlock(r2);
}

TEST(ListRwRangeLockTest, WriterBlocksOverlappingReader) {
  ListRwRangeLock lock;
  auto w = lock.LockWrite({0, 100});
  std::atomic<bool> reader_in{false};
  std::thread t([&] {
    auto r = lock.LockRead({50, 60});
    reader_in.store(true);
    lock.Unlock(r);
  });
  EXPECT_TRUE(StaysFalse([&] { return reader_in.load(); }));
  lock.Unlock(w);
  t.join();
  EXPECT_TRUE(reader_in.load());
}

TEST(ListRwRangeLockTest, ReaderBlocksOverlappingWriter) {
  ListRwRangeLock lock;
  auto r = lock.LockRead({0, 100});
  std::atomic<bool> writer_in{false};
  std::thread t([&] {
    auto w = lock.LockWrite({50, 60});
    writer_in.store(true);
    lock.Unlock(w);
  });
  EXPECT_TRUE(StaysFalse([&] { return writer_in.load(); }));
  lock.Unlock(r);
  t.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(ListRwRangeLockTest, WritersExcludeEachOther) {
  ListRwRangeLock lock;
  auto w1 = lock.LockWrite({0, 100});
  std::atomic<bool> second_in{false};
  std::thread t([&] {
    auto w2 = lock.LockWrite({50, 150});
    second_in.store(true);
    lock.Unlock(w2);
  });
  EXPECT_TRUE(StaysFalse([&] { return second_in.load(); }));
  lock.Unlock(w1);
  t.join();
  EXPECT_TRUE(second_in.load());
}

TEST(ListRwRangeLockTest, DisjointWritersProceedInParallel) {
  ListRwRangeLock lock;
  auto w1 = lock.LockWrite({0, 10});
  std::atomic<bool> second_in{false};
  std::thread t([&] {
    auto w2 = lock.LockWrite({20, 30});
    second_in.store(true);
    lock.Unlock(w2);
  });
  t.join();
  EXPECT_TRUE(second_in.load());
  lock.Unlock(w1);
}

TEST(ListRwRangeLockTest, ReaderPastWriterRangeNotBlocked) {
  ListRwRangeLock lock;
  auto w = lock.LockWrite({0, 10});
  std::atomic<bool> reader_in{false};
  std::thread t([&] {
    auto r = lock.LockRead({10, 20});  // adjacent — precise half-open semantics
    reader_in.store(true);
    lock.Unlock(r);
  });
  t.join();
  EXPECT_TRUE(reader_in.load());
  lock.Unlock(w);
}

// Hammers the Figure-1 race: a reader whose range starts before existing readers and a
// writer that fits in a gap further down the list insert at different positions and can
// only be serialized by the validation step.
TEST(ListRwRangeLockTest, Figure1RaceHammer) {
  constexpr int kIters = 3000;
  constexpr uint64_t kUniverse = 64;
  ListRwRangeLock lock;
  testing::RangeOracle oracle(kUniverse);
  std::atomic<bool> stop{false};

  // Background readers recreate the [1,10) [20,25) [40,45) population continuously.
  std::vector<std::thread> background;
  for (uint64_t base : {uint64_t{1}, uint64_t{20}, uint64_t{40}}) {
    background.emplace_back([&, base] {
      const Range r{base, base + 5};
      while (!stop.load()) {
        auto h = lock.LockRead(r);
        oracle.EnterRead(r);
        oracle.ExitRead(r);
        lock.Unlock(h);
      }
    });
  }

  std::thread reader([&] {
    const Range r{15, 45};  // spans the writer's target
    for (int i = 0; i < kIters; ++i) {
      auto h = lock.LockRead(r);
      oracle.EnterRead(r);
      oracle.ExitRead(r);
      lock.Unlock(h);
    }
  });
  std::thread writer([&] {
    const Range r{30, 35};
    for (int i = 0; i < kIters; ++i) {
      auto h = lock.LockWrite(r);
      oracle.EnterWrite(r);
      oracle.ExitWrite(r);
      lock.Unlock(h);
    }
  });
  reader.join();
  writer.join();
  stop.store(true);
  for (auto& th : background) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
  EXPECT_EQ(lock.DebugHeldCount(), 0);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

struct RwStressParam {
  int threads;
  double write_fraction;
  bool fast_path;
  bool fair;
};

class ListRwStressTest : public ::testing::TestWithParam<RwStressParam> {};

TEST_P(ListRwStressTest, MixedWorkloadExclusion) {
  const RwStressParam param = GetParam();
  constexpr uint64_t kUniverse = 128;
  constexpr int kIters = 3000;
  testing::RangeOracle oracle(kUniverse);

  auto body = [&](auto& lock, int tid) {
    Xoshiro256 rng(0xc0ffee00 + tid);
    for (int i = 0; i < kIters; ++i) {
      uint64_t a = rng.NextBelow(kUniverse);
      uint64_t b = rng.NextBelow(kUniverse);
      if (a > b) {
        std::swap(a, b);
      }
      const Range r{a, b + 1};
      if (rng.NextChance(param.write_fraction)) {
        auto h = lock.LockWrite(r);
        oracle.EnterWrite(r);
        oracle.ExitWrite(r);
        lock.Unlock(h);
      } else {
        auto h = lock.LockRead(r);
        oracle.EnterRead(r);
        oracle.ExitRead(r);
        lock.Unlock(h);
      }
    }
  };

  auto run = [&](auto& lock) {
    std::vector<std::thread> threads;
    for (int t = 0; t < param.threads; ++t) {
      threads.emplace_back([&, t] { body(lock, t); });
    }
    for (auto& th : threads) {
      th.join();
    }
  };

  if (param.fair) {
    FairListRwRangeLock lock(FairListRwRangeLock::Options{
        .inner = {.enable_fast_path = param.fast_path}, .patience = 4});
    run(lock);
  } else {
    ListRwRangeLock lock(ListRwRangeLock::Options{.enable_fast_path = param.fast_path});
    run(lock);
    EXPECT_EQ(lock.DebugHeldCount(), 0);
    EXPECT_TRUE(lock.DebugInvariantHolds());
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListRwStressTest,
    ::testing::Values(RwStressParam{4, 0.0, false, false},
                      RwStressParam{4, 0.2, false, false},
                      RwStressParam{4, 0.5, false, false},
                      RwStressParam{8, 0.2, false, false},
                      RwStressParam{8, 1.0, false, false},
                      RwStressParam{4, 0.2, true, false},
                      RwStressParam{8, 0.5, true, false},
                      RwStressParam{4, 0.2, false, true},
                      RwStressParam{8, 0.5, true, true}),
    [](const ::testing::TestParamInfo<RwStressParam>& info) {
      return "t" + std::to_string(info.param.threads) + "_w" +
             std::to_string(static_cast<int>(info.param.write_fraction * 100)) +
             (info.param.fast_path ? "_fp" : "") + (info.param.fair ? "_fair" : "");
    });

// Writers under a constant reader stream must still complete (validation restarts are
// bounded in practice; the fairness layer guarantees it outright).
TEST(ListRwRangeLockTest, WriterCompletesUnderReaderStream) {
  ListRwRangeLock lock;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto h = lock.LockRead({0, 100});
        lock.Unlock(h);
      }
    });
  }
  std::atomic<int> writes_done{0};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      auto h = lock.LockWrite({40, 60});
      writes_done.fetch_add(1);
      lock.Unlock(h);
    }
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(writes_done.load(), 200);
}

// Drives the Figure-1 race until a timed reader expires *inside* r_validate and
// self-deletes its already-enqueued node — the one abort path a single thread cannot
// reach (any pre-insertion conflict aborts before the node enters the list). A held
// seed reader at [2,3) forces the racing reader [0,10) and writer [5,15) to insert at
// different list positions, so neither sees the other before its validation pass. The
// invariant checks (and ASan/TSan in the sanitizer configs) then verify the self-delete
// left the list structurally sound with nothing leaked.
TEST(ListRwRangeLockTest, TimedReaderAbortsInsideValidation) {
  ListRwRangeLock lock;
  auto seed = lock.LockRead({2, 3});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto h = lock.LockWrite({5, 15});
      lock.Unlock(h);
    }
  });
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  uint64_t reader_successes = 0;
  while (lock.DebugRValidateAborts() == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    ListRwRangeLock::Handle h = nullptr;
    if (lock.LockReadFor({0, 10}, 3us, &h)) {
      ++reader_successes;
      lock.Unlock(h);
    }
  }
  stop.store(true);
  writer.join();
  const uint64_t aborts = lock.DebugRValidateAborts();
  lock.Unlock(seed);
  // Whatever mix of aborts and successes the race produced, the list must be sound:
  // both ranges reacquirable, invariant intact, only residue reclaimable.
  auto w = lock.LockWrite(Range::Full());
  lock.Unlock(w);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  if (aborts == 0) {
    GTEST_SKIP() << "race window never hit (reader successes: " << reader_successes
                 << "); structural checks still passed";
  }
}

}  // namespace
}  // namespace srl
