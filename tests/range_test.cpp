// Tests for the Range value type.
#include <gtest/gtest.h>

#include "src/core/range.h"

namespace srl {
namespace {

TEST(RangeTest, Validity) {
  EXPECT_TRUE((Range{0, 1}.Valid()));
  EXPECT_TRUE(Range::Full().Valid());
  EXPECT_FALSE((Range{5, 5}.Valid()));
  EXPECT_FALSE((Range{6, 5}.Valid()));
}

TEST(RangeTest, OverlapIsSymmetricAndHalfOpen) {
  const Range a{0, 10};
  const Range b{10, 20};
  const Range c{9, 11};
  EXPECT_FALSE(a.Overlaps(b));  // adjacent: end is exclusive
  EXPECT_FALSE(b.Overlaps(a));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(a));
  EXPECT_TRUE(b.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(b));
}

TEST(RangeTest, FullRangeOverlapsEverything) {
  const Range full = Range::Full();
  EXPECT_TRUE(full.Overlaps({0, 1}));
  EXPECT_TRUE(full.Overlaps({UINT64_MAX - 2, UINT64_MAX - 1}));
  EXPECT_TRUE(full.Overlaps(full));
}

TEST(RangeTest, Contains) {
  const Range r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_TRUE(r.Contains(Range{10, 20}));
  EXPECT_TRUE(r.Contains(Range{12, 15}));
  EXPECT_FALSE(r.Contains(Range{12, 21}));
}

TEST(RangeTest, Length) {
  EXPECT_EQ((Range{10, 25}.Length()), 15u);
}

}  // namespace
}  // namespace srl
