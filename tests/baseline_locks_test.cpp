// Tests for the baseline range locks: the kernel tree lock port (lustre-ex /
// kernel-rw semantics) and the pNOVA segment lock.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/baselines/segment_range_lock.h"
#include "src/baselines/tree_range_lock.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::EventuallyTrue;
using testing::StaysFalse;

TEST(TreeRangeLockTest, AcquireReleaseSingleThread) {
  TreeRangeLock lock;
  auto h = lock.AcquireWrite({0, 10});
  EXPECT_EQ(lock.DebugHeldCount(), 1u);
  EXPECT_TRUE(lock.DebugTreeValid());
  lock.Release(h);
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
}

TEST(TreeRangeLockTest, DisjointWritersDoNotBlock) {
  TreeRangeLock lock;
  auto h1 = lock.AcquireWrite({0, 10});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = lock.AcquireWrite({20, 30});
    in.store(true);
    lock.Release(h2);
  });
  t.join();
  EXPECT_TRUE(in.load());
  lock.Release(h1);
}

TEST(TreeRangeLockTest, OverlappingWriterBlocks) {
  TreeRangeLock lock;
  auto h1 = lock.AcquireWrite({0, 10});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = lock.AcquireWrite({5, 15});
    in.store(true);
    lock.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  lock.Release(h1);
  t.join();
  EXPECT_TRUE(in.load());
}

TEST(TreeRangeLockTest, OverlappingReadersShare) {
  TreeRangeLock lock;
  auto r1 = lock.AcquireRead({0, 100});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto r2 = lock.AcquireRead({50, 150});
    in.store(true);
    lock.Release(r2);
  });
  t.join();
  EXPECT_TRUE(in.load());
  lock.Release(r1);
}

TEST(TreeRangeLockTest, WriterBlocksBehindReader) {
  TreeRangeLock lock;
  auto r = lock.AcquireRead({0, 100});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto w = lock.AcquireWrite({10, 20});
    in.store(true);
    lock.Release(w);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  lock.Release(r);
  t.join();
  EXPECT_TRUE(in.load());
}

// The §3 FIFO pathology this baseline deliberately reproduces: C=[4,5) counts the
// *waiting* B=[2,7) as a blocker and stalls even though only A=[1,3) is actually held.
// (Contrast with ListRangeLockTest.NonOverlappingRequestNotBlockedBehindWaiter.)
TEST(TreeRangeLockTest, RequestBlocksBehindOverlappingWaiter) {
  TreeRangeLock lock;
  auto a = lock.AcquireWrite({1, 3});
  std::atomic<bool> b_in{false};
  std::thread b([&] {
    auto h = lock.AcquireWrite({2, 7});
    b_in.store(true);
    lock.Release(h);
  });
  // Wait until B's range is actually in the tree (waiters are inserted before they
  // spin), so C is guaranteed to find it there.
  ASSERT_TRUE(EventuallyTrue([&] { return lock.DebugNodeCountLocked() == 2; }));
  std::atomic<bool> c_in{false};
  std::thread c([&] {
    auto h = lock.AcquireWrite({4, 5});
    c_in.store(true);
    lock.Release(h);
  });
  EXPECT_TRUE(StaysFalse([&] { return b_in.load() || c_in.load(); }))
      << "kernel tree lock admits C ahead of waiter B — FIFO broken";
  lock.Release(a);
  b.join();
  c.join();
  EXPECT_TRUE(b_in.load());
  EXPECT_TRUE(c_in.load());
}

TEST(TreeRangeLockTest, SpinWaitStatsRecord) {
  TreeRangeLock lock;
  WaitStats stats;
  lock.SetSpinWaitStats(&stats);
  auto h = lock.AcquireWrite({0, 10});
  lock.Release(h);
  // One internal spin-lock acquisition each for acquire and release.
  EXPECT_EQ(stats.WriteCount(), 2u);
  lock.SetSpinWaitStats(nullptr);
}

TEST(TreeRangeLockTest, StressRandomRanges) {
  TreeRangeLock lock;
  constexpr uint64_t kUniverse = 128;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xbead + t);
      for (int i = 0; i < 2000; ++i) {
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t b = rng.NextBelow(kUniverse);
        if (a > b) {
          std::swap(a, b);
        }
        const Range r{a, b + 1};
        if (rng.NextChance(0.3)) {
          auto h = lock.AcquireWrite(r);
          oracle.EnterWrite(r);
          oracle.ExitWrite(r);
          lock.Release(h);
        } else {
          auto h = lock.AcquireRead(r);
          oracle.EnterRead(r);
          oracle.ExitRead(r);
          lock.Release(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
}

TEST(SegmentRangeLockTest, BasicAcquireRelease) {
  SegmentRangeLock lock(1024, 16);
  auto h = lock.AcquireWrite({0, 64});  // exactly one segment
  EXPECT_EQ(h.first_seg, 0u);
  EXPECT_EQ(h.last_seg, 0u);
  lock.Release(h);
  auto h2 = lock.AcquireWrite({0, 65});  // spills into the second segment
  EXPECT_EQ(h2.last_seg, 1u);
  lock.Release(h2);
}

TEST(SegmentRangeLockTest, FullRangeTakesEverySegment) {
  SegmentRangeLock lock(1024, 16);
  auto h = lock.AcquireWrite(Range::Full());
  EXPECT_EQ(h.first_seg, 0u);
  EXPECT_EQ(h.last_seg, 15u);
  // Nothing else can get in anywhere.
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = lock.AcquireRead({512, 513});
    in.store(true);
    lock.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  lock.Release(h);
  t.join();
  EXPECT_TRUE(in.load());
}

TEST(SegmentRangeLockTest, FalseSharingWithinSegment) {
  // Two disjoint ranges inside the same segment serialize — the granularity cost the
  // paper attributes to this design.
  SegmentRangeLock lock(1024, 16);
  auto h = lock.AcquireWrite({0, 8});
  std::atomic<bool> in{false};
  std::thread t([&] {
    auto h2 = lock.AcquireWrite({32, 40});  // same segment 0
    in.store(true);
    lock.Release(h2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  lock.Release(h);
  t.join();
  EXPECT_TRUE(in.load());
}

// The timed acquisition forms keep the per-segment RwSpinLock's writer preference: a
// blocking writer that has queued holds off timed readers, so polling readers cannot
// starve it — the mirror of RwSemaphoreTest.TimedWriterGetsPreferenceOverNewReaders.
TEST(SegmentRangeLockTest, TimedReadersDeferToQueuedWriter) {
  SegmentRangeLock lock(1024, 16);
  auto r = lock.AcquireRead({0, 8});
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    auto h = lock.AcquireWrite({0, 8});
    writer_done.store(true);
    lock.Release(h);
  });
  // Once the writer has queued on segment 0, a timed read of the same segment fails
  // fast instead of being admitted past it. (A probe that does get in lets go again.)
  EXPECT_TRUE(EventuallyTrue([&] {
    SegmentRangeLock::Handle h;
    if (lock.AcquireReadFor({0, 8}, 0ms, &h)) {
      lock.Release(h);
      return false;
    }
    return true;
  }));
  EXPECT_FALSE(writer_done.load());
  lock.Release(r);  // last reader leaves; the queued writer must admit
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

// A timed writer registers while it polls, so a reader stream cannot keep admitting
// past it for its whole timeout.
TEST(SegmentRangeLockTest, TimedWriterGetsPreferenceOverNewReaders) {
  SegmentRangeLock lock(1024, 16);
  auto r = lock.AcquireRead({0, 8});
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    SegmentRangeLock::Handle h;
    if (lock.AcquireWriteFor({0, 8}, 60s, &h)) {
      writer_done.store(true);
      lock.Release(h);
    }
  });
  EXPECT_TRUE(EventuallyTrue([&] {
    SegmentRangeLock::Handle h;
    if (lock.TryAcquireRead({0, 8}, &h)) {
      lock.Release(h);
      return false;
    }
    return true;
  }));
  EXPECT_FALSE(writer_done.load());
  lock.Release(r);
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(SegmentRangeLockTest, StressNoDeadlockMixedWidths) {
  SegmentRangeLock lock(1024, 16);
  constexpr uint64_t kUniverse = 1024;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xface + t);
      for (int i = 0; i < 1500; ++i) {
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t len = 1 + rng.NextBelow(300);  // frequently spans several segments
        const Range r{a, std::min<uint64_t>(a + len, kUniverse)};
        if (!r.Valid()) {
          continue;
        }
        if (rng.NextChance(0.4)) {
          auto h = lock.AcquireWrite(r);
          oracle.EnterWrite(r);
          oracle.ExitWrite(r);
          lock.Release(h);
        } else {
          auto h = lock.AcquireRead(r);
          oracle.EnterRead(r);
          oracle.ExitRead(r);
          lock.Release(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

}  // namespace
}  // namespace srl
