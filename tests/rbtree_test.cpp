// Property tests for the red-black tree and interval tree substrates: randomized
// operation sequences checked against std:: oracles, with structural invariants
// (coloring, black height, parent links, augmented max_end) revalidated throughout.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/rbtree/interval_tree.h"
#include "src/rbtree/rb_tree.h"

namespace srl {
namespace {

struct IntNode {
  IntNode* rb_parent = nullptr;
  IntNode* rb_left = nullptr;
  IntNode* rb_right = nullptr;
  bool rb_red = false;
  int key = 0;
};

struct IntTraits {
  static bool Less(const IntNode& a, const IntNode& b) { return a.key < b.key; }
  static void Update(IntNode*) {}
};

using IntTree = RbTree<IntNode, IntTraits>;

std::vector<int> InOrderKeys(const IntTree& tree) {
  std::vector<int> keys;
  for (IntNode* n = tree.First(); n != nullptr; n = IntTree::Next(n)) {
    keys.push_back(n->key);
  }
  return keys;
}

TEST(RbTreeTest, EmptyTree) {
  IntTree tree;
  EXPECT_TRUE(tree.Empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.First(), nullptr);
  EXPECT_TRUE(tree.ValidateStructure());
}

TEST(RbTreeTest, InsertAscending) {
  IntTree tree;
  std::vector<IntNode> nodes(64);
  for (int i = 0; i < 64; ++i) {
    nodes[i].key = i;
    tree.Insert(&nodes[i]);
    ASSERT_TRUE(tree.ValidateStructure()) << "after inserting " << i;
  }
  std::vector<int> expect(64);
  for (int i = 0; i < 64; ++i) {
    expect[i] = i;
  }
  EXPECT_EQ(InOrderKeys(tree), expect);
}

TEST(RbTreeTest, InsertDescending) {
  IntTree tree;
  std::vector<IntNode> nodes(64);
  for (int i = 0; i < 64; ++i) {
    nodes[i].key = 63 - i;
    tree.Insert(&nodes[i]);
    ASSERT_TRUE(tree.ValidateStructure());
  }
  EXPECT_EQ(InOrderKeys(tree).front(), 0);
  EXPECT_EQ(InOrderKeys(tree).back(), 63);
}

TEST(RbTreeTest, DuplicateKeysAllowed) {
  IntTree tree;
  std::vector<IntNode> nodes(10);
  for (auto& n : nodes) {
    n.key = 7;
    tree.Insert(&n);
  }
  EXPECT_EQ(tree.Size(), 10u);
  EXPECT_TRUE(tree.ValidateStructure());
  for (auto& n : nodes) {
    tree.Erase(&n);
    ASSERT_TRUE(tree.ValidateStructure());
  }
  EXPECT_TRUE(tree.Empty());
}

TEST(RbTreeTest, NextPrevWalk) {
  IntTree tree;
  std::vector<IntNode> nodes(100);
  for (int i = 0; i < 100; ++i) {
    nodes[i].key = i * 3;
    tree.Insert(&nodes[i]);
  }
  // Forward walk.
  int expect = 0;
  for (IntNode* n = tree.First(); n != nullptr; n = IntTree::Next(n)) {
    EXPECT_EQ(n->key, expect);
    expect += 3;
  }
  // Backward walk.
  expect = 99 * 3;
  for (IntNode* n = tree.Last(); n != nullptr; n = IntTree::Prev(n)) {
    EXPECT_EQ(n->key, expect);
    expect -= 3;
  }
}

// Randomized insert/erase cross-checked against std::multiset semantics.
class RbTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbTreeRandomTest, MatchesOracle) {
  IntTree tree;
  Xoshiro256 rng(GetParam());
  std::multiset<int> oracle;
  std::vector<IntNode*> live;

  for (int step = 0; step < 3000; ++step) {
    const bool do_insert = live.empty() || rng.NextChance(0.6);
    if (do_insert) {
      auto* n = new IntNode();
      n->key = static_cast<int>(rng.NextBelow(500));
      tree.Insert(n);
      oracle.insert(n->key);
      live.push_back(n);
    } else {
      const std::size_t idx = rng.NextBelow(live.size());
      IntNode* n = live[idx];
      tree.Erase(n);
      oracle.erase(oracle.find(n->key));
      live[idx] = live.back();
      live.pop_back();
      delete n;
    }
    if (step % 64 == 0) {
      ASSERT_TRUE(tree.ValidateStructure()) << "step " << step;
    }
    ASSERT_EQ(tree.Size(), oracle.size());
  }
  ASSERT_TRUE(tree.ValidateStructure());
  const std::vector<int> keys = InOrderKeys(tree);
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin(), oracle.end()));
  for (IntNode* n : live) {
    delete n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomTest,
                         ::testing::Values(1u, 42u, 0xdeadbeefu, 7777u));

// ---------------------------------------------------------------------------
// Interval tree.
// ---------------------------------------------------------------------------

struct Interval {
  Interval* rb_parent = nullptr;
  Interval* rb_left = nullptr;
  Interval* rb_right = nullptr;
  bool rb_red = false;
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t max_end = 0;
  int id = 0;
};

TEST(IntervalTreeTest, EmptyOverlapQuery) {
  IntervalTree<Interval> tree;
  EXPECT_EQ(tree.CountOverlaps(0, 100), 0u);
  EXPECT_TRUE(tree.ValidateStructure());
}

TEST(IntervalTreeTest, BasicOverlaps) {
  IntervalTree<Interval> tree;
  Interval a{.start = 0, .end = 10};
  Interval b{.start = 10, .end = 20};
  Interval c{.start = 5, .end = 15};
  tree.Insert(&a);
  tree.Insert(&b);
  tree.Insert(&c);
  EXPECT_TRUE(tree.ValidateStructure());
  EXPECT_EQ(tree.CountOverlaps(0, 5), 1u);     // a only
  EXPECT_EQ(tree.CountOverlaps(9, 10), 2u);    // a and c
  EXPECT_EQ(tree.CountOverlaps(10, 11), 2u);   // b and c (a is half-open)
  EXPECT_EQ(tree.CountOverlaps(0, 20), 3u);
  EXPECT_EQ(tree.CountOverlaps(20, 30), 0u);   // b's end is exclusive
  tree.Erase(&c);
  EXPECT_EQ(tree.CountOverlaps(9, 11), 2u);    // a and b
  tree.Erase(&a);
  tree.Erase(&b);
  EXPECT_TRUE(tree.Empty());
}

TEST(IntervalTreeTest, OverlapVisitOrderIsByStart) {
  IntervalTree<Interval> tree;
  std::vector<Interval> nodes(20);
  for (int i = 0; i < 20; ++i) {
    nodes[i].start = static_cast<uint64_t>((19 - i) * 10);
    nodes[i].end = nodes[i].start + 15;  // overlaps neighbour
    tree.Insert(&nodes[i]);
  }
  uint64_t prev = 0;
  bool first = true;
  tree.ForEachOverlap(0, 1000, [&](Interval* n) {
    if (!first) {
      EXPECT_GE(n->start, prev);
    }
    prev = n->start;
    first = false;
  });
}

class IntervalTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalTreeRandomTest, OverlapQueriesMatchBruteForce) {
  IntervalTree<Interval> tree;
  Xoshiro256 rng(GetParam());
  std::vector<Interval*> live;
  constexpr uint64_t kUniverse = 1000;

  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.NextDouble();
    if (live.empty() || roll < 0.45) {
      auto* n = new Interval();
      n->start = rng.NextBelow(kUniverse);
      n->end = n->start + 1 + rng.NextBelow(50);
      n->id = step;
      tree.Insert(n);
      live.push_back(n);
    } else if (roll < 0.75) {
      const std::size_t idx = rng.NextBelow(live.size());
      tree.Erase(live[idx]);
      delete live[idx];
      live[idx] = live.back();
      live.pop_back();
    } else {
      // Query: compare against brute force.
      uint64_t qs = rng.NextBelow(kUniverse);
      uint64_t qe = qs + 1 + rng.NextBelow(80);
      std::size_t brute = 0;
      for (const Interval* n : live) {
        if (n->start < qe && qs < n->end) {
          ++brute;
        }
      }
      ASSERT_EQ(tree.CountOverlaps(qs, qe), brute) << "query [" << qs << "," << qe << ")";
    }
    if (step % 128 == 0) {
      ASSERT_TRUE(tree.ValidateStructure()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.ValidateStructure());
  for (Interval* n : live) {
    delete n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreeRandomTest,
                         ::testing::Values(3u, 99u, 0xfeedfaceu));

}  // namespace
}  // namespace srl
