// Tests for both skip lists: the Herlihy optimistic baseline and the range-lock-based
// design of §6 (over the list lock and the tree lock). Typed suite: all variants must
// satisfy the same set semantics.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/skiplist/optimistic_skiplist.h"
#include "src/skiplist/range_lock_skiplist.h"

namespace srl {
namespace {

template <typename ListT>
class SkipListTest : public ::testing::Test {
 protected:
  ListT list_;
};

using SkipLists = ::testing::Types<OptimisticSkipList, RangeLockSkipList<ListLockPolicy>,
                                   RangeLockSkipList<TreeLockPolicy>>;

class SkipListNames {
 public:
  template <typename T>
  static std::string GetName(int i) {
    switch (i) {
      case 0:
        return "orig";
      case 1:
        return "range_list";
      default:
        return "range_lustre";
    }
  }
};

TYPED_TEST_SUITE(SkipListTest, SkipLists, SkipListNames);

TYPED_TEST(SkipListTest, InsertContainsRemove) {
  EXPECT_FALSE(this->list_.Contains(5));
  EXPECT_TRUE(this->list_.Insert(5));
  EXPECT_TRUE(this->list_.Contains(5));
  EXPECT_FALSE(this->list_.Insert(5)) << "duplicate insert must fail";
  EXPECT_TRUE(this->list_.Remove(5));
  EXPECT_FALSE(this->list_.Contains(5));
  EXPECT_FALSE(this->list_.Remove(5)) << "removing absent key must fail";
}

TYPED_TEST(SkipListTest, ManyKeysSequential) {
  constexpr uint64_t kKeys = 2000;
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_TRUE(this->list_.Insert(k * 3));
  }
  EXPECT_EQ(this->list_.DebugCount(), kKeys);
  for (uint64_t k = 1; k <= kKeys; ++k) {
    EXPECT_TRUE(this->list_.Contains(k * 3));
    EXPECT_FALSE(this->list_.Contains(k * 3 - 1));
  }
  for (uint64_t k = 1; k <= kKeys; k += 2) {
    ASSERT_TRUE(this->list_.Remove(k * 3));
  }
  for (uint64_t k = 1; k <= kKeys; ++k) {
    EXPECT_EQ(this->list_.Contains(k * 3), k % 2 == 0);
  }
  TypeParam::QuiesceLocal();
}

TYPED_TEST(SkipListTest, RandomOpsMatchStdSet) {
  Xoshiro256 rng(0x5151);
  std::set<uint64_t> oracle;
  for (int step = 0; step < 8000; ++step) {
    const uint64_t key = 1 + rng.NextBelow(500);
    const double roll = rng.NextDouble();
    if (roll < 0.45) {
      ASSERT_EQ(this->list_.Insert(key), oracle.insert(key).second) << "key " << key;
    } else if (roll < 0.8) {
      ASSERT_EQ(this->list_.Remove(key), oracle.erase(key) == 1) << "key " << key;
    } else {
      ASSERT_EQ(this->list_.Contains(key), oracle.count(key) == 1) << "key " << key;
    }
  }
  EXPECT_EQ(this->list_.DebugCount(), oracle.size());
  TypeParam::QuiesceLocal();
}

// Concurrent correctness via per-key slot counters: each thread owns a disjoint key
// stripe, so its sequential view must hold; shared Contains traffic runs throughout.
TYPED_TEST(SkipListTest, ConcurrentDisjointStripes) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 800;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t base = 1 + static_cast<uint64_t>(t) * kPerThread;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        if (!this->list_.Insert(base + i)) {
          ok.store(false);
        }
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        if (!this->list_.Contains(base + i)) {
          ok.store(false);
        }
      }
      for (uint64_t i = 0; i < kPerThread; i += 2) {
        if (!this->list_.Remove(base + i)) {
          ok.store(false);
        }
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        if (this->list_.Contains(base + i) != (i % 2 == 1)) {
          ok.store(false);
        }
      }
      TypeParam::QuiesceLocal();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(this->list_.DebugCount(), kThreads * kPerThread / 2);
}

// Contended single-key hammer: exactly one insert/remove can win each transition, so
// the global count of successful inserts minus removes must equal final membership.
TYPED_TEST(SkipListTest, ContendedSingleKeyLinearizable) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<int64_t> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x99 + t);
      for (int i = 0; i < kIters; ++i) {
        if (rng.NextChance(0.5)) {
          if (this->list_.Insert(42)) {
            net.fetch_add(1);
          }
        } else {
          if (this->list_.Remove(42)) {
            net.fetch_sub(1);
          }
        }
      }
      TypeParam::QuiesceLocal();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const int64_t expect = this->list_.Contains(42) ? 1 : 0;
  EXPECT_EQ(net.load(), expect);
}

// Synchrobench-like mixed workload with verification by net-count accounting.
TYPED_TEST(SkipListTest, MixedWorkloadStress) {
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  constexpr uint64_t kRange = 2048;
  std::atomic<int64_t> net{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xabcd + t);
      for (int i = 0; i < kIters; ++i) {
        const uint64_t key = 1 + rng.NextBelow(kRange);
        const double roll = rng.NextDouble();
        if (roll < 0.1) {
          if (this->list_.Insert(key)) {
            net.fetch_add(1);
          }
        } else if (roll < 0.2) {
          if (this->list_.Remove(key)) {
            net.fetch_sub(1);
          }
        } else {
          this->list_.Contains(key);
        }
        if (i % 512 == 0) {
          TypeParam::QuiesceLocal();
        }
      }
      TypeParam::QuiesceLocal();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(static_cast<int64_t>(this->list_.DebugCount()), net.load());
}

// Regression: DebugCount used to walk level 0 with no epoch critical section, so a
// remover's parked retire batch — whose grace snapshot never records the walker —
// could be freed mid-traversal. With the guard reverted this is a use-after-free the
// sanitizer jobs catch; with it, the walker's section joins every snapshot taken
// during the walk and the nodes outlive it.
TEST(SkipListEpochTest, DebugCountDuringChurnIsEpochSafe) {
  using List = RangeLockSkipList<ListLockPolicy>;
  List list;
  constexpr int kChurners = 3;
  constexpr uint64_t kKeysPerChurner = 512;
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurners; ++t) {
    churners.emplace_back([&, t] {
      const uint64_t base = 1 + static_cast<uint64_t>(t) * 4096;
      Xoshiro256 rng(0x7777 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = base + rng.NextBelow(kKeysPerChurner);
        if (rng.NextChance(0.5)) {
          list.Insert(key);
        } else {
          list.Remove(key);
        }
        // Flush at every quiescent point so retired nodes really are freed while
        // the main thread is mid-walk, not hoarded until join.
        List::QuiesceLocal();
      }
      List::QuiesceLocal();
    });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < deadline) {
    EXPECT_LE(list.DebugCount(), kChurners * kKeysPerChurner);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : churners) {
    th.join();
  }
}

// Pins the Remove retire protocol: the victim is handed to RetireList only after the
// remover has left its epoch critical section, so a quiescent-point flush immediately
// after Remove returns can reclaim through the no-ticket fast path and the per-thread
// backlog stays bounded by one flush threshold.
TEST(SkipListEpochTest, RemoveRetiresOutsideCriticalSectionAndReclaims) {
  // Dedicated thread: RetireList::Local() is thread-local, so the counts below see
  // only this churn.
  std::thread worker([] {
    using List = RangeLockSkipList<ListLockPolicy>;
    List list;
    const EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    const std::size_t kOps = 3 * RetireList::FlushThreshold();
    std::size_t peak = 0;
    for (std::size_t i = 1; i <= kOps; ++i) {
      ASSERT_TRUE(list.Insert(i));
      ASSERT_TRUE(list.Remove(i));
      ASSERT_EQ(rec->epoch.load(std::memory_order_acquire) & 1, 0u)
          << "Remove returned inside an epoch critical section";
      List::QuiesceLocal();
      peak = std::max(peak, RetireList::Local().PendingCount());
    }
    EXPECT_LE(peak, RetireList::FlushThreshold())
        << "threshold flushes stopped reclaiming: retire backlog grew unbounded";
    EXPECT_LT(RetireList::Local().PendingCount(), RetireList::FlushThreshold());
  });
  worker.join();
}

TEST(SkipListFootprintTest, RangeLockNodesAreNoLarger) {
  // §6: dropping the per-node lock shrinks every node. With this repo's 1-byte TTAS
  // spin lock the saving is absorbed by struct padding (hence <=, not <); with the
  // pthread_mutex the original Synchrobench implementation uses (40 bytes) the gap is
  // 40+ bytes per node.
  for (int level = 0; level < OptimisticSkipList::kMaxLevel; ++level) {
    EXPECT_LE(RangeLockSkipList<ListLockPolicy>::NodeBytes(level),
              OptimisticSkipList::NodeBytes(level));
  }
}

}  // namespace
}  // namespace srl
