// Tests for the sync substrate: spin locks, reader-writer locks, semaphore, counters.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/sync/backoff.h"
#include "src/sync/fair_rw_lock.h"
#include "src/sync/rw_semaphore.h"
#include "src/sync/rw_spin_lock.h"
#include "src/sync/seq_counter.h"
#include "src/sync/spin_lock.h"
#include "src/sync/ticket_lock.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;

constexpr int kThreads = 4;
constexpr int kItersPerThread = 20000;

// Drives any Lockable through a racy counter increment; a correct mutex makes the
// non-atomic counter end up exact.
template <typename LockT>
void MutexCounterTest(LockT& lock) {
  int64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        lock.lock();
        counter += 1;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, int64_t{kThreads} * kItersPerThread);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  MutexCounterTest(lock);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLockTest, MutualExclusion) {
  TicketLock lock;
  MutexCounterTest(lock);
}

TEST(TicketLockTest, TryLockFailsWhenHeld) {
  TicketLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// Readers must be able to hold the lock simultaneously.
template <typename RwLockT>
void ReadersShareTest(RwLockT& lock) {
  std::atomic<int> readers_inside{0};
  std::atomic<bool> saw_two{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      lock.lock_shared();
      readers_inside.fetch_add(1);
      // Wait (bounded) for the other reader to arrive while we hold the lock.
      for (int i = 0; i < 10000000; ++i) {
        if (readers_inside.load() == 2) {
          saw_two.store(true);
          break;
        }
        if (saw_two.load()) {
          break;
        }
        std::this_thread::yield();
      }
      readers_inside.fetch_sub(1);
      lock.unlock_shared();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(saw_two.load());
}

// Writer sections must be exclusive against both readers and writers.
template <typename RwLockT>
void RwCounterTest(RwLockT& lock) {
  int64_t counter = 0;
  std::atomic<bool> reader_saw_torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        for (int i = 0; i < kItersPerThread; ++i) {
          lock.lock();
          counter += 1;
          lock.unlock();
        }
      } else {
        for (int i = 0; i < kItersPerThread; ++i) {
          lock.lock_shared();
          // With the lock held for read, two successive reads must agree.
          const int64_t a = counter;
          const int64_t b = counter;
          if (a != b) {
            reader_saw_torn.store(true);
          }
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, int64_t{kThreads / 2} * kItersPerThread);
  EXPECT_FALSE(reader_saw_torn.load());
}

TEST(RwSpinLockTest, ReadersShare) {
  RwSpinLock lock;
  ReadersShareTest(lock);
}

TEST(RwSpinLockTest, WriterExclusion) {
  RwSpinLock lock;
  RwCounterTest(lock);
}

TEST(RwSpinLockTest, TryLockVariants) {
  RwSpinLock lock;
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
}

TEST(FairRwLockTest, ReadersShare) {
  FairRwLock lock;
  ReadersShareTest(lock);
}

TEST(FairRwLockTest, WriterExclusion) {
  FairRwLock lock;
  RwCounterTest(lock);
}

// A writer facing a continuous stream of readers must still get in (phase fairness).
TEST(FairRwLockTest, WriterNotStarvedByReaders) {
  FairRwLock lock;
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        lock.lock_shared();
        std::this_thread::yield();
        lock.unlock_shared();
      }
    });
  }
  std::thread writer([&] {
    lock.lock();
    writer_done.store(true);
    lock.unlock();
  });
  // Generous bound; phase fairness admits the writer after at most one reader phase.
  // (The bound is wall-clock generous because CI hosts may oversubscribe cores.)
  for (int i = 0; i < 20000 && !writer_done.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true);
  writer.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_TRUE(writer_done.load());
}

TEST(RwSemaphoreTest, ReadersShare) {
  RwSemaphore sem;
  ReadersShareTest(sem);
}

TEST(RwSemaphoreTest, WriterExclusion) {
  RwSemaphore sem;
  RwCounterTest(sem);
}

// Exercises the blocking path: a writer must sleep past its optimistic spin budget and
// still be woken by the last reader leaving.
TEST(RwSemaphoreTest, BlockedWriterWakesUp) {
  RwSemaphore sem;
  sem.lock_shared();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    sem.lock();
    writer_done.store(true);
    sem.unlock();
  });
  std::this_thread::sleep_for(50ms);  // force the writer well past its spin budget
  EXPECT_FALSE(writer_done.load());
  sem.unlock_shared();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(RwSemaphoreTest, BlockedReaderWakesUp) {
  RwSemaphore sem;
  sem.lock();
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    sem.lock_shared();
    reader_done.store(true);
    sem.unlock_shared();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(reader_done.load());
  sem.unlock();
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST(RwSemaphoreTest, TryLockRespectsHolders) {
  RwSemaphore sem;
  sem.lock_shared();
  EXPECT_TRUE(sem.try_lock_shared());  // readers share
  sem.unlock_shared();
  EXPECT_FALSE(sem.try_lock());  // reader blocks writer
  sem.unlock_shared();
  ASSERT_TRUE(sem.try_lock());
  EXPECT_FALSE(sem.try_lock_shared());  // writer blocks reader
  EXPECT_FALSE(sem.try_lock());
  sem.unlock();
}

// A polling timed writer must assert writer preference exactly like a blocking one:
// while it waits, new readers are held off, so an active reader stream cannot starve
// it for its whole timeout.
TEST(RwSemaphoreTest, TimedWriterGetsPreferenceOverNewReaders) {
  RwSemaphore sem;
  sem.lock_shared();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    if (sem.try_lock_for(60s)) {
      writer_done.store(true);
      sem.unlock();
    }
  });
  // Once the timed writer has queued, a fresh reader may no longer enter. (A probe
  // that does get in must let go again, or its count would block the writer forever.)
  EXPECT_TRUE(testing::EventuallyTrue([&] {
    if (sem.try_lock_shared()) {
      sem.unlock_shared();
      return false;
    }
    return true;
  }));
  EXPECT_FALSE(writer_done.load());
  sem.unlock_shared();  // last reader leaves; the timed writer must admit
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(RwSemaphoreTest, TimedAcquisitionsTimeOutAgainstConflicts) {
  RwSemaphore sem;
  sem.lock_shared();
  EXPECT_FALSE(sem.try_lock_for(5ms));  // reader blocks writer
  sem.unlock_shared();
  sem.lock();
  EXPECT_FALSE(sem.try_lock_shared_for(5ms));  // writer blocks reader
  EXPECT_FALSE(sem.try_lock_for(5ms));
  sem.unlock();
  // Failed timed forms hold nothing; the semaphore is fully free afterwards.
  EXPECT_TRUE(sem.try_lock());
  sem.unlock();
}

TEST(SeqCounterTest, BumpAdvances) {
  SeqCounter seq;
  EXPECT_EQ(seq.Read(), 0u);
  seq.Bump();
  seq.Bump();
  EXPECT_EQ(seq.Read(), 2u);
}

// --- Seqlock interface conformance (the VM speculation validator's contract) ---

TEST(SeqCounterTest, WriteSectionTogglesParity) {
  SeqCounter seq;
  const uint64_t s0 = seq.ReadBegin();
  EXPECT_EQ(s0 & 1, 0u);
  seq.BeginWrite();
  EXPECT_EQ(seq.Read() & 1, 1u) << "value must be odd while a write is in flight";
  seq.EndWrite();
  EXPECT_EQ(seq.Read() & 1, 0u);
  EXPECT_FALSE(seq.Validate(s0)) << "a completed write section must invalidate "
                                    "snapshots taken before it";
  EXPECT_TRUE(seq.Validate(seq.ReadBegin()));
}

// Per-mutation visibility: every BeginWrite/EndWrite pair — even one that restores the
// protected data bit-for-bit — must be visible to Validate. The VM code depends on
// this: a munmap that unlinks and a racing fault that validated around it must never
// agree on an unchanged counter.
TEST(SeqCounterTest, EveryMutationInvalidatesSnapshots) {
  SeqCounter seq;
  for (int i = 0; i < 8; ++i) {
    const uint64_t snap = seq.ReadBegin();
    seq.BeginWrite();
    seq.EndWrite();
    EXPECT_FALSE(seq.Validate(snap)) << "mutation " << i << " was invisible";
  }
}

// A reader must never validate a snapshot taken across an in-progress write:
// ReadBegin blocks (spins) while the counter is odd, and only returns even values.
TEST(SeqCounterTest, ReadBeginWaitsOutInFlightWrite) {
  SeqCounter seq;
  seq.BeginWrite();
  std::atomic<bool> got_snapshot{false};
  std::atomic<uint64_t> snapshot{~uint64_t{0}};
  std::thread reader([&] {
    snapshot.store(seq.ReadBegin());
    got_snapshot.store(true);
  });
  EXPECT_TRUE(testing::StaysFalse([&] { return got_snapshot.load(); }))
      << "ReadBegin returned inside a write section";
  seq.EndWrite();
  reader.join();
  EXPECT_TRUE(got_snapshot.load());
  EXPECT_EQ(snapshot.load() & 1, 0u);
  EXPECT_TRUE(seq.Validate(snapshot.load()));
}

// A hammering writer against concurrent readers: every validated read section must
// observe a fully consistent multi-word payload, and validation must keep succeeding
// often enough to make progress (the writer pauses between sections, so stable windows
// exist).
TEST(SeqCounterTest, HammeringWriterNeverYieldsTornValidatedReads) {
  SeqCounter seq;
  constexpr int kWords = 4;
  std::atomic<uint64_t> payload[kWords] = {};
  constexpr int kWrites = 40000;
  std::atomic<bool> done{false};
  std::atomic<bool> torn{false};
  std::atomic<uint64_t> validated{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t snap = seq.ReadBegin();
        uint64_t vals[kWords];
        for (int w = 0; w < kWords; ++w) {
          vals[w] = payload[w].load(std::memory_order_relaxed);
        }
        if (!seq.Validate(snap)) {
          continue;  // overlapped a write section: values are unusable, retry
        }
        validated.fetch_add(1, std::memory_order_relaxed);
        for (int w = 1; w < kWords; ++w) {
          if (vals[w] != vals[0]) {
            torn.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (int i = 1; i <= kWrites; ++i) {
    seq.BeginWrite();
    for (int w = 0; w < kWords; ++w) {
      payload[w].store(static_cast<uint64_t>(i), std::memory_order_relaxed);
    }
    seq.EndWrite();
    if (i % 64 == 0) {
      std::this_thread::yield();  // open stable windows for the readers
    }
  }
  EXPECT_TRUE(testing::EventuallyTrue([&] { return validated.load() > 0; }));
  done.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(torn.load()) << "a validated read section observed a torn payload";
  EXPECT_GT(validated.load(), 0u);
}

TEST(BackoffTest, GrowsAndResets) {
  Backoff backoff(2, 16);
  backoff.Spin();  // 2
  backoff.Spin();  // 4
  backoff.Spin();  // 8
  backoff.Reset();
  backoff.Spin();  // back to 2 — just exercising; behaviour is timing-only
  SUCCEED();
}

}  // namespace
}  // namespace srl
