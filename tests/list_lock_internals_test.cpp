// Targeted tests for the list-lock internals: lazy unlink + helping, node-pool
// recycling across threads, bounded patience under real contention, and independence
// of multiple locks sharing the global epoch domain.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/list_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/epoch/node_pool.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"

namespace srl {
namespace {

// Released nodes stay in the list (marked) until a later traversal unlinks them. A
// traversal that walks the whole list must collect every marked node it passes.
TEST(ListLockInternalsTest, TraversalCollectsMarkedNodes) {
  ListRangeLock lock;
  // Acquire + release a ladder of disjoint ranges: each release only marks.
  std::vector<ListRangeLock::Handle> handles;
  for (uint64_t i = 0; i < 32; ++i) {
    handles.push_back(lock.Lock({i * 10, i * 10 + 5}));
  }
  for (auto h : handles) {
    lock.Unlock(h);
  }
  // A traversal to the very end must physically unlink all 32 marked nodes.
  auto h = lock.Lock({1000, 1010});
  EXPECT_EQ(lock.DebugHeldCount(), 1);
  lock.Unlock(h);
}

// Nodes allocated by one thread can be unlinked (and thus pooled) by another; the
// pools must keep every thread supplied through a long imbalanced run.
TEST(ListLockInternalsTest, CrossThreadNodeRecycling) {
  ListRangeLock lock;
  constexpr int kIters = 30000;  // well above the pool target of 128
  std::atomic<bool> stop{false};
  // Thread B continuously acquires a range positioned after A's, so B's traversals
  // unlink A's marked nodes, draining them into B's pools.
  std::thread b([&] {
    while (!stop.load()) {
      auto h = lock.Lock({5000, 5010});
      lock.Unlock(h);
    }
  });
  for (int i = 0; i < kIters; ++i) {
    auto h = lock.Lock({0, 10});
    lock.Unlock(h);
  }
  stop.store(true);
  b.join();
  EXPECT_EQ(lock.DebugHeldCount(), 0);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

// With zero patience and genuine CAS contention, LockBounded must sometimes give up —
// and a give-up must leave no residue in the list.
TEST(ListLockInternalsTest, LockBoundedGivesUpUnderContention) {
  ListRangeLock lock;
  std::atomic<uint64_t> give_ups{0};
  std::atomic<uint64_t> acquisitions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        ListRangeLock::Handle h = nullptr;
        // Disjoint 1-unit ranges at the head of the list: no blocking, pure CAS races.
        if (lock.LockBounded({static_cast<uint64_t>(i % 7) * 2,
                              static_cast<uint64_t>(i % 7) * 2 + 1},
                             /*max_failures=*/0, &h)) {
          acquisitions.fetch_add(1);
          lock.Unlock(h);
        } else {
          give_ups.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(acquisitions.load(), 0u);
  EXPECT_EQ(lock.DebugHeldCount(), 0);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  // give_ups may be zero on an unloaded machine; the structural checks above are the
  // real assertions. Report for visibility.
  RecordProperty("give_ups", static_cast<int>(give_ups.load()));
}

// Many locks share the one global epoch domain; traffic on one lock must never corrupt
// another (nodes unlinked from lock A recycled into acquisitions on lock B).
TEST(ListLockInternalsTest, MultipleLocksShareEpochDomain) {
  constexpr int kLocks = 8;
  constexpr uint64_t kUniverse = 64;
  std::vector<std::unique_ptr<ListRwRangeLock>> locks;
  std::vector<std::unique_ptr<testing::RangeOracle>> oracles;
  for (int i = 0; i < kLocks; ++i) {
    locks.push_back(std::make_unique<ListRwRangeLock>());
    oracles.push_back(std::make_unique<testing::RangeOracle>(kUniverse));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x10c + t);
      for (int i = 0; i < 8000; ++i) {
        const std::size_t li = rng.NextBelow(kLocks);
        uint64_t a = rng.NextBelow(kUniverse);
        uint64_t b = rng.NextBelow(kUniverse);
        if (a > b) {
          std::swap(a, b);
        }
        const Range r{a, b + 1};
        if (rng.NextChance(0.4)) {
          auto h = locks[li]->LockWrite(r);
          oracles[li]->EnterWrite(r);
          oracles[li]->ExitWrite(r);
          locks[li]->Unlock(h);
        } else {
          auto h = locks[li]->LockRead(r);
          oracles[li]->EnterRead(r);
          oracles[li]->ExitRead(r);
          locks[li]->Unlock(h);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int i = 0; i < kLocks; ++i) {
    EXPECT_FALSE(oracles[i]->Violated()) << "lock " << i;
    EXPECT_EQ(locks[i]->DebugHeldCount(), 0) << "lock " << i;
    EXPECT_TRUE(locks[i]->DebugInvariantHolds()) << "lock " << i;
  }
}

// Fast-path acquisitions interleaved with regular-path contention: the mark-at-head
// conversion protocol (§4.5) must stay consistent through repeated handoffs.
TEST(ListLockInternalsTest, FastPathConversionHandoffStress) {
  ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = true});
  constexpr uint64_t kUniverse = 32;
  testing::RangeOracle oracle(kUniverse);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xfa57 + t);
      for (int i = 0; i < 10000; ++i) {
        // Mostly tiny, often non-overlapping ranges with frequent empty-list windows —
        // maximizing fast-path acquisitions racing regular-path conversions.
        const uint64_t a = rng.NextBelow(kUniverse - 2);
        const Range r{a, a + 1 + rng.NextBelow(2)};
        auto h = lock.Lock(r);
        oracle.EnterWrite(r);
        oracle.ExitWrite(r);
        lock.Unlock(h);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_EQ(lock.DebugHeldCount(), 0);
}

// RW lock: a full-range writer alternating with page-sized readers — the exact
// interleaving pattern of the VM subsystem's structural vs refined operations.
TEST(ListLockInternalsTest, FullRangeWriterVsFineReaders) {
  ListRwRangeLock lock;
  constexpr uint64_t kUniverse = 64;
  testing::RangeOracle oracle(kUniverse);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(0xbee + t);
      while (!stop.load()) {
        const uint64_t a = rng.NextBelow(kUniverse);
        const Range r{a, a + 1};
        auto h = lock.LockRead(r);
        oracle.EnterRead(r);
        oracle.ExitRead(r);
        lock.Unlock(h);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    auto h = lock.LockWrite(Range::Full());
    oracle.EnterWrite({0, kUniverse});
    oracle.ExitWrite({0, kUniverse});
    lock.Unlock(h);
  }
  stop.store(true);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_FALSE(oracle.Violated());
  EXPECT_TRUE(oracle.Quiescent());
}

}  // namespace
}  // namespace srl
