// Concurrent stress tests for the simulated VM subsystem: per-thread arenas exercising
// the glibc pattern (boundary-moving mprotects + first-touch faults) in parallel, plus
// adversarial mixes with structural operations.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/vm/address_space.h"

namespace srl::vm {
namespace {

constexpr uint64_t kPage = AddressSpace::kPageSize;

class VmConcurrentTest : public ::testing::TestWithParam<VmVariant> {};

// Each thread owns an arena and runs expand / touch / trim cycles. Because arenas are
// disjoint, every thread can verify its own view deterministically while racing with
// the others through the shared lock and mm_rb.
TEST_P(VmConcurrentTest, DisjointArenasKeepPerThreadSemantics) {
  AddressSpace as(GetParam());
  constexpr int kThreads = 4;
  constexpr int kCycles = 60;
  constexpr uint64_t kArenaPages = 64;
  std::atomic<bool> ok{true};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0x1234 + t);
      const uint64_t arena = as.Mmap(kArenaPages * kPage, kProtNone);
      if (arena == 0) {
        ok.store(false);
        return;
      }
      uint64_t committed = 0;  // pages currently RW
      for (int c = 0; c < kCycles; ++c) {
        if (committed < kArenaPages - 1) {
          // Expand by a random number of pages. Always leave at least one PROT_NONE
          // tail page, as glibc arenas do — consuming the whole uncommitted VMA would
          // be a structural merge rather than a boundary move.
          const uint64_t grow = 1 + rng.NextBelow(kArenaPages - 1 - committed);
          if (!as.Mprotect(arena + committed * kPage, grow * kPage,
                           kProtRead | kProtWrite)) {
            ok.store(false);
            return;
          }
          committed += grow;
          // Touch every new page (write faults) and verify a write past the boundary
          // still faults.
          for (uint64_t p = committed - grow; p < committed; ++p) {
            if (!as.PageFault(arena + p * kPage + 8, true)) {
              ok.store(false);
              return;
            }
          }
          if (committed < kArenaPages &&
              as.PageFault(arena + committed * kPage, true)) {
            ok.store(false);  // past the committed boundary: PROT_NONE must fault
            return;
          }
        }
        // Trim back when the arena fills, and occasionally otherwise.
        if (committed == kArenaPages - 1 || (committed > 4 && rng.NextChance(0.4))) {
          const uint64_t keep = 1 + rng.NextBelow(committed - 1);
          const uint64_t drop = committed - keep;
          if (!as.Mprotect(arena + keep * kPage, drop * kPage, kProtNone) ||
              !as.MadviseDontNeed(arena + keep * kPage, drop * kPage)) {
            ok.store(false);
            return;
          }
          committed = keep;
          if (as.PageFault(arena + keep * kPage, false)) {
            ok.store(false);  // trimmed region must be inaccessible
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(as.CheckInvariants());

  // The refined variants must have taken the speculative path for nearly all
  // mprotects — the paper measured >99% for this pattern; the first split per arena is
  // the only structural one per thread plus rare validation retries.
  const VmStats& st = as.Stats();
  if (GetParam() == VmVariant::kListRefined || GetParam() == VmVariant::kTreeRefined ||
      GetParam() == VmVariant::kListMprotect || GetParam() == VmVariant::kTreeScoped ||
      GetParam() == VmVariant::kListScoped) {
    EXPECT_GT(st.SpeculationSuccessRate(), 0.95)
        << "spec=" << st.spec_success.load() << " fallback=" << st.spec_fallback.load()
        << " retries=" << st.spec_retries.load();
  }
}

// Adds structural chaos: threads also mmap/munmap scratch regions continuously, forcing
// speculation retries and full-path fallbacks to interleave with refined operations.
TEST_P(VmConcurrentTest, StructuralChurnRemainsConsistent) {
  AddressSpace as(GetParam());
  constexpr int kThreads = 4;
  std::atomic<bool> ok{true};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xbeef + t);
      const uint64_t arena = as.Mmap(32 * kPage, kProtNone);
      uint64_t committed = 0;
      for (int i = 0; i < 150; ++i) {
        const double roll = rng.NextDouble();
        if (roll < 0.45) {
          // Arena ratchet.
          if (committed < 31) {
            if (!as.Mprotect(arena + committed * kPage, kPage, kProtRead | kProtWrite)) {
              ok.store(false);
            }
            ++committed;
            as.PageFault(arena + (committed - 1) * kPage, true);
          } else {
            if (!as.Mprotect(arena, 31 * kPage, kProtNone)) {
              ok.store(false);
            }
            as.MadviseDontNeed(arena, 31 * kPage);
            committed = 0;
          }
        } else if (roll < 0.6) {
          // Structural churn: map and unmap a scratch region.
          const uint64_t scratch = as.Mmap(4 * kPage, kProtRead | kProtWrite);
          if (scratch == 0 || !as.PageFault(scratch, true) ||
              !as.Munmap(scratch, 4 * kPage)) {
            ok.store(false);
          }
        } else {
          // Read traffic over the committed prefix.
          if (committed > 0) {
            const uint64_t p = rng.NextBelow(committed);
            if (!as.PageFault(arena + p * kPage, false)) {
              ok.store(false);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(as.CheckInvariants());
}

// Readers hammer one shared read-only region while writers churn protections on their
// own regions; all fault outcomes on the shared region must stay stable.
TEST_P(VmConcurrentTest, SharedReadOnlyRegionStableUnderChurn) {
  AddressSpace as(GetParam());
  const uint64_t shared = as.Mmap(16 * kPage, kProtRead);
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(0x51ee + t);
      while (!stop.load()) {
        if (!as.PageFault(shared + rng.NextBelow(16) * kPage, false)) {
          ok.store(false);
        }
      }
    });
  }
  std::thread churner([&] {
    Xoshiro256 rng(0xc4u);
    const uint64_t arena = as.Mmap(32 * kPage, kProtNone);
    for (int i = 0; i < 400; ++i) {
      const uint64_t off = rng.NextBelow(31);
      as.Mprotect(arena + off * kPage, kPage, kProtRead | kProtWrite);
      as.PageFault(arena + off * kPage, true);
      as.Mprotect(arena + off * kPage, kPage, kProtNone);
    }
    stop.store(true);
  });
  churner.join();
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(as.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VmConcurrentTest, ::testing::ValuesIn(kAllVmVariants),
    [](const ::testing::TestParamInfo<VmVariant>& info) {
      std::string name = VmVariantName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace srl::vm
