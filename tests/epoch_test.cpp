// Tests for epoch-based reclamation: domain, barrier, node pools, retire lists (§4.4).
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/lnode.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"
#include "src/epoch/retire_list.h"
#include "src/epoch/shared_retire_list.h"
#include "src/skiplist/range_lock_skiplist.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::EventuallyTrue;
using testing::StaysFalse;

TEST(EpochDomainTest, EnterExitTogglesParity) {
  EpochDomain domain;
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  EXPECT_EQ(rec->epoch.load() & 1, 0u);
  EpochDomain::Enter(rec);
  EXPECT_EQ(rec->epoch.load() & 1, 1u);
  EpochDomain::Exit(rec);
  EXPECT_EQ(rec->epoch.load() & 1, 0u);
  domain.ReleaseRec(rec);
}

TEST(EpochDomainTest, BarrierNoCriticalSectionsReturnsImmediately) {
  EpochDomain domain;
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  domain.Barrier(rec);  // must not block
  domain.ReleaseRec(rec);
  SUCCEED();
}

TEST(EpochDomainTest, BarrierWaitsForCriticalSection) {
  EpochDomain domain;
  std::atomic<bool> in_cs{false};
  std::atomic<bool> release_cs{false};
  std::atomic<bool> barrier_done{false};

  std::thread cs_thread([&] {
    EpochDomain::ThreadRec* rec = domain.AcquireRec();
    EpochDomain::Enter(rec);
    in_cs.store(true);
    while (!release_cs.load()) {
      std::this_thread::yield();
    }
    EpochDomain::Exit(rec);
    domain.ReleaseRec(rec);
  });

  while (!in_cs.load()) {
    std::this_thread::yield();
  }
  std::thread barrier_thread([&] {
    domain.Barrier();
    barrier_done.store(true);
  });
  EXPECT_TRUE(StaysFalse([&] { return barrier_done.load(); }))
      << "barrier returned while a critical section was live";
  release_cs.store(true);
  barrier_thread.join();
  cs_thread.join();
  EXPECT_TRUE(barrier_done.load());
}

TEST(EpochDomainTest, BarrierIgnoresSelf) {
  EpochDomain domain;
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  EpochDomain::Enter(rec);
  domain.Barrier(rec);  // must not deadlock on our own critical section
  EpochDomain::Exit(rec);
  domain.ReleaseRec(rec);
  SUCCEED();
}

TEST(EpochDomainTest, ThreadRecsAreDistinctAndReleased) {
  EpochDomain domain;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> registered{0};
  std::atomic<bool> go{false};
  std::vector<EpochDomain::ThreadRec*> recs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      recs[t] = domain.AcquireRec();
      registered.fetch_add(1);
      while (!go.load()) {
        std::this_thread::yield();
      }
      domain.ReleaseRec(recs[t]);
    });
  }
  while (registered.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(domain.LiveThreads(), static_cast<std::size_t>(kThreads));
  go.store(true);
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(domain.LiveThreads(), 0u);
  // All recs distinct.
  for (int i = 0; i < kThreads; ++i) {
    for (int j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(recs[i], recs[j]);
    }
  }
}

TEST(EpochDomainTest, CurrentThreadRecIsStablePerThread) {
  EpochDomain::ThreadRec* a = CurrentThreadRec(EpochDomain::Global());
  EpochDomain::ThreadRec* b = CurrentThreadRec(EpochDomain::Global());
  EXPECT_EQ(a, b);
  EpochDomain::ThreadRec* other = nullptr;
  std::thread th([&] { other = CurrentThreadRec(EpochDomain::Global()); });
  th.join();
  EXPECT_NE(a, other);
}

// --- Epoch-per-quantum (EpochQuantumGuard) ---

// The amortization contract: the first guard opens a critical section that persists
// across guards (no epoch movement, hence no RMWs, for the next kOpsPerQuantum - 1
// operations), and the guard completing the quantum closes it — the epoch provably
// moves every kOpsPerQuantum operations.
// Regression: RangeLockSkipList::Insert used to spin on a winner's fully_linked bit
// for as long as the winner stayed preempted — inside its own epoch critical section,
// pinning its epoch odd and stalling reclamation for the whole domain. The bounded
// wait must cycle the section (epoch keeps moving) while the winner is stalled.
TEST(EpochDomainTest, SkiplistLinkWaitDoesNotPinEpoch) {
  RangeLockSkipList<ListLockPolicy> list;
  std::atomic<bool> gate{false};
  list.TestOnlySetLinkGate(&gate);

  // The winner links its node, then stalls at the gate before publishing
  // fully_linked — still holding the insert range and its epoch section.
  std::thread winner([&] { EXPECT_TRUE(list.Insert(42)); });
  ASSERT_TRUE(EventuallyTrue([&] { return list.DebugCount() == 1; }))
      << "winner never linked its node";

  std::atomic<EpochDomain::ThreadRec*> loser_rec{nullptr};
  std::thread loser([&] {
    loser_rec.store(CurrentThreadRec(EpochDomain::Global()), std::memory_order_release);
    EXPECT_FALSE(list.Insert(42)) << "duplicate insert must fail once the winner links";
  });
  EpochDomain::ThreadRec* rec = nullptr;
  while ((rec = loser_rec.load(std::memory_order_acquire)) == nullptr) {
    std::this_thread::yield();
  }
  // Let the loser settle into its wait, then demand its epoch keep advancing. An
  // unbounded in-section spin parks the epoch at one odd value for the duration of
  // the winner's stall.
  std::this_thread::sleep_for(20ms);
  const uint64_t e0 = rec->epoch.load(std::memory_order_acquire);
  EXPECT_TRUE(EventuallyTrue(
      [&] { return rec->epoch.load(std::memory_order_acquire) != e0; }))
      << "same-key inserter pinned its epoch while waiting on fully_linked";

  gate.store(true, std::memory_order_release);
  winner.join();
  loser.join();
  list.TestOnlySetLinkGate(nullptr);
  EXPECT_TRUE(list.Contains(42));
}

TEST(EpochQuantumTest, QuantumSpansOpsAndRefreshesOnSchedule) {
  EpochDomain domain;
  std::thread worker([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(domain);
    const uint64_t e0 = rec->epoch.load();
    EXPECT_EQ(e0 & 1, 0u);
    { EpochQuantumGuard g(domain); }
    const uint64_t open = rec->epoch.load();
    EXPECT_EQ(open, e0 + 1) << "first guard must open a critical section";
    for (uint32_t i = 1; i < EpochQuantumGuard::kOpsPerQuantum - 1; ++i) {
      EpochQuantumGuard g(domain);
      EXPECT_EQ(rec->epoch.load(), open) << "guard " << i << " moved the epoch "
                                            "inside the quantum";
    }
    { EpochQuantumGuard g(domain); }  // op kOpsPerQuantum: completes the quantum
    EXPECT_EQ(rec->epoch.load(), open + 1) << "quantum completion must close the "
                                              "critical section (even epoch)";
    { EpochQuantumGuard g(domain); }  // next op opens a fresh quantum
    EXPECT_EQ(rec->epoch.load(), open + 2);
    EpochQuantumQuiesce(domain);
  });
  worker.join();
}

// Reclamation safety and liveness in one scenario: retired memory must never be freed
// while any quantum is open (the barrier waits), and a thread that keeps operating
// must not stall reclamation past its forced refresh (the barrier completes once the
// quantum boundary passes — no explicit quiesce involved).
TEST(EpochQuantumTest, OpenQuantumBlocksBarrierUntilForcedRefresh) {
  EpochDomain domain;
  std::atomic<bool> quantum_open{false};
  std::atomic<bool> finish_ops{false};
  std::atomic<bool> barrier_done{false};

  std::thread holder([&] {
    { EpochQuantumGuard g(domain); }  // op 1 of the quantum: section now persists
    quantum_open.store(true);
    while (!finish_ops.load()) {
      std::this_thread::yield();
    }
    // The remaining ops of the quantum; the one completing it closes the section.
    for (uint32_t i = 1; i < EpochQuantumGuard::kOpsPerQuantum; ++i) {
      EpochQuantumGuard g(domain);
    }
    // Park with the *next* quantum closed so the test ends deterministically.
    EpochQuantumQuiesce(domain);
  });

  while (!quantum_open.load()) {
    std::this_thread::yield();
  }
  std::thread barrier([&] {
    domain.Barrier();
    barrier_done.store(true);
  });
  EXPECT_TRUE(StaysFalse([&] { return barrier_done.load(); }))
      << "barrier returned while a quantum (idle between guards) was still open — "
         "retired memory could be freed under a live speculative reader";
  finish_ops.store(true);
  barrier.join();  // must complete: the forced refresh closed the quantum
  EXPECT_TRUE(barrier_done.load());
  holder.join();
}

// A thread that exits with its quantum open must not strand concurrent barriers:
// releasing the thread record closes the quantum.
TEST(EpochQuantumTest, ThreadExitClosesOpenQuantum) {
  EpochDomain domain;
  std::thread worker([&] {
    EpochQuantumGuard g(domain);
    // Exits with the quantum open (no quiesce): ReleaseRec must clean up.
  });
  worker.join();
  domain.Barrier();  // must not hang
  SUCCEED();
}

// Explicit quiesce for live threads leaving a fault-heavy phase.
TEST(EpochQuantumTest, QuiesceClosesQuantumAndIsIdempotent) {
  EpochDomain domain;
  std::thread worker([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(domain);
    { EpochQuantumGuard g(domain); }
    EXPECT_EQ(rec->epoch.load() & 1, 1u);
    EpochQuantumQuiesce(domain);
    EXPECT_EQ(rec->epoch.load() & 1, 0u);
    EpochQuantumQuiesce(domain);  // no open quantum: must be a no-op
    EXPECT_EQ(rec->epoch.load() & 1, 0u);
    EpochQuantumQuiesce(domain);
  });
  worker.join();
  domain.Barrier();
  SUCCEED();
}

// Scoped guards nest inside an open quantum without toggling the epoch (the quantum
// owns the outermost depth unit), and the quantum's completion respects nesting.
TEST(EpochQuantumTest, ScopedGuardsNestInsideQuantum) {
  EpochDomain domain;
  std::thread worker([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(domain);
    { EpochQuantumGuard g(domain); }
    const uint64_t open = rec->epoch.load();
    {
      EpochGuard nested(domain);
      EXPECT_EQ(rec->epoch.load(), open) << "nested scoped guard re-toggled the epoch";
    }
    EXPECT_EQ(rec->epoch.load(), open) << "nested scoped guard closed the quantum";
    EpochQuantumQuiesce(domain);
    EXPECT_EQ(rec->epoch.load(), open + 1);
  });
  worker.join();
}

// The two-flushing-threads scenario behind the quiesce-before-barrier rule: a
// RetireList::Flush from a thread with an open quantum must both complete (no mutual
// deadlock with other barriering threads) and still free its batch.
TEST(EpochQuantumTest, FlushWithOwnQuantumOpenCompletesAndFrees) {
  std::atomic<bool> ok{true};
  std::thread worker([&] {
    // Open a quantum in the global domain (RetireList is bound to it), then flush.
    { EpochQuantumGuard g(EpochDomain::Global()); }
    RetireList list;
    list.Retire(new int(42));
    list.Flush();  // must quiesce our quantum, run the barrier, and free
    if (list.PendingCount() != 0) {
      ok.store(false);
    }
    EpochQuantumQuiesce();
  });
  worker.join();
  EXPECT_TRUE(ok.load());
}

// --- Barrier watchdog (force-quiesce of idle quanta) ---

// One thread parked between guards with its quantum open must not pin a barrier (and
// therefore retired memory) forever: past the force-quiesce threshold the barrier
// evicts the idle section, and the owner's next guard re-establishes protection
// before taking any reference.
TEST(EpochQuantumTest, WatchdogForceQuiescesParkedQuantum) {
  EpochDomain domain;
  domain.SetForceQuiesceAfter(5ms);
  std::atomic<bool> parked{false};
  std::atomic<bool> resume{false};
  std::atomic<bool> reopened_protected{false};

  std::thread holder([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(domain);
    { EpochQuantumGuard g(domain); }  // quantum left open, thread goes idle
    parked.store(true);
    while (!resume.load()) {
      std::this_thread::yield();
    }
    {
      // The next guard must notice the revoked/closed section and reopen it before
      // any reference could be taken.
      EpochQuantumGuard g(domain);
      reopened_protected.store((rec->epoch.load() & 1) == 1);
    }
    EpochQuantumQuiesce(domain);
  });

  while (!parked.load()) {
    std::this_thread::yield();
  }
  domain.Barrier();  // must complete despite the parked open quantum
  EXPECT_GE(domain.ForcedQuiesces(), 1u)
      << "barrier completed without evicting the idle quantum — who closed it?";
  resume.store(true);
  holder.join();
  EXPECT_TRUE(reopened_protected.load())
      << "guard after revocation ran with an even epoch: references unprotected";
  domain.Barrier();  // domain must be fully consistent afterwards
}

// A thread that exits after its idle quantum was force-quiesced must leave the domain
// clean: ReleaseRec must not re-toggle the already-closed section into a permanently
// odd epoch (which would hang every later barrier).
TEST(EpochQuantumTest, WatchdogThenThreadExitKeepsDomainClean) {
  EpochDomain domain;
  domain.SetForceQuiesceAfter(5ms);
  std::atomic<bool> parked{false};
  std::atomic<bool> resume{false};
  std::thread holder([&] {
    { EpochQuantumGuard g(domain); }
    parked.store(true);
    while (!resume.load()) {
      std::this_thread::yield();
    }
    // Exit with quantum state still marked open but the section already evicted.
  });
  while (!parked.load()) {
    std::this_thread::yield();
  }
  domain.Barrier();
  EXPECT_GE(domain.ForcedQuiesces(), 1u);
  resume.store(true);
  holder.join();
  EXPECT_EQ(domain.LiveThreads(), 0u);
  domain.Barrier();  // must not hang on the released slot
  SUCCEED();
}

// The watchdog must never evict a section that may hold references: a thread parked
// *inside* a nested plain guard (depth 2: the quantum's unit plus the guard's) keeps
// the barrier blocked no matter how stale its heartbeat looks.
TEST(EpochQuantumTest, WatchdogSparesNestedGuard) {
  EpochDomain domain;
  domain.SetForceQuiesceAfter(5ms);
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::atomic<bool> barrier_done{false};

  std::thread holder([&] {
    { EpochQuantumGuard g(domain); }  // quantum open
    EpochGuard nested(domain);        // plain guard: may legitimately hold references
    parked.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!parked.load()) {
    std::this_thread::yield();
  }
  std::thread barrier([&] {
    domain.Barrier();
    barrier_done.store(true);
  });
  EXPECT_TRUE(StaysFalse([&] { return barrier_done.load(); }))
      << "watchdog evicted a section nested under a live plain guard";
  EXPECT_EQ(domain.ForcedQuiesces(), 0u);
  release.store(true);
  barrier.join();
  holder.join();
  // The quantum the nested guard rode on is still open and idle; a later barrier may
  // legitimately evict it.
  domain.Barrier();
}

// An actively faulting thread (heartbeat moving) is never force-quiesced — its quantum
// refreshes on schedule and the barrier completes the ordinary way.
TEST(EpochQuantumTest, WatchdogSparesActiveQuantum) {
  EpochDomain domain;
  // Generous threshold: an actively guarding worker refreshes its quantum every
  // kOpsPerQuantum guards, so each barrier completes in microseconds regardless — the
  // threshold only has to beat scheduler freezes (TSan on a loaded runner can park a
  // thread for hundreds of milliseconds, which must not read as "idle").
  domain.SetForceQuiesceAfter(5s);
  std::atomic<bool> started{false};
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EpochQuantumGuard g(domain);
      started.store(true, std::memory_order_relaxed);
    }
    EpochQuantumQuiesce(domain);
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 10; ++i) {
    domain.Barrier();
  }
  stop.store(true);
  worker.join();
  EXPECT_EQ(domain.ForcedQuiesces(), 0u)
      << "watchdog evicted a quantum whose owner was actively issuing guards";
}

TEST(NodePoolTest, AllocatesPreallocatedNodes) {
  NodePool<LNode> pool;
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize);
  LNode* n = pool.Alloc();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize - 1);
  pool.Recycle(n);
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize);
}

TEST(NodePoolTest, RetiredNodesBecomeAllocatableAfterRefill) {
  NodePool<LNode> pool;
  std::vector<LNode*> nodes;
  // Drain the whole active pool, retiring everything.
  for (std::size_t i = 0; i < NodePool<LNode>::kTargetSize; ++i) {
    nodes.push_back(pool.Alloc());
  }
  EXPECT_EQ(pool.ActiveSize(), 0u);
  for (LNode* n : nodes) {
    pool.Retire(n);
  }
  EXPECT_EQ(pool.ReclaimedSize(), NodePool<LNode>::kTargetSize);
  // Next Alloc triggers the barrier + pool swap; the retired nodes come back.
  LNode* n = pool.Alloc();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(pool.ReclaimedSize(), 0u);
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize - 1);
  pool.Recycle(n);
}

TEST(NodePoolTest, RefillReplenishesWhenBelowHalfTarget) {
  NodePool<LNode> pool;
  // Drain without retiring: refill finds an empty reclaimed pool and must allocate new
  // nodes up to the target (the paper's "replenish to N if below N/2" rule).
  std::vector<LNode*> held;
  for (std::size_t i = 0; i < NodePool<LNode>::kTargetSize; ++i) {
    held.push_back(pool.Alloc());
  }
  LNode* extra = pool.Alloc();  // forces refill from empty reclaimed pool
  ASSERT_NE(extra, nullptr);
  EXPECT_GE(pool.ActiveSize(), NodePool<LNode>::kTargetSize - 1);
  pool.Recycle(extra);
  for (LNode* n : held) {
    pool.Recycle(n);
  }
}

TEST(NodePoolTest, RefillTrimsOversizedPool) {
  NodePool<LNode> pool;
  // Retire far more nodes than the target: after the swap the pool must be trimmed back
  // to the target (the paper's "trim to N if above 2N" rule).
  constexpr std::size_t kExtra = NodePool<LNode>::kTargetSize * 3;
  for (std::size_t i = 0; i < kExtra; ++i) {
    pool.Retire(new LNode());
  }
  // Drain active to force the swap.
  std::vector<LNode*> held;
  for (std::size_t i = 0; i < NodePool<LNode>::kTargetSize; ++i) {
    held.push_back(pool.Alloc());
  }
  LNode* n = pool.Alloc();  // triggers refill: swap to the 3N reclaimed pool, trim to N
  ASSERT_NE(n, nullptr);
  EXPECT_LE(pool.ActiveSize(), NodePool<LNode>::kTargetSize);
  pool.Recycle(n);
  for (LNode* h : held) {
    pool.Recycle(h);
  }
}

// The inventory ratchet must give back what a storm taught it once the storm is over:
// parks (shortages) raise the learned floor; a long quiet phase decays it one batch
// per reap cycle back to the paper's fixed target, so the storm's inventory does not
// stay resident forever.
TEST(NodePoolTest, InventoryRatchetDecaysWhenQuiescent) {
  constexpr std::size_t kTarget = NodePool<LNode>::kTargetSize;
  NodePool<LNode> pool;
  EXPECT_EQ(pool.InventoryTarget(), kTarget);

  // Storm phase: with a reader parked in a critical section, every refill that finds
  // the active pool dry must park its reclaimed batch (grace cannot elapse) and
  // ratchet the floor up one batch.
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::thread reader([&] {
    EpochGuard g(EpochDomain::Global());
    reader_in.store(true);
    while (!release_reader.load()) {
      std::this_thread::yield();
    }
  });
  while (!reader_in.load()) {
    std::this_thread::yield();
  }
  constexpr int kStormCycles = 3;
  for (int c = 0; c < kStormCycles; ++c) {
    std::vector<LNode*> held;
    while (pool.ActiveSize() > 0) {
      held.push_back(pool.Alloc());
    }
    for (LNode* n : held) {
      pool.Retire(n);
    }
    LNode* extra = pool.Alloc();  // refill: parks the reclaimed batch, ratchets
    ASSERT_NE(extra, nullptr);
    pool.Recycle(extra);
  }
  EXPECT_EQ(pool.InventoryTarget(), kTarget * (1 + kStormCycles));
  EXPECT_GT(pool.ParkedBatches(), 0u);
  release_reader.store(true);
  reader.join();

  // Quiet phase: every further refill reaps cleanly and parks nothing; after the
  // run-up the floor must decay one batch per cycle, all the way back to the paper's
  // target — and the trim rule then prunes the stranded inventory.
  for (int c = 0; c < 64 && pool.InventoryTarget() > kTarget; ++c) {
    std::vector<LNode*> held;
    while (pool.ActiveSize() > 0) {
      held.push_back(pool.Alloc());
    }
    LNode* extra = pool.Alloc();  // refill: reap, no shortage -> quiet cycle
    ASSERT_NE(extra, nullptr);
    pool.Recycle(extra);
    for (LNode* n : held) {
      pool.Recycle(n);
    }
  }
  EXPECT_EQ(pool.InventoryTarget(), kTarget)
      << "learned floor never decayed back to the fixed target";
  EXPECT_EQ(pool.ParkedBatches(), 0u);
}

struct CountedObj {
  static std::atomic<int> live;
  CountedObj() { live.fetch_add(1); }
  ~CountedObj() { live.fetch_sub(1); }
};
std::atomic<int> CountedObj::live{0};

TEST(RetireListTest, FlushFreesEverything) {
  {
    RetireList list;
    for (int i = 0; i < 10; ++i) {
      list.Retire(new CountedObj());
    }
    EXPECT_EQ(CountedObj::live.load(), 10);
    EXPECT_EQ(list.PendingCount(), 10u);
    list.Flush();
    EXPECT_EQ(CountedObj::live.load(), 0);
    EXPECT_EQ(list.PendingCount(), 0u);
  }
}

TEST(RetireListTest, DestructorFlushes) {
  {
    RetireList list;
    list.Retire(new CountedObj());
    EXPECT_EQ(CountedObj::live.load(), 1);
  }
  EXPECT_EQ(CountedObj::live.load(), 0);
}

TEST(RetireListTest, MaybeFlushHonoursThreshold) {
  RetireList list;
  for (std::size_t i = 0; i < RetireList::FlushThreshold() - 1; ++i) {
    list.Retire(new CountedObj());
  }
  list.MaybeFlush();
  EXPECT_EQ(list.PendingCount(), RetireList::FlushThreshold() - 1) << "flushed too early";
  list.Retire(new CountedObj());
  list.MaybeFlush();
  EXPECT_EQ(list.PendingCount(), 0u);
  EXPECT_EQ(CountedObj::live.load(), 0);
}

// The reclamation constants are derived from the machine's core count at first use
// (the original constexpr values were guessed on a one-core container). Assert the
// exact derivations so a refactor cannot silently change the policy, and that one
// core reproduces the historical constants (256 / 64 / 8 / 250ms) bit-for-bit.
TEST(ReclamationDerivationTest, ConstantsFollowCoreCount) {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(RetireList::FlushThreshold(), std::clamp<std::size_t>(1024 / hw, 64, 256));
  EXPECT_EQ(RetireList::MaxParkedBatches(),
            std::clamp<std::size_t>(16 * hw, 64, 512));
  EXPECT_EQ(SharedRetireList::DefaultFlushThreshold(), RetireList::FlushThreshold());
  EXPECT_EQ(SharedRetireList::MaxParkedBatches(), RetireList::MaxParkedBatches());
  EXPECT_EQ((NodePool<LNode>::DecayQuietRefills()), std::max<std::size_t>(8, hw));
  const std::chrono::nanoseconds quiesce = EpochDomain::DefaultForceQuiesceAfter();
  EXPECT_EQ(quiesce, std::max(std::chrono::nanoseconds(std::chrono::milliseconds(50)),
                              std::chrono::nanoseconds(std::chrono::milliseconds(250)) /
                                  static_cast<unsigned>(hw)));
  if (hw == 1) {
    EXPECT_EQ(RetireList::FlushThreshold(), 256u);
    EXPECT_EQ(RetireList::MaxParkedBatches(), 64u);
    EXPECT_EQ((NodePool<LNode>::DecayQuietRefills()), 8u);
    EXPECT_EQ(quiesce, std::chrono::nanoseconds(std::chrono::milliseconds(250)));
  }
}

// Cross-thread grace period: a reader in a critical section must keep retired memory
// alive until it exits.
TEST(RetireListTest, GracePeriodProtectsReaders) {
  struct Payload {
    std::atomic<uint64_t> value{0xabcdabcdabcdabcdull};
    ~Payload() { value.store(0xdeaddeaddeaddeadull); }
  };
  auto* shared = new Payload();
  std::atomic<Payload*> slot{shared};
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_ok{true};
  std::atomic<bool> retired{false};

  std::thread reader([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    EpochDomain::Enter(rec);
    Payload* p = slot.load();
    reader_in.store(true);
    // Hold the reference across the writer's retire; the value must stay intact.
    while (!retired.load()) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 1000; ++i) {
      if (p->value.load() != 0xabcdabcdabcdabcdull) {
        reader_ok.store(false);
        break;
      }
    }
    EpochDomain::Exit(rec);
  });

  while (!reader_in.load()) {
    std::this_thread::yield();
  }
  slot.store(nullptr);  // unlink
  RetireList list;
  list.Retire(shared);
  retired.store(true);
  list.Flush();  // barrier: must wait for the reader's critical section
  reader.join();
  EXPECT_TRUE(reader_ok.load());
  EXPECT_EQ(CountedObj::live.load(), 0);
}

}  // namespace
}  // namespace srl
