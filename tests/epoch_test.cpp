// Tests for epoch-based reclamation: domain, barrier, node pools, retire lists (§4.4).
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/lnode.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"
#include "src/epoch/retire_list.h"
#include "tests/common/test_clock.h"

namespace srl {
namespace {

using namespace std::chrono_literals;
using testing::StaysFalse;

TEST(EpochDomainTest, EnterExitTogglesParity) {
  EpochDomain domain;
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  EXPECT_EQ(rec->epoch.load() & 1, 0u);
  EpochDomain::Enter(rec);
  EXPECT_EQ(rec->epoch.load() & 1, 1u);
  EpochDomain::Exit(rec);
  EXPECT_EQ(rec->epoch.load() & 1, 0u);
  domain.ReleaseRec(rec);
}

TEST(EpochDomainTest, BarrierNoCriticalSectionsReturnsImmediately) {
  EpochDomain domain;
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  domain.Barrier(rec);  // must not block
  domain.ReleaseRec(rec);
  SUCCEED();
}

TEST(EpochDomainTest, BarrierWaitsForCriticalSection) {
  EpochDomain domain;
  std::atomic<bool> in_cs{false};
  std::atomic<bool> release_cs{false};
  std::atomic<bool> barrier_done{false};

  std::thread cs_thread([&] {
    EpochDomain::ThreadRec* rec = domain.AcquireRec();
    EpochDomain::Enter(rec);
    in_cs.store(true);
    while (!release_cs.load()) {
      std::this_thread::yield();
    }
    EpochDomain::Exit(rec);
    domain.ReleaseRec(rec);
  });

  while (!in_cs.load()) {
    std::this_thread::yield();
  }
  std::thread barrier_thread([&] {
    domain.Barrier();
    barrier_done.store(true);
  });
  EXPECT_TRUE(StaysFalse([&] { return barrier_done.load(); }))
      << "barrier returned while a critical section was live";
  release_cs.store(true);
  barrier_thread.join();
  cs_thread.join();
  EXPECT_TRUE(barrier_done.load());
}

TEST(EpochDomainTest, BarrierIgnoresSelf) {
  EpochDomain domain;
  EpochDomain::ThreadRec* rec = domain.AcquireRec();
  EpochDomain::Enter(rec);
  domain.Barrier(rec);  // must not deadlock on our own critical section
  EpochDomain::Exit(rec);
  domain.ReleaseRec(rec);
  SUCCEED();
}

TEST(EpochDomainTest, ThreadRecsAreDistinctAndReleased) {
  EpochDomain domain;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> registered{0};
  std::atomic<bool> go{false};
  std::vector<EpochDomain::ThreadRec*> recs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      recs[t] = domain.AcquireRec();
      registered.fetch_add(1);
      while (!go.load()) {
        std::this_thread::yield();
      }
      domain.ReleaseRec(recs[t]);
    });
  }
  while (registered.load() < kThreads) {
    std::this_thread::yield();
  }
  EXPECT_EQ(domain.LiveThreads(), static_cast<std::size_t>(kThreads));
  go.store(true);
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(domain.LiveThreads(), 0u);
  // All recs distinct.
  for (int i = 0; i < kThreads; ++i) {
    for (int j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(recs[i], recs[j]);
    }
  }
}

TEST(EpochDomainTest, CurrentThreadRecIsStablePerThread) {
  EpochDomain::ThreadRec* a = CurrentThreadRec(EpochDomain::Global());
  EpochDomain::ThreadRec* b = CurrentThreadRec(EpochDomain::Global());
  EXPECT_EQ(a, b);
  EpochDomain::ThreadRec* other = nullptr;
  std::thread th([&] { other = CurrentThreadRec(EpochDomain::Global()); });
  th.join();
  EXPECT_NE(a, other);
}

TEST(NodePoolTest, AllocatesPreallocatedNodes) {
  NodePool<LNode> pool;
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize);
  LNode* n = pool.Alloc();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize - 1);
  pool.Recycle(n);
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize);
}

TEST(NodePoolTest, RetiredNodesBecomeAllocatableAfterRefill) {
  NodePool<LNode> pool;
  std::vector<LNode*> nodes;
  // Drain the whole active pool, retiring everything.
  for (std::size_t i = 0; i < NodePool<LNode>::kTargetSize; ++i) {
    nodes.push_back(pool.Alloc());
  }
  EXPECT_EQ(pool.ActiveSize(), 0u);
  for (LNode* n : nodes) {
    pool.Retire(n);
  }
  EXPECT_EQ(pool.ReclaimedSize(), NodePool<LNode>::kTargetSize);
  // Next Alloc triggers the barrier + pool swap; the retired nodes come back.
  LNode* n = pool.Alloc();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(pool.ReclaimedSize(), 0u);
  EXPECT_EQ(pool.ActiveSize(), NodePool<LNode>::kTargetSize - 1);
  pool.Recycle(n);
}

TEST(NodePoolTest, RefillReplenishesWhenBelowHalfTarget) {
  NodePool<LNode> pool;
  // Drain without retiring: refill finds an empty reclaimed pool and must allocate new
  // nodes up to the target (the paper's "replenish to N if below N/2" rule).
  std::vector<LNode*> held;
  for (std::size_t i = 0; i < NodePool<LNode>::kTargetSize; ++i) {
    held.push_back(pool.Alloc());
  }
  LNode* extra = pool.Alloc();  // forces refill from empty reclaimed pool
  ASSERT_NE(extra, nullptr);
  EXPECT_GE(pool.ActiveSize(), NodePool<LNode>::kTargetSize - 1);
  pool.Recycle(extra);
  for (LNode* n : held) {
    pool.Recycle(n);
  }
}

TEST(NodePoolTest, RefillTrimsOversizedPool) {
  NodePool<LNode> pool;
  // Retire far more nodes than the target: after the swap the pool must be trimmed back
  // to the target (the paper's "trim to N if above 2N" rule).
  constexpr std::size_t kExtra = NodePool<LNode>::kTargetSize * 3;
  for (std::size_t i = 0; i < kExtra; ++i) {
    pool.Retire(new LNode());
  }
  // Drain active to force the swap.
  std::vector<LNode*> held;
  for (std::size_t i = 0; i < NodePool<LNode>::kTargetSize; ++i) {
    held.push_back(pool.Alloc());
  }
  LNode* n = pool.Alloc();  // triggers refill: swap to the 3N reclaimed pool, trim to N
  ASSERT_NE(n, nullptr);
  EXPECT_LE(pool.ActiveSize(), NodePool<LNode>::kTargetSize);
  pool.Recycle(n);
  for (LNode* h : held) {
    pool.Recycle(h);
  }
}

struct CountedObj {
  static std::atomic<int> live;
  CountedObj() { live.fetch_add(1); }
  ~CountedObj() { live.fetch_sub(1); }
};
std::atomic<int> CountedObj::live{0};

TEST(RetireListTest, FlushFreesEverything) {
  {
    RetireList list;
    for (int i = 0; i < 10; ++i) {
      list.Retire(new CountedObj());
    }
    EXPECT_EQ(CountedObj::live.load(), 10);
    EXPECT_EQ(list.PendingCount(), 10u);
    list.Flush();
    EXPECT_EQ(CountedObj::live.load(), 0);
    EXPECT_EQ(list.PendingCount(), 0u);
  }
}

TEST(RetireListTest, DestructorFlushes) {
  {
    RetireList list;
    list.Retire(new CountedObj());
    EXPECT_EQ(CountedObj::live.load(), 1);
  }
  EXPECT_EQ(CountedObj::live.load(), 0);
}

TEST(RetireListTest, MaybeFlushHonoursThreshold) {
  RetireList list;
  for (std::size_t i = 0; i < RetireList::kFlushThreshold - 1; ++i) {
    list.Retire(new CountedObj());
  }
  list.MaybeFlush();
  EXPECT_EQ(list.PendingCount(), RetireList::kFlushThreshold - 1) << "flushed too early";
  list.Retire(new CountedObj());
  list.MaybeFlush();
  EXPECT_EQ(list.PendingCount(), 0u);
  EXPECT_EQ(CountedObj::live.load(), 0);
}

// Cross-thread grace period: a reader in a critical section must keep retired memory
// alive until it exits.
TEST(RetireListTest, GracePeriodProtectsReaders) {
  struct Payload {
    std::atomic<uint64_t> value{0xabcdabcdabcdabcdull};
    ~Payload() { value.store(0xdeaddeaddeaddeadull); }
  };
  auto* shared = new Payload();
  std::atomic<Payload*> slot{shared};
  std::atomic<bool> reader_in{false};
  std::atomic<bool> reader_ok{true};
  std::atomic<bool> retired{false};

  std::thread reader([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    EpochDomain::Enter(rec);
    Payload* p = slot.load();
    reader_in.store(true);
    // Hold the reference across the writer's retire; the value must stay intact.
    while (!retired.load()) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 1000; ++i) {
      if (p->value.load() != 0xabcdabcdabcdabcdull) {
        reader_ok.store(false);
        break;
      }
    }
    EpochDomain::Exit(rec);
  });

  while (!reader_in.load()) {
    std::this_thread::yield();
  }
  slot.store(nullptr);  // unlink
  RetireList list;
  list.Retire(shared);
  retired.store(true);
  list.Flush();  // barrier: must wait for the reader's critical section
  reader.join();
  EXPECT_TRUE(reader_ok.load());
  EXPECT_EQ(CountedObj::live.load(), 0);
}

}  // namespace
}  // namespace srl
