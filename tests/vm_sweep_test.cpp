// Deterministic battery for the deferred page-sweep subsystem (SweepQueue + the
// AddressSpace flusher): range coalescing across enqueues, the DrainSweeps visibility
// edge, the madvise/fault repopulation contract (a winning re-fault cancels the
// pending erase), the inclusive/exclusive page-range contract at stripe-shard edges,
// and a flusher-vs-fault hammer on a repeatedly trimmed window. The concurrent
// fault-vs-unmap ordering claims live in vm_fault_unmap_race_test; this file pins the
// sweep machinery itself, mostly single-threaded so every expectation is exact.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/epoch/sweep_queue.h"
#include "src/vm/address_space.h"
#include "src/vm/page_table.h"

namespace srl::vm {
namespace {

constexpr uint64_t kPage = AddressSpace::kPageSize;

// --- SweepQueue unit tests ------------------------------------------------------

TEST(VmSweepQueueTest, EnqueueCoalescesOverlappingAndAbuttingRanges) {
  SweepQueue q;
  EXPECT_EQ(q.Enqueue(10, 10), 0u) << "empty range must be a no-op";
  EXPECT_EQ(q.PendingPages(), 0u);

  EXPECT_EQ(q.Enqueue(0, 4), 0u);
  EXPECT_EQ(q.Enqueue(8, 12), 0u);
  EXPECT_EQ(q.PendingPages(), 8u);
  EXPECT_EQ(q.PendingRanges(), 2u);

  // [4, 8) abuts both neighbours: one merged range, no page double-counted.
  EXPECT_EQ(q.Enqueue(4, 8), 2u);
  EXPECT_EQ(q.PendingPages(), 12u);
  EXPECT_EQ(q.PendingRanges(), 1u);

  // Re-enqueueing a covered sub-range absorbs the existing range without growth.
  EXPECT_EQ(q.Enqueue(2, 6), 1u);
  EXPECT_EQ(q.PendingPages(), 12u);

  const auto ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[0].last, 12u);
  EXPECT_EQ(q.PendingPages(), 0u);
  EXPECT_EQ(q.PendingRanges(), 0u);
}

TEST(VmSweepQueueTest, ExpectedBoundsMergeSaturatingAndNeverAcrossAbuttingRanges) {
  SweepQueue q;
  // Two bounded regions that merely abut stay separate: merging them would let one
  // region's bounded probe run into its neighbour's dead tail before finding the
  // neighbour's installs.
  EXPECT_EQ(q.Enqueue(0, 8, 3), 0u);
  EXPECT_EQ(q.Enqueue(8, 16, 2), 0u);
  EXPECT_EQ(q.PendingRanges(), 2u);
  EXPECT_EQ(q.PendingPages(), 16u);

  // An OVERLAPPING bounded enqueue merges and sums the bounds (still an upper bound).
  EXPECT_EQ(q.Enqueue(4, 10, 1), 2u);
  auto ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[0].last, 16u);
  EXPECT_EQ(ranges[0].expected, 6u);

  // Unbounded abutting ranges (the DONTNEED trim-burst case) still coalesce, and any
  // unbounded contribution saturates the merged bound.
  EXPECT_EQ(q.Enqueue(0, 4), 0u);
  EXPECT_EQ(q.Enqueue(4, 8), 1u);
  EXPECT_EQ(q.Enqueue(6, 12, 5), 1u);
  ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].expected, SweepQueue::kUnbounded);
  EXPECT_EQ(SweepQueue::SatAdd(SweepQueue::kUnbounded, 1), SweepQueue::kUnbounded);
}

TEST(VmSweepQueueTest, DeferredUndoRaisesTheCoveringBoundAndSplitsKeepIt) {
  SweepQueue q;
  EXPECT_FALSE(q.DeferUndoToPending(3)) << "nothing pending";
  q.Enqueue(0, 8, 2);
  EXPECT_FALSE(q.DeferUndoToPending(8)) << "one past the end is not covered";
  // A loser handing its undo to the flusher raises the bound: its install happened
  // after the munmap summed the hints, so the probe must not stop short of it.
  EXPECT_TRUE(q.DeferUndoToPending(5));
  // An interior cancel splits the range; both halves keep the full (raised) bound.
  EXPECT_TRUE(q.CancelPending(4));
  const auto ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].expected, 3u);
  EXPECT_EQ(ranges[1].expected, 3u);
}

TEST(VmSweepQueueTest, CancelPendingPunchesHolesAtEveryPosition) {
  SweepQueue q;
  EXPECT_FALSE(q.CancelPending(3)) << "nothing pending";

  q.Enqueue(0, 8);
  EXPECT_FALSE(q.CancelPending(8)) << "one past the end is not covered";
  EXPECT_TRUE(q.CoversPending(0));
  EXPECT_TRUE(q.CancelPending(0)) << "head page";
  EXPECT_FALSE(q.CoversPending(0));
  EXPECT_TRUE(q.CancelPending(7)) << "tail page";
  EXPECT_TRUE(q.CancelPending(3)) << "interior page splits the range";
  EXPECT_FALSE(q.CancelPending(3)) << "already cancelled";
  EXPECT_EQ(q.PendingPages(), 5u);

  const auto ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].first, 1u);
  EXPECT_EQ(ranges[0].last, 3u);
  EXPECT_EQ(ranges[1].first, 4u);
  EXPECT_EQ(ranges[1].last, 7u);
}

TEST(VmSweepQueueTest, CancelPendingErasesAnExhaustedRange) {
  SweepQueue q;
  q.Enqueue(5, 6);
  EXPECT_TRUE(q.CancelPending(5));
  EXPECT_EQ(q.PendingPages(), 0u);
  EXPECT_EQ(q.PendingRanges(), 0u);
  EXPECT_TRUE(q.Claim().empty());
}

TEST(VmSweepQueueTest, FlushThresholdIsTunableAndFloorsAtOne) {
  SweepQueue q;
  EXPECT_EQ(q.FlushThreshold(), SweepQueue::kDefaultFlushThresholdPages);
  q.SetFlushThreshold(0);  // 0 would flush empty queues forever; floored to 1
  EXPECT_EQ(q.FlushThreshold(), 1u);
  EXPECT_FALSE(q.NeedsFlush());
  q.Enqueue(0, 1);
  EXPECT_TRUE(q.NeedsFlush());
  q.SetFlushThreshold(4);
  EXPECT_FALSE(q.NeedsFlush());
  q.Enqueue(10, 13);
  EXPECT_TRUE(q.NeedsFlush());
}

// --- PageTable boundary contract (the inclusive/exclusive audit's pin) ----------

// Every PageTable range is [first_page, last_page) with an EXCLUSIVE end. The case
// that would expose an off-by-one is a range ending exactly on a stripe-shard edge:
// the group walk must include the edge's left neighbour and exclude the edge itself.
TEST(VmSweepQueueTest, RemoveRangeStopsAtStripeShardEdge) {
  PageTable pt;
  const uint64_t shift = VmaIndex::kStripeShift - 12;  // stripe shift in page units
  const uint64_t base = AddressSpace::kMmapBase / kPage;
  pt.ConfigureStripes(shift, base, 4);

  const uint64_t edge = base + (uint64_t{1} << shift);  // first page of window 1
  ASSERT_TRUE(pt.Install(edge - 1));
  ASSERT_TRUE(pt.Install(edge));

  // Narrow (page-by-page) path: end exactly on the edge.
  pt.RemoveRange(edge - 4, edge);
  EXPECT_FALSE(pt.Present(edge - 1));
  EXPECT_TRUE(pt.Present(edge)) << "exclusive end erased the next window's first page";
  EXPECT_EQ(pt.CountRange(edge - 4, edge), 0u);
  EXPECT_EQ(pt.CountRange(edge, edge + 1), 1u);

  // Wide (shard-group walk) path: the whole first window, same exclusive edge.
  ASSERT_TRUE(pt.Install(edge - 1));
  pt.RemoveRange(base, edge);
  EXPECT_FALSE(pt.Present(edge - 1));
  EXPECT_TRUE(pt.Present(edge)) << "shard-group walk crossed the window edge";
}

// The `max_present` bound caps the probe on both RemoveRange paths: once that many
// pages have been erased no more can exist, so the scan stops. A bound SMALLER than
// the true count (never produced by the hint plumbing, but the contract must hold)
// erases exactly the bound and leaves the rest.
TEST(VmSweepQueueTest, RemoveRangeStopsAfterTheMaxPresentBound) {
  PageTable pt;
  // Narrow (page-by-page) path: 3 installs clustered at the front of 1000 pages.
  for (uint64_t p = 100; p < 103; ++p) {
    ASSERT_TRUE(pt.Install(p));
  }
  EXPECT_EQ(pt.RemoveRange(100, 1100, 3), 3u);
  EXPECT_EQ(pt.CountRange(100, 1100), 0u);
  EXPECT_EQ(pt.RemoveRange(100, 1100, 0), 0u) << "zero bound must be a no-op";

  // Bound below the true count: exactly `max_present` erased.
  for (uint64_t p = 200; p < 205; ++p) {
    ASSERT_TRUE(pt.Install(p));
  }
  EXPECT_EQ(pt.RemoveRange(200, 205, 3), 3u);
  EXPECT_EQ(pt.CountRange(200, 205), 2u);

  // Wide (shard-group walk) path: > 4096 pages, sparse installs.
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(pt.Install(10000 + p * 512));
  }
  EXPECT_EQ(pt.RemoveRange(10000, 20000, 8), 8u);
  EXPECT_EQ(pt.CountRange(10000, 20000), 0u);
}

TEST(VmSweepQueueTest, RemoveRangeReportsWhereTheProbeStopped) {
  PageTable pt;
  uint64_t resume = 0;
  // Full walk (budget not exhausted): resume is the exclusive end.
  ASSERT_TRUE(pt.Install(5));
  EXPECT_EQ(pt.RemoveRange(0, 16, 4, &resume), 1u);
  EXPECT_EQ(resume, 16u);
  // Early budget stop: everything below resume has provably been probed.
  ASSERT_TRUE(pt.Install(2));
  ASSERT_TRUE(pt.Install(12));
  EXPECT_EQ(pt.RemoveRange(0, 16, 1, &resume), 1u);
  EXPECT_EQ(resume, 3u) << "narrow probe erases in ascending order and stops exactly";
  EXPECT_EQ(pt.CountRange(0, 16), 1u) << "page 12 must survive the bounded probe";
  pt.Remove(12);
  // The wide path visits shards out of page order: an early stop there must report
  // first_page, leaving the whole range suspect.
  ASSERT_TRUE(pt.Install(30000));
  EXPECT_EQ(pt.RemoveRange(20000, 40000, 1, &resume), 1u);
  EXPECT_EQ(resume, 20000u);
}

TEST(VmSweepQueueTest, RobbedBoundedProbeLeavesATombstoneAndRaiseReArmsItsTail) {
  // The budget-theft scenario the claimed-range lifecycle exists for. A munmap whose
  // hint read raced a losing fault enqueues [0, 16) with expected = 1 (it counted the
  // real install at page 12, not the loser's transient one at page 2). The bounded
  // probe then spends its only budget unit erasing the loser's page and stops — the
  // real dead page survives past the stop point, and the robbed loser (its
  // ticket-exact RemoveExact finds its page already gone) must still find a
  // compensation target, or page 12 leaks forever.
  SweepQueue q;
  PageTable pt;
  ASSERT_TRUE(pt.Install(2));   // the loser's transient install (not in the bound)
  ASSERT_TRUE(pt.Install(12));  // the real dead page the bound counted
  q.Enqueue(0, 16, 1);

  // Flusher: claim, probe, and report the early budget stop.
  auto ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(q.CoversPending(12)) << "claimed-in-flight ranges must stay covered";
  uint64_t resume = 0;
  EXPECT_EQ(pt.RemoveRange(ranges[0].first, ranges[0].last, ranges[0].expected,
                           &resume),
            1u);
  EXPECT_EQ(resume, 3u);
  EXPECT_EQ(pt.CountRange(0, 16), 1u) << "page 12 stranded past the stop point";
  q.FinishClaimed(ranges[0].first, ranges[0].last, resume, /*may_survive=*/true,
                  /*batch=*/1);
  EXPECT_EQ(q.ClaimedEntries(), 1u) << "budget-exhausted probe leaves a tombstone";
  EXPECT_TRUE(q.CoversPending(12))
      << "the tombstone keeps the stranded page covered for the invariant checker";

  // The robbed loser raises the tombstone: its unprobed tail [3, 16) re-arms with one
  // budget unit, and the next flush recovers the stranded page.
  EXPECT_TRUE(q.RaiseClaimed(2));
  EXPECT_EQ(q.PendingRanges(), 1u);
  ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 3u);
  EXPECT_EQ(ranges[0].last, 16u);
  EXPECT_EQ(ranges[0].expected, 1u);
  EXPECT_EQ(pt.RemoveRange(ranges[0].first, ranges[0].last, ranges[0].expected,
                           &resume),
            1u);
  EXPECT_EQ(pt.CountRange(0, 16), 0u) << "compensation re-probe recovers page 12";
  q.FinishClaimed(ranges[0].first, ranges[0].last, resume,
                  resume < ranges[0].last, /*batch=*/2);

  // Grace elapsed (no fault in flight can still owe a raise): tombstones purge and
  // the cover envelope resets.
  q.PurgeFinishedUpTo(2);
  EXPECT_EQ(q.ClaimedEntries(), 0u);
  EXPECT_FALSE(q.CoversPending(12));
  EXPECT_FALSE(q.MayCover(8)) << "bounds reset once nothing pending or claimed";
}

TEST(VmSweepQueueTest, RaiseWhileTheProbeIsInFlightLandsInFinishClaimed) {
  SweepQueue q;
  q.Enqueue(0, 16, 1);
  const auto ranges = q.Claim();
  ASSERT_EQ(ranges.size(), 1u);
  // Two thieves race the in-flight probe: their raises accumulate on the claimed
  // entry and FinishClaimed re-enqueues the unprobed tail with both budget units.
  EXPECT_TRUE(q.RaiseClaimed(5));
  EXPECT_TRUE(q.RaiseClaimed(7));
  EXPECT_EQ(q.PendingRanges(), 0u) << "raises on an in-flight claim defer to finish";
  q.FinishClaimed(0, 16, /*resume=*/4, /*may_survive=*/true, /*batch=*/1);
  const auto repend = q.Claim();
  ASSERT_EQ(repend.size(), 1u);
  EXPECT_EQ(repend[0].first, 4u);
  EXPECT_EQ(repend[0].last, 16u);
  EXPECT_EQ(repend[0].expected, 2u);
  q.FinishClaimed(4, 16, 16, false, 2);
  // A raise that misses (every claimed entry settled and purged) reports false: the
  // erasing probe ran to completion, so there is nothing to compensate.
  q.PurgeFinishedUpTo(2);
  EXPECT_FALSE(q.RaiseClaimed(5));
}

// --- AddressSpace flusher battery -----------------------------------------------

struct SweepParam {
  VmVariant variant;
  unsigned stripes;
};

std::string SweepTestName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = VmVariantName(info.param.variant);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  if (info.param.stripes > 1) {
    name += "_s" + std::to_string(info.param.stripes);
  }
  return name;
}

class VmSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(VmSweepTest, DontNeedTrimsCoalesceIntoOneFlush) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t base = as.Mmap(8 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base, 0u);
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(as.PageFault(base + p * kPage, true));
  }

  // Three abutting trims; the default threshold is far away, so all stay pending.
  ASSERT_TRUE(as.MadviseDontNeed(base, 2 * kPage));
  ASSERT_TRUE(as.MadviseDontNeed(base + 2 * kPage, 2 * kPage));
  ASSERT_TRUE(as.MadviseDontNeed(base + 4 * kPage, 4 * kPage));
  EXPECT_EQ(as.Stats().sweeps_queued.load(), 3u);
  EXPECT_EQ(as.Stats().sweeps_coalesced.load(), 2u) << "abutting trims must merge";
  EXPECT_EQ(as.PendingSweepPages(), 8u);
  EXPECT_EQ(as.PresentPagesInRange(base, 8 * kPage), 8u)
      << "the erase is deferred: pages stay installed until a flush";

  as.DrainSweeps();
  EXPECT_EQ(as.PendingSweepPages(), 0u);
  EXPECT_EQ(as.PresentPagesInRange(base, 8 * kPage), 0u);
  EXPECT_EQ(as.Stats().sweeps_swept_pages.load(), 8u)
      << "coalescing must not double-sweep merged pages";
  EXPECT_TRUE(as.CheckInvariants());
}

// Satellite mechanism pin: the dying VMA's present_hint travels with the queued range
// as an upper bound, so sweeping a sparsely-faulted region costs its installs, not its
// size — and a never-faulted region skips the sweep entirely.
TEST_P(VmSweepTest, SparseRegionSweepIsBoundedByThePresentHint) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t base = as.Mmap(256 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base, 0u);
  // Fault only the front quarter — the arena shape the bound exists for.
  for (uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(as.PageFault(base + p * kPage, true));
  }
  ASSERT_TRUE(as.Munmap(base, 256 * kPage));
  EXPECT_EQ(as.PendingSweepPages(), 256u) << "the whole dead span is enqueued";
  as.DrainSweeps();
  EXPECT_EQ(as.PresentPagesInRange(base, 256 * kPage), 0u);
  EXPECT_EQ(as.Stats().sweeps_swept_pages.load(), 64u)
      << "swept pages counts ACTUAL erases: the hint bound (64) stops the probe";
  EXPECT_TRUE(as.CheckInvariants());

  // A region that never faulted a page skips the sweep machinery outright.
  const uint64_t cold = as.Mmap(16 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(cold, 0u);
  const uint64_t skipped_before = as.Stats().sweeps_skipped_empty.load();
  ASSERT_TRUE(as.Munmap(cold, 16 * kPage));
  EXPECT_EQ(as.Stats().sweeps_skipped_empty.load(), skipped_before + 1);
  EXPECT_EQ(as.PendingSweepPages(), 0u);
  EXPECT_TRUE(as.CheckInvariants());
}

TEST_P(VmSweepTest, DrainSweepsIsTheVisibilityEdgeForMunmap) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t base = as.Mmap(4 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base, 0u);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(as.PageFault(base + p * kPage, true));
  }

  ASSERT_TRUE(as.Munmap(base, 4 * kPage));
  // The unlink is synchronous — faults die immediately — but the page sweep is not.
  EXPECT_FALSE(as.PageFault(base, false));
  EXPECT_EQ(as.PendingSweepPages(), 4u);
  EXPECT_EQ(as.PresentPagesInRange(base, 4 * kPage), 4u);

  as.DrainSweeps();
  EXPECT_EQ(as.PendingSweepPages(), 0u);
  EXPECT_EQ(as.PresentPagesInRange(base, 4 * kPage), 0u);
  EXPECT_GE(as.Stats().sweeps_flushes.load(), 1u);
  EXPECT_TRUE(as.CheckInvariants());
}

TEST_P(VmSweepTest, WinningRefaultCancelsThePendingTrim) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t base = as.Mmap(4 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base, 0u);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(as.PageFault(base + p * kPage, true));
  }
  ASSERT_TRUE(as.MadviseDontNeed(base, 4 * kPage));
  EXPECT_EQ(as.PendingSweepPages(), 4u);

  // Re-fault page 1 while its erase is still pending: Linux's contract is that a
  // fault completing after the madvise call repopulates the page durably, so the
  // pending sweep must lose exactly that page and nothing else.
  ASSERT_TRUE(as.PageFault(base + kPage, true));
  EXPECT_EQ(as.PendingSweepPages(), 3u);

  as.DrainSweeps();
  EXPECT_EQ(as.PresentPagesInRange(base, kPage), 0u);
  EXPECT_EQ(as.PresentPagesInRange(base + kPage, kPage), 1u)
      << "the deferred trim erased a page re-faulted after the madvise call";
  EXPECT_EQ(as.PresentPagesInRange(base + 2 * kPage, 2 * kPage), 0u);
  EXPECT_TRUE(as.CheckInvariants());
}

TEST_P(VmSweepTest, FlusherVsFaultHammerOnTrimmedWindow) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  // Threshold 1: every trim flushes inline, so the flusher's RemoveRange runs
  // concurrently with the faulting thread's installs all the time.
  as.SetSweepFlushThreshold(1);
  const uint64_t base = as.Mmap(8 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base, 0u);

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::thread faulter([&] {
    uint64_t p = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (!as.PageFault(base + p * kPage, true)) {
        ok.store(false);  // the mapping never goes away: a fault must never fail
        return;
      }
      p = (p + 1) % 8;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(as.MadviseDontNeed(base, 8 * kPage));
  }
  stop.store(true, std::memory_order_release);
  faulter.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(as.CheckInvariants());

  // Quiesced, every page re-faults to a stable present state.
  as.DrainSweeps();
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(as.PageFault(base + p * kPage, true));
  }
  EXPECT_EQ(as.PresentPagesInRange(base, 8 * kPage), 8u);
  EXPECT_TRUE(as.CheckInvariants());
}

TEST_P(VmSweepTest, MunmapEndingExactlyOnStripeEdgeSparesTheNextWindow) {
  if (GetParam().stripes < 2) {
    GTEST_SKIP() << "needs at least two stripe windows";
  }
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t a = as.MmapInStripe(0, 4 * kPage, kProtRead | kProtWrite);
  const uint64_t b = as.MmapInStripe(1, 4 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(as.PageFault(a + p * kPage, true));
    ASSERT_TRUE(as.PageFault(b + p * kPage, true));
  }

  // Unmap from `a` to EXACTLY the end of stripe 0's window: the enqueued sweep's
  // exclusive end sits on the window edge, the canonical off-by-one trap. Stripe 1's
  // first mapping starts at most a page past the edge, so an inclusive-end sweep
  // would eat its first page.
  const uint64_t edge = VmaIndex::WindowEnd(0);
  ASSERT_TRUE(as.Munmap(a, edge - a));
  as.DrainSweeps();
  EXPECT_EQ(as.PresentPagesInRange(a, 4 * kPage), 0u);
  EXPECT_EQ(as.PresentPagesInRange(b, 4 * kPage), 4u)
      << "a sweep ending on the stripe edge leaked into the next window";
  EXPECT_TRUE(as.CheckInvariants());
}

TEST_P(VmSweepTest, CrossStripeMunmapSplitsTheSweepAtTheWindowEdge) {
  if (GetParam().stripes < 2) {
    GTEST_SKIP() << "needs at least two stripe windows";
  }
  AddressSpace as(GetParam().variant, GetParam().stripes);
  const uint64_t a = as.MmapInStripe(0, 4 * kPage, kProtRead | kProtWrite);
  const uint64_t b = as.MmapInStripe(1, 4 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(as.PageFault(a + p * kPage, true));
    ASSERT_TRUE(as.PageFault(b + p * kPage, true));
  }

  // One munmap spanning the edge: unmaps all of `a`, clips `b`'s first page. The
  // dead range must split into one piece per stripe queue (queue assignment is a
  // locality property, but the split is also what keeps each flush stripe-confined).
  const uint64_t queued_before = as.Stats().sweeps_queued.load();
  ASSERT_TRUE(as.Munmap(a, b + kPage - a));
  EXPECT_EQ(as.Stats().sweeps_queued.load() - queued_before, 2u)
      << "a cross-stripe dead range must enqueue one piece per stripe window";

  as.DrainSweeps();
  EXPECT_EQ(as.PresentPagesInRange(a, 4 * kPage), 0u);
  EXPECT_EQ(as.PresentPagesInRange(b, kPage), 0u) << "clipped head page survived";
  EXPECT_EQ(as.PresentPagesInRange(b + kPage, 3 * kPage), 3u)
      << "the sweep overran the clip point";
  EXPECT_TRUE(as.CheckInvariants());
}

TEST_P(VmSweepTest, InlineModeRestoresSynchronousSemantics) {
  AddressSpace as(GetParam().variant, GetParam().stripes);
  as.SetDeferredSweeps(false);
  const uint64_t base = as.Mmap(4 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base, 0u);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(as.PageFault(base + p * kPage, true));
  }
  ASSERT_TRUE(as.MadviseDontNeed(base, 2 * kPage));
  EXPECT_EQ(as.PresentPagesInRange(base, 2 * kPage), 0u);
  ASSERT_TRUE(as.Munmap(base, 4 * kPage));
  EXPECT_EQ(as.PresentPagesInRange(base, 4 * kPage), 0u);
  EXPECT_EQ(as.PendingSweepPages(), 0u);
  EXPECT_EQ(as.Stats().sweeps_queued.load(), 0u);
  // MunmapAsync defers regardless of the mode switch — it IS the async entry point.
  const uint64_t base2 = as.Mmap(2 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(base2, 0u);
  ASSERT_TRUE(as.PageFault(base2, true));
  ASSERT_TRUE(as.MunmapAsync(base2, 2 * kPage));
  EXPECT_EQ(as.PresentPagesInRange(base2, kPage), 1u);
  as.DrainSweeps();
  EXPECT_EQ(as.PresentPagesInRange(base2, kPage), 0u);
  EXPECT_TRUE(as.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VmSweepTest,
    ::testing::Values(SweepParam{VmVariant::kStock, 1},
                      SweepParam{VmVariant::kTreeFull, 1},
                      SweepParam{VmVariant::kListRefined, 1},
                      SweepParam{VmVariant::kTreeScoped, 1},
                      SweepParam{VmVariant::kListScoped, 1},
                      SweepParam{VmVariant::kListLfScoped, 1},
                      SweepParam{VmVariant::kSkiplistScoped, 1},
                      // Multi-stripe spaces: sweeps must stay window-confined.
                      SweepParam{VmVariant::kTreeScoped, 4},
                      SweepParam{VmVariant::kListScoped, 4},
                      SweepParam{VmVariant::kListLfScoped, 4},
                      SweepParam{VmVariant::kSkiplistScoped, 4}),
    SweepTestName);

}  // namespace
}  // namespace srl::vm
