// Tests for the arena allocator simulation and the Metis-like MapReduce workloads.
#include <cstring>
#include <gtest/gtest.h>

#include "src/metis/arena_allocator.h"
#include "src/metis/metis_job.h"
#include "src/metis/text_gen.h"
#include "src/metis/word_table.h"

namespace srl::metis {
namespace {

constexpr uint64_t kPage = vm::AddressSpace::kPageSize;

TEST(ArenaAllocatorTest, AllocReturnsUsableDistinctMemory) {
  vm::AddressSpace as(vm::VmVariant::kListRefined);
  ArenaAllocator arena(as, /*arena_pages=*/256, /*grow_chunk_pages=*/4);
  auto* a = static_cast<char*>(arena.Alloc(100));
  auto* b = static_cast<char*>(arena.Alloc(100));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xaa, 100);
  std::memset(b, 0xbb, 100);
  EXPECT_EQ(static_cast<uint8_t>(a[99]), 0xaa);
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0xbb);
  EXPECT_TRUE(arena.Healthy());
}

TEST(ArenaAllocatorTest, GrowthIssuesBoundaryMoveMprotects) {
  vm::AddressSpace as(vm::VmVariant::kListRefined);
  ArenaAllocator arena(as, 256, 4);
  // First allocation: structural split (the arena's first commit), then growth should
  // speculate.
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(arena.Alloc(8 * 1024), nullptr);
  }
  const auto& st = as.Stats();
  EXPECT_GE(st.mprotects.load(), 20u);
  EXPECT_EQ(st.spec_fallback.load(), 1u) << "only the first commit is structural";
  EXPECT_GT(st.SpeculationSuccessRate(), 0.9);
  EXPECT_TRUE(arena.Healthy());
  EXPECT_TRUE(as.CheckInvariants());
}

TEST(ArenaAllocatorTest, FaultsOncePerPage) {
  vm::AddressSpace as(vm::VmVariant::kStock);
  ArenaAllocator arena(as, 64, 4);
  arena.Alloc(kPage / 2);
  arena.Alloc(kPage / 2);  // same page + next page boundary
  const uint64_t faults = as.Stats().MajorFaults();
  EXPECT_GE(faults, 1u);
  EXPECT_LE(faults, 2u);
}

TEST(ArenaAllocatorTest, ResetShrinksAndDropsPages) {
  vm::AddressSpace as(vm::VmVariant::kListRefined);
  ArenaAllocator arena(as, 256, 4);
  for (int i = 0; i < 30; ++i) {
    arena.Alloc(16 * 1024);
  }
  const uint64_t committed_before = arena.CommittedBytes();
  EXPECT_GT(committed_before, 4 * kPage);
  arena.Reset();
  EXPECT_EQ(arena.CommittedBytes(), 4 * kPage);
  // The trim's page drop is deferred (sweep queue); settle it so the regrowth below
  // observes dropped pages rather than re-validating still-present ones.
  as.DrainSweeps();
  // Regrowth faults again (pages were dropped).
  const uint64_t mf_before = as.Stats().MajorFaults();
  for (int i = 0; i < 30; ++i) {
    arena.Alloc(16 * 1024);
  }
  EXPECT_GT(as.Stats().MajorFaults(), mf_before);
  EXPECT_TRUE(arena.Healthy());
  EXPECT_TRUE(as.CheckInvariants());
}

TEST(ArenaAllocatorTest, ExhaustionReturnsNull) {
  vm::AddressSpace as(vm::VmVariant::kStock);
  ArenaAllocator arena(as, 8, 2);  // tiny arena
  void* p = arena.Alloc(6 * kPage);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.Alloc(4 * kPage), nullptr);
  EXPECT_TRUE(arena.Healthy());
}

TEST(TextGeneratorTest, DeterministicAndWellFormed) {
  TextGenerator a(42), b(42);
  std::string sa, sb;
  a.Fill(&sa, 10000);
  b.Fill(&sb, 10000);
  EXPECT_EQ(sa, sb);
  for (char c : sa) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ');
  }
}

TEST(WordTableTest, CountsWords) {
  vm::AddressSpace as(vm::VmVariant::kStock);
  ArenaAllocator arena(as, 1024, 4);
  WordTable table(arena, /*track_positions=*/false);
  EXPECT_TRUE(table.Add("foo", 3, 0));
  EXPECT_TRUE(table.Add("bar", 3, 1));
  EXPECT_TRUE(table.Add("foo", 3, 2));
  EXPECT_EQ(table.DistinctWords(), 2u);
  uint64_t foo_count = 0;
  table.ForEach([&](const WordTable::Entry& e) {
    if (e.len == 3 && std::memcmp(e.word, "foo", 3) == 0) {
      foo_count = e.count;
    }
  });
  EXPECT_EQ(foo_count, 2u);
}

TEST(WordTableTest, GrowsPastInitialCapacityAndTracksPositions) {
  vm::AddressSpace as(vm::VmVariant::kStock);
  ArenaAllocator arena(as, 4096, 4);
  WordTable table(arena, /*track_positions=*/true, /*initial_capacity=*/16);
  char word[16];
  for (int i = 0; i < 5000; ++i) {
    const int len = std::snprintf(word, sizeof word, "w%d", i);
    ASSERT_TRUE(table.Add(word, static_cast<uint32_t>(len), static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(table.DistinctWords(), 5000u);
  uint64_t postings = 0;
  table.ForEach([&](const WordTable::Entry& e) {
    for (auto* pc = e.postings; pc != nullptr; pc = pc->next) {
      postings += pc->used;
    }
  });
  EXPECT_EQ(postings, 5000u);
}

class MetisJobTest : public ::testing::TestWithParam<MetisApp> {};

TEST_P(MetisJobTest, RunsAndProducesIdenticalResultsAcrossVariants) {
  MetisConfig cfg;
  cfg.app = GetParam();
  cfg.threads = 4;
  cfg.chunk_bytes = 64 * 1024;
  cfg.rounds = 3;
  cfg.seed = 7;

  MetisResult baseline;
  bool first = true;
  for (vm::VmVariant variant :
       {vm::VmVariant::kStock, vm::VmVariant::kTreeFull, vm::VmVariant::kTreeRefined,
        vm::VmVariant::kListFull, vm::VmVariant::kListRefined}) {
    vm::AddressSpace as(variant);
    const MetisResult r = RunMetis(as, cfg);
    ASSERT_TRUE(r.ok) << vm::VmVariantName(variant);
    EXPECT_GT(r.total_words, 0u);
    EXPECT_GT(r.distinct_words, 0u);
    EXPECT_TRUE(as.CheckInvariants()) << vm::VmVariantName(variant);
    if (first) {
      baseline = r;
      first = false;
    } else {
      // The computation must be lock-variant independent.
      EXPECT_EQ(r.total_words, baseline.total_words) << vm::VmVariantName(variant);
      EXPECT_EQ(r.distinct_words, baseline.distinct_words) << vm::VmVariantName(variant);
      EXPECT_EQ(r.checksum, baseline.checksum) << vm::VmVariantName(variant);
    }
  }
}

TEST_P(MetisJobTest, RefinedVariantSpeculatesHeavily) {
  MetisConfig cfg;
  cfg.app = GetParam();
  cfg.threads = 4;
  cfg.chunk_bytes = 64 * 1024;
  cfg.rounds = 4;
  vm::AddressSpace as(vm::VmVariant::kListRefined);
  const MetisResult r = RunMetis(as, cfg);
  ASSERT_TRUE(r.ok);
  // "over 99% of mprotect calls succeed in the speculative path" (§7.2). Small runs
  // carry proportionally more of the per-arena first split, so use a slack bound.
  EXPECT_GT(as.Stats().SpeculationSuccessRate(), 0.9)
      << "spec=" << as.Stats().spec_success.load()
      << " fallback=" << as.Stats().spec_fallback.load();
  EXPECT_GT(as.Stats().mprotects.load(), 0u);
  EXPECT_GT(as.Stats().Faults(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Apps, MetisJobTest,
                         ::testing::Values(MetisApp::kWc, MetisApp::kWr, MetisApp::kWrmem),
                         [](const ::testing::TestParamInfo<MetisApp>& info) {
                           return MetisAppName(info.param);
                         });

}  // namespace
}  // namespace srl::metis
