// Tests for the skiplist-indexed range lock: level-0 insertion-is-acquisition,
// mark-bit release across index levels, helping snips with the links_remaining
// retire countdown, NodePool conservation, and destructor collection of (possibly
// partially snipped) marked residue. Exclusion and try/timed semantics are covered
// by the shared conformance and fuzz batteries; this file pins down what is specific
// to the skiplist index.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/skiplist_range_lock.h"
#include "src/epoch/node_pool.h"

namespace srl {
namespace {

using namespace std::chrono_literals;

TEST(SkiplistRangeLockTest, LockUnlockSingleThread) {
  SkiplistRangeLock lock;
  SkiplistRangeLock::Handle h = lock.Lock({10, 20});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(lock.DebugHeldCount(), 1u);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  lock.Unlock(h);
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
}

TEST(SkiplistRangeLockTest, DisjointRangesCoexistSortedByStart) {
  SkiplistRangeLock lock;
  auto h2 = lock.Lock({20, 30});
  auto h1 = lock.Lock({0, 10});
  auto h3 = lock.Lock({10, 20});  // adjacent, not overlapping
  EXPECT_EQ(lock.DebugHeldCount(), 3u);
  EXPECT_TRUE(lock.DebugInvariantHolds());
  SkiplistRangeLock::Handle h4 = nullptr;
  EXPECT_FALSE(lock.TryLock({5, 25}, &h4)) << "overlaps all three held ranges";
  lock.Unlock(h3);
  lock.Unlock(h1);
  lock.Unlock(h2);  // out-of-order release is fine: marks are independent
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
}

TEST(SkiplistRangeLockTest, TryLockConflictFailsWithoutResidue) {
  SkiplistRangeLock lock;
  auto held = lock.Lock({5, 15});
  SkiplistRangeLock::Handle h = nullptr;
  EXPECT_FALSE(lock.TryLock({10, 20}, &h));
  EXPECT_FALSE(lock.TryLock({0, 6}, &h)) << "conflict via the predecessor's end";
  EXPECT_EQ(lock.DebugHeldCount(), 1u) << "failed TryLock left an unmarked node";
  EXPECT_TRUE(lock.DebugInvariantHolds());
  ASSERT_TRUE(lock.TryLock({50, 60}, &h)) << "disjoint range must not be refused";
  lock.Unlock(h);
  lock.Unlock(held);
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
}

TEST(SkiplistRangeLockTest, TimedAcquisitionExpiresAgainstHolder) {
  SkiplistRangeLock lock;
  auto held = lock.Lock({0, 100});
  SkiplistRangeLock::Handle h = nullptr;
  EXPECT_FALSE(lock.LockFor({40, 50}, 2ms, &h));
  EXPECT_EQ(lock.DebugHeldCount(), 1u);
  lock.Unlock(held);
  ASSERT_TRUE(lock.LockFor({40, 50}, 1s, &h));
  lock.Unlock(h);
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
}

TEST(SkiplistRangeLockTest, HandleReleasableFromAnotherThread) {
  SkiplistRangeLock lock;
  auto h = lock.Lock({0, 32});
  std::thread releaser([&] { lock.Unlock(h); });
  releaser.join();
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
  SkiplistRangeLock::Handle h2 = nullptr;
  ASSERT_TRUE(lock.TryLock({0, 32}, &h2));
  lock.Unlock(h2);
}

// Exact NodePool conservation, single-threaded and deterministic. Acquiring the same
// start repeatedly makes every find pass the previous acquisition's marked node at
// each of its still-linked levels, snip them all, and retire it — so the steady
// state is exactly one standing residue node: pool_total == baseline - 1 after every
// round trip. A leak (a snipped node never retired because the countdown drifted) or
// a double retire (a level snipped twice) moves the total in opposite directions.
TEST(SkiplistRangeLockTest, SameKeyChurnConservesPoolNodes) {
  auto pool_total = [] {
    auto& pool = NodePool<SkipLockNode>::Local();
    return pool.ActiveSize() + pool.ReclaimedSize();
  };
  SkiplistRangeLock lock;
  {
    auto h = lock.Lock({7, 9});  // prime: first residue node
    lock.Unlock(h);
  }
  const std::size_t baseline = pool_total() + 1;  // +1: the standing residue node
  for (int i = 0; i < 400; ++i) {
    SkiplistRangeLock::Handle h = nullptr;
    ASSERT_TRUE(lock.TryLock({7, 9}, &h)) << "round " << i;
    lock.Unlock(h);
    ASSERT_EQ(pool_total(), baseline - 1) << "round " << i;
  }
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

// The level-0 CAS arbitration: overlapping Lock calls from many threads guard a
// non-atomic counter; any lost exclusion tears it. Also the TSan target for the
// insertion CAS's publication ordering.
TEST(SkiplistRangeLockTest, OverlappingGuardedCounterNeverTears) {
  SkiplistRangeLock lock;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  uint64_t counter = 0;  // non-atomic on purpose
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Alternate narrow and wide overlapping ranges so waits arise on both the
        // predecessor-end and successor-start conflict arms.
        const Range r = (i + t) % 3 == 0 ? Range{0, 64} : Range{4, 8};
        SkiplistRangeLock::Guard g(lock, r);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

// Concurrent disjoint holders at scale: hundreds of simultaneously live ranges (the
// regime the index exists for), fuzzing the upper-level link/snip machinery while
// DebugInvariantHolds spot-checks the sorted/disjoint invariants live.
TEST(SkiplistRangeLockTest, ManyLiveRangesStress) {
  SkiplistRangeLock lock;
  constexpr int kThreads = 4;
  constexpr int kSlots = 128;   // per-thread slots -> up to 512 live ranges
  constexpr int kIters = 1500;
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<SkiplistRangeLock::Handle> held(kSlots, nullptr);
      uint64_t state = 0x9e3779b97f4a7c15u * static_cast<uint64_t>(t + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (int i = 0; i < kIters; ++i) {
        const int slot = static_cast<int>(next() % kSlots);
        // Thread-disjoint universe: slot s of thread t is [base, base + 4).
        const uint64_t base =
            (static_cast<uint64_t>(t) * kSlots + static_cast<uint64_t>(slot)) * 8;
        if (held[slot] == nullptr) {
          held[slot] = lock.Lock({base, base + 4});
        } else {
          lock.Unlock(held[slot]);
          held[slot] = nullptr;
        }
      }
      for (auto& h : held) {
        if (h != nullptr) {
          lock.Unlock(h);
        }
      }
    });
  }
  for (int probe = 0; probe < 50; ++probe) {
    if (!lock.DebugInvariantHolds()) {
      ok.store(false);
      break;
    }
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(ok.load()) << "invariant violated while threads churned";
  EXPECT_EQ(lock.DebugHeldCount(), 0u);
  EXPECT_TRUE(lock.DebugInvariantHolds());
}

// Destruction with marked residue, including partially snipped nodes: a later find
// that stops short of a residue node's lower levels leaves links_remaining strictly
// between 0 and top_level + 1. The destructor's per-level sweep must free each node
// exactly once regardless (ASan backs the assertion).
TEST(SkiplistRangeLockTest, DestructorCollectsMarkedResidue) {
  for (int round = 0; round < 8; ++round) {
    SkiplistRangeLock lock;
    std::vector<SkiplistRangeLock::Handle> hs;
    for (uint64_t k = 0; k < 32; ++k) {
      hs.push_back(lock.Lock({k * 10, k * 10 + 5}));
    }
    for (auto& h : hs) {
      lock.Unlock(h);
    }
    // Partial snipping: finds targeted at a few keys unlink those nodes at the
    // levels on their search paths, leaving a mix of fully-linked, partially
    // snipped, and fully retired residue for the destructor.
    for (uint64_t k = 0; k < 32; k += 5) {
      SkiplistRangeLock::Handle h = nullptr;
      ASSERT_TRUE(lock.TryLock({k * 10, k * 10 + 5}, &h));
      lock.Unlock(h);
    }
    EXPECT_EQ(lock.DebugHeldCount(), 0u);
  }  // destructor runs here
}

}  // namespace
}  // namespace srl
