// Tests for the harness utilities: PRNG, statistics, CLI parsing, tables, wait stats,
// free lists, and the throughput runner.
#include <cstring>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "src/harness/cli.h"
#include "src/harness/free_list.h"
#include "src/harness/prng.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/harness/wait_stats.h"

namespace srl {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextBelowInBounds) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(PrngTest, NextBelowCoversRange) {
  Xoshiro256 rng(11);
  bool seen[8] = {};
  for (int i = 0; i < 500; ++i) {
    seen[rng.NextBelow(8)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 1000, 0.5, 0.05);  // loose uniformity sanity
}

TEST(StatsTest, SummaryBasics) {
  const Summary s = Summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-9);
  EXPECT_NEAR(s.RelStddevPct(), 50.0, 1e-9);
}

TEST(StatsTest, SingleAndEmpty) {
  EXPECT_DOUBLE_EQ(Summarize({5.0}).stddev, 0.0);
  EXPECT_DOUBLE_EQ(Summarize({}).mean, 0.0);
}

TEST(CliTest, ParsesFormsAndDefaults) {
  const char* argv[] = {"prog", "--secs=0.5", "--threads", "1,2,4", "--csv"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.GetDouble("--secs", 1.0), 0.5);
  EXPECT_EQ(cli.GetIntList("--threads", {8}), (std::vector<int>{1, 2, 4}));
  EXPECT_TRUE(cli.GetBool("--csv"));
  EXPECT_FALSE(cli.GetBool("--quiet"));
  EXPECT_EQ(cli.GetInt("--missing", 42), 42);
  EXPECT_EQ(cli.GetString("--missing", "x"), "x");
}

TEST(TableTest, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream text;
  t.Print(text, /*csv=*/false);
  EXPECT_NE(text.str().find("longer"), std::string::npos);
  std::ostringstream csv;
  t.Print(csv, /*csv=*/true);
  EXPECT_EQ(csv.str(), "name,value\na,1\nlonger,22\n");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
}

TEST(WaitStatsTest, MeansAndReset) {
  WaitStats ws;
  ws.RecordRead(100);
  ws.RecordRead(200);
  ws.RecordWrite(1000);
  EXPECT_EQ(ws.ReadCount(), 2u);
  EXPECT_EQ(ws.WriteCount(), 1u);
  EXPECT_DOUBLE_EQ(ws.MeanReadNs(), 150.0);
  EXPECT_DOUBLE_EQ(ws.MeanWriteNs(), 1000.0);
  EXPECT_DOUBLE_EQ(ws.MeanTotalNs(), 1300.0 / 3);
  ws.Reset();
  EXPECT_EQ(ws.ReadCount(), 0u);
  EXPECT_DOUBLE_EQ(ws.MeanReadNs(), 0.0);
}

struct PooledThing {
  int value = 0;
  PooledThing* pool_next = nullptr;
};

TEST(FreeListTest, RecyclesNodes) {
  FreeList<PooledThing> list;
  PooledThing* a = list.Get();
  a->value = 7;
  list.Put(a);
  PooledThing* b = list.Get();
  EXPECT_EQ(a, b) << "free list must hand back the recycled node";
  list.Put(b);
}

TEST(ThroughputRunnerTest, CountsAllThreadsOps) {
  const double ops_per_sec = MeasureThroughput(3, 0.05, [](int, std::atomic<bool>& stop) {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++n;
    }
    return n;
  });
  EXPECT_GT(ops_per_sec, 0.0);
}

TEST(ThroughputRunnerTest, RepeatedProducesSummary) {
  const Summary s =
      MeasureThroughputRepeated(2, 0.02, 3, [](int, std::atomic<bool>& stop) {
        uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ++n;
        }
        return n;
      });
  EXPECT_GT(s.mean, 0.0);
  EXPECT_GE(s.max, s.min);
}

}  // namespace
}  // namespace srl
