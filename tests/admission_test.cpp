// Parking-lot conformance battery for the concurrency-restricting admission gate
// (src/sync/admission.h) and unit tests for the topology probe it is built on.
//
// The races pinned here are the ones the gate's Dekker protocol exists for:
//   * release-vs-park: an Exit concurrent with a Park must never strand the parker
//     (ReleaseVsParkRaceHammer — completion IS the assertion);
//   * timed waiter: a parked waiter with a deadline unparks at the deadline and the
//     abandoned node is reaped, not leaked;
//   * cull re-admission: a culled waiter owns a live slot and its own Exit hands the
//     slot onward.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/sync/admission.h"
#include "src/sync/deadline.h"
#include "src/sync/topology.h"

namespace srl {
namespace {

// --- Topology probe ---

TEST(TopologyTest, SyntheticTwoNodeMap) {
  const Topology topo(8, {0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_EQ(topo.CpuCount(), 8u);
  EXPECT_EQ(topo.NodeCount(), 2u);
  EXPECT_FALSE(topo.SingleCore());
  for (unsigned cpu = 0; cpu < 8; ++cpu) {
    EXPECT_EQ(topo.NodeOfCpu(cpu), cpu / 4);
    // Node-grouped enumeration: node 0's CPUs rank 0..3, node 1's rank 4..7, so
    // same-node CPUs map to adjacent packed indices (the stripe-locality property
    // AddressSpace::HomeStripe relies on).
    EXPECT_EQ(topo.PackedIndexOf(cpu), cpu);
  }
  // Out-of-range CPUs fold to node 0 rather than crashing.
  EXPECT_EQ(topo.NodeOfCpu(99), 0u);
}

TEST(TopologyTest, SyntheticInterleavedNodesPackContiguously) {
  // CPU ids alternate nodes (a common BIOS enumeration); the packed index must still
  // group each node's CPUs contiguously.
  const Topology topo(4, {0, 1, 0, 1});
  EXPECT_EQ(topo.NodeCount(), 2u);
  EXPECT_EQ(topo.PackedIndexOf(0), 0u);
  EXPECT_EQ(topo.PackedIndexOf(2), 1u);
  EXPECT_EQ(topo.PackedIndexOf(1), 2u);
  EXPECT_EQ(topo.PackedIndexOf(3), 3u);
}

TEST(TopologyTest, RealProbeIsSane) {
  const Topology& topo = Topology::Get();
  EXPECT_GE(topo.CpuCount(), 1u);
  EXPECT_GE(topo.NodeCount(), 1u);
  EXPECT_LE(topo.NodeCount(), topo.CpuCount());
  // PackedIndexOf is a bijection over [0, CpuCount).
  std::vector<bool> seen(topo.CpuCount(), false);
  for (unsigned cpu = 0; cpu < topo.CpuCount(); ++cpu) {
    const unsigned p = topo.PackedIndexOf(cpu);
    ASSERT_LT(p, topo.CpuCount());
    EXPECT_FALSE(seen[p]) << "packed index " << p << " assigned twice";
    seen[p] = true;
    EXPECT_LT(topo.NodeOfCpu(cpu), topo.NodeCount());
  }
  // CurrentNode is always a valid shard index, with or without sched_getcpu.
  EXPECT_LT(topo.CurrentNode(), topo.NodeCount());
}

TEST(TopologyTest, ForceSingleCoreOverridesProbe) {
  Topology::TestOnlyForceSingleCore(true);
  EXPECT_TRUE(Topology::Get().SingleCore());
  Topology::TestOnlyForceSingleCore(false);
  const Topology synthetic(4, {0, 0, 1, 1});
  EXPECT_FALSE(synthetic.SingleCore());
  Topology::TestOnlyForceSingleCore(true);
  EXPECT_TRUE(synthetic.SingleCore()) << "the force flag must override any instance";
  Topology::TestOnlyForceSingleCore(false);
}

// --- AdmissionGate ---

TEST(AdmissionGateTest, CapDerivesFromTopologyByDefault) {
  AdmissionGate gate;
  EXPECT_EQ(gate.Cap(), Topology::Get().CpuCount());
  AdmissionGate explicit_gate(3);
  EXPECT_EQ(explicit_gate.Cap(), 3u);
}

TEST(AdmissionGateTest, EnterBelowCapNeverParks) {
  AdmissionGate gate(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(gate.Enter(Deadline::Infinite()));
  }
  EXPECT_EQ(gate.Active(), 4u);
  EXPECT_EQ(gate.Parks(), 0u);
  for (int i = 0; i < 4; ++i) {
    gate.Exit();
  }
  EXPECT_EQ(gate.Active(), 0u);
}

TEST(AdmissionGateTest, ImmediateDeadlineAdmitsOverCap) {
  // The trylock bypass rule: a trylock caller is never turned into a waiter, even
  // with the gate saturated — it is admitted over the (soft) cap.
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(Deadline::Infinite()));
  EXPECT_TRUE(gate.Enter(Deadline::Immediate()));
  EXPECT_EQ(gate.Active(), 2u);
  EXPECT_EQ(gate.Parks(), 0u);
  gate.Exit();
  gate.Exit();
}

TEST(AdmissionGateTest, TimedWaiterUnparksAtDeadline) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(Deadline::Infinite()));  // saturate
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(gate.Enter(Deadline::After(std::chrono::milliseconds(30))));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(25));
  // Whether the waiter actually PARKED depends on scheduling: on a loaded box the
  // spin-then-park patience phase alone can consume the whole deadline (its yields
  // cede the CPU for arbitrarily long), and a patience-phase expiry returns false
  // without ever touching a stack. Either way the accounting must balance: a park
  // that expired is a timeout, a parkless expiry is neither.
  EXPECT_LE(gate.Parks(), 1u);
  EXPECT_EQ(gate.Timeouts(), gate.Parks());
  EXPECT_EQ(gate.Culls(), 0u);
  gate.Exit();
  // If the waiter parked, its abandoned node is still on the stack; the destructor
  // must reap it (ASan would flag the leak if it did not).
}

TEST(AdmissionGateTest, CulledWaiterReadmitsAfterOwnerExits) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(Deadline::Infinite()));  // owner
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(gate.Enter(Deadline::Infinite()));
    admitted.store(true, std::memory_order_release);
    gate.Exit();
  });
  // Wait until the waiter is actually parked, then release the slot.
  while (!gate.HasParked()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));
  gate.Exit();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(gate.Culls(), 1u);
  EXPECT_EQ(gate.Active(), 0u);
}

// Culls must serve the OLDEST parked waiter first. This is a liveness property, not
// style: gated range-lock waiters queue nodes that block later arrivals (FIFO
// admission), and a LIFO cull lets the two newest parkers ping-pong through the
// rotation slot forever while the oldest — the one the whole conflict chain depends
// on — starves at the stack bottom (a real deadlock this test pins the fix for).
TEST(AdmissionGateTest, CullsServeOldestParkedWaiterFirst) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(Deadline::Infinite()));  // owner saturates the cap
  std::atomic<int> order{0};
  std::atomic<int> woken_first{-1};
  std::atomic<int> woken_second{-1};
  auto waiter_fn = [&](int id) {
    ASSERT_TRUE(gate.Enter(Deadline::Infinite()));
    if (order.fetch_add(1, std::memory_order_acq_rel) == 0) {
      woken_first.store(id, std::memory_order_relaxed);
    } else {
      woken_second.store(id, std::memory_order_relaxed);
    }
    gate.Exit();  // hands the slot on, culling the next waiter
  };
  std::thread t1(waiter_fn, 1);
  while (gate.Parks() < 1) {
    std::this_thread::yield();
  }
  std::thread t2(waiter_fn, 2);  // parks strictly after t1
  while (gate.Parks() < 2) {
    std::this_thread::yield();
  }
  gate.Exit();  // cull #1 → must wake t1; t1's exit culls t2
  t1.join();
  t2.join();
  EXPECT_EQ(woken_first.load(), 1);
  EXPECT_EQ(woken_second.load(), 2);
  EXPECT_EQ(gate.Culls(), 2u);
}

// The Dekker pairing under fire: with cap 1 and several threads hammering
// Enter(infinite)/Exit, every park must be matched by a cull — a single lost wakeup
// deadlocks the test (ctest's timeout is the failure detector).
TEST(AdmissionGateTest, ReleaseVsParkRaceHammer) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  AdmissionGate gate(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(gate.Enter(Deadline::Infinite()));
        gate.Exit();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(gate.Active(), 0u);
  EXPECT_FALSE(gate.HasParked());
  EXPECT_EQ(gate.Culls(), gate.Parks() - gate.Timeouts());
}

// Same hammer across multiple parking shards (a synthetic 4-node layout on whatever
// host): cull rotation must drain every shard, not just the culler's own.
TEST(AdmissionGateTest, MultiShardHammerDrainsAllShards) {
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  AdmissionGate gate(1, /*shard_count=*/4);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(gate.Enter(Deadline::Infinite()));
        gate.Exit();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(gate.Active(), 0u);
  EXPECT_FALSE(gate.HasParked());
}

// Timed parks racing infinite parks and exits: expired waiters must abandon cleanly
// (their nodes reaped by later cullers or the destructor) without eating a cull that
// an infinite waiter needed.
TEST(AdmissionGateTest, TimedAndInfiniteWaitersMixedHammer) {
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  AdmissionGate gate(1, /*shard_count=*/2);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          ASSERT_TRUE(gate.Enter(Deadline::Infinite()));
          gate.Exit();
        } else if (gate.Enter(Deadline::After(std::chrono::microseconds(50)))) {
          gate.Exit();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(gate.Active(), 0u);
  EXPECT_FALSE(gate.HasParked());
}

TEST(AdmissionGateTest, GlobalKillSwitchBypassesTicket) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(Deadline::Infinite()));  // saturate
  AdmissionGate::SetGloballyEnabled(false);
  {
    AdmissionGate::Ticket ticket(&gate);  // must not block or touch the gate
    EXPECT_EQ(gate.Active(), 1u);
  }
  AdmissionGate::SetGloballyEnabled(true);
  gate.Exit();
}

// --- AdmissionSpinner ---

TEST(AdmissionSpinnerTest, InfiniteDeadlineHoldsOneSlotAcrossPauses) {
  AdmissionGate gate(2);
  AdmissionSpinner spinner(&gate, Deadline::Infinite());
  EXPECT_EQ(gate.Active(), 0u) << "the slot is lazy: taken on first Pause";
  spinner.Pause();
  EXPECT_EQ(gate.Active(), 1u);
  spinner.Pause();
  EXPECT_EQ(gate.Active(), 1u) << "no waiters parked: the slot is kept, not churned";
  spinner.Release();
  EXPECT_EQ(gate.Active(), 0u);
}

TEST(AdmissionSpinnerTest, TimedDeadlineIsInert) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(Deadline::Infinite()));  // saturate: entry would park
  AdmissionSpinner spinner(&gate, Deadline::After(std::chrono::seconds(5)));
  spinner.Pause();  // must degenerate to a plain yield, not park
  EXPECT_EQ(gate.Active(), 1u);
  EXPECT_EQ(gate.Parks(), 0u);
  gate.Exit();
}

TEST(AdmissionSpinnerTest, PauseRotatesSlotToParkedWaiter) {
  AdmissionGate gate(1);
  AdmissionSpinner spinner(&gate, Deadline::Infinite());
  spinner.Pause();  // take the only slot
  ASSERT_EQ(gate.Active(), 1u);
  std::thread waiter([&] {
    ASSERT_TRUE(gate.Enter(Deadline::Infinite()));
    gate.Exit();  // hand the slot back (culling the spinner if it re-parked)
  });
  while (!gate.HasParked()) {
    std::this_thread::yield();
  }
  // Rotation is periodic, not per-pause: after at most kRotatePeriod pauses with the
  // waiter parked, Pause exits (culling the waiter) and re-enters.
  for (int i = 0; i < 1024 && gate.Culls() == 0; ++i) {
    spinner.Pause();
  }
  waiter.join();
  EXPECT_GE(gate.Culls(), 1u);
  spinner.Release();
  EXPECT_EQ(gate.Active(), 0u);
  EXPECT_FALSE(gate.HasParked());
}

TEST(AdmissionSpinnerTest, DestructorReleasesHeldSlot) {
  AdmissionGate gate(1);
  {
    AdmissionSpinner spinner(&gate, Deadline::Infinite());
    spinner.Pause();
    EXPECT_EQ(gate.Active(), 1u);
  }
  EXPECT_EQ(gate.Active(), 0u);
}

}  // namespace
}  // namespace srl
