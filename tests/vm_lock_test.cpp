// Tests for the VmLock adapters: semantics per kind, wait-stats instrumentation, and
// the munmap lookup-speculation extension.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/vm/address_space.h"
#include "src/vm/vm_lock.h"
#include "tests/common/test_clock.h"

namespace srl::vm {
namespace {

using namespace std::chrono_literals;
using srl::testing::StaysFalse;

constexpr uint64_t kPage = AddressSpace::kPageSize;

class VmLockTest : public ::testing::TestWithParam<VmLockKind> {};

TEST_P(VmLockTest, ReadersShareWritersExclude) {
  auto lock = MakeVmLock(GetParam());
  void* r1 = lock->LockRead({0, 100});
  void* r2 = lock->LockRead({50, 150});  // must not block
  lock->UnlockRead(r1);
  lock->UnlockRead(r2);

  void* w = lock->LockWrite({0, 100});
  std::atomic<bool> in{false};
  std::thread t([&] {
    void* w2 = lock->LockWrite({50, 150});
    in.store(true);
    lock->UnlockWrite(w2);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  lock->UnlockWrite(w);
  t.join();
  EXPECT_TRUE(in.load());
}

TEST_P(VmLockTest, FullWriteExcludesEverything) {
  auto lock = MakeVmLock(GetParam());
  void* fw = lock->LockFullWrite();
  std::atomic<bool> in{false};
  std::thread t([&] {
    void* r = lock->LockRead({1000, 1001});
    in.store(true);
    lock->UnlockRead(r);
  });
  EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
  lock->UnlockWrite(fw);
  t.join();
  EXPECT_TRUE(in.load());
}

TEST_P(VmLockTest, DisjointWritesParallelIffRangeLock) {
  auto lock = MakeVmLock(GetParam());
  void* w1 = lock->LockWrite({0, 100});
  std::atomic<bool> in{false};
  std::thread t([&] {
    void* w2 = lock->LockWrite({200, 300});
    in.store(true);
    lock->UnlockWrite(w2);
  });
  if (GetParam() == VmLockKind::kStock) {
    // The semaphore ignores ranges: disjoint writers still serialize.
    EXPECT_TRUE(StaysFalse([&] { return in.load(); }));
    lock->UnlockWrite(w1);
    t.join();
  } else {
    t.join();  // range locks admit the disjoint writer while w1 is held
    EXPECT_TRUE(in.load());
    lock->UnlockWrite(w1);
  }
  EXPECT_TRUE(in.load());
}

TEST_P(VmLockTest, WaitStatsCountAcquisitions) {
  auto lock = MakeVmLock(GetParam());
  WaitStats stats;
  lock->SetWaitStats(&stats);
  for (int i = 0; i < 5; ++i) {
    lock->UnlockRead(lock->LockRead({0, 10}));
  }
  for (int i = 0; i < 3; ++i) {
    lock->UnlockWrite(lock->LockWrite({0, 10}));
  }
  lock->UnlockWrite(lock->LockFullWrite());
  EXPECT_EQ(stats.ReadCount(), 5u);
  EXPECT_EQ(stats.WriteCount(), 4u);  // 3 ranged + 1 full
  lock->SetWaitStats(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Kinds, VmLockTest,
                         ::testing::Values(VmLockKind::kStock, VmLockKind::kTree,
                                           VmLockKind::kList),
                         [](const ::testing::TestParamInfo<VmLockKind>& info) {
                           return VmLockKindName(info.param);
                         });

TEST(UnmapSpeculationTest, MissingUnmapResolvesOnReadPath) {
  AddressSpace as(VmVariant::kListRefined);
  as.SetUnmapLookupSpeculation(true);
  const uint64_t a = as.Mmap(4 * kPage, kProtRead);
  EXPECT_FALSE(as.Munmap(a + (1u << 16) * kPage, kPage));  // far past any mapping
  EXPECT_EQ(as.Stats().unmap_lookup_fastpath.load(), 1u);
  // A real unmap still works and takes the full path.
  EXPECT_TRUE(as.Munmap(a, 4 * kPage));
  EXPECT_EQ(as.Stats().unmap_lookup_fastpath.load(), 1u);
  EXPECT_TRUE(as.SnapshotVmas().empty());
  EXPECT_TRUE(as.CheckInvariants());
}

TEST(UnmapSpeculationTest, MissingUnmapDoesNotBlockBehindReaders) {
  AddressSpace as(VmVariant::kListRefined);
  as.SetUnmapLookupSpeculation(true);
  const uint64_t a = as.Mmap(4 * kPage, kProtRead);
  // Hold a refined read (a page fault in flight) — a full-range write would block
  // behind it, but the speculative miss must not.
  void* rh = as.Lock().LockRead({a, a + kPage});
  std::atomic<bool> done{false};
  std::thread t([&] {
    as.Munmap(a + (1u << 16) * kPage, kPage);  // miss
    done.store(true);
  });
  t.join();  // completes while the read is still held
  EXPECT_TRUE(done.load());
  as.Lock().UnlockRead(rh);
}

TEST(UnmapSpeculationTest, ConcurrentStressStaysConsistent) {
  AddressSpace as(VmVariant::kListRefined);
  as.SetUnmapLookupSpeculation(true);
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const uint64_t r = as.Mmap(2 * kPage, kProtRead | kProtWrite);
        if (r == 0 || !as.PageFault(r, true)) {
          ok.store(false);
          return;
        }
        as.Munmap(r + (1u << 18) * kPage, kPage);  // miss probe
        if (!as.Munmap(r, 2 * kPage)) {            // real unmap
          ok.store(false);
          return;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(as.CheckInvariants());
  EXPECT_GT(as.Stats().unmap_lookup_fastpath.load(), 0u);
}

}  // namespace
}  // namespace srl::vm
