// Randomized oracle fuzz battery over every lock adapter (CTest label: stress).
//
// Two complementary fuzzers:
//   * MixedModeVsOracle — several threads drive a seeded mix of blocking, try and timed
//     acquisitions; every successful acquisition enters the RangeOracle, so any
//     exclusion violation (a trylock "succeeding" into a held conflicting range, an
//     aborted waiter leaving a phantom hold, ...) latches and fails the test.
//   * SingleThreadTryExactness — with one thread the try outcome is deterministic for
//     precise locks: success iff the requested range conflicts with nothing held. The
//     fuzzer keeps a bag of held ranges and checks every try outcome against the
//     model's answer exactly.
//
// All randomness flows from the kSeeds table through per-thread Xoshiro256 streams, and
// every assertion carries the seed, so a failure reproduces by rerunning the binary.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/lnode.h"
#include "src/epoch/node_pool.h"
#include "src/harness/lock_adapters.h"
#include "src/harness/prng.h"
#include "src/sync/pause.h"
#include "tests/common/range_oracle.h"

namespace srl {
namespace {

using namespace std::chrono_literals;

constexpr uint64_t kSeeds[] = {0x5eed0001, 0x5eed0002};

template <typename Adapter>
class LockFuzzTest : public ::testing::Test {};

using AllLocks =
    ::testing::Types<ListExAdapter, ListExFastPathAdapter, ListLockFreeAdapter,
                     SkiplistIndexedAdapter, ListRwAdapter, ListRwFastPathAdapter,
                     FairListExAdapter, FairListRwAdapter, TreeExAdapter, TreeRwAdapter,
                     SegmentRwAdapter, RwSemAdapter>;

class LockNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string name = T::Name();
    for (char& c : name) {
      if (c == '-') {
        c = '_';
      }
    }
    return name;
  }
};

TYPED_TEST_SUITE(LockFuzzTest, AllLocks, LockNames);

TYPED_TEST(LockFuzzTest, MixedModeVsOracle) {
  constexpr uint64_t kUniverse = 64;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 800;
  for (const uint64_t seed : kSeeds) {
    TypeParam adapter;
    testing::RangeOracle oracle(kUniverse);
    std::atomic<uint64_t> try_successes{0};
    std::atomic<uint64_t> try_failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(seed ^ (0x9e3779b9u * static_cast<uint64_t>(t + 1)));
        for (int i = 0; i < kOpsPerThread; ++i) {
          uint64_t a = rng.NextBelow(kUniverse);
          uint64_t b = rng.NextBelow(kUniverse);
          if (a > b) {
            std::swap(a, b);
          }
          const Range r{a, b + 1};
          const bool write = rng.NextChance(0.4);
          const uint64_t mode = rng.NextBelow(10);
          typename TypeParam::Handle h{};
          bool held = false;
          if (mode < 4) {  // blocking
            h = write ? adapter.AcquireWrite(r) : adapter.AcquireRead(r);
            held = true;
          } else if (mode < 7) {  // try
            held = write ? adapter.TryAcquireWrite(r, &h)
                         : adapter.TryAcquireRead(r, &h);
            (held ? try_successes : try_failures).fetch_add(1,
                                                            std::memory_order_relaxed);
          } else {  // timed, 0–100us
            const auto timeout =
                std::chrono::microseconds(rng.NextBelow(100));
            held = write ? adapter.AcquireWriteFor(r, timeout, &h)
                         : adapter.AcquireReadFor(r, timeout, &h);
          }
          if (held) {
            if (write || !TypeParam::kSharedReaders) {
              oracle.EnterWrite(r);
              oracle.ExitWrite(r);
            } else {
              oracle.EnterRead(r);
              oracle.ExitRead(r);
            }
            adapter.Release(h);
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_FALSE(oracle.Violated()) << "seed=0x" << std::hex << seed;
    EXPECT_TRUE(oracle.Quiescent()) << "seed=0x" << std::hex << seed;
    // Sanity: the try mix must actually exercise both outcomes being possible; a lock
    // whose trylock always fails (or a fuzzer that never tries) tests nothing.
    EXPECT_GT(try_successes.load(), 0u) << "seed=0x" << std::hex << seed;
  }
}

TYPED_TEST(LockFuzzTest, SingleThreadTryExactness) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained locks may fail try acquisitions spuriously";
  }
  constexpr uint64_t kUniverse = 64;
  constexpr int kOps = 4000;
  struct Held {
    Range r;
    bool write;
    typename TypeParam::Handle h;
  };
  for (const uint64_t seed : kSeeds) {
    TypeParam adapter;
    std::vector<Held> held;
    Xoshiro256 rng(seed * 0xc0ffee + 1);
    int expected_failures = 0;
    for (int i = 0; i < kOps; ++i) {
      if (!held.empty() && (held.size() >= 8 || rng.NextChance(0.4))) {
        const std::size_t idx = rng.NextBelow(held.size());
        adapter.Release(held[idx].h);
        held[idx] = held.back();
        held.pop_back();
        continue;
      }
      uint64_t a = rng.NextBelow(kUniverse);
      const Range r{a, a + 1 + rng.NextBelow(12)};
      const bool write = rng.NextChance(0.5);
      // Model: conflict iff overlapping a held range and at least one side writes
      // (for exclusive-only locks every acquisition writes).
      bool conflict = false;
      for (const Held& x : held) {
        const bool overlap = x.r.start < r.end && r.start < x.r.end;
        const bool both_read =
            TypeParam::kSharedReaders && !write && !x.write;
        if (overlap && !both_read) {
          conflict = true;
          break;
        }
      }
      typename TypeParam::Handle h{};
      bool got;
      if (rng.NextChance(0.25)) {  // sprinkle timed acquisitions in
        const auto timeout = conflict ? 300us : 50ms;
        got = write ? adapter.AcquireWriteFor(r, timeout, &h)
                    : adapter.AcquireReadFor(r, timeout, &h);
      } else {
        got = write ? adapter.TryAcquireWrite(r, &h)
                    : adapter.TryAcquireRead(r, &h);
      }
      ASSERT_EQ(got, !conflict)
          << "seed=0x" << std::hex << seed << std::dec << " op=" << i << " range=["
          << r.start << "," << r.end << ") write=" << write;
      if (got) {
        held.push_back({r, write, h});
      } else {
        ++expected_failures;
      }
    }
    for (const Held& x : held) {
      adapter.Release(x.h);
    }
    EXPECT_GT(expected_failures, 0) << "seed=0x" << std::hex << seed;

    // Node-leak / double-free epilogue: run a bounded abort-and-succeed storm through
    // the same exactness model and require exact NodePool conservation around it. A
    // dropped node (an aborted acquisition that never returns its node) shows up as
    // pool_total < baseline; a double return (e.g. Recycling a self-deleted node that
    // a traversal later Retires again) as pool_total > baseline. Bounded op counts keep
    // the thread's inventory churn far below NodePool's Replenish/Trim thresholds, and
    // single-threaded refills always splice (no parking), so equality is exact and
    // deterministic.
    if (TypeParam::kUsesNodePool) {
      auto pool_total = [] {
        auto& pool = NodePool<LNode>::Local();
        return pool.ActiveSize() + pool.ReclaimedSize();
      };
      // Always-held disjoint anchor: keeps the fast path out of play so every
      // acquisition below goes through the list and the sweep residue is constant.
      // 64 units = all 16 buckets of the bucketed lock-free adapter (4-unit windows).
      auto anchor = adapter.AcquireWrite({1000, 1064});
      // Covers every range the storm uses; unlinks all marked residue, leaving a
      // constant number of freshly marked sweep nodes behind.
      auto sweep = [&] {
        auto h = adapter.AcquireWrite({0, 100});
        adapter.Release(h);
      };
      sweep();
      const std::size_t baseline = pool_total();
      auto held_h = adapter.AcquireWrite({0, 10});
      for (int i = 0; i < 32; ++i) {
        typename TypeParam::Handle t{};
        // Model: {5,15} overlaps the held {0,10} — every acquisition mode must fail
        // and hold nothing.
        EXPECT_FALSE(adapter.TryAcquireWrite({5, 15}, &t));
        EXPECT_FALSE(adapter.TryAcquireRead({5, 15}, &t));
        EXPECT_FALSE(adapter.AcquireWriteFor({5, 15}, 300us, &t));
        EXPECT_FALSE(adapter.AcquireReadFor({5, 15}, 300us, &t));
        // Model: {30,40} conflicts with nothing — every mode must succeed; the release
        // exercises the marked-node unlink/Retire path between failures.
        ASSERT_TRUE(adapter.TryAcquireWrite({30, 40}, &t));
        adapter.Release(t);
        ASSERT_TRUE(adapter.AcquireWriteFor({30, 40}, 50ms, &t));
        adapter.Release(t);
      }
      adapter.Release(held_h);
      sweep();
      EXPECT_EQ(pool_total(), baseline) << "seed=0x" << std::hex << seed;
      adapter.Release(anchor);
    }
  }
}

// Targets the timed-reader self-delete under a lost race with a concurrent writer
// validate (the RW lock's kValidationFailed path): the reader's node is already in the
// list when it gives up, so ownership transfers to the list and exactly one future
// traversal — often the racing writer's own validate — must Retire it, possibly into
// the *other* thread's pool. The assertion is cross-thread pool conservation: after the
// worker stops and a final sweep collects all marked residue, the two threads' pools
// must sum to their baselines. A leak (self-deleted node never reclaimed) or a double
// return (self-delete path also Recycling) breaks the sum in opposite directions.
//
// Geometry (Figure 1's concurrent-insertion shape): the main thread holds reader anchor
// X = {2,4}; its timed reader {0,20} sorts BEFORE X (reader-reader, by start) while the
// worker's writer {10,15} sorts AFTER X — two different insertion points, so both CASes
// can succeed concurrently and the conflict is only caught in validation, where the
// reader's short deadline forces the self-delete. Exclusive adapters degrade gracefully
// (the timed op conflicts with the thread's own anchor and aborts pre-insertion), still
// checking try/timed conservation.
TYPED_TEST(LockFuzzTest, TimedReaderLostRaceConservesPoolNodes) {
  if (!TypeParam::kUsesNodePool) {
    GTEST_SKIP() << "lock does not allocate from NodePool<LNode>";
  }
  constexpr int kWorkerOps = 64;
  TypeParam adapter;
  auto pool_total = [] {
    auto& pool = NodePool<LNode>::Local();
    return pool.ActiveSize() + pool.ReclaimedSize();
  };
  auto parked = [] { return NodePool<LNode>::Local().ParkedBatches(); };

  auto far_anchor = adapter.AcquireWrite({1000, 1064});  // all buckets: no fast path
  std::atomic<int> phase{0};
  std::atomic<std::size_t> worker_baseline{0};
  std::atomic<std::size_t> worker_final{0};
  std::atomic<std::size_t> worker_parked_delta{0};
  std::thread worker([&] {
    const std::size_t parked0 = parked();
    worker_baseline.store(pool_total());
    phase.store(1);
    while (phase.load() < 2) {
      CpuRelax();
    }
    for (int i = 0; i < kWorkerOps; ++i) {
      auto h = adapter.AcquireWrite({10, 15});
      for (int s = 0; s < 256; ++s) {
        CpuRelax();  // widen the insert-vs-validate race window
      }
      adapter.Release(h);
    }
    phase.store(3);
    while (phase.load() < 4) {
      CpuRelax();
    }
    worker_final.store(pool_total());
    worker_parked_delta.store(parked() - parked0);
  });
  while (phase.load() < 1) {
    CpuRelax();
  }
  const std::size_t my_parked0 = parked();
  auto sweep = [&] {
    auto h = adapter.AcquireWrite({0, 100});
    adapter.Release(h);
  };
  sweep();
  const std::size_t baseline_sum = pool_total() + worker_baseline.load();
  auto x_anchor = adapter.AcquireRead({2, 4});
  phase.store(2);
  while (phase.load() < 3) {
    typename TypeParam::Handle h{};
    if (adapter.AcquireReadFor({0, 20}, std::chrono::microseconds(30), &h)) {
      adapter.Release(h);
    }
  }
  adapter.Release(x_anchor);
  sweep();  // collects every marked node, the worker's and the aborted readers' alike
  const std::size_t my_final = pool_total();
  phase.store(4);
  worker.join();
  // Parked batches are invisible to pool_total; concurrent refills can park, so only
  // assert exact conservation when neither side parked a batch during the run.
  if (my_parked0 == parked() && worker_parked_delta.load() == 0) {
    EXPECT_EQ(my_final + worker_final.load(), baseline_sum);
  }
  adapter.Release(far_anchor);
}

}  // namespace
}  // namespace srl
