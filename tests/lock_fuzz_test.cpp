// Randomized oracle fuzz battery over every lock adapter (CTest label: stress).
//
// Two complementary fuzzers:
//   * MixedModeVsOracle — several threads drive a seeded mix of blocking, try and timed
//     acquisitions; every successful acquisition enters the RangeOracle, so any
//     exclusion violation (a trylock "succeeding" into a held conflicting range, an
//     aborted waiter leaving a phantom hold, ...) latches and fails the test.
//   * SingleThreadTryExactness — with one thread the try outcome is deterministic for
//     precise locks: success iff the requested range conflicts with nothing held. The
//     fuzzer keeps a bag of held ranges and checks every try outcome against the
//     model's answer exactly.
//
// All randomness flows from the kSeeds table through per-thread Xoshiro256 streams, and
// every assertion carries the seed, so a failure reproduces by rerunning the binary.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/lock_adapters.h"
#include "src/harness/prng.h"
#include "tests/common/range_oracle.h"

namespace srl {
namespace {

using namespace std::chrono_literals;

constexpr uint64_t kSeeds[] = {0x5eed0001, 0x5eed0002};

template <typename Adapter>
class LockFuzzTest : public ::testing::Test {};

using AllLocks =
    ::testing::Types<ListExAdapter, ListExFastPathAdapter, ListRwAdapter,
                     ListRwFastPathAdapter, FairListExAdapter, FairListRwAdapter,
                     TreeExAdapter, TreeRwAdapter, SegmentRwAdapter, RwSemAdapter>;

class LockNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string name = T::Name();
    for (char& c : name) {
      if (c == '-') {
        c = '_';
      }
    }
    return name;
  }
};

TYPED_TEST_SUITE(LockFuzzTest, AllLocks, LockNames);

TYPED_TEST(LockFuzzTest, MixedModeVsOracle) {
  constexpr uint64_t kUniverse = 64;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 800;
  for (const uint64_t seed : kSeeds) {
    TypeParam adapter;
    testing::RangeOracle oracle(kUniverse);
    std::atomic<uint64_t> try_successes{0};
    std::atomic<uint64_t> try_failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(seed ^ (0x9e3779b9u * static_cast<uint64_t>(t + 1)));
        for (int i = 0; i < kOpsPerThread; ++i) {
          uint64_t a = rng.NextBelow(kUniverse);
          uint64_t b = rng.NextBelow(kUniverse);
          if (a > b) {
            std::swap(a, b);
          }
          const Range r{a, b + 1};
          const bool write = rng.NextChance(0.4);
          const uint64_t mode = rng.NextBelow(10);
          typename TypeParam::Handle h{};
          bool held = false;
          if (mode < 4) {  // blocking
            h = write ? adapter.AcquireWrite(r) : adapter.AcquireRead(r);
            held = true;
          } else if (mode < 7) {  // try
            held = write ? adapter.TryAcquireWrite(r, &h)
                         : adapter.TryAcquireRead(r, &h);
            (held ? try_successes : try_failures).fetch_add(1,
                                                            std::memory_order_relaxed);
          } else {  // timed, 0–100us
            const auto timeout =
                std::chrono::microseconds(rng.NextBelow(100));
            held = write ? adapter.AcquireWriteFor(r, timeout, &h)
                         : adapter.AcquireReadFor(r, timeout, &h);
          }
          if (held) {
            if (write || !TypeParam::kSharedReaders) {
              oracle.EnterWrite(r);
              oracle.ExitWrite(r);
            } else {
              oracle.EnterRead(r);
              oracle.ExitRead(r);
            }
            adapter.Release(h);
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_FALSE(oracle.Violated()) << "seed=0x" << std::hex << seed;
    EXPECT_TRUE(oracle.Quiescent()) << "seed=0x" << std::hex << seed;
    // Sanity: the try mix must actually exercise both outcomes being possible; a lock
    // whose trylock always fails (or a fuzzer that never tries) tests nothing.
    EXPECT_GT(try_successes.load(), 0u) << "seed=0x" << std::hex << seed;
  }
}

TYPED_TEST(LockFuzzTest, SingleThreadTryExactness) {
  if (!TypeParam::kPrecise) {
    GTEST_SKIP() << "coarse-grained locks may fail try acquisitions spuriously";
  }
  constexpr uint64_t kUniverse = 64;
  constexpr int kOps = 4000;
  struct Held {
    Range r;
    bool write;
    typename TypeParam::Handle h;
  };
  for (const uint64_t seed : kSeeds) {
    TypeParam adapter;
    std::vector<Held> held;
    Xoshiro256 rng(seed * 0xc0ffee + 1);
    int expected_failures = 0;
    for (int i = 0; i < kOps; ++i) {
      if (!held.empty() && (held.size() >= 8 || rng.NextChance(0.4))) {
        const std::size_t idx = rng.NextBelow(held.size());
        adapter.Release(held[idx].h);
        held[idx] = held.back();
        held.pop_back();
        continue;
      }
      uint64_t a = rng.NextBelow(kUniverse);
      const Range r{a, a + 1 + rng.NextBelow(12)};
      const bool write = rng.NextChance(0.5);
      // Model: conflict iff overlapping a held range and at least one side writes
      // (for exclusive-only locks every acquisition writes).
      bool conflict = false;
      for (const Held& x : held) {
        const bool overlap = x.r.start < r.end && r.start < x.r.end;
        const bool both_read =
            TypeParam::kSharedReaders && !write && !x.write;
        if (overlap && !both_read) {
          conflict = true;
          break;
        }
      }
      typename TypeParam::Handle h{};
      bool got;
      if (rng.NextChance(0.25)) {  // sprinkle timed acquisitions in
        const auto timeout = conflict ? 300us : 50ms;
        got = write ? adapter.AcquireWriteFor(r, timeout, &h)
                    : adapter.AcquireReadFor(r, timeout, &h);
      } else {
        got = write ? adapter.TryAcquireWrite(r, &h)
                    : adapter.TryAcquireRead(r, &h);
      }
      ASSERT_EQ(got, !conflict)
          << "seed=0x" << std::hex << seed << std::dec << " op=" << i << " range=["
          << r.start << "," << r.end << ") write=" << write;
      if (got) {
        held.push_back({r, write, h});
      } else {
        ++expected_failures;
      }
    }
    for (const Held& x : held) {
      adapter.Release(x.h);
    }
    EXPECT_GT(expected_failures, 0) << "seed=0x" << std::hex << seed;
  }
}

}  // namespace
}  // namespace srl
