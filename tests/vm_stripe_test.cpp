// Stripe-boundary semantics for the sharded address space: routing, the home-stripe
// policy, overflow-to-neighbour allocation, the no-straddle invariant at window edges,
// cross-stripe classification to the full-range path, and the per-stripe counter
// isolation claim (churn in stripe A causes no speculative-fault retries in stripe B).
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/prng.h"
#include "src/sync/topology.h"
#include "src/vm/address_space.h"

namespace srl::vm {
namespace {

constexpr uint64_t kPage = AddressSpace::kPageSize;
constexpr uint64_t kSpan = AddressSpace::kStripeSpan;

TEST(VmStripeTest, StripeCountClampsAndRoundsToPowerOfTwo) {
  EXPECT_EQ(AddressSpace(VmVariant::kListScoped, 4).Stripes(), 4u);
  EXPECT_EQ(AddressSpace(VmVariant::kListScoped, 3).Stripes(), 4u);
  EXPECT_EQ(AddressSpace(VmVariant::kListScoped, 200).Stripes(), 64u);
  EXPECT_EQ(AddressSpace(VmVariant::kListScoped, 1).Stripes(), 1u);
  // Non-scoped variants default to one stripe (full-range structural ops serialize
  // everything anyway) but accept explicit striping.
  EXPECT_EQ(AddressSpace(VmVariant::kStock).Stripes(), 1u);
  EXPECT_EQ(AddressSpace(VmVariant::kTreeFull, 8).Stripes(), 8u);
}

TEST(VmStripeTest, MmapInStripeCarvesFromThatWindow) {
  AddressSpace as(VmVariant::kListScoped, 8);
  ASSERT_EQ(as.Stripes(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    const uint64_t addr = as.MmapInStripe(i, 4 * kPage, kProtRead | kProtWrite);
    ASSERT_NE(addr, 0u);
    EXPECT_EQ(as.StripeOf(addr), i);
    EXPECT_GE(addr, AddressSpace::kMmapBase + i * kSpan);
    EXPECT_LT(addr + 4 * kPage, AddressSpace::kMmapBase + (i + 1) * kSpan);
    EXPECT_TRUE(as.PageFault(addr, true));
  }
  EXPECT_EQ(as.MmapInStripe(8, kPage, kProtRead), 0u) << "stripe index out of range";
  EXPECT_TRUE(as.CheckInvariants());
}

// Pins the single-core fallback policy deterministically on every host: with the
// topology probe forced to report one core, HomeStripe must ignore CPU placement and
// use registration-order round-robin (on a real multicore host the CPU-derived
// assignment is exercised instead and thread homes may legitimately collide).
class ForcedSingleCore {
 public:
  ForcedSingleCore() { Topology::TestOnlyForceSingleCore(true); }
  ~ForcedSingleCore() { Topology::TestOnlyForceSingleCore(false); }
};

TEST(VmStripeTest, HomeStripePolicySpreadsThreads) {
  ForcedSingleCore forced;
  AddressSpace as(VmVariant::kListScoped, 8);
  // 8 fresh threads draw consecutive registration tokens, so their home stripes must
  // be pairwise distinct — the "scoped mmaps from different threads share no state"
  // property reduces to this.
  std::vector<unsigned> homes(8, ~0u);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t addr = as.Mmap(2 * kPage, kProtRead);
      ASSERT_NE(addr, 0u);
      homes[static_cast<std::size_t>(t)] = as.StripeOf(addr);
      EXPECT_EQ(as.HomeStripe(), as.StripeOf(addr));
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(std::set<unsigned>(homes.begin(), homes.end()).size(), 8u)
      << "threads hashed onto colliding home stripes";
  EXPECT_TRUE(as.CheckInvariants());
}

TEST(VmStripeTest, SingleCoreFallbackIsStablePerThread) {
  ForcedSingleCore forced;
  AddressSpace as(VmVariant::kListScoped, 4);
  // Each fresh thread's home stripe is stable across calls (the registration token is
  // drawn once per thread), and sequentially spawned threads walk the stripes round
  // robin modulo the stripe count.
  std::vector<unsigned> homes;
  for (int t = 0; t < 6; ++t) {
    std::thread([&] {
      const unsigned h1 = as.HomeStripe();
      const unsigned h2 = as.HomeStripe();
      EXPECT_EQ(h1, h2) << "home stripe not stable within a thread";
      homes.push_back(h1);
    }).join();
  }
  // Consecutive threads land on consecutive stripes mod 4 (whatever token the first
  // one drew): distinctness over any 4-thread window follows.
  for (std::size_t i = 1; i < homes.size(); ++i) {
    EXPECT_EQ(homes[i], (homes[i - 1] + 1) % 4)
        << "single-core fallback is not registration-order round-robin";
  }
}

TEST(VmStripeTest, ExhaustedWindowOverflowsToNeighbour) {
  AddressSpace as(VmVariant::kListScoped, 4);
  // Nearly fill stripe 0's window, then ask it for more than the remainder: the
  // allocation must overflow to stripe 1 — wholly inside stripe 1's window, never
  // straddling the edge.
  const uint64_t big = as.MmapInStripe(0, kSpan - 4 * kPage, kProtRead);
  ASSERT_NE(big, 0u);
  EXPECT_EQ(as.StripeOf(big), 0u);
  const uint64_t spill = as.MmapInStripe(0, 16 * kPage, kProtRead | kProtWrite);
  ASSERT_NE(spill, 0u);
  EXPECT_EQ(as.StripeOf(spill), 1u) << "exhausted window did not overflow to neighbour";
  EXPECT_EQ(as.StripeOf(spill + 16 * kPage - 1), 1u);
  EXPECT_EQ(as.Stats().stripe(1).mmap_overflow.load(), 1u);
  EXPECT_TRUE(as.PageFault(spill, true));
  // Exhaust every window (stripe 1 already carries the spill, so ask for a little
  // less than a full span): the allocator must fail cleanly rather than straddle.
  for (unsigned i = 1; i < 4; ++i) {
    ASSERT_NE(as.MmapInStripe(i, kSpan - 64 * kPage, kProtRead), 0u);
  }
  EXPECT_EQ(as.Mmap(kSpan, kProtRead), 0u) << "no window can fit a full span now";
  EXPECT_TRUE(as.CheckInvariants());
}

// An exact-fit carve ends flush at the window edge and the overflow allocation starts
// at the next window's base: two adjacent same-protection VMAs across a stripe edge.
// The merge sweep must refuse to absorb across the edge (a straddling VMA would be
// invisible to the other stripe's lookups), at identical user-visible semantics.
TEST(VmStripeTest, AdjacentVmasAcrossStripeEdgeNeverMerge) {
  AddressSpace as(VmVariant::kListScoped, 2);
  const uint32_t prot = kProtRead | kProtWrite;
  const uint64_t a = as.MmapInStripe(0, kSpan, prot);  // exact fit: [base, base+span)
  ASSERT_NE(a, 0u);
  ASSERT_EQ(a, AddressSpace::kMmapBase);
  const uint64_t b = as.MmapInStripe(0, 8 * kPage, prot);  // overflows to stripe 1
  ASSERT_EQ(b, a + kSpan) << "overflow allocation must start at the next window base";
  ASSERT_EQ(as.StripeOf(b), 1u);

  // Same-protection mprotect across the shared edge: coverage holds, the operation
  // classifies cross-stripe (full path), and the merge sweep sees two mergeable
  // neighbours — which must stay two VMAs.
  ASSERT_TRUE(as.Mprotect(b - 2 * kPage, 4 * kPage, prot));
  EXPECT_GT(as.Stats().cross_stripe_fallback.load(), 0u);
  const auto vmas = as.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u) << "merge sweep absorbed across a stripe edge";
  EXPECT_EQ(vmas[0], (VmaInfo{a, a + kSpan, prot}));
  EXPECT_EQ(vmas[1], (VmaInfo{b, b + 8 * kPage, prot}));
  // Lookups on both sides of the edge must keep resolving (a straddler would break
  // stripe 1's).
  EXPECT_TRUE(as.PageFault(b - kPage, true));
  EXPECT_TRUE(as.PageFault(b, true));
  EXPECT_TRUE(as.CheckInvariants());
}

TEST(VmStripeTest, CrossStripeMunmapFallsBackAndUnmapsBothSides) {
  AddressSpace as(VmVariant::kListScoped, 2);
  const uint32_t prot = kProtRead | kProtWrite;
  const uint64_t a = as.MmapInStripe(0, kSpan, prot);
  ASSERT_NE(a, 0u);
  const uint64_t b = as.MmapInStripe(0, 8 * kPage, prot);  // stripe 1, adjacent
  ASSERT_EQ(b, a + kSpan);
  ASSERT_TRUE(as.PageFault(b - kPage, true));
  ASSERT_TRUE(as.PageFault(b, true));

  const uint64_t before = as.Stats().cross_stripe_fallback.load();
  ASSERT_TRUE(as.Munmap(b - 2 * kPage, 4 * kPage));
  EXPECT_GT(as.Stats().cross_stripe_fallback.load(), before);
  const auto vmas = as.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 2u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, b - 2 * kPage, prot}));
  EXPECT_EQ(vmas[1], (VmaInfo{b + 2 * kPage, b + 8 * kPage, prot}));
  as.DrainSweeps();  // the deferred sweep is the post-munmap drain edge
  EXPECT_EQ(as.PresentPagesInRange(b - 2 * kPage, 4 * kPage), 0u)
      << "cross-stripe munmap left pages behind";
  EXPECT_FALSE(as.PageFault(b, false)) << "unmapped head half still faults in";
  EXPECT_TRUE(as.CheckInvariants());
}

// Deterministic failing cross-stripe Mprotect (error-path audit of the lock-free-list
// PR): an mprotect spanning a stripe edge classifies kCrossStripe and takes the
// full-range path — full write acquisition plus the affected stripes' mutation locks in
// ascending order — and then fails coverage against a hole. The fallback counter must
// tick exactly once per call (no double count on the way out), the early return must
// leave no VMA or protection changed, and the address space must keep functioning
// (locks released correctly on the error path).
TEST(VmStripeTest, FailingCrossStripeMprotectCountsOnceAndChangesNothing) {
  AddressSpace as(VmVariant::kListScoped, 2);
  const uint32_t prot = kProtRead | kProtWrite;
  const uint64_t a = as.MmapInStripe(0, kSpan, prot);  // exact fit: ends at the edge
  ASSERT_NE(a, 0u);
  const uint64_t b = as.MmapInStripe(0, 8 * kPage, prot);  // overflows to stripe 1
  ASSERT_EQ(b, a + kSpan);
  ASSERT_EQ(as.StripeOf(b), 1u);
  // Punch a hole wholly inside stripe 1 (scoped, no fallback).
  ASSERT_TRUE(as.Munmap(b + 2 * kPage, 2 * kPage));
  ASSERT_EQ(as.Stats().cross_stripe_fallback.load(), 0u);

  const auto before_vmas = as.SnapshotVmas();
  // Spans the edge AND the hole: classifies cross-stripe, then coverage fails (ENOMEM).
  for (int attempt = 0; attempt < 2; ++attempt) {
    const uint64_t before = as.Stats().cross_stripe_fallback.load();
    EXPECT_FALSE(as.Mprotect(b - 2 * kPage, 6 * kPage, kProtRead));
    EXPECT_EQ(as.Stats().cross_stripe_fallback.load(), before + 1)
        << "cross_stripe_fallback must tick exactly once per failing call";
    EXPECT_EQ(as.SnapshotVmas(), before_vmas)
        << "failed cross-stripe mprotect mutated the address space";
  }

  // The error path must have released everything: a covered cross-stripe mprotect over
  // the same edge still succeeds (and also counts exactly once).
  const uint64_t before = as.Stats().cross_stripe_fallback.load();
  ASSERT_TRUE(as.Mprotect(b - 2 * kPage, 4 * kPage, kProtRead));
  EXPECT_EQ(as.Stats().cross_stripe_fallback.load(), before + 1);
  const auto vmas = as.SnapshotVmas();
  ASSERT_EQ(vmas.size(), 4u);
  EXPECT_EQ(vmas[0], (VmaInfo{a, b - 2 * kPage, prot}));
  // Same protection on both sides of the edge, but the merge sweep must not absorb
  // across it — two read-only VMAs abutting at the stripe boundary.
  EXPECT_EQ(vmas[1], (VmaInfo{b - 2 * kPage, b, kProtRead}));
  EXPECT_EQ(vmas[2], (VmaInfo{b, b + 2 * kPage, kProtRead}));
  EXPECT_EQ(vmas[3], (VmaInfo{b + 4 * kPage, b + 8 * kPage, prot}));
  EXPECT_TRUE(as.PageFault(b - kPage, false));
  EXPECT_FALSE(as.PageFault(b - kPage, true)) << "read-only after the protect";
  EXPECT_TRUE(as.CheckInvariants());
}

// The acceptance claim of the sharding refactor, as a deterministic concurrent test:
// structural churn confined to stripe 0 must cause zero speculative-fault retries for
// faults confined to stripe 1 — their seqcounts share nothing. (Under the PR 4 global
// seqcount, every munmap invalidated every in-flight speculative fault.)
TEST(VmStripeTest, ChurnInOneStripeNeverRetriesFaultsInAnother) {
  for (const VmVariant variant : {VmVariant::kTreeScoped, VmVariant::kListScoped}) {
    AddressSpace as(variant, 4);
    constexpr uint64_t kPages = 64;
    const uint64_t base = as.MmapInStripe(1, kPages * kPage, kProtRead | kProtWrite);
    ASSERT_NE(base, 0u);

    std::atomic<bool> stop{false};
    std::atomic<bool> churn_ok{true};
    std::atomic<uint64_t> churn_cycles{0};
    std::thread churner([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t scratch = as.MmapInStripe(0, 4 * kPage, kProtRead | kProtWrite);
        if (scratch == 0 || as.StripeOf(scratch) != 0 ||
            !as.Munmap(scratch, 4 * kPage)) {
          churn_ok.store(false);
          return;
        }
        churn_cycles.fetch_add(1, std::memory_order_relaxed);
      }
    });

    // Fault until both sides have provably overlapped: plenty of faults AND plenty of
    // churn cycles (on one core the churner may not be scheduled until we yield).
    Xoshiro256 rng(0x57a11);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    uint64_t faults = 0;
    while ((faults < 20000 || churn_cycles.load(std::memory_order_relaxed) < 64) &&
           churn_ok.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      const uint64_t addr = base + rng.NextBelow(kPages) * kPage;
      ASSERT_TRUE(as.PageFault(addr, rng.NextChance(0.5)));
      if (++faults % 512 == 0) {
        std::this_thread::yield();  // hand the core to the churner
      }
    }
    stop.store(true);
    churner.join();
    ASSERT_TRUE(churn_ok.load());
    ASSERT_GE(churn_cycles.load(), 64u) << "churner starved; the race never happened";

    const VmStats& st = as.Stats();
    EXPECT_GT(st.stripe(1).fault_spec_ok.load(), 0u)
        << VmVariantName(variant) << ": faults never took the speculative path";
    EXPECT_EQ(st.stripe(1).fault_spec_retry.load(), 0u)
        << VmVariantName(variant)
        << ": stripe-0 churn invalidated stripe-1 faults — seqcounts not isolated";
    EXPECT_GT(st.stripe(0).scoped_structural.load(), 0u);
    EXPECT_EQ(st.stripe(0).fault_spec_ok.load(), 0u);
    EXPECT_TRUE(as.CheckInvariants());
  }
}

// Scoped structural ops pinned to distinct stripes account to their own stripe's
// counters and never degrade to the full-range path.
TEST(VmStripeTest, ScopedOpsAccountToTheirStripe) {
  AddressSpace as(VmVariant::kListScoped, 4);
  for (unsigned i = 0; i < 4; ++i) {
    const uint64_t addr = as.MmapInStripe(i, 8 * kPage, kProtNone);
    ASSERT_NE(addr, 0u);
    ASSERT_TRUE(as.Mprotect(addr, 4 * kPage, kProtRead));  // structural split, in-stripe
    ASSERT_TRUE(as.Munmap(addr + 6 * kPage, kPage));       // in-stripe munmap
  }
  const VmStats& st = as.Stats();
  for (unsigned i = 0; i < 4; ++i) {
    // mmap + split + munmap, each stripe-scoped and attributed to stripe i.
    EXPECT_GE(st.stripe(i).scoped_structural.load(), 3u) << "stripe " << i;
  }
  EXPECT_EQ(st.scoped_fallback.load(), 0u);
  EXPECT_EQ(st.cross_stripe_fallback.load(), 0u);
  EXPECT_GT(as.Lock().RangedWriteAcquisitions(), 0u);
  EXPECT_EQ(as.Lock().FullWriteAcquisitions(), 0u)
      << "an in-stripe op degraded to the full-range path";
  EXPECT_TRUE(as.CheckInvariants());
}

}  // namespace
}  // namespace srl::vm
