// Ablation — node-pool target size N (§4.4; the paper fixes N = 128).
//
// Measures the alloc/retire cycle cost as the pool size shrinks: a smaller N means more
// frequent epoch barriers on refill; a larger N only costs memory. The benchmark
// allocates and retires in a loop with a competing thread holding periodic critical
// sections, so barriers have something to wait for.
#include <atomic>
#include <thread>

#include <benchmark/benchmark.h>

#include "src/core/lnode.h"
#include "src/epoch/epoch_domain.h"
#include "src/epoch/node_pool.h"

namespace srl {
namespace {

template <std::size_t kN>
void AllocRetireChurn(benchmark::State& state) {
  std::atomic<bool> stop{false};
  // Background reader cycling epoch critical sections — what a refill barrier waits on.
  std::thread reader([&] {
    EpochDomain::ThreadRec* rec = CurrentThreadRec(EpochDomain::Global());
    while (!stop.load(std::memory_order_relaxed)) {
      EpochDomain::Enter(rec);
      for (int i = 0; i < 64; ++i) {
        CpuRelax();
      }
      EpochDomain::Exit(rec);
    }
  });
  NodePool<LNode, PoolTraits<LNode>, kN> pool;
  for (auto _ : state) {
    LNode* n = pool.Alloc();
    benchmark::DoNotOptimize(n);
    pool.Retire(n);  // goes to the reclaimed pool; reusable only after a barrier
  }
  stop.store(true);
  reader.join();
  state.SetItemsProcessed(state.iterations());
}

void BM_PoolChurn_N8(benchmark::State& s) { AllocRetireChurn<8>(s); }
void BM_PoolChurn_N32(benchmark::State& s) { AllocRetireChurn<32>(s); }
void BM_PoolChurn_N128(benchmark::State& s) { AllocRetireChurn<128>(s); }
void BM_PoolChurn_N512(benchmark::State& s) { AllocRetireChurn<512>(s); }
BENCHMARK(BM_PoolChurn_N8);
BENCHMARK(BM_PoolChurn_N32);
BENCHMARK(BM_PoolChurn_N128);
BENCHMARK(BM_PoolChurn_N512);

}  // namespace
}  // namespace srl

BENCHMARK_MAIN();
