// Ablation — batched async munmap with epoch-tick page sweeps (the deferred-sweep
// subsystem; see README "Deferred page sweeps").
//
// Workload: mmap/fault/munmap churn cycles, every thread in its home stripe. Each
// cycle maps a scratch arena, write-faults `--fault-pages` of it, and tears it down
// through one of three sweep policies:
//
//   inline    SetDeferredSweeps(false) — the pre-deferral shape: the page sweep runs
//             inside the munmap's range acquisition, so the critical section grows
//             with the region being unmapped and every concurrent churner waits on it.
//   deferred  Munmap with deferred sweeps (the default): unlink + seqcount bump stay
//             synchronous, the dead range is enqueued, and whichever thread crosses
//             the flush threshold sweeps OUTSIDE any range lock.
//   async     MunmapAsync — pure enqueue, nothing flushes on the munmap path at all;
//             a dedicated epoch-tick thread drains the queues (the kernel-helper
//             shape: TLB-batching kworker analogue).
//
// Reported per (mode, threads, stripes): churn cycles/sec plus the sweep counters
// that prove the mechanism ran (flushes, swept pages, empty-VMA skips). The default
// shape faults only the front quarter of each arena — the common sparse case (heaps
// and arenas fault far fewer pages than they reserve) — so the deferred flusher's
// hint-bounded probe (SweepQueue::Range::expected) stops after the installed pages
// while the inline sweep probes the whole region inside its acquisition. The claim
// shape to look for: deferred at or ahead of inline at 1 thread, and pulling further
// ahead from 2 threads on as the sweep also leaves the serialized section.
//
// Flags: --modes=inline,deferred,async --threads=1,2,4,8 --stripes=1,4
//        --scratch-pages=256 --fault-pages=64 --flush-pages=1024
//        --secs=0.25 --repeats=3 --csv --json=BENCH_async_unmap.json
#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/vm/address_space.h"

namespace srl {
namespace {

using vm::AddressSpace;
using vm::VmVariant;

struct RunResult {
  Summary churn_per_sec;
  uint64_t sweep_flushes = 0;
  uint64_t swept_pages = 0;
  uint64_t skipped_empty = 0;
  uint64_t pending_after = 0;  // must be 0 — every run ends with a drain
};

RunResult RunOne(VmVariant variant, const std::string& mode, int threads, double secs,
                 int repeats, uint64_t scratch_pages, uint64_t fault_pages,
                 uint64_t flush_pages, unsigned stripes) {
  AddressSpace as(variant, stripes);
  as.SetSweepFlushThreshold(flush_pages);
  if (mode == "inline") {
    as.SetDeferredSweeps(false);
  }
  const bool async = mode == "async";

  // The async mode's epoch-tick flusher: drain on a short period, the way a kernel
  // helper thread batches TLB shootdowns, so churners never sweep at all.
  std::atomic<bool> tick_stop{false};
  std::thread ticker;
  if (async) {
    ticker = std::thread([&] {
      while (!tick_stop.load(std::memory_order_acquire)) {
        as.DrainSweeps();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  const uint64_t scratch_bytes = scratch_pages * AddressSpace::kPageSize;
  const Summary s = MeasureThroughputRepeated(
      threads, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
        const unsigned home = static_cast<unsigned>(tid) % stripes;
        uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t scratch =
              as.MmapInStripe(home, scratch_bytes, vm::kProtRead | vm::kProtWrite);
          if (scratch == 0) {
            break;  // stripe window exhausted (does not happen at bench durations)
          }
          for (uint64_t p = 0; p < fault_pages; ++p) {
            as.PageFault(scratch + p * AddressSpace::kPageSize, true);
          }
          if (async) {
            as.MunmapAsync(scratch, scratch_bytes);
          } else {
            as.Munmap(scratch, scratch_bytes);
          }
          ++ops;
        }
        return ops;
      });

  if (async) {
    tick_stop.store(true, std::memory_order_release);
    ticker.join();
  }
  as.DrainSweeps();

  RunResult r;
  r.churn_per_sec = s;
  r.sweep_flushes = as.Stats().sweeps_flushes.load(std::memory_order_relaxed);
  r.swept_pages = as.Stats().sweeps_swept_pages.load(std::memory_order_relaxed);
  r.skipped_empty = as.Stats().sweeps_skipped_empty.load(std::memory_order_relaxed);
  r.pending_after = as.PendingSweepPages();
  return r;
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_async_unmap --variants=list-scoped,tree-scoped "
                 "--modes=inline,deferred,async --threads=1,2,4,8 --stripes=1,4 "
                 "--scratch-pages=256 --fault-pages=<scratch/4> --flush-pages=1024 "
                 "--secs=0.25 --repeats=3 --csv --json=BENCH_async_unmap.json\n";
    return 0;
  }
  const std::vector<std::string> names =
      cli.GetStringList("--variants", {"list-scoped", "tree-scoped"});
  const std::vector<std::string> modes =
      cli.GetStringList("--modes", {"inline", "deferred", "async"});
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const std::vector<int> stripe_list = cli.GetIntList("--stripes", {1, 4});
  const uint64_t scratch_pages =
      static_cast<uint64_t>(cli.GetInt("--scratch-pages", 256));
  // Default: fault a quarter of the arena — the sparse shape the bounded sweep exists
  // for. Pass --fault-pages=<scratch> for the fully-faulted worst case.
  const uint64_t fault_pages = static_cast<uint64_t>(
      cli.GetInt("--fault-pages", static_cast<int64_t>(scratch_pages / 4)));
  const uint64_t flush_pages = static_cast<uint64_t>(cli.GetInt("--flush-pages", 1024));
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 3));
  const bool csv = cli.GetBool("--csv");

  std::cout << "\n=== batched async munmap — mmap/fault/munmap churn, page sweep "
               "inline vs deferred vs epoch-tick async ===\n";
  srl::Table table({"variant", "mode", "threads", "stripes", "churn/sec",
                    "rel-stddev%", "sweep-flushes", "swept-pages", "skipped-empty"});
  for (const std::string& name : names) {
    bool ok = false;
    const srl::vm::VmVariant variant = srl::vm::VmVariantFromName(name, &ok);
    if (!ok) {
      std::cerr << "unknown variant: " << name << "\n";
      return 2;
    }
    for (const std::string& mode : modes) {
      for (int t : threads) {
        for (int stripes : stripe_list) {
          const srl::RunResult r =
              srl::RunOne(variant, mode, t, secs, repeats, scratch_pages, fault_pages,
                          flush_pages, static_cast<unsigned>(stripes));
          if (r.pending_after != 0) {
            std::cerr << "pending sweeps survived the final drain: " << r.pending_after
                      << "\n";
            return 1;
          }
          table.AddRow({name, mode, std::to_string(t), std::to_string(stripes),
                        srl::Table::Num(r.churn_per_sec.mean, 0),
                        srl::Table::Num(r.churn_per_sec.RelStddevPct(), 1),
                        std::to_string(r.sweep_flushes), std::to_string(r.swept_pages),
                        std::to_string(r.skipped_empty)});
        }
      }
    }
  }
  table.Print(std::cout, csv);

  srl::BenchJson json("abl_async_unmap");
  json.AddTable({{"scratch_pages", std::to_string(scratch_pages)},
                 {"fault_pages", std::to_string(fault_pages)},
                 {"flush_pages", std::to_string(flush_pages)},
                 {"secs", srl::Table::Num(secs, 3)},
                 {"repeats", std::to_string(repeats)}},
                table);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
