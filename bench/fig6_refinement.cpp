// Figure 6 — breakdown of the impact of range refinement on the list-based variants
// (§7.2): list-full vs list-pf (refined page faults only) vs list-mprotect
// (speculative mprotect only) vs list-refined (both) vs list-scoped (both + range-scoped
// structural ops, this repo's extension).
//
// Flags: --threads=1,2,4,8  --total-kb=768  --rounds=6  --repeats=1  --csv
//        --json=BENCH_fig6.json
#include <iostream>
#include <string>
#include <vector>

#include "bench/metis_bench_common.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"

namespace srl::bench {
namespace {

void RunApp(metis::MetisApp app, const Cli& cli, BenchJson* json) {
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");

  std::cout << "\n=== Figure 6 (" << metis::MetisAppName(app)
            << ") — refinement breakdown, runtime seconds ===\n";
  Table table({"variant", "threads", "runtime_s", "rel-stddev%"});
  for (vm::VmVariant variant :
       {vm::VmVariant::kListFull, vm::VmVariant::kListPf, vm::VmVariant::kListMprotect,
        vm::VmVariant::kListRefined, vm::VmVariant::kListScoped}) {
    for (int t : threads) {
      std::vector<double> secs;
      for (int r = 0; r < repeats; ++r) {
        const MetisRun run = RunMetisOnce(variant, ConfigFromCli(cli, app, t), false,
                                          false);
        if (!run.result.ok) {
          std::cerr << "metis run failed for " << vm::VmVariantName(variant) << "\n";
          return;
        }
        secs.push_back(run.result.seconds);
      }
      const Summary s = Summarize(secs);
      table.AddRow({vm::VmVariantName(variant), std::to_string(t), Table::Num(s.mean, 3),
                    Table::Num(s.RelStddevPct(), 1)});
    }
  }
  table.Print(std::cout, csv);
  json->AddTable({{"app", metis::MetisAppName(app)},
                  {"total_kb", std::to_string(cli.GetInt("--total-kb", 768))},
                  {"rounds", std::to_string(cli.GetInt("--rounds", 6))},
                  {"repeats", std::to_string(repeats)}},
                 table);
}

}  // namespace
}  // namespace srl::bench

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "fig6_refinement --threads=1,2,4,8 --total-kb=768 --rounds=6 "
                 "--repeats=1 --csv --json=BENCH_fig6.json\n";
    return 0;
  }
  srl::BenchJson json("fig6_refinement");
  for (srl::metis::MetisApp app : {srl::metis::MetisApp::kWr, srl::metis::MetisApp::kWc,
                                   srl::metis::MetisApp::kWrmem}) {
    srl::bench::RunApp(app, cli, &json);
  }
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
