// Shared driver for the Metis-based figure benches (Figures 5–8).
#ifndef SRL_BENCH_METIS_BENCH_COMMON_H_
#define SRL_BENCH_METIS_BENCH_COMMON_H_

#include <memory>

#include "src/harness/cli.h"
#include "src/harness/wait_stats.h"
#include "src/metis/metis_job.h"
#include "src/vm/address_space.h"

namespace srl::bench {

struct MetisRun {
  metis::MetisResult result;
  // Snapshot of lock wait accounting (populated when requested).
  double mean_read_wait_ns = 0;
  double mean_write_wait_ns = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  double mean_spin_wait_ns = 0;   // tree variants only
  uint64_t spin_acquisitions = 0;  // tree variants only
  double spec_rate = 0;
};

inline metis::MetisConfig ConfigFromCli(const Cli& cli, metis::MetisApp app,
                                        int threads) {
  metis::MetisConfig cfg;
  cfg.app = app;
  cfg.threads = threads;
  // Fixed TOTAL input per round, split across workers — the paper's methodology (a
  // fixed input file / 2GB wrmem buffer regardless of thread count), so runtime falls
  // with useful parallelism and rises only from contention.
  const uint64_t total_bytes = static_cast<uint64_t>(cli.GetInt("--total-kb", 768)) * 1024;
  cfg.chunk_bytes = total_bytes / static_cast<uint64_t>(threads);
  cfg.rounds = static_cast<int>(cli.GetInt("--rounds", 6));
  cfg.grow_chunk_pages = static_cast<uint64_t>(cli.GetInt("--grow-pages", 4));
  cfg.seed = static_cast<uint64_t>(cli.GetInt("--seed", 1));
  return cfg;
}

inline MetisRun RunMetisOnce(vm::VmVariant variant, const metis::MetisConfig& cfg,
                             bool collect_wait_stats, bool collect_spin_stats) {
  vm::AddressSpace as(variant);
  WaitStats waits;
  WaitStats spins;
  if (collect_wait_stats) {
    as.Lock().SetWaitStats(&waits);
  }
  if (collect_spin_stats) {
    as.Lock().SetSpinWaitStats(&spins);
  }
  MetisRun run;
  run.result = metis::RunMetis(as, cfg);
  run.mean_read_wait_ns = waits.MeanReadNs();
  run.mean_write_wait_ns = waits.MeanWriteNs();
  run.reads = waits.ReadCount();
  run.writes = waits.WriteCount();
  run.mean_spin_wait_ns = spins.MeanWriteNs();
  run.spin_acquisitions = spins.WriteCount();
  run.spec_rate = as.Stats().SpeculationSuccessRate();
  return run;
}

}  // namespace srl::bench

#endif  // SRL_BENCH_METIS_BENCH_COMMON_H_
