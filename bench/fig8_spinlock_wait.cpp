// Figure 8 — average wait on the spin lock protecting the tree range lock's range tree
// (§7.2), for tree-full and tree-refined. This is the lock the paper identifies as the
// central bottleneck of the kernel's existing range-lock design.
//
// Flags: --threads=1,2,4,8  --total-kb=768  --rounds=6  --csv  --json=BENCH_fig8.json
#include <iostream>
#include <string>
#include <vector>

#include "bench/metis_bench_common.h"
#include "src/harness/table.h"

namespace srl::bench {
namespace {

void RunApp(metis::MetisApp app, const Cli& cli, BenchJson* json) {
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const bool csv = cli.GetBool("--csv");

  std::cout << "\n=== Figure 8 (" << metis::MetisAppName(app)
            << ") — mean wait on the internal range-tree spin lock, microseconds ===\n";
  Table table({"variant", "threads", "spin_wait_us", "acquisitions"});
  for (vm::VmVariant variant : {vm::VmVariant::kTreeFull, vm::VmVariant::kTreeRefined}) {
    for (int t : threads) {
      const MetisRun run = RunMetisOnce(variant, ConfigFromCli(cli, app, t),
                                        /*collect_wait_stats=*/false,
                                        /*collect_spin_stats=*/true);
      if (!run.result.ok) {
        std::cerr << "metis run failed for " << vm::VmVariantName(variant) << "\n";
        return;
      }
      table.AddRow({vm::VmVariantName(variant), std::to_string(t),
                    Table::Num(run.mean_spin_wait_ns / 1000.0, 3),
                    std::to_string(run.spin_acquisitions)});
    }
  }
  table.Print(std::cout, csv);
  json->AddTable({{"app", metis::MetisAppName(app)}}, table);
}

}  // namespace
}  // namespace srl::bench

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "fig8_spinlock_wait --threads=1,2,4,8 --total-kb=768 --rounds=6 --csv "
                 "--json=BENCH_fig8.json\n";
    return 0;
  }
  srl::BenchJson json("fig8_spinlock_wait");
  for (srl::metis::MetisApp app : {srl::metis::MetisApp::kWr, srl::metis::MetisApp::kWc,
                                   srl::metis::MetisApp::kWrmem}) {
    srl::bench::RunApp(app, cli, &json);
  }
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
