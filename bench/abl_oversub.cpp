// Ablation — surviving the thousand-thread cliff: throughput of every VM lock backend
// from modest load deep into oversubscription (8 -> 1024 threads on a machine with far
// fewer cores), with the concurrency-restricting admission layer on and off.
//
// "Avoiding Scalability Collapse by Restricting Concurrency" (Dice & Kogan) is the
// playbook: past saturation, surplus contenders stop adding throughput and start
// destroying it — every spinner burns scheduler quanta that the lock holder needs to
// finish its critical section. The AdmissionGate caps active contenders at ~#cores and
// parks the rest on a futex, so the gated curves should hold their saturation plateau
// where the ungated ones collapse.
//
// Three workload mixes, one per contention shape:
//   adversarial   every op takes the whole address space (Range::Full() write) — zero
//                 range parallelism, the mmap_sem worst case the gate exists for;
//   hot           all threads churn one 4 KiB window — same-stripe conflict chains
//                 exercising the per-bucket waiter gates inside the list/skiplist
//                 backends (the stock semaphore ignores ranges and sees adversarial);
//   disjoint      each thread owns a private 64 KiB-aligned window — the control: no
//                 waiting, so the gate must cost nothing (<= a few % at t <= cores).
//
// Reported per cell: ops/sec, rel-stddev%, and the delta of the process-wide
// park/cull counters — parks > 0 is the proof the gate actually engaged, parks == 0
// on disjoint the proof it stayed out of the way.
//
// Flags: --variants=stock,tree,list,list-lf,skiplist --mixes=adversarial,hot,disjoint
//        --threads=8,16,32,64,128,256,512,1024 --gates=on,off --secs=0.15 --repeats=1
//        --csv --json=BENCH_oversub.json
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/sync/admission.h"
#include "src/sync/topology.h"
#include "src/vm/vm_lock.h"

namespace srl {
namespace {

enum class Mix { kAdversarial, kHot, kDisjoint };

constexpr uint64_t kHotWindow = 4096;        // one shared page-sized range
constexpr uint64_t kDisjointStride = 1 << 16;  // private 64 KiB window per thread

Range RangeFor(Mix mix, int tid) {
  switch (mix) {
    case Mix::kAdversarial:
      return Range::Full();
    case Mix::kHot:
      return Range{0, kHotWindow};
    default: {
      const uint64_t base = static_cast<uint64_t>(tid) * kDisjointStride;
      return Range{base, base + kHotWindow};
    }
  }
}

struct Cell {
  Summary summary;
  uint64_t parks;
  uint64_t culls;
};

Cell RunCell(vm::VmLockKind kind, Mix mix, int threads, double secs, int repeats) {
  const auto lock = vm::MakeVmLock(kind);
  // A sliver of shared work inside the critical section, so a "lock acquisition" is
  // not literally empty and torn exclusion would corrupt something observable.
  std::atomic<uint64_t> shared{0};
  const uint64_t parks0 = AdmissionGate::TotalParks();
  const uint64_t culls0 = AdmissionGate::TotalCulls();
  const Summary s = MeasureThroughputRepeated(
      threads, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
        const Range r = RangeFor(mix, tid);
        uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          void* h = lock->LockWrite(r);
          shared.fetch_add(1, std::memory_order_relaxed);
          lock->UnlockWrite(h);
          ++ops;
        }
        return ops;
      });
  return {s, AdmissionGate::TotalParks() - parks0, AdmissionGate::TotalCulls() - culls0};
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_oversub --variants=stock,tree,list,list-lf,skiplist "
                 "--mixes=adversarial,hot,disjoint "
                 "--threads=8,16,32,64,128,256,512,1024 --gates=on,off "
                 "--secs=0.15 --repeats=1 --csv --json=BENCH_oversub.json\n";
    return 0;
  }
  const std::vector<std::string> variants =
      cli.GetStringList("--variants", {"stock", "tree", "list", "list-lf", "skiplist"});
  const std::vector<std::string> mixes =
      cli.GetStringList("--mixes", {"adversarial", "hot", "disjoint"});
  const std::vector<int> threads =
      cli.GetIntList("--threads", {8, 16, 32, 64, 128, 256, 512, 1024});
  const std::vector<std::string> gates = cli.GetStringList("--gates", {"on", "off"});
  const double secs = cli.GetDouble("--secs", 0.15);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");

  auto kind_of = [](const std::string& v, srl::vm::VmLockKind* out) {
    using srl::vm::VmLockKind;
    if (v == "stock") {
      *out = VmLockKind::kStock;
    } else if (v == "tree") {
      *out = VmLockKind::kTree;
    } else if (v == "list") {
      *out = VmLockKind::kList;
    } else if (v == "list-lf") {
      *out = VmLockKind::kListLockFree;
    } else if (v == "skiplist") {
      *out = VmLockKind::kSkiplistIndexed;
    } else {
      return false;
    }
    return true;
  };
  auto mix_of = [](const std::string& m, srl::Mix* out) {
    if (m == "adversarial") {
      *out = srl::Mix::kAdversarial;
    } else if (m == "hot") {
      *out = srl::Mix::kHot;
    } else if (m == "disjoint") {
      *out = srl::Mix::kDisjoint;
    } else {
      return false;
    }
    return true;
  };

  const unsigned cpus = srl::Topology::Get().CpuCount();
  std::cout << "\n=== oversubscription sweep — write throughput, admission gate "
               "on/off (" << cpus << " CPU" << (cpus == 1 ? "" : "s")
            << ", cap ~#cores) ===\n";
  srl::Table table(
      {"variant", "gate", "mix", "threads", "ops/sec", "rel-stddev%", "parks", "culls"});
  for (const std::string& g : gates) {
    if (g != "on" && g != "off") {
      std::cerr << "unknown --gates entry: " << g << "\n";
      return 1;
    }
    srl::AdmissionGate::SetGloballyEnabled(g == "on");
    for (const std::string& v : variants) {
      srl::vm::VmLockKind kind;
      if (!kind_of(v, &kind)) {
        std::cerr << "unknown --variants entry: " << v << "\n";
        return 1;
      }
      for (const std::string& m : mixes) {
        srl::Mix mix;
        if (!mix_of(m, &mix)) {
          std::cerr << "unknown --mixes entry: " << m << "\n";
          return 1;
        }
        for (int t : threads) {
          const srl::Cell c = srl::RunCell(kind, mix, t, secs, repeats);
          table.AddRow({v, g, m, std::to_string(t), srl::Table::Num(c.summary.mean, 0),
                        srl::Table::Num(c.summary.RelStddevPct(), 1),
                        std::to_string(c.parks), std::to_string(c.culls)});
        }
      }
    }
  }
  srl::AdmissionGate::SetGloballyEnabled(true);
  table.Print(std::cout, csv);

  srl::BenchJson json("abl_oversub");
  json.AddTable({{"cpus", std::to_string(cpus)},
                 {"hot_window", std::to_string(srl::kHotWindow)},
                 {"disjoint_stride", std::to_string(srl::kDisjointStride)}},
                table);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
