// Ablation — range-scoped structural operations (this repo's extension past §5.2):
// disjoint-arena mmap/munmap churn with concurrent fault readers, across address-space
// stripe configurations.
//
// The paper refines page faults and metadata-only mprotects down to their argument
// range but leaves every structural operation holding a full-range write acquisition,
// so one mmap/munmap-heavy thread still collapses all concurrency. The scoped variants
// (kTreeScoped/kListScoped) write-lock only the affected range; striping then removes
// the remaining shared state (one tree lock, one structural seqcount, one mmap
// cursor). This bench isolates what each layer buys:
//
//   * `--stripes=1,4` sweeps stripe counts; at 1 the index is the PR 3/4 design.
//   * mode `disjoint` pins the fault readers' shared mapping to the LAST stripe and
//     spreads churners over the others, so per-stripe counters directly show the
//     isolation claim: churn in stripe A causes ~0 speculative-fault retries in
//     stripe B (under a global seqcount every munmap invalidated every fault).
//   * mode `same-stripe` is the adversarial control: every churner AND the readers'
//     mapping share stripe 0 — cross-thread same-stripe churn, the worst case the
//     home-stripe policy is meant to avoid. Only meaningful for stripes > 1.
//
// Reported per (variant, threads, stripes, mode): churn cycles/sec, fault throughput,
// the scoped-structural rate (VmStats), cross-stripe fallbacks, and the ranged vs full
// write-acquisition split (VmLock counters). A second table reports per-stripe
// speculative-fault and structural counters for every multi-stripe run.
//
// Flags: --variants=stock,tree-full,tree-scoped,list-full,list-refined,list-scoped,
//        list-lf-full,list-lf-scoped
//        --threads=1,2,4,8  --stripes=1,4  --modes=disjoint,same-stripe
//        --readers=2  --secs=0.25  --repeats=1  --pages=512  --scratch-pages=4
//        --csv  --json=BENCH_scoped_structural.json
#include <atomic>
#include <iostream>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/vm/address_space.h"

namespace srl {
namespace {

using vm::AddressSpace;
using vm::VmVariant;

struct StripeCounters {
  uint64_t spec_ok = 0;
  uint64_t spec_retry = 0;
  uint64_t scoped_ops = 0;
  uint64_t fallback = 0;
  uint64_t overflow = 0;
};

struct RunResult {
  Summary churn_per_sec;
  double faults_per_sec = 0.0;
  double scoped_rate = 0.0;       // fraction of structural ops that stayed scoped
  double fault_spec_rate = 0.0;   // fraction of faults resolved lock-free
  uint64_t cross_fallback = 0;    // scoped ops degraded because the range spans stripes
  uint64_t ranged_writes = 0;     // write acquisitions on a proper sub-range
  uint64_t full_writes = 0;       // write acquisitions on Range::Full()
  unsigned reader_stripe = 0;
  std::vector<StripeCounters> per_stripe;
};

RunResult RunOne(VmVariant variant, int churners, int readers, double secs, int repeats,
                 uint64_t pages, uint64_t scratch_pages, unsigned stripes,
                 bool same_stripe) {
  AddressSpace as(variant, stripes);
  const unsigned n = as.Stripes();
  // Disjoint mode: readers own the last stripe, churners round-robin over the rest.
  // Same-stripe mode: everyone hammers stripe 0.
  const unsigned reader_stripe = (same_stripe || n == 1) ? 0 : n - 1;
  const unsigned churn_lanes = (same_stripe || n == 1) ? 1 : n - 1;
  const uint64_t base = as.MmapInStripe(reader_stripe, pages * AddressSpace::kPageSize,
                                        vm::kProtRead | vm::kProtWrite);
  std::atomic<uint64_t> fault_ops{0};
  // Worker tids [0, churners) churn; the rest fault. Only churn cycles count as ops,
  // so the Summary is churn throughput; fault throughput is derived from the atomic.
  const Summary s = MeasureThroughputRepeated(
      churners + readers, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
        uint64_t ops = 0;
        if (tid < churners) {
          const unsigned my_stripe = static_cast<unsigned>(tid) % churn_lanes;
          while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t scratch = as.MmapInStripe(
                my_stripe, scratch_pages * AddressSpace::kPageSize,
                vm::kProtRead | vm::kProtWrite);
            as.PageFault(scratch, true);
            as.Munmap(scratch, scratch_pages * AddressSpace::kPageSize);
            ++ops;
          }
          return ops;
        }
        Xoshiro256 rng(0x5c0bed + static_cast<uint64_t>(tid));
        uint64_t faults = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          as.PageFault(base + rng.NextBelow(pages) * AddressSpace::kPageSize,
                       rng.NextChance(0.3));
          ++faults;
        }
        fault_ops.fetch_add(faults, std::memory_order_relaxed);
        return uint64_t{0};
      });
  RunResult r;
  r.churn_per_sec = s;
  r.faults_per_sec =
      static_cast<double>(fault_ops.load(std::memory_order_relaxed)) / (secs * repeats);
  r.scoped_rate = as.Stats().ScopedStructuralRate();
  r.fault_spec_rate = as.Stats().FaultSpecRate();
  r.cross_fallback = as.Stats().cross_stripe_fallback.load(std::memory_order_relaxed);
  r.ranged_writes = as.Lock().RangedWriteAcquisitions();
  r.full_writes = as.Lock().FullWriteAcquisitions();
  r.reader_stripe = reader_stripe;
  for (unsigned i = 0; i < n; ++i) {
    const vm::VmStripeStats& ss = as.Stats().stripe(i);
    r.per_stripe.push_back({ss.fault_spec_ok.load(), ss.fault_spec_retry.load(),
                            ss.scoped_structural.load(), ss.scoped_fallback.load(),
                            ss.mmap_overflow.load()});
  }
  return r;
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_scoped_structural --variants=stock,tree-full,tree-scoped,"
                 "list-full,list-refined,list-scoped,list-lf-full,list-lf-scoped "
                 "--threads=1,2,4,8 --stripes=1,4 "
                 "--modes=disjoint,same-stripe --readers=2 --secs=0.25 --repeats=1 "
                 "--pages=512 --scratch-pages=4 --csv "
                 "--json=BENCH_scoped_structural.json\n";
    return 0;
  }
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const std::vector<int> stripe_list = cli.GetIntList("--stripes", {1, 4});
  const std::vector<std::string> modes =
      cli.GetStringList("--modes", {"disjoint", "same-stripe"});
  const int readers = static_cast<int>(cli.GetInt("--readers", 2));
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const uint64_t pages = static_cast<uint64_t>(cli.GetInt("--pages", 512));
  const uint64_t scratch_pages =
      static_cast<uint64_t>(cli.GetInt("--scratch-pages", 4));
  const bool csv = cli.GetBool("--csv");

  const std::vector<std::string> names = cli.GetStringList(
      "--variants", {"stock", "tree-full", "tree-scoped", "list-full", "list-refined",
                     "list-scoped", "list-lf-full", "list-lf-scoped"});

  std::cout << "\n=== range-scoped structural ops — disjoint-arena mmap/munmap churn "
               "with fault readers, across stripe configurations ===\n";
  srl::Table table({"variant", "threads", "stripes", "mode", "churn/sec",
                    "rel-stddev%", "faults/sec", "scoped%", "spec-ok%", "cross-fb",
                    "ranged-writes", "full-writes"});
  srl::Table stripe_table({"variant", "threads", "stripes", "mode", "stripe", "role",
                           "spec-ok", "spec-retry", "scoped-ops", "fallback",
                           "overflow"});
  for (const std::string& name : names) {
    bool ok = false;
    const srl::vm::VmVariant variant = srl::vm::VmVariantFromName(name, &ok);
    if (!ok) {
      std::cerr << "unknown variant: " << name << "\n";
      return 2;
    }
    for (int t : threads) {
      for (int stripes : stripe_list) {
        for (const std::string& mode : modes) {
          const bool same = mode == "same-stripe";
          if (same && stripes <= 1) {
            continue;  // identical to disjoint at one stripe
          }
          const srl::RunResult r =
              srl::RunOne(variant, t, readers, secs, repeats, pages, scratch_pages,
                          static_cast<unsigned>(stripes), same);
          table.AddRow(
              {name, std::to_string(t), std::to_string(stripes), mode,
               srl::Table::Num(r.churn_per_sec.mean, 0),
               srl::Table::Num(r.churn_per_sec.RelStddevPct(), 1),
               srl::Table::Num(r.faults_per_sec, 0),
               srl::Table::Num(r.scoped_rate * 100.0, 2),
               srl::Table::Num(r.fault_spec_rate * 100.0, 2),
               std::to_string(r.cross_fallback), std::to_string(r.ranged_writes),
               std::to_string(r.full_writes)});
          if (r.per_stripe.size() > 1) {
            for (std::size_t i = 0; i < r.per_stripe.size(); ++i) {
              const srl::StripeCounters& sc = r.per_stripe[i];
              const char* role = i == r.reader_stripe ? "fault" : "churn";
              stripe_table.AddRow({name, std::to_string(t), std::to_string(stripes),
                                   mode, std::to_string(i), role,
                                   std::to_string(sc.spec_ok),
                                   std::to_string(sc.spec_retry),
                                   std::to_string(sc.scoped_ops),
                                   std::to_string(sc.fallback),
                                   std::to_string(sc.overflow)});
            }
          }
        }
      }
    }
  }
  table.Print(std::cout, csv);
  std::cout << "\n--- per-stripe counters (multi-stripe runs; role `fault` is the "
               "readers' stripe — its spec-retry column is the isolation claim) ---\n";
  stripe_table.Print(std::cout, csv);

  srl::BenchJson json("abl_scoped_structural");
  json.AddTable({{"readers", std::to_string(readers)},
                 {"pages", std::to_string(pages)},
                 {"scratch_pages", std::to_string(scratch_pages)},
                 {"secs", srl::Table::Num(secs, 3)},
                 {"repeats", std::to_string(repeats)}},
                table);
  json.AddTable({{"table", "per-stripe"},
                 {"readers", std::to_string(readers)},
                 {"pages", std::to_string(pages)}},
                stripe_table);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
