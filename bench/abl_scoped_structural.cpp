// Ablation — range-scoped structural operations (this repo's extension past §5.2):
// disjoint-arena mmap/munmap churn with concurrent fault readers.
//
// The paper refines page faults and metadata-only mprotects down to their argument
// range but leaves every structural operation holding a full-range write acquisition,
// so one mmap/munmap-heavy thread still collapses all concurrency. The scoped variants
// (kTreeScoped/kListScoped) write-lock only the affected range; this bench isolates
// what that buys on the workload it targets.
//
// Setup: `threads` churn workers each loop { mmap a few pages; write-fault the first;
// munmap } — the cursor allocator makes every scratch region disjoint, so under the
// scoped variants the write acquisitions never conflict. `--readers` fault threads
// touch uniformly random pages of a shared `--pages`-page mapping throughout. Under a
// full-range variant each churn op serializes against the whole address space (and
// blocks every fault); scoped churn proceeds in parallel.
//
// Reported per variant: churn cycles/sec, fault throughput, the scoped-structural rate
// (VmStats), and the ranged vs full write-acquisition split (VmLock counters).
//
// Flags: --variants=stock,tree-full,tree-scoped,list-full,list-refined,list-scoped
//        --threads=1,2,4,8  --readers=2  --secs=0.25  --repeats=1  --pages=512
//        --scratch-pages=4  --csv  --json=BENCH_scoped_structural.json
#include <atomic>
#include <iostream>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/vm/address_space.h"

namespace srl {
namespace {

using vm::AddressSpace;
using vm::VmVariant;

struct RunResult {
  Summary churn_per_sec;
  double faults_per_sec = 0.0;
  double scoped_rate = 0.0;       // fraction of structural ops that stayed scoped
  double fault_spec_rate = 0.0;   // fraction of faults resolved lock-free
  uint64_t ranged_writes = 0;     // write acquisitions on a proper sub-range
  uint64_t full_writes = 0;       // write acquisitions on Range::Full()
};

RunResult RunOne(VmVariant variant, int churners, int readers, double secs, int repeats,
                 uint64_t pages, uint64_t scratch_pages) {
  AddressSpace as(variant);
  const uint64_t base = as.Mmap(pages * AddressSpace::kPageSize,
                                vm::kProtRead | vm::kProtWrite);
  std::atomic<uint64_t> fault_ops{0};
  // Worker tids [0, churners) churn; the rest fault. Only churn cycles count as ops,
  // so the Summary is churn throughput; fault throughput is derived from the atomic.
  const Summary s = MeasureThroughputRepeated(
      churners + readers, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
        uint64_t ops = 0;
        if (tid < churners) {
          while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t scratch = as.Mmap(
                scratch_pages * AddressSpace::kPageSize, vm::kProtRead | vm::kProtWrite);
            as.PageFault(scratch, true);
            as.Munmap(scratch, scratch_pages * AddressSpace::kPageSize);
            ++ops;
          }
          return ops;
        }
        Xoshiro256 rng(0x5c0bed + static_cast<uint64_t>(tid));
        uint64_t faults = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          as.PageFault(base + rng.NextBelow(pages) * AddressSpace::kPageSize,
                       rng.NextChance(0.3));
          ++faults;
        }
        fault_ops.fetch_add(faults, std::memory_order_relaxed);
        return uint64_t{0};
      });
  RunResult r;
  r.churn_per_sec = s;
  r.faults_per_sec =
      static_cast<double>(fault_ops.load(std::memory_order_relaxed)) / (secs * repeats);
  r.scoped_rate = as.Stats().ScopedStructuralRate();
  r.fault_spec_rate = as.Stats().FaultSpecRate();
  r.ranged_writes = as.Lock().RangedWriteAcquisitions();
  r.full_writes = as.Lock().FullWriteAcquisitions();
  return r;
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_scoped_structural --variants=stock,tree-full,tree-scoped,"
                 "list-full,list-refined,list-scoped --threads=1,2,4,8 --readers=2 "
                 "--secs=0.25 --repeats=1 --pages=512 --scratch-pages=4 --csv "
                 "--json=BENCH_scoped_structural.json\n";
    return 0;
  }
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const int readers = static_cast<int>(cli.GetInt("--readers", 2));
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const uint64_t pages = static_cast<uint64_t>(cli.GetInt("--pages", 512));
  const uint64_t scratch_pages =
      static_cast<uint64_t>(cli.GetInt("--scratch-pages", 4));
  const bool csv = cli.GetBool("--csv");

  const std::vector<std::string> names = cli.GetStringList(
      "--variants", {"stock", "tree-full", "tree-scoped", "list-full", "list-refined",
                     "list-scoped"});

  std::cout << "\n=== range-scoped structural ops — disjoint-arena mmap/munmap churn "
               "with fault readers ===\n";
  srl::Table table({"variant", "threads", "churn/sec", "rel-stddev%", "faults/sec",
                    "scoped%", "spec-ok%", "ranged-writes", "full-writes"});
  for (const std::string& name : names) {
    bool ok = false;
    const srl::vm::VmVariant variant = srl::vm::VmVariantFromName(name, &ok);
    if (!ok) {
      std::cerr << "unknown variant: " << name << "\n";
      return 2;
    }
    for (int t : threads) {
      const srl::RunResult r =
          srl::RunOne(variant, t, readers, secs, repeats, pages, scratch_pages);
      table.AddRow({name, std::to_string(t), srl::Table::Num(r.churn_per_sec.mean, 0),
                    srl::Table::Num(r.churn_per_sec.RelStddevPct(), 1),
                    srl::Table::Num(r.faults_per_sec, 0),
                    srl::Table::Num(r.scoped_rate * 100.0, 2),
                    srl::Table::Num(r.fault_spec_rate * 100.0, 2),
                    std::to_string(r.ranged_writes), std::to_string(r.full_writes)});
    }
  }
  table.Print(std::cout, csv);

  srl::BenchJson json("abl_scoped_structural");
  json.AddTable({{"readers", std::to_string(readers)},
                 {"pages", std::to_string(pages)},
                 {"scratch_pages", std::to_string(scratch_pages)},
                 {"secs", srl::Table::Num(secs, 3)},
                 {"repeats", std::to_string(repeats)}},
                table);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
