// Ablation — pNOVA segment-count sensitivity (§2): "too few segments would create
// contention ... too many segments would make range acquisition more expensive — yet,
// Kim et al. do not discuss how the granularity should be tuned."
//
// Random-range workload over a 4096-unit universe; segment counts swept across three
// orders of magnitude. The list-based lock is shown as the granularity-free reference.
//
// Flags: --threads=4  --secs=0.3  --csv
#include <iostream>
#include <vector>

#include "src/baselines/segment_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"

namespace srl {
namespace {

constexpr uint64_t kUniverse = 4096;
constexpr uint64_t kMaxLen = 64;

template <typename AcquireRead, typename AcquireWrite>
double RunWorkload(int threads, double secs, AcquireRead&& read, AcquireWrite&& write) {
  return MeasureThroughput(threads, secs, [&](int tid, std::atomic<bool>& stop) {
    Xoshiro256 rng(0x5e6 + static_cast<uint64_t>(tid));
    uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t a = rng.NextBelow(kUniverse - kMaxLen);
      const Range r{a, a + 1 + rng.NextBelow(kMaxLen)};
      if (rng.NextChance(0.3)) {
        write(r);
      } else {
        read(r);
      }
      ++ops;
    }
    return ops;
  });
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_segments --threads=4 --secs=0.3 --csv\n";
    return 0;
  }
  const int threads = static_cast<int>(cli.GetInt("--threads", 4));
  const double secs = cli.GetDouble("--secs", 0.3);
  const bool csv = cli.GetBool("--csv");

  std::cout << "=== Ablation — pnova-rw segment-count sensitivity (random ranges, "
            << threads << " threads, 30% writes) ===\n";
  srl::Table table({"config", "ops/sec"});
  for (uint32_t segs : {4u, 16u, 64u, 256u, 1024u}) {
    srl::SegmentRangeLock lock(srl::kUniverse, segs);
    const double ops = srl::RunWorkload(
        threads, secs,
        [&](const srl::Range& r) { lock.Release(lock.AcquireRead(r)); },
        [&](const srl::Range& r) { lock.Release(lock.AcquireWrite(r)); });
    table.AddRow({"pnova-rw/" + std::to_string(segs), srl::Table::Num(ops, 0)});
  }
  {
    srl::ListRwRangeLock lock;
    const double ops = srl::RunWorkload(
        threads, secs, [&](const srl::Range& r) { lock.Unlock(lock.LockRead(r)); },
        [&](const srl::Range& r) { lock.Unlock(lock.LockWrite(r)); });
    table.AddRow({"list-rw (reference)", srl::Table::Num(ops, 0)});
  }
  table.Print(std::cout, csv);
  return 0;
}
