// Ablation — the trylock-first page-fault path under address-space churn.
//
// The kernel fault handler trylocks mmap_sem before it will ever sleep; our
// AddressSpace::PageFault mirrors that against the pluggable VmLock. This bench
// quantifies what the paper's kernel experiments imply but never isolate: how often the
// fault path gets in *without blocking*, per lock variant, as mmap/munmap churn takes
// full-range write acquisitions around it.
//
// Setup: `threads` fault threads touch uniformly random pages of a shared
// `--pages`-page mapping; one churn thread loops { mmap scratch; munmap scratch }
// (each a full-range write acquisition — range-scoped under the scoped variants) with
// `--churn-pause` no-ops between cycles. `--stripes` sweeps the address-space stripe
// count: in mode `disjoint` the churner works stripe 0 while the mapping lives in
// stripe 1, so the scoped variants' speculative faults validate against a seqcount the
// churn never touches (fault-stripe-retries ~ 0); mode `same-stripe` is the
// adversarial control with churn and mapping sharing stripe 0. Reported per
// (variant, threads, stripes, mode): fault throughput, trylock success rate, the
// fraction of faults resolved entirely lock-free (spec-ok%), the speculative retries
// charged to the mapping's stripe, and total churn cycles.
//
// Flags: --variants=stock,tree-full,tree-refined,tree-scoped,list-full,list-refined,
//        list-scoped,list-lf-full,list-lf-scoped
//        --threads=1,2,4,8 --stripes=1,4 --modes=disjoint,same-stripe
//        --secs=0.25  --repeats=1  --pages=1024  --churn-pause=4096  --csv
//        --json=BENCH_trylock.json
#include <atomic>
#include <iostream>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/vm/address_space.h"

namespace srl {
namespace {

using vm::AddressSpace;
using vm::VmVariant;

struct RunResult {
  Summary faults_per_sec;
  double try_success_rate = 0.0;
  double spec_rate = 0.0;
  uint64_t fault_stripe_retries = 0;  // spec retries charged to the mapping's stripe
  uint64_t churn_cycles = 0;
};

RunResult RunOne(VmVariant variant, int fault_threads, double secs, int repeats,
                 uint64_t pages, uint64_t churn_pause, unsigned stripes,
                 bool same_stripe) {
  AddressSpace as(variant, stripes);
  const unsigned n = as.Stripes();
  const unsigned map_stripe = (same_stripe || n == 1) ? 0 : 1;
  const uint64_t base = as.MmapInStripe(map_stripe, pages * AddressSpace::kPageSize,
                                        vm::kProtRead | vm::kProtWrite);
  std::atomic<uint64_t> churn_cycles{0};
  // Worker tids [0, fault_threads) fault; tid == fault_threads churns in stripe 0.
  // Only fault completions count as ops, so the throughput number is faults/sec.
  const Summary s = MeasureThroughputRepeated(
      fault_threads + 1, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
        uint64_t ops = 0;
        if (tid == fault_threads) {
          while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t scratch = as.MmapInStripe(
                0, 2 * AddressSpace::kPageSize, vm::kProtRead | vm::kProtWrite);
            as.Munmap(scratch, 2 * AddressSpace::kPageSize);
            churn_cycles.fetch_add(1, std::memory_order_relaxed);
            for (uint64_t i = 0; i < churn_pause; ++i) {
              asm volatile("");
            }
          }
          return uint64_t{0};
        }
        Xoshiro256 rng(0xfa017 + static_cast<uint64_t>(tid));
        while (!stop.load(std::memory_order_relaxed)) {
          const uint64_t page = rng.NextBelow(pages);
          as.PageFault(base + page * AddressSpace::kPageSize, rng.NextChance(0.3));
          ++ops;
        }
        return ops;
      });
  RunResult r;
  r.faults_per_sec = s;
  r.try_success_rate = as.Stats().FaultTrySuccessRate();
  r.spec_rate = as.Stats().FaultSpecRate();
  r.fault_stripe_retries =
      as.Stats().stripe(map_stripe).fault_spec_retry.load(std::memory_order_relaxed);
  r.churn_cycles = churn_cycles.load(std::memory_order_relaxed);
  return r;
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_trylock --variants=stock,tree-full,tree-refined,tree-scoped,"
                 "list-full,list-refined,list-scoped,list-lf-full,list-lf-scoped "
                 "--threads=1,2,4,8 --stripes=1,4 "
                 "--modes=disjoint,same-stripe --secs=0.25 --repeats=1 --pages=1024 "
                 "--churn-pause=4096 --csv --json=BENCH_trylock.json\n";
    return 0;
  }
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const std::vector<int> stripe_list = cli.GetIntList("--stripes", {1, 4});
  const std::vector<std::string> modes =
      cli.GetStringList("--modes", {"disjoint", "same-stripe"});
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const uint64_t pages = static_cast<uint64_t>(cli.GetInt("--pages", 1024));
  const uint64_t churn_pause =
      static_cast<uint64_t>(cli.GetInt("--churn-pause", 4096));
  const bool csv = cli.GetBool("--csv");

  const std::vector<std::string> names = cli.GetStringList(
      "--variants", {"stock", "tree-full", "tree-refined", "tree-scoped", "list-full",
                     "list-refined", "list-scoped", "list-lf-full", "list-lf-scoped"});

  std::cout << "\n=== trylock-first fault path under mmap/munmap churn ===\n";
  srl::Table table({"variant", "threads", "stripes", "mode", "faults/sec",
                    "rel-stddev%", "try-success%", "spec-ok%", "fault-stripe-retries",
                    "churn-cycles"});
  for (const std::string& name : names) {
    bool ok = false;
    const srl::vm::VmVariant variant = srl::vm::VmVariantFromName(name, &ok);
    if (!ok) {
      std::cerr << "unknown variant: " << name << "\n";
      return 2;
    }
    for (int t : threads) {
      for (int stripes : stripe_list) {
        for (const std::string& mode : modes) {
          const bool same = mode == "same-stripe";
          if (same && stripes <= 1) {
            continue;  // identical to disjoint at one stripe
          }
          const srl::RunResult r =
              srl::RunOne(variant, t, secs, repeats, pages, churn_pause,
                          static_cast<unsigned>(stripes), same);
          table.AddRow({name, std::to_string(t), std::to_string(stripes), mode,
                        srl::Table::Num(r.faults_per_sec.mean, 0),
                        srl::Table::Num(r.faults_per_sec.RelStddevPct(), 1),
                        srl::Table::Num(r.try_success_rate * 100.0, 2),
                        srl::Table::Num(r.spec_rate * 100.0, 2),
                        std::to_string(r.fault_stripe_retries),
                        std::to_string(r.churn_cycles)});
        }
      }
    }
  }
  table.Print(std::cout, csv);

  srl::BenchJson json("abl_trylock");
  json.AddTable({{"pages", std::to_string(pages)},
                 {"churn_pause", std::to_string(churn_pause)},
                 {"secs", srl::Table::Num(secs, 3)},
                 {"repeats", std::to_string(repeats)}},
                table);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
