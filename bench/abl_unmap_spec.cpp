// Ablation — speculative lookup phase for munmap (the §5.2 future-work extension;
// see AddressSpace::SetUnmapLookupSpeculation).
//
// Workload: fault-heavy reader threads plus one thread issuing munmap probes that
// mostly miss (querying unmapped scratch addresses — the pattern of defensive cleanup
// code and allocator double-free guards). Without the extension every miss serializes
// the whole address space behind a full-range write acquisition; with it, misses stay
// on the read path and faults keep flowing.
//
// Flags: --threads=4  --secs=0.4  --csv
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/vm/address_space.h"

namespace srl {
namespace {

constexpr uint64_t kPage = vm::AddressSpace::kPageSize;

double RunCase(bool speculate, int fault_threads, double secs, uint64_t* misses) {
  vm::AddressSpace as(vm::VmVariant::kListRefined);
  as.SetUnmapLookupSpeculation(speculate);
  const uint64_t region = as.Mmap(256 * kPage, vm::kProtRead | vm::kProtWrite);
  // An address far past every mapping: munmap probes there always miss.
  const uint64_t nowhere = region + (1u << 20) * kPage;

  std::atomic<bool> stop{false};
  std::thread unmapper([&] {
    Xoshiro256 rng(0xdead);
    while (!stop.load(std::memory_order_relaxed)) {
      as.Munmap(nowhere + rng.NextBelow(1024) * kPage, kPage);
    }
  });
  const double faults_per_sec =
      MeasureThroughput(fault_threads, secs, [&](int tid, std::atomic<bool>& stop_flag) {
        Xoshiro256 rng(0xf0 + static_cast<uint64_t>(tid));
        uint64_t ops = 0;
        while (!stop_flag.load(std::memory_order_relaxed)) {
          as.PageFault(region + rng.NextBelow(256) * kPage, false);
          ++ops;
        }
        return ops;
      });
  stop.store(true);
  unmapper.join();
  *misses = as.Stats().unmap_lookup_fastpath.load();
  return faults_per_sec;
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_unmap_spec --threads=4 --secs=0.4 --csv\n";
    return 0;
  }
  const int threads = static_cast<int>(cli.GetInt("--threads", 4));
  const double secs = cli.GetDouble("--secs", 0.4);
  const bool csv = cli.GetBool("--csv");

  std::cout << "=== Ablation — munmap lookup speculation (§5.2 future work): fault "
               "throughput under a stream of missing munmaps ===\n";
  srl::Table table({"config", "faults/sec", "read-path unmap misses"});
  for (bool spec : {false, true}) {
    uint64_t misses = 0;
    const double fps = srl::RunCase(spec, threads, secs, &misses);
    table.AddRow({spec ? "speculative lookup" : "baseline (full write)",
                  srl::Table::Num(fps, 0), std::to_string(misses)});
  }
  table.Print(std::cout, csv);
  return 0;
}
