// Figure 3 — ArrBench microbenchmark (§7.1).
//
// Threads access a 256-slot array of cache-line-padded slots under a range lock, with
// uniformly random non-critical work (up to 2048 no-ops) between operations. Three
// variants select the locked range:
//   full      every operation locks the entire array (panels a, b)
//   disjoint  per-thread slice, traversed nthreads times for constant work (c, d)
//   random    uniformly random [start, end] (e, f)
// and two mixes: 100% reads and 60% reads / 40% writes. Locks: lustre-ex, kernel-rw,
// pnova-rw (one segment per slot, as the paper configures), list-ex, list-lf
// (bucketed lock-free list), list-rw.
//
// Output: one table per (variant, mix) — the series of the corresponding panel.
//
// Flags: --variant=full|disjoint|random|all  --threads=1,2,4,8  --secs=0.25
//        --repeats=1  --csv
#include <iostream>
#include <string>
#include <vector>

#include "src/baselines/segment_range_lock.h"
#include "src/baselines/tree_range_lock.h"
#include "src/core/list_lockfree_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/sync/cacheline.h"

namespace srl {
namespace {

constexpr uint64_t kSlots = 256;
constexpr uint64_t kMaxPause = 2048;

struct Slot {
  volatile uint64_t value = 0;
};

using SlotArray = std::vector<CacheAligned<Slot>>;

enum class Variant { kFull, kDisjoint, kRandom };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kFull:
      return "full";
    case Variant::kDisjoint:
      return "disjoint";
    case Variant::kRandom:
      return "random";
  }
  return "?";
}

// Local adapters with ArrBench-specific construction (the generic ones in
// src/harness/lock_adapters.h default-construct; pnova needs workload geometry here).
struct LustreEx {
  static constexpr bool kRw = false;
  static const char* Name() { return "lustre-ex"; }
  TreeRangeLock lock;
  auto Read(const Range& r) { return lock.AcquireWrite(r); }
  auto Write(const Range& r) { return lock.AcquireWrite(r); }
  template <typename H>
  void Release(H h) {
    lock.Release(h);
  }
};

struct KernelRw {
  static constexpr bool kRw = true;
  static const char* Name() { return "kernel-rw"; }
  TreeRangeLock lock;
  auto Read(const Range& r) { return lock.AcquireRead(r); }
  auto Write(const Range& r) { return lock.AcquireWrite(r); }
  template <typename H>
  void Release(H h) {
    lock.Release(h);
  }
};

struct PnovaRw {
  static constexpr bool kRw = true;
  static const char* Name() { return "pnova-rw"; }
  SegmentRangeLock lock{kSlots, static_cast<uint32_t>(kSlots)};  // one segment per slot
  auto Read(const Range& r) { return lock.AcquireRead(r); }
  auto Write(const Range& r) { return lock.AcquireWrite(r); }
  template <typename H>
  void Release(H h) {
    lock.Release(h);
  }
};

struct ListEx {
  static constexpr bool kRw = false;
  static const char* Name() { return "list-ex"; }
  ListRangeLock lock;
  auto Read(const Range& r) { return lock.Lock(r); }
  auto Write(const Range& r) { return lock.Lock(r); }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

struct ListLf {
  static constexpr bool kRw = false;
  static const char* Name() { return "list-lf"; }
  // 64-slot windows cut the 256-slot array into 4 windows, which the bucket hash
  // spreads over 4 distinct heads of 16: disjoint per-thread slices own private heads
  // up to 4 threads (every acquisition rides the per-bucket fast path), and at 8
  // threads only pairs share a head. Finer windows would shrink 1-thread acquisitions
  // (fewer nodes) but make slices share heads sooner; this is the paper's trade-off of
  // window size against false bucket conflicts.
  ListLockFreeRangeLock lock{
      ListLockFreeRangeLock::Options{.buckets = 16, .window_shift = 6}};
  auto Read(const Range& r) { return lock.Lock(r); }
  auto Write(const Range& r) { return lock.Lock(r); }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

struct ListRw {
  static constexpr bool kRw = true;
  static const char* Name() { return "list-rw"; }
  ListRwRangeLock lock;
  auto Read(const Range& r) { return lock.LockRead(r); }
  auto Write(const Range& r) { return lock.LockWrite(r); }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

// noinline on the shared loops: every RunOne<LockT> specialization must execute the
// SAME copy of the pause and traversal loops. Inlined per-lock copies land at
// different code alignments, and tight-loop throughput is alignment-dependent (up to
// 2-3x on some cores) — at ~1k pause iterations plus a 256-slot traversal per op,
// per-specialization copies would drown the lock cost being measured.
[[gnu::noinline]] void NonCriticalWork(Xoshiro256& rng) {
  const uint64_t n = rng.NextBelow(kMaxPause);
  for (uint64_t i = 0; i < n; ++i) {
    asm volatile("");
  }
}

[[gnu::noinline]] uint64_t ReadSlots(const SlotArray& array, const Range& r,
                                     int traversals) {
  uint64_t sink = 0;
  for (int t = 0; t < traversals; ++t) {
    for (uint64_t i = r.start; i < r.end; ++i) {
      sink += array[i].value.value;
    }
  }
  return sink;
}

[[gnu::noinline]] void WriteSlots(SlotArray& array, const Range& r, int traversals) {
  for (int t = 0; t < traversals; ++t) {
    for (uint64_t i = r.start; i < r.end; ++i) {
      array[i].value.value = array[i].value.value + 1;
    }
  }
}

template <typename LockT>
Summary RunOne(Variant variant, double read_fraction, int threads, double secs,
               int repeats) {
  LockT adapter;
  SlotArray array(kSlots);
  return MeasureThroughputRepeated(threads, secs, repeats, [&](int tid,
                                                               std::atomic<bool>& stop) {
    Xoshiro256 rng(0xa55a000 + static_cast<uint64_t>(tid));
    const uint64_t per = kSlots / static_cast<uint64_t>(threads);
    const uint64_t my_start = static_cast<uint64_t>(tid) * per;
    const uint64_t my_end = my_start + (tid == threads - 1 ? kSlots - my_start : per);
    uint64_t ops = 0;
    uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Range r{0, kSlots};
      int traversals = 1;
      switch (variant) {
        case Variant::kFull:
          break;
        case Variant::kDisjoint:
          r = {my_start, my_end};
          traversals = threads;  // constant total work across thread counts (§7.1)
          break;
        case Variant::kRandom: {
          uint64_t a = rng.NextBelow(kSlots);
          uint64_t b = rng.NextBelow(kSlots);
          if (a > b) {
            std::swap(a, b);
          }
          r = {a, b + 1};
          break;
        }
      }
      const bool is_read = rng.NextDouble() < read_fraction;
      if (is_read) {
        auto h = adapter.Read(r);
        sink += ReadSlots(array, r, traversals);
        adapter.Release(h);
      } else {
        auto h = adapter.Write(r);
        WriteSlots(array, r, traversals);
        adapter.Release(h);
      }
      ++ops;
      NonCriticalWork(rng);
    }
    asm volatile("" ::"r"(sink));
    return ops;
  });
}

void RunPanel(Variant variant, double read_fraction, const std::vector<int>& threads,
              double secs, int repeats, bool csv, BenchJson* json) {
  std::cout << "\n=== Figure 3 (" << VariantName(variant) << " ranges, "
            << static_cast<int>(read_fraction * 100) << "% reads) — throughput, ops/sec ===\n";
  Table table({"lock", "threads", "ops/sec", "rel-stddev%"});
  auto add = [&](const char* name, int t, const Summary& s) {
    table.AddRow({name, std::to_string(t), Table::Num(s.mean, 0),
                  Table::Num(s.RelStddevPct(), 1)});
  };
  for (int t : threads) {
    add(LustreEx::Name(), t, RunOne<LustreEx>(variant, read_fraction, t, secs, repeats));
    add(KernelRw::Name(), t, RunOne<KernelRw>(variant, read_fraction, t, secs, repeats));
    add(PnovaRw::Name(), t, RunOne<PnovaRw>(variant, read_fraction, t, secs, repeats));
    add(ListEx::Name(), t, RunOne<ListEx>(variant, read_fraction, t, secs, repeats));
    add(ListLf::Name(), t, RunOne<ListLf>(variant, read_fraction, t, secs, repeats));
    add(ListRw::Name(), t, RunOne<ListRw>(variant, read_fraction, t, secs, repeats));
  }
  table.Print(std::cout, csv);
  json->AddTable({{"variant", VariantName(variant)},
                  {"read_pct", std::to_string(static_cast<int>(read_fraction * 100))}},
                 table);
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "fig3_arrbench --variant=full|disjoint|random|all "
                 "--threads=1,2,4,8 --secs=0.25 --repeats=1 --csv "
                 "--json=BENCH_fig3.json\n";
    return 0;
  }
  const std::string variant = cli.GetString("--variant", "all");
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");

  std::vector<srl::Variant> variants;
  if (variant == "all") {
    variants = {srl::Variant::kFull, srl::Variant::kDisjoint, srl::Variant::kRandom};
  } else if (variant == "full") {
    variants = {srl::Variant::kFull};
  } else if (variant == "disjoint") {
    variants = {srl::Variant::kDisjoint};
  } else {
    variants = {srl::Variant::kRandom};
  }
  srl::BenchJson json("fig3_arrbench");
  for (srl::Variant v : variants) {
    srl::RunPanel(v, 1.0, threads, secs, repeats, csv, &json);  // 100% reads panel
    srl::RunPanel(v, 0.6, threads, secs, repeats, csv, &json);  // 60% reads panel
  }
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
