// Macro-benchmark — server-style file/KV store over one flat byte buffer, the original
// range-lock use case (§1: "multiple writers would want to write into different parts
// of the same file" without a whole-file lock). Promoted from the examples/ demo into a
// measured workload with the live-range counts a real server produces: at --records
// defaulting to 2^20, tens of concurrent holders and deep search structures, which is
// exactly where the O(log n) skiplist-indexed lock separates from the linear lists.
//
// Workload per client thread, Zipf-skewed over records (hot keys scattered through the
// buffer by a multiplicative permutation so popularity does not collapse into adjacent
// bytes):
//   60%   point read   — lock the record's byte range, checksum-validate
//   20%   point write  — lock + rewrite record with fresh checksum
//   10%   transaction  — 3 records locked in ascending byte order (deadlock-free),
//                        read-modify-write each
//   10%   short scan   — 128 consecutive records under one range acquisition
//   + occasionally (1 in 50k ops) a full-file scan under a Range::Full acquisition,
//     sampling every 64th record — the mmap_sem-style global writer every design must
//     absorb without collapsing.
//
// Torn-read detection: every record carries a checksum over its payload; any checksum
// mismatch under a held range means the lock failed exclusion and the bench exits
// non-zero. Locks: skiplist-indexed, list-ex, list-lf (VM geometry), lustre-ex.
//
// Cold-region drops (--cold-drop): the store can additionally run against a simulated
// AddressSpace mirror of the file — every record access page-faults its page, and a
// background janitor thread periodically drops the store's resident pages
// (MADV_DONTNEED over rotating sixteenths of the file), the way a cache server trims
// cold regions under memory pressure. `inline` drops pages synchronously inside the
// janitor's read acquisition (the pre-deferral shape); `deferred` enqueues them on
// the sweep queues and lets the flush threshold batch the page-table work outside any
// range lock. Teardown exits through MunmapAsync + DrainSweeps. Rows land in a second
// table (same metrics, extra cold-drop/drops-sec columns) so the default table's
// schema — and its perf_diff history — is untouched.
//
// Flags: --locks=skiplist-indexed,list-ex,list-lf,lustre-ex --threads=1,2,4,8
//        --records=1048576 --zipf=0.99 --secs=0.25 --repeats=1
//        --cold-drop=off|inline|deferred --csv --json=BENCH_file_store.json
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/tree_range_lock.h"
#include "src/core/list_lockfree_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/skiplist_range_lock.h"
#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/vm/address_space.h"

namespace srl {
namespace {

constexpr uint64_t kRecordSize = 64;
constexpr uint64_t kScanRecords = 128;
constexpr uint64_t kTxnRecords = 3;
constexpr uint64_t kFullScanOneIn = 50000;
constexpr uint64_t kFullScanStride = 64;

struct Record {
  uint64_t sequence;
  uint64_t payload[6];
  uint64_t checksum;  // sum of sequence and payload words
};
static_assert(sizeof(Record) == kRecordSize);

struct ListEx {
  static const char* Name() { return "list-ex"; }
  ListRangeLock lock;
  auto Acquire(const Range& r) { return lock.Lock(r); }
  bool TryAcquire(const Range& r, ListRangeLock::Handle* out) {
    return lock.TryLock(r, out);
  }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

struct ListLf {
  static const char* Name() { return "list-lf"; }
  // The VM backend's geometry: 64 KiB windows hold 1024 records each, so point
  // operations stay single-bucket while scans and the full-file writer go multi-bucket.
  ListLockFreeRangeLock lock{
      ListLockFreeRangeLock::Options{.buckets = 64, .window_shift = 16}};
  auto Acquire(const Range& r) { return lock.Lock(r); }
  bool TryAcquire(const Range& r, ListLockFreeRangeLock::Handle* out) {
    return lock.TryLock(r, out);
  }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

struct LustreEx {
  static const char* Name() { return "lustre-ex"; }
  TreeRangeLock lock;
  auto Acquire(const Range& r) { return lock.AcquireWrite(r); }
  bool TryAcquire(const Range& r, TreeRangeLock::Handle* out) {
    return lock.TryAcquireWrite(r, out);
  }
  template <typename H>
  void Release(H h) {
    lock.Release(h);
  }
};

struct SkiplistIndexed {
  static const char* Name() { return "skiplist-indexed"; }
  SkiplistRangeLock lock;
  auto Acquire(const Range& r) { return lock.Lock(r); }
  bool TryAcquire(const Range& r, SkiplistRangeLock::Handle* out) {
    return lock.TryLock(r, out);
  }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

// Zipf(theta) over [0, n) via an inverse-CDF table: build once, sample with a binary
// search. The tail of the CDF is dense, so popular ranks sit at the front.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta) : cdf_(n) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) {
      c /= sum;
    }
  }

  uint64_t Sample(Xoshiro256& rng) const {
    const double u = rng.NextDouble();
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

class FileStore {
 public:
  explicit FileStore(uint64_t records)
      : records_(records), bytes_(records * kRecordSize, 0) {}

  uint64_t Records() const { return records_; }
  uint64_t SizeBytes() const { return records_ * kRecordSize; }

  void WriteAt(uint64_t offset, uint64_t sequence, Xoshiro256& rng) {
    Record rec{};
    rec.sequence = sequence;
    rec.checksum = sequence;
    for (uint64_t& w : rec.payload) {
      w = rng.Next();
      rec.checksum += w;
    }
    std::memcpy(bytes_.data() + offset, &rec, sizeof rec);
  }

  bool ValidateAt(uint64_t offset) const {
    Record rec;
    std::memcpy(&rec, bytes_.data() + offset, sizeof rec);
    uint64_t sum = rec.sequence;
    for (uint64_t w : rec.payload) {
      sum += w;
    }
    return sum == rec.checksum;
  }

 private:
  uint64_t records_;
  std::vector<uint8_t> bytes_;
};

// Zipf rank -> record index: multiplication by an odd constant is a bijection mod the
// power-of-two record count, scattering the hot head of the distribution across the
// whole file instead of packing it into adjacent bytes.
uint64_t ScatterRank(uint64_t rank, uint64_t records) {
  return (rank * 0x9E3779B97F4A7C15ull) & (records - 1);
}

enum class ColdDrop { kOff, kInline, kDeferred };

const char* ColdDropName(ColdDrop c) {
  return c == ColdDrop::kInline ? "inline" : "deferred";
}

// Simulated AddressSpace mirror of the file (see the header): client record accesses
// page-fault their page; a janitor thread trims rotating sixteenths of the file with
// MADV_DONTNEED the way a cache server drops cold regions under memory pressure.
class VmMirror {
 public:
  VmMirror(uint64_t size_bytes, ColdDrop mode)
      : as_(vm::VmVariant::kListScoped, 4), size_(size_bytes) {
    as_.SetDeferredSweeps(mode == ColdDrop::kDeferred);
    base_ = as_.Mmap(size_, vm::kProtRead | vm::kProtWrite);
    janitor_ = std::thread([this] {
      const uint64_t sixteenth = size_ / 16;
      unsigned slot = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        as_.MadviseDontNeed(base_ + slot * sixteenth, sixteenth);
        drops_.fetch_add(1, std::memory_order_relaxed);
        slot = (slot + 1) % 16;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  ~VmMirror() { Teardown(); }

  // Stops the janitor and exits through the async path: the unlink is synchronous,
  // the page sweep rides the drain. Idempotent — RunOne calls it before reading the
  // sweep counters so the teardown flush is included.
  void Teardown() {
    if (torn_down_) {
      return;
    }
    torn_down_ = true;
    stop_.store(true, std::memory_order_release);
    janitor_.join();
    as_.MunmapAsync(base_, size_);
    as_.DrainSweeps();
  }

  void Touch(uint64_t offset) { as_.PageFault(base_ + offset, false); }

  uint64_t Drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t SweptPages() const { return as_.Stats().sweeps_swept_pages.load(); }

 private:
  vm::AddressSpace as_;
  uint64_t size_;
  uint64_t base_ = 0;
  std::thread janitor_;
  bool torn_down_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> drops_{0};
};

struct ColdStats {
  double drops_per_sec = 0.0;
  uint64_t swept_pages = 0;
};

template <typename LockT>
Summary RunOne(uint64_t records, int threads, double secs, int repeats,
               const ZipfSampler& zipf, std::atomic<uint64_t>* torn,
               ColdDrop cold = ColdDrop::kOff, ColdStats* cold_stats = nullptr) {
  LockT adapter;
  FileStore store(records);
  std::unique_ptr<VmMirror> mirror;
  const auto mirror_start = std::chrono::steady_clock::now();
  if (cold != ColdDrop::kOff) {
    mirror = std::make_unique<VmMirror>(store.SizeBytes(), cold);
  }
  VmMirror* mp = mirror.get();
  const Summary s = MeasureThroughputRepeated(
      threads, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
        Xoshiro256 rng(0xf11e5704e + static_cast<uint64_t>(tid) * 0x9e37);
        uint64_t ops = 0;
        uint64_t seq = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (rng.NextBelow(kFullScanOneIn) == 0) {
            // Full-file scan: one Range::Full acquisition excludes every writer.
            auto h = adapter.Acquire(Range::Full());
            for (uint64_t i = 0; i < records; i += kFullScanStride) {
              if (mp != nullptr) {
                mp->Touch(i * kRecordSize);
              }
              if (!store.ValidateAt(i * kRecordSize)) {
                torn->fetch_add(1, std::memory_order_relaxed);
              }
            }
            adapter.Release(h);
          } else {
            const double roll = rng.NextDouble();
            const uint64_t idx = ScatterRank(zipf.Sample(rng), records);
            const uint64_t offset = idx * kRecordSize;
            if (mp != nullptr) {
              mp->Touch(offset);
            }
            if (roll < 0.6) {
              auto h = adapter.Acquire({offset, offset + kRecordSize});
              if (!store.ValidateAt(offset)) {
                torn->fetch_add(1, std::memory_order_relaxed);
              }
              adapter.Release(h);
            } else if (roll < 0.8) {
              auto h = adapter.Acquire({offset, offset + kRecordSize});
              store.WriteAt(offset, ++seq, rng);
              adapter.Release(h);
            } else if (roll < 0.9) {
              // Transaction over distinct records: the first acquisition blocks, the
              // rest are try-locks; any failure drops everything and retries. Plain
              // ascending-order blocking would NOT be safe here — a pending
              // Range::Full scan node sits before every record, so "txn holds A,
              // waits on B behind the scan; scan waits on A" is a cycle.
              uint64_t offs[kTxnRecords];
              for (uint64_t& o : offs) {
                o = ScatterRank(zipf.Sample(rng), records) * kRecordSize;
              }
              std::sort(std::begin(offs), std::end(offs));
              const auto end = std::unique(std::begin(offs), std::end(offs));
              using Handle = decltype(adapter.Acquire(Range{0, 1}));
              Handle handles[kTxnRecords];
              std::size_t held = 0;
              for (;;) {
                handles[0] = adapter.Acquire({offs[0], offs[0] + kRecordSize});
                held = 1;
                bool ok = true;
                for (auto* o = std::begin(offs) + 1; o != end; ++o) {
                  if (!adapter.TryAcquire({*o, *o + kRecordSize}, &handles[held])) {
                    ok = false;
                    break;
                  }
                  ++held;
                }
                if (ok) {
                  break;
                }
                for (std::size_t i = 0; i < held; ++i) {
                  adapter.Release(handles[i]);
                }
                held = 0;
                std::this_thread::yield();
              }
              for (auto* o = std::begin(offs); o != end; ++o) {
                if (mp != nullptr) {
                  mp->Touch(*o);
                }
                if (!store.ValidateAt(*o)) {
                  torn->fetch_add(1, std::memory_order_relaxed);
                }
                store.WriteAt(*o, ++seq, rng);
              }
              for (std::size_t i = 0; i < held; ++i) {
                adapter.Release(handles[i]);
              }
            } else {
              // Short scan: kScanRecords consecutive records, clamped at the end.
              const uint64_t first = idx < records - kScanRecords ? idx
                                                                  : records - kScanRecords;
              const uint64_t lo = first * kRecordSize;
              const uint64_t hi = lo + kScanRecords * kRecordSize;
              auto h = adapter.Acquire({lo, hi});
              for (uint64_t o = lo; o < hi; o += kRecordSize) {
                if (mp != nullptr) {
                  mp->Touch(o);
                }
                if (!store.ValidateAt(o)) {
                  torn->fetch_add(1, std::memory_order_relaxed);
                }
              }
              adapter.Release(h);
            }
          }
          ++ops;
        }
        return ops;
      });
  if (mp != nullptr && cold_stats != nullptr) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - mirror_start)
            .count();
    mp->Teardown();  // include the teardown drain in the sweep counters
    cold_stats->drops_per_sec =
        elapsed > 0 ? static_cast<double>(mp->Drops()) / elapsed : 0.0;
    cold_stats->swept_pages = mp->SweptPages();
  }
  return s;
}

template <typename LockT>
void RunLock(const std::vector<int>& threads, uint64_t records, double secs,
             int repeats, const ZipfSampler& zipf, Table* table,
             std::atomic<uint64_t>* torn) {
  for (int t : threads) {
    const Summary s = RunOne<LockT>(records, t, secs, repeats, zipf, torn);
    table->AddRow({LockT::Name(), std::to_string(t), Table::Num(s.mean, 0),
                   Table::Num(s.RelStddevPct(), 1)});
  }
}

// Cold-drop rows go to their own table so the default table's schema (and its
// perf_diff history) is untouched.
template <typename LockT>
void RunLockCold(const std::vector<int>& threads, uint64_t records, double secs,
                 int repeats, const ZipfSampler& zipf, ColdDrop cold, Table* table,
                 std::atomic<uint64_t>* torn) {
  for (int t : threads) {
    ColdStats cs;
    const Summary s = RunOne<LockT>(records, t, secs, repeats, zipf, torn, cold, &cs);
    table->AddRow({LockT::Name(), std::to_string(t), ColdDropName(cold),
                   Table::Num(s.mean, 0), Table::Num(s.RelStddevPct(), 1),
                   Table::Num(cs.drops_per_sec, 0),
                   std::to_string(cs.swept_pages)});
  }
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "macro_file_store --locks=skiplist-indexed,list-ex,list-lf,lustre-ex "
                 "--threads=1,2,4,8 --records=1048576 --zipf=0.99 --secs=0.25 "
                 "--repeats=1 --cold-drop=off|inline|deferred --csv "
                 "--json=BENCH_file_store.json\n";
    return 0;
  }
  const std::string locks =
      cli.GetString("--locks", "skiplist-indexed,list-ex,list-lf,lustre-ex");
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const uint64_t records =
      std::bit_ceil(static_cast<uint64_t>(cli.GetInt("--records", 1 << 20)));
  const double zipf_theta = cli.GetDouble("--zipf", 0.99);
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");
  const std::string cold_arg = cli.GetString("--cold-drop", "off");
  srl::ColdDrop cold = srl::ColdDrop::kOff;
  if (cold_arg == "inline") {
    cold = srl::ColdDrop::kInline;
  } else if (cold_arg == "deferred") {
    cold = srl::ColdDrop::kDeferred;
  } else if (cold_arg != "off") {
    std::cerr << "unknown --cold-drop mode: " << cold_arg << "\n";
    return 1;
  }

  const srl::ZipfSampler zipf(records, zipf_theta);
  std::atomic<uint64_t> torn{0};

  std::cout << "\n=== file store — " << records << " records x " << srl::kRecordSize
            << " B, Zipf theta " << zipf_theta
            << ", 60r/20w/10txn/10scan + 1-in-" << srl::kFullScanOneIn
            << " full scans, ops/sec ===\n";
  srl::Table table({"lock", "threads", "ops/sec", "rel-stddev%"});
  auto want = [&](const char* name) {
    return locks.find(name) != std::string::npos;
  };
  if (want(srl::SkiplistIndexed::Name())) {
    srl::RunLock<srl::SkiplistIndexed>(threads, records, secs, repeats, zipf, &table,
                                       &torn);
  }
  if (want(srl::ListEx::Name())) {
    srl::RunLock<srl::ListEx>(threads, records, secs, repeats, zipf, &table, &torn);
  }
  if (want(srl::ListLf::Name())) {
    srl::RunLock<srl::ListLf>(threads, records, secs, repeats, zipf, &table, &torn);
  }
  if (want(srl::LustreEx::Name())) {
    srl::RunLock<srl::LustreEx>(threads, records, secs, repeats, zipf, &table, &torn);
  }
  table.Print(std::cout, csv);

  srl::Table cold_table({"lock", "threads", "cold-drop", "ops/sec", "rel-stddev%",
                         "drops/sec", "swept-pages"});
  if (cold != srl::ColdDrop::kOff) {
    std::cout << "\n=== file store + VM mirror — janitor drops cold sixteenths ("
              << cold_arg << " sweeps), record accesses page-fault ===\n";
    if (want(srl::SkiplistIndexed::Name())) {
      srl::RunLockCold<srl::SkiplistIndexed>(threads, records, secs, repeats, zipf,
                                             cold, &cold_table, &torn);
    }
    if (want(srl::ListEx::Name())) {
      srl::RunLockCold<srl::ListEx>(threads, records, secs, repeats, zipf, cold,
                                    &cold_table, &torn);
    }
    if (want(srl::ListLf::Name())) {
      srl::RunLockCold<srl::ListLf>(threads, records, secs, repeats, zipf, cold,
                                    &cold_table, &torn);
    }
    if (want(srl::LustreEx::Name())) {
      srl::RunLockCold<srl::LustreEx>(threads, records, secs, repeats, zipf, cold,
                                      &cold_table, &torn);
    }
    cold_table.Print(std::cout, csv);
  }

  if (torn.load() != 0) {
    std::cerr << "TORN READS: " << torn.load() << " — range exclusion broken\n";
    return 1;
  }

  srl::BenchJson json("macro_file_store");
  json.AddTable({{"records", std::to_string(records)},
                 {"zipf", std::to_string(zipf_theta)},
                 {"mix", "60r/20w/10txn/10scan+fullscan"}},
                table);
  if (cold != srl::ColdDrop::kOff) {
    json.AddTable({{"records", std::to_string(records)},
                   {"zipf", std::to_string(zipf_theta)},
                   {"cold_drop", cold_arg},
                   {"mix", "60r/20w/10txn/10scan+fullscan+janitor"}},
                  cold_table);
  }
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
