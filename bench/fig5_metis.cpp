// Figure 5 — Metis runtime (§7.2): wr, wc, wrmem runtime (lower is better) as the
// thread count grows, for stock / tree-full / tree-refined / list-full / list-refined,
// plus the range-scoped structural variants (tree-scoped / list-scoped) this repo adds.
//
// Flags: --threads=1,2,4,8  --total-kb=768  --rounds=6  --repeats=1  --csv
//        --json=BENCH_fig5.json
#include <iostream>
#include <string>
#include <vector>

#include "bench/metis_bench_common.h"
#include "src/harness/stats.h"
#include "src/harness/table.h"

namespace srl::bench {
namespace {

void RunApp(metis::MetisApp app, const Cli& cli, BenchJson* json) {
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");

  std::cout << "\n=== Figure 5 (" << metis::MetisAppName(app)
            << ") — runtime, seconds (lower is better) ===\n";
  Table table({"variant", "threads", "runtime_s", "rel-stddev%", "spec-rate%"});
  for (vm::VmVariant variant :
       {vm::VmVariant::kStock, vm::VmVariant::kTreeFull, vm::VmVariant::kTreeRefined,
        vm::VmVariant::kListFull, vm::VmVariant::kListRefined,
        vm::VmVariant::kTreeScoped, vm::VmVariant::kListScoped}) {
    for (int t : threads) {
      std::vector<double> secs;
      double spec = 0;
      for (int r = 0; r < repeats; ++r) {
        const MetisRun run = RunMetisOnce(variant, ConfigFromCli(cli, app, t),
                                          /*collect_wait_stats=*/false,
                                          /*collect_spin_stats=*/false);
        if (!run.result.ok) {
          std::cerr << "metis run failed for " << vm::VmVariantName(variant) << "\n";
          return;
        }
        secs.push_back(run.result.seconds);
        spec = run.spec_rate;
      }
      const Summary s = Summarize(secs);
      table.AddRow({vm::VmVariantName(variant), std::to_string(t), Table::Num(s.mean, 3),
                    Table::Num(s.RelStddevPct(), 1), Table::Num(spec * 100.0, 1)});
    }
  }
  table.Print(std::cout, csv);
  json->AddTable({{"app", metis::MetisAppName(app)},
                  {"total_kb", std::to_string(cli.GetInt("--total-kb", 768))},
                  {"rounds", std::to_string(cli.GetInt("--rounds", 6))},
                  {"repeats", std::to_string(repeats)}},
                 table);
}

}  // namespace
}  // namespace srl::bench

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "fig5_metis --threads=1,2,4,8 --total-kb=768 --rounds=6 --repeats=1 "
                 "--csv --json=BENCH_fig5.json\n";
    return 0;
  }
  srl::BenchJson json("fig5_metis");
  for (srl::metis::MetisApp app : {srl::metis::MetisApp::kWr, srl::metis::MetisApp::kWc,
                                   srl::metis::MetisApp::kWrmem}) {
    srl::bench::RunApp(app, cli, &json);
  }
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
