// Ablation — list-length sensitivity (§3): the list lock's linear search "should not
// present an issue, as ... the number of stored elements (ranges) in the list is
// relatively small since it is proportional to the number of threads". This bench
// quantifies the cost as the number of concurrently held ranges grows, against the
// tree lock's logarithmic search.
//
// Single-threaded: K disjoint ranges are pre-held, then the acquire/release cost of a
// range positioned after all of them is measured.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/baselines/tree_range_lock.h"
#include "src/core/list_range_lock.h"

namespace srl {
namespace {

void BM_ListExAcquireWithHeldRanges(benchmark::State& state) {
  const int held = static_cast<int>(state.range(0));
  ListRangeLock lock;
  std::vector<ListRangeLock::Handle> handles;
  handles.reserve(held);
  for (int i = 0; i < held; ++i) {
    handles.push_back(lock.Lock({static_cast<uint64_t>(i) * 10,
                                 static_cast<uint64_t>(i) * 10 + 5}));
  }
  const Range probe{static_cast<uint64_t>(held) * 10 + 100,
                    static_cast<uint64_t>(held) * 10 + 105};
  for (auto _ : state) {
    auto h = lock.Lock(probe);  // traverses all `held` nodes
    lock.Unlock(h);
  }
  for (auto h : handles) {
    lock.Unlock(h);
  }
}
BENCHMARK(BM_ListExAcquireWithHeldRanges)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_TreeAcquireWithHeldRanges(benchmark::State& state) {
  const int held = static_cast<int>(state.range(0));
  TreeRangeLock lock;
  std::vector<TreeRangeLock::Handle> handles;
  handles.reserve(held);
  for (int i = 0; i < held; ++i) {
    handles.push_back(lock.AcquireWrite({static_cast<uint64_t>(i) * 10,
                                         static_cast<uint64_t>(i) * 10 + 5}));
  }
  const Range probe{static_cast<uint64_t>(held) * 10 + 100,
                    static_cast<uint64_t>(held) * 10 + 105};
  for (auto _ : state) {
    auto h = lock.AcquireWrite(probe);  // O(log held) tree search
    lock.Release(h);
  }
  for (auto h : handles) {
    lock.Release(h);
  }
}
BENCHMARK(BM_TreeAcquireWithHeldRanges)->Arg(0)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace srl

BENCHMARK_MAIN();
