// Ablation — list-length sensitivity (§3): the list lock's linear search "should not
// present an issue, as ... the number of stored elements (ranges) in the list is
// relatively small since it is proportional to the number of threads". This bench
// quantifies that assumption's breaking point: with K disjoint ranges pre-held, a probe
// acquisition positioned after all of them pays the full search cost — linear for the
// list locks, logarithmic for the tree and the skiplist-indexed lock.
//
// Single-threaded by design: the y-axis is the uncontended acquire/release path cost as
// a function of live-range count, not scalability. list-lf runs the VM backend's
// geometry (64 buckets, 64 KiB windows); with the 16-unit range stride here, thousands
// of held ranges share a handful of windows, so its search degenerates to linear too —
// the geometry-vs-precision trade the skiplist index removes.
//
// Flags: --held=0,16,64,256,1024,4096  --secs=0.25  --repeats=1  --csv
//        --json=BENCH_listlen.json
#include <iostream>
#include <string>
#include <vector>

#include "src/baselines/tree_range_lock.h"
#include "src/core/list_lockfree_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/skiplist_range_lock.h"
#include "src/harness/cli.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"

namespace srl {
namespace {

// Held ranges sit at [i*kStride, i*kStride + kStride/2); the probe starts past the
// last of them, which is the worst case for a sorted-by-start linear search.
constexpr uint64_t kStride = 16;

struct ListEx {
  static const char* Name() { return "list-ex"; }
  ListRangeLock lock;
  auto Acquire(const Range& r) { return lock.Lock(r); }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

struct ListLf {
  static const char* Name() { return "list-lf"; }
  ListLockFreeRangeLock lock{
      ListLockFreeRangeLock::Options{.buckets = 64, .window_shift = 16}};
  auto Acquire(const Range& r) { return lock.Lock(r); }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

struct LustreEx {
  static const char* Name() { return "lustre-ex"; }
  TreeRangeLock lock;
  auto Acquire(const Range& r) { return lock.AcquireWrite(r); }
  template <typename H>
  void Release(H h) {
    lock.Release(h);
  }
};

struct SkiplistIndexed {
  static const char* Name() { return "skiplist-indexed"; }
  SkiplistRangeLock lock;
  auto Acquire(const Range& r) { return lock.Lock(r); }
  template <typename H>
  void Release(H h) {
    lock.Unlock(h);
  }
};

template <typename LockT>
Summary RunOne(int held, double secs, int repeats) {
  return MeasureThroughputRepeated(
      1, secs, repeats, [&](int, std::atomic<bool>& stop) {
        LockT adapter;
        using Handle = decltype(adapter.Acquire(Range{0, 1}));
        std::vector<Handle> handles;
        handles.reserve(static_cast<std::size_t>(held));
        for (int i = 0; i < held; ++i) {
          const uint64_t base = static_cast<uint64_t>(i) * kStride;
          handles.push_back(adapter.Acquire({base, base + kStride / 2}));
        }
        // Probe in the gap after the last held range: greater than every held start
        // (full linear scan for the list locks) yet inside the same window span, so
        // list-lf cannot sidestep the search via an empty neighbouring bucket.
        const uint64_t probe_start =
            held == 0 ? kStride / 2
                      : static_cast<uint64_t>(held) * kStride - kStride / 2;
        const Range probe{probe_start, probe_start + kStride / 2};
        uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          auto h = adapter.Acquire(probe);
          adapter.Release(h);
          ++ops;
        }
        for (auto h : handles) {
          adapter.Release(h);
        }
        return ops;
      });
}

void RunPanel(const std::vector<int>& held_counts, double secs, int repeats, bool csv,
              BenchJson* json) {
  std::cout << "\n=== List-length ablation — probe acquire/release after K held "
               "ranges, ops/sec ===\n";
  Table table({"lock", "held", "ops/sec", "rel-stddev%"});
  auto add = [&](const char* name, int held, const Summary& s) {
    table.AddRow({name, std::to_string(held), Table::Num(s.mean, 0),
                  Table::Num(s.RelStddevPct(), 1)});
  };
  for (int held : held_counts) {
    add(ListEx::Name(), held, RunOne<ListEx>(held, secs, repeats));
    add(ListLf::Name(), held, RunOne<ListLf>(held, secs, repeats));
    add(LustreEx::Name(), held, RunOne<LustreEx>(held, secs, repeats));
    add(SkiplistIndexed::Name(), held, RunOne<SkiplistIndexed>(held, secs, repeats));
  }
  table.Print(std::cout, csv);
  json->AddTable({{"stride", std::to_string(kStride)}}, table);
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_listlen --held=0,16,64,256,1024,4096 --secs=0.25 --repeats=1 "
                 "--csv --json=BENCH_listlen.json\n";
    return 0;
  }
  const std::vector<int> held = cli.GetIntList("--held", {0, 16, 64, 256, 1024, 4096});
  const double secs = cli.GetDouble("--secs", 0.25);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");

  srl::BenchJson json("abl_listlen");
  srl::RunPanel(held, secs, repeats, csv, &json);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
