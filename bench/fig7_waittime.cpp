// Figure 7 — average wait time for mmap_sem / the range lock (§7.2), read vs write
// acquisitions, collected lock_stat-style (note the probe effect: wait instrumentation
// is only enabled for this bench, as the paper does with lock_stat). The scoped
// variants ride along so the write-wait collapse from range-scoping structural ops is
// visible in the same units.
//
// Flags: --threads=1,2,4,8  --total-kb=768  --rounds=6  --csv  --json=BENCH_fig7.json
#include <iostream>
#include <string>
#include <vector>

#include "bench/metis_bench_common.h"
#include "src/harness/table.h"

namespace srl::bench {
namespace {

void RunApp(metis::MetisApp app, const Cli& cli, BenchJson* json) {
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const bool csv = cli.GetBool("--csv");

  std::cout << "\n=== Figure 7 (" << metis::MetisAppName(app)
            << ") — mean lock wait per acquisition, microseconds ===\n";
  Table table({"variant", "threads", "read_wait_us", "write_wait_us", "reads", "writes"});
  for (vm::VmVariant variant :
       {vm::VmVariant::kStock, vm::VmVariant::kTreeFull, vm::VmVariant::kTreeRefined,
        vm::VmVariant::kListFull, vm::VmVariant::kListRefined,
        vm::VmVariant::kTreeScoped, vm::VmVariant::kListScoped,
        vm::VmVariant::kListLfFull, vm::VmVariant::kListLfScoped}) {
    for (int t : threads) {
      const MetisRun run = RunMetisOnce(variant, ConfigFromCli(cli, app, t),
                                        /*collect_wait_stats=*/true,
                                        /*collect_spin_stats=*/false);
      if (!run.result.ok) {
        std::cerr << "metis run failed for " << vm::VmVariantName(variant) << "\n";
        return;
      }
      table.AddRow({vm::VmVariantName(variant), std::to_string(t),
                    Table::Num(run.mean_read_wait_ns / 1000.0, 3),
                    Table::Num(run.mean_write_wait_ns / 1000.0, 3),
                    std::to_string(run.reads), std::to_string(run.writes)});
    }
  }
  table.Print(std::cout, csv);
  json->AddTable({{"app", metis::MetisAppName(app)},
                  {"total_kb", std::to_string(cli.GetInt("--total-kb", 768))},
                  {"rounds", std::to_string(cli.GetInt("--rounds", 6))},
                  {"repeats", "1"}},
                 table);
}

}  // namespace
}  // namespace srl::bench

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "fig7_waittime --threads=1,2,4,8 --total-kb=768 --rounds=6 --csv "
                 "--json=BENCH_fig7.json\n";
    return 0;
  }
  srl::BenchJson json("fig7_waittime");
  for (srl::metis::MetisApp app : {srl::metis::MetisApp::kWr, srl::metis::MetisApp::kWc,
                                   srl::metis::MetisApp::kWrmem}) {
    srl::bench::RunApp(app, cli, &json);
  }
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
