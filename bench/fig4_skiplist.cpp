// Figure 4 — skip-list throughput (§6, §7.1).
//
// Synchrobench-style set workload: 80% find / 10% insert / 10% remove over a key range
// (paper: 8M range, 4M prefilled; defaults here are laptop-sized and scale up via
// flags). Variants: orig (Herlihy optimistic, per-node locks), range-lustre (range-lock
// skip list over the kernel tree lock), range-list (over the paper's list lock).
//
// Flags: --threads=1,2,4,8  --key-range=1048576  --update-pct=20  --secs=0.3
//        --repeats=1  --csv
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/skiplist/optimistic_skiplist.h"
#include "src/skiplist/range_lock_skiplist.h"

namespace srl {
namespace {

template <typename ListT>
void Prefill(ListT& list, uint64_t key_range, uint64_t target) {
  Xoshiro256 rng(0xf111);
  uint64_t inserted = 0;
  while (inserted < target) {
    if (list.Insert(1 + rng.NextBelow(key_range))) {
      ++inserted;
    }
  }
  ListT::QuiesceLocal();
}

template <typename ListT>
void RunSeries(const char* name, const std::vector<int>& threads, uint64_t key_range,
               double update_fraction, double secs, int repeats, Table* table) {
  auto list = std::make_unique<ListT>();
  Prefill(*list, key_range, key_range / 2);
  for (int t : threads) {
    const Summary s = MeasureThroughputRepeated(
        t, secs, repeats, [&](int tid, std::atomic<bool>& stop) {
          Xoshiro256 rng(0x600d + static_cast<uint64_t>(tid));
          uint64_t ops = 0;
          uint64_t quiesce = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            const uint64_t key = 1 + rng.NextBelow(key_range);
            const double roll = rng.NextDouble();
            if (roll < update_fraction / 2) {
              list->Insert(key);
            } else if (roll < update_fraction) {
              list->Remove(key);
            } else {
              list->Contains(key);
            }
            if (++quiesce % 4096 == 0) {
              ListT::QuiesceLocal();
            }
            ++ops;
          }
          ListT::QuiesceLocal();
          return ops;
        });
    table->AddRow({name, std::to_string(t), Table::Num(s.mean, 0),
                   Table::Num(s.RelStddevPct(), 1)});
  }
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "fig4_skiplist --threads=1,2,4,8 --key-range=1048576 --update-pct=20 "
                 "--secs=0.3 --repeats=1 --csv\n";
    return 0;
  }
  const std::vector<int> threads = cli.GetIntList("--threads", {1, 2, 4, 8});
  const uint64_t key_range =
      static_cast<uint64_t>(cli.GetInt("--key-range", 1 << 20));
  const double update_fraction = cli.GetInt("--update-pct", 20) / 100.0;
  const double secs = cli.GetDouble("--secs", 0.3);
  const int repeats = static_cast<int>(cli.GetInt("--repeats", 1));
  const bool csv = cli.GetBool("--csv");

  std::cout << "=== Figure 4 — skip-list throughput (ops/sec), "
            << (1.0 - update_fraction) * 100 << "% find, key range " << key_range
            << ", " << key_range / 2 << " prefilled ===\n";
  srl::Table table({"variant", "threads", "ops/sec", "rel-stddev%"});
  srl::RunSeries<srl::OptimisticSkipList>("orig", threads, key_range, update_fraction,
                                          secs, repeats, &table);
  srl::RunSeries<srl::RangeLockSkipList<srl::TreeLockPolicy>>(
      "range-lustre", threads, key_range, update_fraction, secs, repeats, &table);
  srl::RunSeries<srl::RangeLockSkipList<srl::ListLockPolicy>>(
      "range-list", threads, key_range, update_fraction, secs, repeats, &table);
  table.Print(std::cout, csv);
  return 0;
}
