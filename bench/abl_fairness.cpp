// Ablation — the §4.3 fairness layer: throughput cost and worst-case acquisition
// latency benefit of the impatient counter + auxiliary phase-fair lock, under a
// CAS-churn-heavy workload (many short overlapping acquisitions at one hot spot).
//
// Flags: --threads=4,8  --secs=0.4  --csv  --json=BENCH_fairness.json
#include <algorithm>
#include <atomic>
#include <iostream>
#include <vector>

#include "src/core/fair_list_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/harness/cli.h"
#include "src/harness/prng.h"
#include "src/harness/table.h"
#include "src/harness/throughput_runner.h"
#include "src/harness/wait_stats.h"

namespace srl {
namespace {

struct Outcome {
  double ops_per_sec;
  double max_acquire_us;
};

template <typename LockT>
Outcome Run(LockT& lock, int threads, double secs) {
  std::atomic<uint64_t> max_ns{0};
  const double ops = MeasureThroughput(threads, secs, [&](int tid,
                                                          std::atomic<bool>& stop) {
    Xoshiro256 rng(0xfa1 + static_cast<uint64_t>(tid));
    uint64_t local_max = 0;
    uint64_t ops_done = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Hot spot: small, heavily overlapping ranges — maximal insertion-point churn.
      const uint64_t a = rng.NextBelow(8);
      const Range r{a, a + 4};
      const uint64_t t0 = WaitStats::NowNs();
      auto h = lock.Lock(r);
      local_max = std::max(local_max, WaitStats::NowNs() - t0);
      lock.Unlock(h);
      ++ops_done;
    }
    uint64_t seen = max_ns.load();
    while (local_max > seen && !max_ns.compare_exchange_weak(seen, local_max)) {
    }
    return ops_done;
  });
  return {ops, static_cast<double>(max_ns.load()) / 1000.0};
}

}  // namespace
}  // namespace srl

int main(int argc, char** argv) {
  srl::Cli cli(argc, argv);
  if (cli.Has("--help")) {
    std::cout << "abl_fairness --threads=4,8 --secs=0.4 --csv "
                 "--json=BENCH_fairness.json\n";
    return 0;
  }
  const std::vector<int> threads = cli.GetIntList("--threads", {4, 8});
  const double secs = cli.GetDouble("--secs", 0.4);
  const bool csv = cli.GetBool("--csv");

  std::cout << "=== Ablation — fairness layer (§4.3): throughput vs worst-case "
               "acquisition latency ===\n";
  srl::Table table({"config", "threads", "ops/sec", "max_acquire_us"});
  for (int t : threads) {
    {
      srl::ListRangeLock lock;
      const auto o = srl::Run(lock, t, secs);
      table.AddRow({"raw list-ex", std::to_string(t), srl::Table::Num(o.ops_per_sec, 0),
                    srl::Table::Num(o.max_acquire_us, 1)});
    }
    for (int patience : {4, 64}) {
      srl::FairListRangeLock lock(
          srl::FairListRangeLock::Options{.inner = {}, .patience = patience});
      const auto o = srl::Run(lock, t, secs);
      table.AddRow({"fair (patience " + std::to_string(patience) + ")",
                    std::to_string(t), srl::Table::Num(o.ops_per_sec, 0),
                    srl::Table::Num(o.max_acquire_us, 1)});
    }
  }
  table.Print(std::cout, csv);

  srl::BenchJson json("abl_fairness");
  json.AddTable({{"workload", "hot-spot CAS churn, 4B ranges in an 8B window"}}, table);
  return json.Write(cli.JsonPath()) ? 0 : 1;
}
