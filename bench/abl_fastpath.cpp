// Ablation — the §4.5 fast path: uncontended acquire/release latency of every lock.
//
// The fast path's claim is a constant-step acquire/release when the lock is not
// contended ("particularly important for a single thread execution"). google-benchmark
// measures single-threaded lock+unlock of a small range for each implementation.
#include <benchmark/benchmark.h>

#include "src/baselines/segment_range_lock.h"
#include "src/baselines/tree_range_lock.h"
#include "src/core/fair_list_range_lock.h"
#include "src/core/list_range_lock.h"
#include "src/core/list_rw_range_lock.h"
#include "src/sync/rw_semaphore.h"

namespace srl {
namespace {

const Range kRange{100, 200};

void BM_ListExRegularPath(benchmark::State& state) {
  ListRangeLock lock;
  for (auto _ : state) {
    auto h = lock.Lock(kRange);
    lock.Unlock(h);
  }
}
BENCHMARK(BM_ListExRegularPath);

void BM_ListExFastPath(benchmark::State& state) {
  ListRangeLock lock(ListRangeLock::Options{.enable_fast_path = true});
  for (auto _ : state) {
    auto h = lock.Lock(kRange);
    lock.Unlock(h);
  }
}
BENCHMARK(BM_ListExFastPath);

void BM_ListRwRegularPathWrite(benchmark::State& state) {
  ListRwRangeLock lock;
  for (auto _ : state) {
    auto h = lock.LockWrite(kRange);
    lock.Unlock(h);
  }
}
BENCHMARK(BM_ListRwRegularPathWrite);

void BM_ListRwFastPathWrite(benchmark::State& state) {
  ListRwRangeLock lock(ListRwRangeLock::Options{.enable_fast_path = true});
  for (auto _ : state) {
    auto h = lock.LockWrite(kRange);
    lock.Unlock(h);
  }
}
BENCHMARK(BM_ListRwFastPathWrite);

void BM_ListRwFastPathRead(benchmark::State& state) {
  ListRwRangeLock lock(ListRwRangeLock::Options{.enable_fast_path = true});
  for (auto _ : state) {
    auto h = lock.LockRead(kRange);
    lock.Unlock(h);
  }
}
BENCHMARK(BM_ListRwFastPathRead);

void BM_FairListEx(benchmark::State& state) {
  FairListRangeLock lock;
  for (auto _ : state) {
    auto h = lock.Lock(kRange);
    lock.Unlock(h);
  }
}
BENCHMARK(BM_FairListEx);

void BM_TreeLock(benchmark::State& state) {
  TreeRangeLock lock;
  for (auto _ : state) {
    auto h = lock.AcquireWrite(kRange);
    lock.Release(h);
  }
}
BENCHMARK(BM_TreeLock);

void BM_SegmentLockNarrow(benchmark::State& state) {
  SegmentRangeLock lock(1 << 20, 256);
  for (auto _ : state) {
    auto h = lock.AcquireWrite(kRange);  // one segment
    lock.Release(h);
  }
}
BENCHMARK(BM_SegmentLockNarrow);

void BM_SegmentLockFullRange(benchmark::State& state) {
  SegmentRangeLock lock(1 << 20, 256);
  for (auto _ : state) {
    auto h = lock.AcquireWrite(Range::Full());  // all 256 segments
    lock.Release(h);
  }
}
BENCHMARK(BM_SegmentLockFullRange);

void BM_RwSemaphore(benchmark::State& state) {
  RwSemaphore sem;
  for (auto _ : state) {
    sem.lock();
    sem.unlock();
  }
}
BENCHMARK(BM_RwSemaphore);

}  // namespace
}  // namespace srl

BENCHMARK_MAIN();
